# Tier-1 verification and benchmark recording.

.PHONY: verify bench test vet lint race profile

# verify is the tier-1 flow: vet, lint, build, the full test suite, and
# the race detector over the concurrent sweep harness, the sweep
# service, and the cell store.
verify: vet lint test race

vet:
	go vet ./...

# lint runs the repository's own analyzer suite (detlint, allocfree,
# statescope, cyclepure, idsafe, memocoherent, guardedby, golife,
# atomicfs) over the tree through the go vet driver, so results are
# cached per package like any vet check.
lint: bin/smtlint
	go vet -vettool=$(abspath bin/smtlint) ./...

bin/smtlint: FORCE
	go build -o bin/smtlint ./cmd/smtlint

.PHONY: FORCE
FORCE:

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/sweep/... ./internal/sweepd/... ./internal/cellstore/...

# bench records the hot-path benchmarks (end-to-end machine + issue
# queue, with -benchmem, 5 samples) to $(BENCH_OUT). Override the
# artifact per PR: `make bench BENCH_OUT=BENCH_PR6.json`. The script
# refuses to record from a tree that fails `make lint`.
BENCH_OUT ?= BENCH.json
bench:
	scripts/bench.sh $(BENCH_OUT)

# profile runs the Table 1 reference workload under the CPU and
# allocation profilers and prints the hottest functions — the first stop
# when attacking the busy-cycle cost model of DESIGN.md §12. Override
# the instruction budget with PROFILE_N, flags with PROFILE_FLAGS.
PROFILE_N ?= 2000000
PROFILE_FLAGS ?= -bench equake,twolf,gcc,gzip -iq 64 -sched 2op-ooo-dispatch
profile:
	go build -o bin/smtsim ./cmd/smtsim
	bin/smtsim $(PROFILE_FLAGS) -n $(PROFILE_N) -cpuprofile cpu.prof -memprofile mem.prof
	go tool pprof -top -nodecount 25 bin/smtsim cpu.prof
