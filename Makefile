# Tier-1 verification and benchmark recording.

.PHONY: verify bench test vet race

# verify is the tier-1 flow: vet, build, the full test suite, and the
# race detector over the concurrent sweep harness.
verify: vet test race

vet:
	go vet ./...

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/sweep/...

# bench records the hot-path benchmarks (end-to-end machine + issue
# queue, with -benchmem, 5 samples) to BENCH_PR1.json.
bench:
	scripts/bench.sh BENCH_PR1.json
