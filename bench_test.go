// Benchmarks regenerating the paper's evaluation artifacts.
//
// Each BenchmarkFigure*/BenchmarkTable* below drives the same harness
// code as cmd/smtsweep, at a reduced per-run instruction budget so the
// whole suite completes in minutes; the reported custom metrics are the
// numbers the corresponding paper artifact plots. For publication-scale
// budgets use:
//
//	go run ./cmd/smtreport -budget 1000000
//
// The remaining benchmarks measure the simulator's own hot paths
// (cycles simulated per second, issue-queue operations, the synthetic
// trace generator), which is what you tune when making the simulator
// faster.
package smtsim_test

import (
	"testing"

	"smtsim"
	"smtsim/internal/sweep"
)

// benchOpts is the reduced-budget harness configuration used by the
// figure benchmarks.
func benchOpts() sweep.Options {
	return sweep.Options{Budget: 5_000, Seed: 1, IQSizes: []int{32, 64, 128}}
}

// reportRow publishes one table row as benchmark metrics named
// metric/IQ=N.
func reportRow(b *testing.B, t sweep.Table, row int, metric string) {
	b.Helper()
	for j, col := range t.Cols {
		b.ReportMetric(t.Values[row][j], metric+"/"+col)
	}
}

// BenchmarkTable1Machine exercises the full Table 1 machine end to end
// and reports simulated cycles per second — the simulator's core speed
// metric.
func BenchmarkTable1Machine(b *testing.B) {
	var cycles, instrs int64
	for i := 0; i < b.N; i++ {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:      []string{"equake", "twolf", "gcc", "gzip"},
			IQSize:          64,
			Scheduler:       smtsim.TwoOpOOOD,
			MaxInstructions: 10_000,
			Seed:            uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
		instrs += int64(res.Committed)
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// TestRunAllocationCeiling guards the whole-run allocation budget: one
// complete Table 1 simulation — machine construction included — must
// stay within the ceiling. The steady-state cycle path is separately
// required to allocate zero (pipeline.TestStepSteadyStateZeroAllocs);
// this test pins the setup cost, which flat backing-array construction
// in cache.New, bpred.NewBTB, and the event wheel brought down from
// ~2300 allocations to ~230. The ceiling has ~2x headroom so it trips
// on regressions to per-set or per-slot allocation, not on noise.
func TestRunAllocationCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not short")
	}
	const ceiling = 500
	avg := testing.AllocsPerRun(3, func() {
		_, err := smtsim.Run(smtsim.Config{
			Benchmarks:      []string{"equake", "twolf", "gcc", "gzip"},
			IQSize:          64,
			Scheduler:       smtsim.TwoOpOOOD,
			MaxInstructions: 10_000,
			Seed:            1,
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg > ceiling {
		t.Errorf("whole run allocates %.0f objects, ceiling %d", avg, ceiling)
	}
}

// BenchmarkTables2to4Mixes runs one representative mix from each of the
// paper's three workload tables, validating that every encoded mix is
// executable; the metric is aggregate IPC.
func BenchmarkTables2to4Mixes(b *testing.B) {
	var ipc float64
	n := 0
	for i := 0; i < b.N; i++ {
		for _, threads := range []int{2, 3, 4} {
			lists, _, err := smtsim.Mixes(threads)
			if err != nil {
				b.Fatal(err)
			}
			res, err := smtsim.Run(smtsim.Config{
				Benchmarks:      lists[i%len(lists)],
				IQSize:          64,
				MaxInstructions: 5_000,
			})
			if err != nil {
				b.Fatal(err)
			}
			ipc += res.IPC
			n++
		}
	}
	b.ReportMetric(ipc/float64(n), "mean-IPC")
}

// BenchmarkFigure1 regenerates Figure 1 (2OP_BLOCK speedup over the
// traditional scheduler for 2/3/4 threads across IQ sizes) at bench
// budget and reports the 4-thread row.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sweep.Figure1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportRow(b, t, 2, "speedup4T")
	}
}

// BenchmarkFigure3 regenerates Figure 3 (throughput-IPC speedups,
// 2-threaded workloads) and reports the out-of-order-dispatch row.
func BenchmarkFigure3(b *testing.B) {
	benchFigureSpeedup(b, 2)
}

// BenchmarkFigure5 regenerates Figure 5 (3-threaded workloads).
func BenchmarkFigure5(b *testing.B) {
	benchFigureSpeedup(b, 3)
}

// BenchmarkFigure7 regenerates Figure 7 (4-threaded workloads).
func BenchmarkFigure7(b *testing.B) {
	benchFigureSpeedup(b, 4)
}

func benchFigureSpeedup(b *testing.B, threads int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := sweep.FigureSpeedup(threads, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportRow(b, t, 2, "ooodSpeedup")
	}
}

// BenchmarkFigure4 regenerates Figure 4 (fairness improvement,
// 2-threaded workloads) and reports the out-of-order-dispatch row.
func BenchmarkFigure4(b *testing.B) {
	benchFigureFairness(b, 2)
}

// BenchmarkFigure6 regenerates Figure 6 (3-threaded workloads).
func BenchmarkFigure6(b *testing.B) {
	benchFigureFairness(b, 3)
}

// BenchmarkFigure8 regenerates Figure 8 (4-threaded workloads).
func BenchmarkFigure8(b *testing.B) {
	benchFigureFairness(b, 4)
}

func benchFigureFairness(b *testing.B, threads int) {
	b.Helper()
	o := benchOpts()
	o.IQSizes = []int{64} // fairness needs alone-IPC reference runs; keep it lean
	for i := 0; i < b.N; i++ {
		t, err := sweep.FigureFairness(threads, o)
		if err != nil {
			b.Fatal(err)
		}
		reportRow(b, t, 2, "ooodFairness")
	}
}

// BenchmarkStallStats regenerates the Section 3/5 dispatch-stall
// statistic (paper: 43%/17%/7% of cycles for 2/3/4 threads under
// 2OP_BLOCK at 64 entries; 0.2% under OOO dispatch for 2 threads).
func BenchmarkStallStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sweep.StallStats(64, sweep.Options{Budget: 5_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values[0][1], "stall2T%")
		b.ReportMetric(t.Values[2][1], "stall4T%")
	}
}

// BenchmarkResidency regenerates the Section 5 issue-queue residency
// comparison (paper: 21 cycles traditional vs 15 under OOO dispatch,
// 2 threads at 64 entries).
func BenchmarkResidency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sweep.ResidencyStats(2, 64, sweep.Options{Budget: 5_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values[0][0], "residencyTrad")
		b.ReportMetric(t.Values[2][0], "residencyOOOD")
	}
}

// BenchmarkHDIStats regenerates the Section 4 HDI observations (paper:
// ~90% of instructions piled behind NDIs are HDIs; ~10% of HDIs depend
// on the NDI they bypass).
func BenchmarkHDIStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sweep.HDIStats(64, sweep.Options{Budget: 5_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values[0][0], "piledHDI%")
		b.ReportMetric(t.Values[0][1], "hdiDepNDI%")
	}
}

// BenchmarkFilterAblation regenerates the Section 4 idealized-filtering
// ablation (paper: only ~1.2% IPC from perfect NDI-dependence
// filtering).
func BenchmarkFilterAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sweep.FilterAblation(64, sweep.Options{Budget: 5_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(t.Values[0][0]-1), "filterGain2T%")
	}
}

// BenchmarkDispatchBufferAblation sweeps the per-thread renamed-
// instruction buffer capacity — the window out-of-order dispatch scans
// for hidden dispatchable instructions, and the design choice DESIGN.md
// flags as the main free parameter of the OOOD mechanism. The metric is
// the IPC at each capacity.
func BenchmarkDispatchBufferAblation(b *testing.B) {
	for _, cap := range []int{4, 8, 16, 32} {
		b.Run(fmtCap(cap), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				res, err := smtsim.Run(smtsim.Config{
					Benchmarks:        []string{"equake", "gzip"},
					IQSize:            64,
					Scheduler:         smtsim.TwoOpOOOD,
					DispatchBufferCap: cap,
					MaxInstructions:   10_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				ipc += res.IPC
			}
			b.ReportMetric(ipc/float64(b.N), "IPC")
		})
	}
}

func fmtCap(c int) string {
	return "buf" + string(rune('0'+c/10)) + string(rune('0'+c%10))
}

// BenchmarkFetchPolicyAblation compares the baseline ICOUNT fetch policy
// with plain round-robin — the paper's related-work axis (Section 6).
func BenchmarkFetchPolicyAblation(b *testing.B) {
	for _, rr := range []bool{false, true} {
		name := "icount"
		if rr {
			name = "round-robin"
		}
		b.Run(name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				res, err := smtsim.Run(smtsim.Config{
					Benchmarks:      []string{"equake", "twolf", "gcc", "gzip"},
					IQSize:          64,
					Scheduler:       smtsim.TwoOpOOOD,
					RoundRobinFetch: rr,
					MaxInstructions: 10_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				ipc += res.IPC
			}
			b.ReportMetric(ipc/float64(b.N), "IPC")
		})
	}
}

// BenchmarkDeadlockMechanisms compares the paper's two forward-progress
// mechanisms under out-of-order dispatch on a memory-bound mix with a
// small queue (where the DAB actually engages).
func BenchmarkDeadlockMechanisms(b *testing.B) {
	for _, m := range []struct {
		name string
		mech smtsim.DeadlockMechanism
	}{
		{"dab", smtsim.DeadlockDAB},
		{"watchdog", smtsim.DeadlockWatchdog},
	} {
		b.Run(m.name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				res, err := smtsim.Run(smtsim.Config{
					Benchmarks:      []string{"equake", "twolf", "art", "swim"},
					IQSize:          32,
					Scheduler:       smtsim.TwoOpOOOD,
					Deadlock:        m.mech,
					MaxInstructions: 10_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				ipc += res.IPC
			}
			b.ReportMetric(ipc/float64(b.N), "IPC")
		})
	}
}

// BenchmarkSchedulerHotPath measures a single simulation per scheduler
// design, isolating the relative simulation cost of the dispatch
// policies themselves.
func BenchmarkSchedulerHotPath(b *testing.B) {
	for _, sched := range smtsim.Schedulers {
		b.Run(sched.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := smtsim.Run(smtsim.Config{
					Benchmarks:      []string{"equake", "gzip"},
					IQSize:          64,
					Scheduler:       sched,
					MaxInstructions: 10_000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
