// Command smtlint runs the repository's static-analysis suite (detlint,
// allocfree, statescope, cyclepure, idsafe, memocoherent, guardedby,
// golife, atomicfs — see internal/analysis and DESIGN.md §7/§9/§11)
// over Go packages.
//
// Two modes:
//
//	smtlint [-json] [-only a,b] ./...   # standalone, over package patterns
//	go vet -vettool=$(pwd)/bin/smtlint ./...   # as a go vet tool
//
// The vettool mode speaks the go command's unitchecker protocol: go vet
// invokes the tool once per package with a JSON config file naming the
// sources, the compiled export data of every dependency, and the .vetx
// fact files earlier invocations wrote for those dependencies (how
// allocfree's interprocedural verdicts cross package boundaries under
// incremental builds), plus the -V=full and -flags handshakes it uses
// for caching and flag validation. Diagnostics go to stderr as
// file:line:col: message [analyzer]; a non-zero exit fails the vet run.
// Standalone -json instead emits one JSON object per diagnostic on
// stdout (NDJSON: file, line, col, analyzer, message) for CI tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/load"
	"smtsim/internal/analysis/smtlint"
)

func main() {
	args := os.Args[1:]

	// go vet handshakes (see cmd/go/internal/work and golang.org/x/tools
	// unitchecker, whose observable behaviour this replicates).
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion(args[0])
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no tool flags beyond vet's own
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitCheck(args[0])
		return
	}

	standalone(args)
}

// standalone lints the packages matching the given patterns (default
// ./...) from the current directory.
func standalone(args []string) {
	fs := flag.NewFlagSet("smtlint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as NDJSON on stdout instead of text on stderr")
	only := fs.String("only", "", "comma-separated subset of analyzers to run (standalone mode only; vettool mode always runs the whole suite)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: smtlint [-json] [-only analyzer,...] [packages]\n   or: go vet -vettool=/path/to/smtlint [packages]\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fatalf("smtlint: %v", err)
	}
	pkgs, err := load.LoadPatterns(dir, func(path string, err error) {
		fmt.Fprintf(os.Stderr, "smtlint: %s: type checking incomplete: %v\n", path, err)
	}, patterns...)
	if err != nil {
		fatalf("smtlint: %v", err)
	}
	// One session across the run: LoadPatterns returns packages in go
	// list order (dependencies first), so facts a package exports are in
	// the store before any dependent is analyzed.
	sess := smtlint.NewSession()
	if *only != "" {
		suite, err := smtlint.Select(*only)
		if err != nil {
			fatalf("smtlint: -only: %v", err)
		}
		sess.Analyzers = suite
	}
	bad := false
	for _, pkg := range pkgs {
		diags, err := sess.Run(pkg)
		if err != nil {
			fatalf("smtlint: %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			bad = true
			if *jsonOut {
				printJSONDiag(pkg, d)
			} else {
				printDiag(pkg, d)
			}
		}
	}
	if bad {
		os.Exit(1)
	}
}

func printDiag(pkg *load.Package, d framework.Diagnostic) {
	fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
}

// printJSONDiag emits one diagnostic as a single NDJSON line on stdout.
func printJSONDiag(pkg *load.Package, d framework.Diagnostic) {
	pos := pkg.Fset.Position(d.Pos)
	line, err := json.Marshal(struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}{pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message})
	if err != nil {
		fatalf("smtlint: %v", err)
	}
	fmt.Println(string(line))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// printVersion answers go vet's -V=full tool-identity probe. The go
// command derives the tool's cache key from this line, so it must be
// stable for one binary and change when the binary changes: the
// executable's own content hash provides exactly that (the same scheme
// x/tools vettools use).
func printVersion(arg string) {
	if arg != "-V=full" && arg != "-V" {
		fatalf("smtlint: unsupported flag %q", arg)
	}
	name := os.Args[0]
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", name, selfHash())
}

func selfHash() []byte {
	exe := os.Args[0]
	if !filepath.IsAbs(exe) {
		if p, err := os.Executable(); err == nil {
			exe = p
		}
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fatalf("smtlint: reading own executable for -V: %v", err)
	}
	return contentHash(data)
}
