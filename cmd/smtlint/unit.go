package main

import (
	"crypto/sha256"
	"encoding/json"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"smtsim/internal/analysis/facts"
	"smtsim/internal/analysis/load"
	"smtsim/internal/analysis/smtlint"
)

// vetConfig mirrors the JSON the go command writes for each analyzed
// package when running a vet tool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one package as directed by a go vet .cfg file and
// exits: 0 when clean, 2 when diagnostics were reported.
//
// Facts: the go command schedules a VetxOnly pass over every dependency
// before the dependent's diagnostics pass, feeding each pass the .vetx
// outputs of its direct dependencies (PackageVetx) and caching them as
// build-graph inputs. Each invocation decodes those files into one
// session store, analyzes, and encodes the accumulated store — its own
// exports plus everything inherited — to VetxOutput, so transitive
// facts survive even though only direct dependencies are listed.
func unitCheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("smtlint: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("smtlint: parsing %s: %v", cfgFile, err)
	}

	store := facts.NewSet()
	writeFacts := func() {
		if cfg.VetxOutput == "" {
			return
		}
		payload, err := store.Encode()
		if err != nil {
			fatalf("smtlint: %v", err)
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			fatalf("smtlint: writing facts: %v", err)
		}
	}

	// Only this module's packages can carry smtlint facts (the analyzers
	// export facts for smtsim code alone), so dependency passes over the
	// standard library need no parsing or type checking at all: an empty
	// fact file is their correct, cacheable result.
	inModule := cfg.ImportPath == "smtsim" || strings.HasPrefix(cfg.ImportPath, "smtsim/")
	if cfg.VetxOnly && !inModule {
		writeFacts()
		return
	}

	// Merge the dependencies' facts, deterministically ordered. Files an
	// older tool wrote merge as empty (tolerant decode).
	for _, path := range sortedKeys(cfg.PackageVetx) {
		if payload, err := os.ReadFile(cfg.PackageVetx[path]); err == nil {
			store.Decode(payload)
		}
	}

	fset := token.NewFileSet()
	files, err := load.ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeFacts()
			return
		}
		fatalf("smtlint: %v", err)
	}
	imp := &vetImporter{cfg: &cfg}
	imp.underlying = importer.ForCompiler(fset, compilerOr(cfg.Compiler), imp.lookup)
	pkg, terr := load.TypeCheck(fset, cfg.ImportPath, files, imp)
	if terr != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeFacts()
			return
		}
		fatalf("smtlint: %s: %v", cfg.ImportPath, terr)
	}

	sess := &smtlint.Session{Facts: store}
	diags, err := sess.Run(pkg)
	if err != nil {
		fatalf("smtlint: %s: %v", cfg.ImportPath, err)
	}
	writeFacts()
	if cfg.VetxOnly {
		return // dependency pass: facts only, no diagnostics wanted
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		printDiag(pkg, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func compilerOr(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

// vetImporter resolves imports through the export-data files the go
// command hands over: ImportMap canonicalizes the path as written to
// the path as compiled, PackageFile names the compiled export data.
type vetImporter struct {
	cfg        *vetConfig
	underlying types.Importer
}

func (v *vetImporter) canonical(path string) string {
	if mapped, ok := v.cfg.ImportMap[path]; ok {
		return mapped
	}
	return path
}

func (v *vetImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := v.cfg.PackageFile[path]
	if !ok {
		return nil, &missingExportError{path: path}
	}
	return os.Open(file)
}

type missingExportError struct{ path string }

func (e *missingExportError) Error() string {
	return "smtlint: no export data for " + e.path + " in vet config"
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	return v.underlying.Import(v.canonical(path))
}

// contentHash is the digest printVersion feeds into the go command's
// tool-identity line.
func contentHash(data []byte) []byte {
	h := sha256.Sum256(data)
	return h[:]
}
