package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureModule is the deliberately broken module the lint wiring must
// reject (see its README).
const fixtureModule = "../../internal/analysis/testdata/seedviolation"

func buildSmtlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "smtlint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building smtlint: %v\n%s", err, out)
	}
	return bin
}

func runIn(dir string, name string, args ...string) (string, error) {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestVettoolProtocol drives the real go vet -vettool path end to end:
// the -V=full/-flags handshakes, per-package .cfg files, export-data
// import resolution, and the exit-status contract.
func TestVettoolProtocol(t *testing.T) {
	bin := buildSmtlint(t)

	out, err := runIn(fixtureModule, "go", "vet", "-vettool="+bin, "./...")
	if err == nil {
		t.Fatalf("go vet -vettool on seeded violation succeeded; want failure\n%s", out)
	}
	for _, want := range []string{
		"nondeterministic iteration over map", "[detlint]",
		"idsafe: u from uop.Bank.Get is used before its GSeq/Squashed token is checked",
		`guarded by memo "commit-skip-mask"`, "[memocoherent]",
		"atomicfs: raw os.WriteFile outside the blessed crash-consistency helpers",
		"golife: go statement with no sync.WaitGroup Add visible before it",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("seeded-violation output missing %q:\n%s", want, out)
		}
	}
	// The transitive-allocation diagnostic is the fact round-trip proof:
	// scratch's MayAlloc verdict was encoded to a .vetx file by one tool
	// process and decoded by the separate process that analyzed fu.
	if !strings.Contains(out, "calls fill, which may allocate: calls scratch.Wrap: calls Grow") {
		t.Errorf("seeded-violation output missing transitive allocfree diagnostic (fact round-trip broken):\n%s", out)
	}
	// Same round trip for guardedby: Ledger.Add's //smt:locked
	// precondition was exported as a LockSummary fact while cellstore
	// was analyzed and decoded by the separate process that analyzed
	// sweepd's lock-free call site.
	if !strings.Contains(out, "guardedby: call to cellstore.Ledger.Add requires smtsim/internal/cellstore.Ledger.Mu held") {
		t.Errorf("seeded-violation output missing cross-package guardedby diagnostic (fact round-trip broken):\n%s", out)
	}

	out, err = runIn(fixtureModule, "go", "vet", "-vettool="+bin, "./internal/rob")
	if err != nil {
		t.Errorf("go vet -vettool on clean fixture package failed: %v\n%s", err, out)
	}
}

// TestStandaloneMode runs the binary directly (no go vet driver): it
// loads packages itself via the build cache and must reach the same
// verdicts.
func TestStandaloneMode(t *testing.T) {
	bin := buildSmtlint(t)

	out, err := runIn(fixtureModule, bin, "./...")
	if err == nil {
		t.Fatalf("standalone smtlint on seeded violation succeeded; want failure\n%s", out)
	}
	for _, want := range []string{
		"nondeterministic iteration over map",
		"calls fill, which may allocate",
		"[idsafe]",
		"[memocoherent]",
		"[guardedby]",
		"[golife]",
		"[atomicfs]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("standalone output missing %q:\n%s", want, out)
		}
	}

	out, err = runIn(fixtureModule, bin, "./internal/rob")
	if err != nil {
		t.Errorf("standalone smtlint on clean fixture package failed: %v\n%s", err, out)
	}
}

// TestJSONMode checks the standalone -json contract: every stdout line
// is one JSON diagnostic with the fields CI tooling keys on, and the
// exit status still signals failure.
func TestJSONMode(t *testing.T) {
	bin := buildSmtlint(t)

	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = fixtureModule
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Fatalf("smtlint -json on seeded violation succeeded; want failure\n%s", stdout.String())
	}

	type diag struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	byAnalyzer := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		var d diag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("stdout line is not a JSON diagnostic: %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("JSON diagnostic missing fields: %+v", d)
		}
		byAnalyzer[d.Analyzer]++
	}
	for _, a := range []string{"detlint", "allocfree", "idsafe", "memocoherent", "guardedby", "golife", "atomicfs"} {
		if byAnalyzer[a] == 0 {
			t.Errorf("no JSON diagnostic from %s; got %v\nstderr:\n%s", a, byAnalyzer, stderr.String())
		}
	}

	// -only restricts the run to the named analyzers: the seeded golife
	// and atomicfs violations must surface, everything else must not.
	cmd = exec.Command(bin, "-json", "-only", "golife,atomicfs", "./...")
	cmd.Dir = fixtureModule
	stdout.Reset()
	stderr.Reset()
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Fatalf("smtlint -only golife,atomicfs on seeded violation succeeded; want failure\n%s", stdout.String())
	}
	onlySeen := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		var d diag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("-only stdout line is not a JSON diagnostic: %q: %v", line, err)
		}
		if d.Analyzer != "golife" && d.Analyzer != "atomicfs" {
			t.Errorf("-only golife,atomicfs emitted a %s diagnostic: %+v", d.Analyzer, d)
		}
		onlySeen[d.Analyzer]++
	}
	for _, a := range []string{"golife", "atomicfs"} {
		if onlySeen[a] == 0 {
			t.Errorf("-only run missing %s diagnostics; got %v\nstderr:\n%s", a, onlySeen, stderr.String())
		}
	}

	// An unknown analyzer name is a usage error (exit 2), not a lint
	// failure (exit 1).
	cmd = exec.Command(bin, "-json", "-only", "nosuch", "./...")
	cmd.Dir = fixtureModule
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Errorf("smtlint -only nosuch: want exit 2, got %v", err)
	}
}
