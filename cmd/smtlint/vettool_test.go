package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureModule is the deliberately broken module the lint wiring must
// reject (see its README).
const fixtureModule = "../../internal/analysis/testdata/seedviolation"

func buildSmtlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "smtlint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building smtlint: %v\n%s", err, out)
	}
	return bin
}

func runIn(dir string, name string, args ...string) (string, error) {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestVettoolProtocol drives the real go vet -vettool path end to end:
// the -V=full/-flags handshakes, per-package .cfg files, export-data
// import resolution, and the exit-status contract.
func TestVettoolProtocol(t *testing.T) {
	bin := buildSmtlint(t)

	out, err := runIn(fixtureModule, "go", "vet", "-vettool="+bin, "./...")
	if err == nil {
		t.Fatalf("go vet -vettool on seeded violation succeeded; want failure\n%s", out)
	}
	if !strings.Contains(out, "nondeterministic iteration over map") ||
		!strings.Contains(out, "[detlint]") {
		t.Errorf("seeded-violation output missing detlint diagnostic:\n%s", out)
	}

	out, err = runIn(fixtureModule, "go", "vet", "-vettool="+bin, "./internal/rob")
	if err != nil {
		t.Errorf("go vet -vettool on clean fixture package failed: %v\n%s", err, out)
	}
}

// TestStandaloneMode runs the binary directly (no go vet driver): it
// loads packages itself via the build cache and must reach the same
// verdicts.
func TestStandaloneMode(t *testing.T) {
	bin := buildSmtlint(t)

	out, err := runIn(fixtureModule, bin, "./...")
	if err == nil {
		t.Fatalf("standalone smtlint on seeded violation succeeded; want failure\n%s", out)
	}
	if !strings.Contains(out, "nondeterministic iteration over map") {
		t.Errorf("standalone output missing detlint diagnostic:\n%s", out)
	}

	out, err = runIn(fixtureModule, bin, "./internal/rob")
	if err != nil {
		t.Errorf("standalone smtlint on clean fixture package failed: %v\n%s", err, out)
	}
}
