package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smtsim/internal/report"
	"smtsim/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite the golden report output")

// goldenOptions is a deliberately tiny configuration: the golden test
// pins byte-identical output, not paper-quality numbers (the shape
// targets of -check need realistic budgets; TestReportGolden does not).
var goldenOptions = sweep.Options{Budget: 2000, Seed: 1}

// TestReportGolden renders the full report at a fixed tiny budget and
// compares it byte-for-byte against testdata/report_output.txt. The
// simulator is deterministic by construction (detlint makes whole
// classes of divergence uncompilable), so any diff here is a behavior
// change: intended ones are re-blessed with `go test ./cmd/smtreport
// -run TestReportGolden -update`.
func TestReportGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full report")
	}
	r, err := report.Generate(goldenOptions)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Render()

	golden := filepath.Join("testdata", "report_output.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("report output diverges from golden at line %d:\n got: %q\nwant: %q\n(re-bless intended changes with -update)", i+1, g, w)
		}
	}
	t.Fatal("report output differs from golden in length only")
}
