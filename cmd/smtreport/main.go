// Command smtreport regenerates the paper's entire evaluation section —
// every figure and quoted statistic plus this repository's extensions —
// and prints a single report suitable for pasting into EXPERIMENTS.md.
//
// With -check, it additionally verifies the paper's qualitative claims
// (the shape targets of DESIGN.md §4) against the measured tables and
// exits non-zero if any fail.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"smtsim/internal/report"
	"smtsim/internal/sweep"
	"smtsim/internal/sweepd"
)

func main() {
	var (
		budget   = flag.Uint64("budget", 200_000, "per-run instruction budget")
		warmup   = flag.Uint64("warmup", 0, "warmup instructions (0 = half the budget)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print per-run progress")
		check    = flag.Bool("check", false, "verify the paper's shape targets and exit non-zero on failure")
		server   = flag.String("server", "", "resolve cells through a smtsweepd URL instead of simulating in process")
	)
	flag.Parse()

	o := sweep.Options{Budget: *budget, Warmup: *warmup, Seed: *seed, Parallelism: *parallel}
	if *verbose {
		o.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if *server != "" {
		client := &sweepd.Client{Base: *server}
		if *verbose {
			client.Progress = o.Progress
		}
		o.Runner = client.RunCells
	}

	start := time.Now()
	r, err := report.Generate(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtreport:", err)
		os.Exit(1)
	}
	fmt.Print(r.Render())
	fmt.Printf("report generated in %.1fs (budget %d instructions/run, seed %d)\n",
		time.Since(start).Seconds(), *budget, *seed)

	if *check {
		checks := r.Check()
		fmt.Printf("\n## Shape targets\n\n%s", report.RenderChecks(checks))
		for _, c := range checks {
			if !c.OK {
				os.Exit(1)
			}
		}
	}
}
