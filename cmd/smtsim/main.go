// Command smtsim runs one SMT simulation and prints its statistics.
//
// Usage:
//
//	smtsim -bench equake,gzip -iq 64 -sched 2op-ooo-dispatch -n 200000
//
// The -sched flag accepts "traditional", "2op-block",
// "2op-ooo-dispatch", or "2op-ooo-dispatch-filtered".
//
// -cpuprofile and -memprofile write pprof artifacts covering exactly the
// simulation (flag parsing and result printing excluded), for the
// busy-cycle cost accounting in DESIGN.md §12; `make profile` wraps the
// common case.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"smtsim"
)

func main() {
	var (
		benchList = flag.String("bench", "equake,gzip", "comma-separated benchmark names, one per thread")
		iqSize    = flag.Int("iq", 64, "issue queue size")
		sched     = flag.String("sched", "traditional", "scheduler: traditional | 2op-block | 2op-ooo-dispatch | 2op-ooo-dispatch-filtered")
		n         = flag.Uint64("n", 200_000, "stop after any thread commits this many instructions")
		seed      = flag.Uint64("seed", 1, "workload seed")
		deadlock  = flag.String("deadlock", "dab", "OOOD deadlock mechanism: dab | watchdog | none")
		bufCap    = flag.Int("dispatch-buf", 0, "per-thread dispatch buffer capacity (0 = default)")
		rrFetch   = flag.Bool("rr-fetch", false, "use round-robin fetch instead of ICOUNT")
		gate      = flag.String("gate", "", "fetch gating: stall | flush | data-gate (default none)")
		warmup    = flag.Uint64("warmup", 0, "warmup instructions before measurement")
		part0     = flag.Int("iq0", 0, "zero-comparator IQ entries (with -iq1/-iq2 overrides -iq)")
		part1     = flag.Int("iq1", 0, "one-comparator IQ entries")
		part2     = flag.Int("iq2", 0, "two-comparator IQ entries")
		sanitize  = flag.Bool("sanitize", false, "run the cycle-level invariant sanitizer (roughly 10x slower)")
		listBench = flag.Bool("list", false, "list available benchmarks and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile of the simulation to this file")
	)
	flag.Parse()

	if *listBench {
		for _, name := range smtsim.BenchmarkNames() {
			class, _ := smtsim.BenchmarkClass(name)
			fmt.Printf("%-10s %s ILP\n", name, class)
		}
		return
	}

	// Flag sanity, before any simulator machinery runs: a bad value is a
	// usage error, not a deep panic or a silently ignored knob.
	switch {
	case *iqSize < 1:
		usage("-iq must be positive, got %d", *iqSize)
	case *part0 < 0 || *part1 < 0 || *part2 < 0:
		usage("-iq0/-iq1/-iq2 must be non-negative, got %d/%d/%d", *part0, *part1, *part2)
	case *n < 1:
		usage("-n must be positive")
	case *bufCap < 0:
		usage("-dispatch-buf must be non-negative, got %d", *bufCap)
	case flag.NArg() > 0:
		usage("unexpected arguments: %v", flag.Args())
	}

	scheduler, err := smtsim.ParseScheduler(*sched)
	if err != nil {
		usage("%s", strings.TrimPrefix(err.Error(), "smtsim: "))
	}
	cfg := smtsim.Config{
		Benchmarks:         strings.Split(*benchList, ","),
		IQSize:             *iqSize,
		Scheduler:          scheduler,
		MaxInstructions:    *n,
		WarmupInstructions: *warmup,
		Seed:               *seed,
		DispatchBufferCap:  *bufCap,
		RoundRobinFetch:    *rrFetch,
		FetchGate:          *gate,
		IQPartition:        [3]int{*part0, *part1, *part2},
		Sanitize:           *sanitize,
	}
	switch *deadlock {
	case "dab":
		cfg.Deadlock = smtsim.DeadlockDAB
	case "watchdog":
		cfg.Deadlock = smtsim.DeadlockWatchdog
	case "none":
		cfg.Deadlock = smtsim.DeadlockNone
	default:
		usage("unknown deadlock mechanism %q (want dab | watchdog | none)", *deadlock)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	res, err := smtsim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if *cpuProf != "" {
		pprof.StopCPUProfile() // stop before printing so output formatting stays out of the profile
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // flush accumulated allocation records
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatal(err)
		}
		f.Close()
	}
	fmt.Printf("scheduler=%s iq=%d threads=%d\n", scheduler, *iqSize, len(cfg.Benchmarks))
	fmt.Printf("cycles=%d committed=%d IPC=%.3f\n", res.Cycles, res.Committed, res.IPC)
	for i, t := range res.Threads {
		fmt.Printf("  T%d %-10s committed=%-9d IPC=%.3f mispredict=%.2f%%\n",
			i, t.Benchmark, t.Committed, t.IPC, 100*t.MispredictRate)
	}
	fmt.Printf("dispatch stall-all (2OP condition) = %.1f%% strict, %.1f%% weak\n",
		100*res.DispatchStallAllNDI, 100*res.DispatchStallNDIWeak)
	fmt.Printf("IQ residency = %.1f cycles, occupancy = %.1f entries\n", res.IQResidency, res.IQOccupancy)
	if res.HDIDispatched > 0 {
		fmt.Printf("HDIs dispatched out-of-order = %d (%.1f%% NDI-dependent)\n",
			res.HDIDispatched, 100*res.HDIDepOnNDIFrac)
	}
	if res.HDIPiledFrac > 0 {
		fmt.Printf("instructions behind NDIs that are HDIs = %.1f%%\n", 100*res.HDIPiledFrac)
	}
	fmt.Printf("DAB captures = %d, watchdog flushes = %d, gate flushes = %d\n",
		res.DABInserts, res.WatchdogFlushes, res.GateFlushes)
	fmt.Printf("scheduler: %d comparators, %.1f energy/inst (rel), EDP %.2f\n",
		res.Comparators, res.SchedulerEnergyPerInst, res.SchedulerEDP)
	fmt.Printf("miss rates: L1D %.1f%%, L2 %.1f%%, L1I %.2f%%\n",
		100*res.L1DMissRate, 100*res.L2MissRate, 100*res.L1IMissRate)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}

// usage reports a flag-validation error, prints the flag summary, and
// exits with the conventional usage status.
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smtsim: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
