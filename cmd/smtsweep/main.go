// Command smtsweep regenerates one of the paper's figures or statistics.
//
// Usage:
//
//	smtsweep -fig fig3 -budget 200000
//
// Figure ids: fig1, fig3..fig8 (the evaluation figures), and the
// statistics sweeps: stalls, residency, hdi, filter, classify.
//
// With -server, cells resolve through a running smtsweepd instead of
// simulating in process: previously computed cells come back from its
// content-addressed store, only novel ones simulate, and the rendered
// output is bit-identical to the in-process path.
package main

import (
	"flag"
	"fmt"
	"os"

	"smtsim"
	"smtsim/internal/sweep"
	"smtsim/internal/sweepd"
)

func main() {
	var (
		fig      = flag.String("fig", "fig1", "figure id: fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 | stalls | residency | hdi | filter | classify | zoo | gates | energy | permix | memlat")
		budget   = flag.Uint64("budget", 200_000, "per-run instruction budget")
		seed     = flag.Uint64("seed", 1, "workload seed")
		iqSize   = flag.Int("iq", 64, "IQ size for the statistics sweeps")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print per-run progress")
		bars     = flag.Bool("bars", false, "render as ASCII bar chart")
		csv      = flag.Bool("csv", false, "emit CSV for external plotting")
		server   = flag.String("server", "", "resolve cells through a smtsweepd URL instead of simulating in process")
	)
	flag.Parse()

	// Flag sanity before any sweep spins up: a bad value is a usage
	// error, not a hung or panicking batch of simulations.
	switch {
	case *budget < 1:
		usage("-budget must be positive")
	case *iqSize < 1:
		usage("-iq must be positive, got %d", *iqSize)
	case *parallel < 0:
		usage("-parallel must be non-negative, got %d", *parallel)
	case *csv && *bars:
		usage("-csv and -bars are mutually exclusive")
	case flag.NArg() > 0:
		usage("unexpected arguments: %v", flag.Args())
	}

	o := sweep.Options{Budget: *budget, Seed: *seed, Parallelism: *parallel}
	if *verbose {
		o.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if *server != "" {
		client := &sweepd.Client{Base: *server}
		if *verbose {
			client.Progress = o.Progress
		}
		o.Runner = client.RunCells
	}

	var (
		t   sweep.Table
		err error
	)
	switch *fig {
	case "fig1":
		t, err = sweep.Figure1(o)
	case "fig2":
		t = sweep.Figure2()
	case "fig3":
		t, err = sweep.FigureSpeedup(2, o)
	case "fig4":
		t, err = sweep.FigureFairness(2, o)
	case "fig5":
		t, err = sweep.FigureSpeedup(3, o)
	case "fig6":
		t, err = sweep.FigureFairness(3, o)
	case "fig7":
		t, err = sweep.FigureSpeedup(4, o)
	case "fig8":
		t, err = sweep.FigureFairness(4, o)
	case "stalls":
		t, err = sweep.StallStats(*iqSize, o)
	case "residency":
		t, err = sweep.ResidencyStats(2, *iqSize, o)
	case "hdi":
		t, err = sweep.HDIStats(*iqSize, o)
	case "filter":
		t, err = sweep.FilterAblation(*iqSize, o)
	case "classify":
		t, err = sweep.ClassifyBenchmarks(o)
	case "zoo":
		t, err = sweep.SchedulerZoo(*iqSize, o)
	case "gates":
		t, err = sweep.FetchGates(*iqSize, o)
	case "energy":
		t, err = sweep.EnergyComparison(4, *iqSize, o)
	case "permix":
		t, err = sweep.PerMixSpeedup(4, *iqSize, smtsim.TwoOpOOOD, o)
	case "memlat":
		t, err = sweep.MemoryLatencySweep(2, *iqSize, nil, o)
	default:
		usage("unknown figure id %q", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtsweep:", err)
		os.Exit(1)
	}
	switch {
	case *csv:
		fmt.Print(t.CSV())
	case *bars:
		fmt.Print(t.RenderBars())
	default:
		fmt.Print(t.Render())
	}
}

// usage reports a flag-validation error, prints the flag summary, and
// exits with the conventional usage status.
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smtsweep: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
