// Command smtsweepd serves sweeps: an HTTP API over a content-addressed
// on-disk cell store with a pool of simulator workers behind it. Cells
// already in the store are cache hits; novel cells simulate exactly
// once each. Several smtsweepd processes may share one -store directory
// — they coordinate through lease files, and a killed worker's cells
// are re-claimed when its leases expire.
//
// Usage:
//
//	smtsweepd -addr :8344 -store ./cellstore
//	smtsweep  -server http://localhost:8344 -fig fig3
//
// SIGINT/SIGTERM shut down gracefully: workers stop at the next cell
// boundary and the pending queue is checkpointed into the store
// directory, so a restart resumes where it left off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smtsim/internal/cellstore"
	"smtsim/internal/sweepd"
)

func main() {
	var (
		addr     = flag.String("addr", ":8344", "listen address")
		storeDir = flag.String("store", "cellstore", "cell store directory (created if absent)")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		leaseTTL = flag.Duration("lease-ttl", time.Minute, "worker lease on a cell; expired leases are stolen by other workers")
		quiet    = flag.Bool("q", false, "suppress per-event logging")
	)
	flag.Parse()
	switch {
	case *workers < 0:
		usage("-workers must be non-negative, got %d", *workers)
	case *leaseTTL <= 0:
		usage("-lease-ttl must be positive, got %v", *leaseTTL)
	case flag.NArg() > 0:
		usage("unexpected arguments: %v", flag.Args())
	}

	store, err := cellstore.Open(*storeDir)
	if err != nil {
		log.Fatalf("smtsweepd: %v", err)
	}
	cfg := sweepd.Config{Store: store, Workers: *workers, LeaseTTL: *leaseTTL}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv, err := sweepd.New(cfg)
	if err != nil {
		log.Fatalf("smtsweepd: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	//smt:fire-and-forget(process-lifetime listener; hs.Shutdown below unblocks it and main exits)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("smtsweepd: serving on %s, store %s (%d cells)", *addr, *storeDir, store.Len())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("smtsweepd: %v: draining workers and checkpointing queue", sig)
	case err := <-errc:
		log.Fatalf("smtsweepd: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("smtsweepd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		log.Fatalf("smtsweepd: %v", err)
	}
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smtsweepd: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
