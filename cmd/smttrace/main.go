// Command smttrace records, inspects, and replays instruction traces in
// the repository's binary trace format.
//
// Record a synthetic benchmark's trace:
//
//	smttrace record -bench gcc -n 1000000 -o gcc.smttrc
//
// Inspect a trace:
//
//	smttrace info gcc.smttrc
//
// Simulate from trace files (one per hardware thread):
//
//	smttrace run -iq 64 -sched 2op-ooo-dispatch gcc.smttrc gzip.smttrc
package main

import (
	"flag"
	"fmt"
	"os"

	"smtsim"
	"smtsim/internal/isa"
	"smtsim/internal/tracefile"
	"smtsim/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "run":
		runTraces(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: smttrace record|info|run [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smttrace:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "gcc", "benchmark to record (see smtsim -list)")
	n := fs.Uint64("n", 1_000_000, "number of instructions")
	out := fs.String("o", "", "output path (default <bench>.smttrc)")
	seed := fs.Uint64("seed", 1, "workload seed")
	fs.Parse(args)

	path := *out
	if path == "" {
		path = *bench + ".smttrc"
	}
	prog, err := workload.CompileBenchmark(*bench)
	if err != nil {
		fatal(err)
	}
	if err := tracefile.Record(prog.NewStream(*seed), *n, path); err != nil {
		fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d instructions of %s to %s (%.2f bytes/inst)\n",
		*n, *bench, path, float64(st.Size())/float64(*n))
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("info: no trace files given"))
	}
	for _, path := range fs.Args() {
		tr, err := tracefile.Load(path)
		if err != nil {
			fatal(err)
		}
		s := tr.Analyze()
		fmt.Printf("%s: %d instructions, %d static PCs, %.1f KB data footprint\n",
			path, s.Count, s.UniquePCs, float64(s.Footprint)/1024)
		for c := isa.OpClass(0); c < isa.NumOpClasses; c++ {
			if s.ClassMix[c] == 0 {
				continue
			}
			fmt.Printf("  %-9s %6.2f%%\n", c, 100*float64(s.ClassMix[c])/float64(s.Count))
		}
		if s.Branches > 0 {
			fmt.Printf("  taken-branch rate: %.1f%%\n", 100*float64(s.Taken)/float64(s.Branches))
		}
	}
}

func runTraces(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	iqSize := fs.Int("iq", 64, "issue queue size")
	sched := fs.String("sched", "traditional", "scheduler design")
	n := fs.Uint64("n", 200_000, "commit budget (any thread)")
	warm := fs.Uint64("warmup", 0, "warmup instructions before measurement")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("run: no trace files given"))
	}
	scheduler, err := smtsim.ParseScheduler(*sched)
	if err != nil {
		fatal(err)
	}
	res, err := smtsim.Run(smtsim.Config{
		TraceFiles:         fs.Args(),
		IQSize:             *iqSize,
		Scheduler:          scheduler,
		MaxInstructions:    *n,
		WarmupInstructions: *warm,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cycles=%d committed=%d IPC=%.3f\n", res.Cycles, res.Committed, res.IPC)
	for i, t := range res.Threads {
		fmt.Printf("  T%d %-30s IPC=%.3f\n", i, t.Benchmark, t.IPC)
	}
}
