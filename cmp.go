package smtsim

import (
	"fmt"

	"smtsim/internal/cmp"
	"smtsim/internal/pipeline"
	"smtsim/internal/workload"
)

// CMPConfig describes a chip multiprocessor of SMT cores sharing one L2
// cache — the Power5-style configuration the paper's introduction
// motivates. All cores share the scheduler design and machine
// parameters; they differ only in their workloads.
type CMPConfig struct {
	// Cores lists each core's benchmarks (one inner slice per core, one
	// benchmark per hardware thread).
	Cores [][]string

	// IQSize, Scheduler, and Deadlock configure every core as in Config.
	IQSize    int
	Scheduler Scheduler
	Deadlock  DeadlockMechanism

	// MaxInstructions stops each core once any of its threads commits
	// this many instructions (defaults to 200_000).
	MaxInstructions uint64

	// Seed perturbs workloads; distinct per thread and core.
	Seed uint64
}

// CMPResult reports one chip run.
type CMPResult struct {
	// Cores holds each core's results, snapshotted at that core's own
	// completion.
	Cores []Result
	// L2MissRate is the shared cache's overall miss rate.
	L2MissRate float64
}

// ChipIPC sums the cores' throughputs.
func (r CMPResult) ChipIPC() float64 {
	var sum float64
	for _, c := range r.Cores {
		sum += c.IPC
	}
	return sum
}

// RunCMP executes a chip-multiprocessor simulation: the cores advance in
// lockstep and interact through the shared L2's contents.
func RunCMP(cfg CMPConfig) (CMPResult, error) {
	if len(cfg.Cores) == 0 {
		return CMPResult{}, fmt.Errorf("smtsim: no cores configured")
	}
	pcfg := pipeline.DefaultConfig()
	if cfg.IQSize > 0 {
		pcfg.IQSize = cfg.IQSize
	}
	pcfg.Policy = cfg.Scheduler.policy()
	switch cfg.Deadlock {
	case DeadlockWatchdog:
		pcfg.Deadlock = pipeline.DeadlockWatchdog
	case DeadlockNone:
		pcfg.Deadlock = pipeline.DeadlockNone
	}

	ccfg := cmp.Config{Core: pcfg}
	tid := uint64(0)
	for _, names := range cfg.Cores {
		var specs []pipeline.ThreadSpec
		for _, name := range names {
			prog, err := workload.CompileBenchmark(name)
			if err != nil {
				return CMPResult{}, err
			}
			tid++
			specs = append(specs, pipeline.ThreadSpec{
				Name:   name,
				Reader: prog.NewStream(cfg.Seed ^ (tid * 0x9E3779B97F4A7C15)),
			})
		}
		ccfg.Workloads = append(ccfg.Workloads, specs)
	}
	sys, err := cmp.New(ccfg)
	if err != nil {
		return CMPResult{}, err
	}
	budget := cfg.MaxInstructions
	if budget == 0 {
		budget = 200_000
	}
	results, err := sys.Run(budget)
	if err != nil {
		return CMPResult{}, err
	}
	out := CMPResult{L2MissRate: sys.L2().Stats().MissRate()}
	for _, r := range results {
		out.Cores = append(out.Cores, fromMetrics(r))
	}
	return out, nil
}
