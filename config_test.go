package smtsim_test

import (
	"path/filepath"
	"testing"

	"smtsim"
	"smtsim/internal/tracefile"
	"smtsim/internal/workload"
)

func TestIQPartitionConfig(t *testing.T) {
	res, err := smtsim.Run(smtsim.Config{
		Benchmarks:      []string{"equake", "gzip"},
		IQPartition:     [3]int{16, 32, 16},
		Scheduler:       smtsim.TagEliminationOOOD,
		MaxInstructions: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 32 one-comparator + 16 two-comparator entries = 64 comparators.
	if res.Comparators != 64 {
		t.Errorf("comparators = %d, want 64", res.Comparators)
	}
	if res.Committed == 0 {
		t.Error("partitioned run produced nothing")
	}
}

func TestComparatorAccountingPerScheduler(t *testing.T) {
	for _, tc := range []struct {
		sched smtsim.Scheduler
		want  int
	}{
		{smtsim.Traditional, 128}, // 64 entries x 2
		{smtsim.TwoOpBlock, 64},   // 64 entries x 1
		{smtsim.TwoOpOOOD, 64},
	} {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:      []string{"gzip"},
			IQSize:          64,
			Scheduler:       tc.sched,
			MaxInstructions: 2_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Comparators != tc.want {
			t.Errorf("%v: comparators = %d, want %d", tc.sched, res.Comparators, tc.want)
		}
	}
}

func TestSchedulerEnergyOrdering(t *testing.T) {
	// The paper's motivation: the 2OP designs must spend materially less
	// scheduling energy per instruction than the traditional queue.
	energy := map[smtsim.Scheduler]float64{}
	for _, sched := range []smtsim.Scheduler{smtsim.Traditional, smtsim.TwoOpOOOD} {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:      []string{"equake", "gzip"},
			IQSize:          64,
			Scheduler:       sched,
			MaxInstructions: 20_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		energy[sched] = res.SchedulerEnergyPerInst
	}
	if !(energy[smtsim.TwoOpOOOD] < 0.8*energy[smtsim.Traditional]) {
		t.Errorf("2OP energy %.1f not well below traditional %.1f",
			energy[smtsim.TwoOpOOOD], energy[smtsim.Traditional])
	}
}

func TestTraceFileThreads(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i, b := range []string{"gcc", "gzip"} {
		prog, err := workload.CompileBenchmark(b)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, b+".smttrc")
		if err := tracefile.Record(prog.NewStream(uint64(i+1)), 30_000, p); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	res, err := smtsim.Run(smtsim.Config{
		TraceFiles:      paths,
		IQSize:          64,
		Scheduler:       smtsim.TwoOpOOOD,
		MaxInstructions: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 2 || res.Committed < 10_000 {
		t.Errorf("trace-file run degenerate: %+v", res)
	}
	// Benchmarks and TraceFiles are mutually exclusive.
	if _, err := smtsim.Run(smtsim.Config{
		Benchmarks: []string{"gcc"},
		TraceFiles: paths,
	}); err == nil {
		t.Error("mixed Benchmarks+TraceFiles accepted")
	}
	// Missing file surfaces as an error.
	if _, err := smtsim.Run(smtsim.Config{
		TraceFiles: []string{filepath.Join(dir, "nope.smttrc")},
	}); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestWarmupConfig(t *testing.T) {
	cold, err := smtsim.Run(smtsim.Config{
		Benchmarks:      []string{"gcc"},
		MaxInstructions: 5_000,
		Seed:            4,
	})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := smtsim.Run(smtsim.Config{
		Benchmarks:         []string{"gcc"},
		MaxInstructions:    5_000,
		WarmupInstructions: 20_000,
		Seed:               4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.IPC <= cold.IPC {
		t.Errorf("warm IPC %.3f not above cold %.3f", warm.IPC, cold.IPC)
	}
	if warm.Committed < 5_000 || warm.Committed > 6_500 {
		t.Errorf("warm run reported %d committed; warmup not excluded", warm.Committed)
	}
}

func TestRunCMPValidation(t *testing.T) {
	if _, err := smtsim.RunCMP(smtsim.CMPConfig{}); err == nil {
		t.Error("empty CMP accepted")
	}
	if _, err := smtsim.RunCMP(smtsim.CMPConfig{Cores: [][]string{{"doom3"}}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunCMPDeterminism(t *testing.T) {
	cfg := smtsim.CMPConfig{
		Cores:           [][]string{{"equake", "gzip"}, {"gcc", "vortex"}},
		MaxInstructions: 5_000,
		Seed:            9,
	}
	a, err := smtsim.RunCMP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := smtsim.RunCMP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cores {
		if a.Cores[i].Cycles != b.Cores[i].Cycles {
			t.Errorf("core %d cycles diverged: %d vs %d", i, a.Cores[i].Cycles, b.Cores[i].Cycles)
		}
	}
}

func TestFetchGateConfigValidation(t *testing.T) {
	if _, err := smtsim.Run(smtsim.Config{
		Benchmarks: []string{"gcc"},
		FetchGate:  "bogus",
	}); err == nil {
		t.Error("unknown fetch gate accepted")
	}
	for _, g := range []string{"none", "stall", "flush", "data-gate"} {
		if _, err := smtsim.Run(smtsim.Config{
			Benchmarks:      []string{"gcc"},
			FetchGate:       g,
			MaxInstructions: 2_000,
		}); err != nil {
			t.Errorf("gate %q rejected: %v", g, err)
		}
	}
}

func TestFiniteMSHRsThrottleMLP(t *testing.T) {
	run := func(mshrs int) smtsim.Result {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:      []string{"art"}, // memory-bound: many overlapping misses
			IQSize:          64,
			MSHRs:           mshrs,
			MaxInstructions: 15_000,
			Seed:            2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unlimited := run(0)
	throttled := run(1)
	if throttled.MSHRStallEvents == 0 {
		t.Error("single MSHR never stalled a load on a memory-bound workload")
	}
	if unlimited.MSHRStallEvents != 0 {
		t.Error("unlimited MSHRs recorded stalls")
	}
	if throttled.IPC >= unlimited.IPC {
		t.Errorf("MSHR throttling did not reduce memory-level parallelism: %.3f vs %.3f",
			throttled.IPC, unlimited.IPC)
	}
}

func TestThreadRotateSelectConfig(t *testing.T) {
	res, err := smtsim.Run(smtsim.Config{
		Benchmarks:         []string{"equake", "gzip"},
		ThreadRotateSelect: true,
		MaxInstructions:    5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Error("thread-rotate select produced nothing")
	}
}

func TestPerThreadIQCapConfig(t *testing.T) {
	shared, err := smtsim.Run(smtsim.Config{
		Benchmarks:      []string{"equake", "gzip"},
		IQSize:          64,
		MaxInstructions: 10_000,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := smtsim.Run(smtsim.Config{
		Benchmarks:      []string{"equake", "gzip"},
		IQSize:          64,
		PerThreadIQCap:  4, // severe partitioning must cost throughput
		MaxInstructions: 10_000,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if capped.IPC >= shared.IPC {
		t.Errorf("severe partitioning did not reduce throughput: %.3f vs %.3f",
			capped.IPC, shared.IPC)
	}
}

func TestMemoryLatencyOverride(t *testing.T) {
	fast, err := smtsim.Run(smtsim.Config{
		Benchmarks:      []string{"equake"},
		MemoryLatency:   40,
		MaxInstructions: 8_000,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := smtsim.Run(smtsim.Config{
		Benchmarks:      []string{"equake"},
		MemoryLatency:   400,
		MaxInstructions: 8_000,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.IPC >= fast.IPC {
		t.Errorf("longer memory latency did not slow a memory-bound thread: %.3f vs %.3f",
			slow.IPC, fast.IPC)
	}
}
