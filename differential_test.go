package smtsim_test

import (
	"fmt"
	"testing"

	"smtsim"
)

// TestWakeupDifferential proves the event-driven wakeup is bit-identical
// to the legacy per-cycle polling implementation: the same 4-thread mix,
// run both ways, must produce exactly equal cycle counts, per-thread
// committed counts, and IQ residency/occupancy statistics — for all
// three schedulers at IQ sizes 32 and 64. Any divergence in the wakeup
// rewrite (a missed broadcast, a stale counter, a reordered ready list)
// shows up here as a cycle-count mismatch.
func TestWakeupDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential cross-check is not short")
	}
	for _, sched := range []smtsim.Scheduler{smtsim.Traditional, smtsim.TwoOpBlock, smtsim.TwoOpOOOD} {
		for _, iqSize := range []int{32, 64} {
			t.Run(fmt.Sprintf("%s/iq%d", sched, iqSize), func(t *testing.T) {
				t.Parallel()
				cfg := smtsim.Config{
					Benchmarks:      []string{"equake", "twolf", "gcc", "gzip"},
					IQSize:          iqSize,
					Scheduler:       sched,
					MaxInstructions: 20_000,
					Seed:            7,
				}
				assertWakeupIdentical(t, cfg)
			})
		}
	}
}

// TestWakeupDifferentialVariants covers the paths the base matrix does
// not: the thread-rotating issue arbiter (the event mode reorders its
// ready list with a bucket pass instead of a sort), the watchdog
// whole-pipeline flush, and the FLUSH fetch gate's partial squash with
// rename rollback — the cases where stale consumer-list entries and
// recycled UOps could corrupt an unsound implementation.
func TestWakeupDifferentialVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("differential cross-check is not short")
	}
	base := smtsim.Config{
		Benchmarks:      []string{"equake", "twolf", "gcc", "gzip"},
		IQSize:          32,
		Scheduler:       smtsim.TwoOpOOOD,
		MaxInstructions: 20_000,
		Seed:            11,
	}
	variants := map[string]func(*smtsim.Config){
		"thread-rotate-select": func(c *smtsim.Config) { c.ThreadRotateSelect = true },
		"watchdog":             func(c *smtsim.Config) { c.Deadlock = smtsim.DeadlockWatchdog },
		"gate-flush":           func(c *smtsim.Config) { c.FetchGate = "flush" },
		"warmup":               func(c *smtsim.Config) { c.WarmupInstructions = 5_000 },
	}
	for name, mutate := range variants {
		cfg := base
		mutate(&cfg)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			assertWakeupIdentical(t, cfg)
		})
	}
}

func assertWakeupIdentical(t *testing.T, cfg smtsim.Config) {
	t.Helper()
	// Both runs execute under the invariant sanitizer: any structural
	// corruption fails the run directly, in addition to the statistical
	// comparison below. The checker is read-only, so it cannot perturb
	// the bit-identity being asserted.
	cfg.Sanitize = true
	event := cfg
	event.PollingWakeup = false
	polling := cfg
	polling.PollingWakeup = true

	re, err := smtsim.Run(event)
	if err != nil {
		t.Fatalf("event-driven run: %v", err)
	}
	rp, err := smtsim.Run(polling)
	if err != nil {
		t.Fatalf("polling run: %v", err)
	}

	if re.Cycles != rp.Cycles {
		t.Errorf("cycles diverge: event %d, polling %d", re.Cycles, rp.Cycles)
	}
	if re.Committed != rp.Committed {
		t.Errorf("total committed diverge: event %d, polling %d", re.Committed, rp.Committed)
	}
	if re.IQResidency != rp.IQResidency {
		t.Errorf("IQ residency diverges: event %v, polling %v", re.IQResidency, rp.IQResidency)
	}
	if re.IQOccupancy != rp.IQOccupancy {
		t.Errorf("IQ occupancy diverges: event %v, polling %v", re.IQOccupancy, rp.IQOccupancy)
	}
	if re.DispatchStallAllNDI != rp.DispatchStallAllNDI ||
		re.DispatchStallNDIWeak != rp.DispatchStallNDIWeak ||
		re.DispatchStallAllAny != rp.DispatchStallAllAny {
		t.Errorf("dispatch stall stats diverge: event %+v/%+v/%+v, polling %+v/%+v/%+v",
			re.DispatchStallAllNDI, re.DispatchStallNDIWeak, re.DispatchStallAllAny,
			rp.DispatchStallAllNDI, rp.DispatchStallNDIWeak, rp.DispatchStallAllAny)
	}
	if len(re.Threads) != len(rp.Threads) {
		t.Fatalf("thread count diverges: event %d, polling %d", len(re.Threads), len(rp.Threads))
	}
	for i := range re.Threads {
		if re.Threads[i].Committed != rp.Threads[i].Committed {
			t.Errorf("thread %d (%s) committed diverges: event %d, polling %d",
				i, re.Threads[i].Benchmark, re.Threads[i].Committed, rp.Threads[i].Committed)
		}
		if re.Threads[i].IPC != rp.Threads[i].IPC {
			t.Errorf("thread %d (%s) IPC diverges: event %v, polling %v",
				i, re.Threads[i].Benchmark, re.Threads[i].IPC, rp.Threads[i].IPC)
		}
	}
}
