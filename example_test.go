package smtsim_test

import (
	"fmt"

	"smtsim"
)

// Example runs the smallest possible simulation: one thread on the
// default Table 1 machine.
func Example() {
	res, err := smtsim.Run(smtsim.Config{
		Benchmarks:      []string{"gzip"},
		MaxInstructions: 10_000,
		Seed:            1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Committed >= 10_000, res.IPC > 0)
	// Output: true true
}

// ExampleRun_schedulers compares the paper's three scheduler designs on
// one workload. Deterministic seeds make the comparison exact.
func ExampleRun_schedulers() {
	var ipcs []float64
	for _, sched := range smtsim.Schedulers {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:      []string{"equake", "gzip"},
			IQSize:          64,
			Scheduler:       sched,
			MaxInstructions: 30_000,
			Seed:            1,
		})
		if err != nil {
			panic(err)
		}
		ipcs = append(ipcs, res.IPC)
	}
	// The paper's 2-thread ordering: 2OP_BLOCK loses to the traditional
	// scheduler; out-of-order dispatch recovers the loss.
	fmt.Println(ipcs[1] < ipcs[0], ipcs[2] > ipcs[1])
	// Output: true true
}

// ExampleFairnessMetric computes the harmonic mean of weighted IPCs.
func ExampleFairnessMetric() {
	// Two threads each running at half their single-threaded speed.
	f, err := smtsim.FairnessMetric([]float64{1.0, 0.25}, []float64{2.0, 0.5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", f)
	// Output: 0.50
}

// ExampleMixes lists the paper's 2-threaded workload table.
func ExampleMixes() {
	lists, names, err := smtsim.Mixes(2)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(lists), names[0], lists[0])
	// Output: 12 Mix 1 [equake lucas]
}

// ExampleRunCMP builds the dual-core, 2-way-SMT chip of the paper's
// introduction.
func ExampleRunCMP() {
	res, err := smtsim.RunCMP(smtsim.CMPConfig{
		Cores: [][]string{
			{"equake", "gzip"},
			{"gcc", "vortex"},
		},
		Scheduler:       smtsim.TwoOpOOOD,
		MaxInstructions: 10_000,
		Seed:            1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Cores), res.ChipIPC() > 0)
	// Output: 2 true
}
