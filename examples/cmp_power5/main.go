// cmp_power5 builds the configuration the paper's introduction
// motivates — a Power5-style dual-core chip where each core is a 2-way
// SMT — and asks whether the paper's scheduler conclusions survive L2
// sharing between cores.
//
// Both cores run the paper's schedulers over mixed-ILP thread pairs; the
// shared 2MB L2 carries both cores' miss streams.
//
// Run with:
//
//	go run ./examples/cmp_power5
package main

import (
	"fmt"
	"log"

	"smtsim/internal/cmp"
	icore "smtsim/internal/core"
	"smtsim/internal/pipeline"
	"smtsim/internal/workload"
)

func spec(name string, seed uint64) pipeline.ThreadSpec {
	prog, err := workload.CompileBenchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	return pipeline.ThreadSpec{Name: name, Reader: prog.NewStream(seed)}
}

func main() {
	for _, policy := range []icore.Policy{icore.InOrder, icore.TwoOpBlock, icore.TwoOpOOOD} {
		cfg := cmp.Config{Core: pipeline.DefaultConfig()}
		cfg.Core.Policy = policy
		cfg.Workloads = [][]pipeline.ThreadSpec{
			{spec("equake", 1), spec("gzip", 2)},  // core 0: low + high ILP
			{spec("twolf", 3), spec("vortex", 4)}, // core 1: low + high ILP
		}
		sys, err := cmp.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		results, err := sys.Run(60_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", policy)
		total := 0.0
		for i, r := range results {
			fmt.Printf("  core %d: IPC %.3f  (", i, r.IPC)
			for j, tr := range r.Threads {
				if j > 0 {
					fmt.Print(", ")
				}
				fmt.Printf("%s %.3f", tr.Benchmark, tr.IPC)
			}
			fmt.Println(")")
			total += r.IPC
		}
		l2 := sys.L2().Stats()
		fmt.Printf("  chip throughput %.3f IPC; shared L2 miss rate %.1f%%\n\n",
			total, 100*l2.MissRate())
	}
	fmt.Println("The scheduler ordering of the single-core evaluation should be")
	fmt.Println("visible per core even with both cores contending for the L2.")
}
