// deadlock demonstrates the hazard out-of-order dispatch introduces
// (Section 4 of the paper) and the two mechanisms that handle it.
//
// With out-of-order dispatch, younger instructions can occupy every
// issue-queue entry while all of them depend on an older instruction
// that is still waiting for a free entry: nothing can issue, nothing can
// commit, nothing can dispatch. The paper proposes either a watchdog
// timer (flush and refetch on dispatch starvation) or — its evaluated
// design — a deadlock-avoidance buffer that captures the ROB-oldest
// instruction, whose operands are ready by definition, and issues it
// with priority.
//
// This example runs a memory-bound mix on a deliberately small issue
// queue under all three settings and reports what happened.
//
// Run with:
//
//	go run ./examples/deadlock
package main

import (
	"fmt"

	"smtsim"
)

func main() {
	base := smtsim.Config{
		// Memory-bound threads maximize long-latency dependence webs —
		// the raw material of the deadlock scenario.
		Benchmarks:      []string{"equake", "twolf", "art", "swim"},
		IQSize:          32,
		Scheduler:       smtsim.TwoOpOOOD,
		MaxInstructions: 60_000,
	}

	fmt.Println("out-of-order dispatch on a small IQ, three deadlock settings:")
	for _, m := range []struct {
		name string
		mech smtsim.DeadlockMechanism
	}{
		{"none (hazard demonstration)", smtsim.DeadlockNone},
		{"deadlock-avoidance buffer", smtsim.DeadlockDAB},
		{"watchdog timer", smtsim.DeadlockWatchdog},
	} {
		cfg := base
		cfg.Deadlock = m.mech
		res, err := smtsim.Run(cfg)
		fmt.Printf("\n%s:\n", m.name)
		if err != nil {
			fmt.Printf("  simulation aborted: %v\n", err)
			fmt.Printf("  (committed %d instructions in %d cycles before stalling)\n",
				res.Committed, res.Cycles)
			continue
		}
		fmt.Printf("  completed: %d instructions, %d cycles, IPC %.3f\n",
			res.Committed, res.Cycles, res.IPC)
		fmt.Printf("  DAB captures: %d, watchdog flushes: %d\n",
			res.DABInserts, res.WatchdogFlushes)
	}

	fmt.Println("\nNote: whether the unprotected run actually deadlocks depends on")
	fmt.Println("the workload reaching the exact corner state; the pipeline's")
	fmt.Println("safety net reports it as an error when it does. The library tests")
	fmt.Println("(internal/pipeline) construct the deadlock deterministically.")
}
