// fairness computes the paper's fairness metric — the harmonic mean of
// weighted IPCs (Luo et al.) — for a four-thread workload under each
// scheduler design. Weighted IPCs divide each thread's SMT IPC by its
// single-threaded IPC on the same machine, so the metric punishes
// designs that buy throughput by starving a thread. This is Figure 8 in
// miniature, on a single mix.
//
// Run with:
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"smtsim"
)

func main() {
	const (
		iqSize = 64
		budget = 100_000
	)
	benchmarks := []string{"equake", "twolf", "gcc", "gzip"}

	// Reference: each benchmark alone on the baseline machine.
	fmt.Println("single-threaded reference runs (traditional scheduler):")
	alone := make([]float64, len(benchmarks))
	for i, b := range benchmarks {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:      []string{b},
			IQSize:          iqSize,
			Scheduler:       smtsim.Traditional,
			MaxInstructions: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		alone[i] = res.IPC
		class, _ := smtsim.BenchmarkClass(b)
		fmt.Printf("  %-8s (%s ILP)  IPC %.3f\n", b, class, alone[i])
	}

	fmt.Printf("\n4-thread SMT runs, IQ=%d:\n", iqSize)
	fmt.Printf("  %-22s %10s %10s\n", "scheduler", "IPC", "fairness")
	for _, sched := range smtsim.Schedulers {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:      benchmarks,
			IQSize:          iqSize,
			Scheduler:       sched,
			MaxInstructions: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		fair, err := smtsim.FairnessMetric(res.PerThreadIPCs(), alone)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %10.3f %10.3f\n", sched, res.IPC, fair)
	}
	fmt.Println("\nA higher fairness value means every thread retains more of its")
	fmt.Println("single-threaded speed; throughput alone can hide starvation.")
}
