// Quickstart: simulate a two-thread SMT workload under the paper's
// proposed scheduler (2OP_BLOCK + out-of-order dispatch) and print the
// headline statistics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"smtsim"
)

func main() {
	res, err := smtsim.Run(smtsim.Config{
		// One benchmark per hardware thread: a memory-bound thread
		// (equake, low ILP) sharing the core with an execution-bound
		// one (gzip, high ILP).
		Benchmarks: []string{"equake", "gzip"},

		// 64-entry shared issue queue — the paper's headline size.
		IQSize: 64,

		// The paper's contribution: one-comparator IQ entries with
		// out-of-order dispatch within each thread.
		Scheduler: smtsim.TwoOpOOOD,

		// Stop when any thread commits this many instructions (the
		// paper's stopping rule).
		MaxInstructions: 200_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d cycles, %d instructions committed\n", res.Cycles, res.Committed)
	fmt.Printf("throughput: %.2f IPC\n\n", res.IPC)
	for i, tr := range res.Threads {
		fmt.Printf("thread %d (%s): IPC %.3f, %.1f%% branch mispredictions\n",
			i, tr.Benchmark, tr.IPC, 100*tr.MispredictRate)
	}
	fmt.Printf("\nscheduler behaviour:\n")
	fmt.Printf("  %d instructions dispatched out of program order (HDIs)\n", res.HDIDispatched)
	fmt.Printf("  %.1f%% of those depended on the NDI they bypassed\n", 100*res.HDIDepOnNDIFrac)
	fmt.Printf("  mean issue-queue residency: %.1f cycles\n", res.IQResidency)
	fmt.Printf("  deadlock-avoidance buffer captures: %d\n", res.DABInserts)
}
