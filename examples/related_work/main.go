// related_work explores the design space around the paper (its Section
// 6): the tag-elimination partitioned scheduler of Ernst & Austin as an
// alternative way to cut comparators, and the miss-driven fetch-gating
// policies (STALL, FLUSH, Data Gating) that attack issue-queue clog from
// the fetch side instead of the dispatch side.
//
// Run with:
//
//	go run ./examples/related_work
package main

import (
	"fmt"
	"log"

	"smtsim"
)

func main() {
	benchmarks := []string{"equake", "twolf", "gcc", "gzip"}
	const iqSize = 48
	const budget = 60_000

	fmt.Printf("workload: %v, IQ=%d\n\n", benchmarks, iqSize)

	fmt.Println("comparator-reduction designs:")
	for _, sched := range []smtsim.Scheduler{
		smtsim.Traditional, smtsim.TwoOpBlock, smtsim.TwoOpOOOD,
		smtsim.TagElimination, smtsim.TagEliminationOOOD,
	} {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:      benchmarks,
			IQSize:          iqSize,
			Scheduler:       sched,
			MaxInstructions: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s IPC %.3f\n", sched, res.IPC)
	}

	fmt.Println("\nfetch gating under the paper's scheduler (2OP + OOO dispatch):")
	for _, gate := range []string{"none", "stall", "flush", "data-gate"} {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:      benchmarks,
			IQSize:          iqSize,
			Scheduler:       smtsim.TwoOpOOOD,
			FetchGate:       gate,
			MaxInstructions: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if res.GateFlushes > 0 {
			extra = fmt.Sprintf(" (%d partial flushes)", res.GateFlushes)
		}
		fmt.Printf("  %-24s IPC %.3f%s\n", gate, res.IPC, extra)
	}

	fmt.Println("\ncustom queue partition (entries with 0/1/2 comparators):")
	for _, part := range [][3]int{{0, 0, 48}, {12, 24, 12}, {24, 24, 0}} {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:      benchmarks,
			IQPartition:     part,
			Scheduler:       smtsim.TagEliminationOOOD,
			MaxInstructions: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v  IPC %.3f\n", part, res.IPC)
	}
}
