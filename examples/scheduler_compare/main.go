// scheduler_compare contrasts the three scheduler designs of the paper —
// the traditional two-comparator scheduler, 2OP_BLOCK, and 2OP_BLOCK
// with out-of-order dispatch — on one two-thread workload across the
// paper's issue-queue sizes. It is Figure 3 in miniature, on a single
// mix instead of the full table (use cmd/smtsweep for the real figure).
//
// Run with:
//
//	go run ./examples/scheduler_compare
package main

import (
	"fmt"
	"log"

	"smtsim"
)

func main() {
	benchmarks := []string{"equake", "gzip"}
	iqSizes := []int{32, 48, 64, 96, 128}

	fmt.Printf("workload: %v (low-ILP + high-ILP, the hardest case for 2OP_BLOCK)\n\n", benchmarks)
	fmt.Printf("%-22s", "IPC")
	for _, q := range iqSizes {
		fmt.Printf("%9s", fmt.Sprintf("IQ=%d", q))
	}
	fmt.Println()

	ipc := map[smtsim.Scheduler][]float64{}
	for _, sched := range smtsim.Schedulers {
		fmt.Printf("%-22s", sched)
		for _, q := range iqSizes {
			res, err := smtsim.Run(smtsim.Config{
				Benchmarks:      benchmarks,
				IQSize:          q,
				Scheduler:       sched,
				MaxInstructions: 100_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			ipc[sched] = append(ipc[sched], res.IPC)
			fmt.Printf("%9.3f", res.IPC)
		}
		fmt.Println()
	}

	fmt.Printf("\n%-22s", "speedup vs traditional")
	for range iqSizes {
		fmt.Printf("%9s", "")
	}
	fmt.Println()
	for _, sched := range smtsim.Schedulers[1:] {
		fmt.Printf("%-22s", sched)
		for j := range iqSizes {
			fmt.Printf("%8.1f%%", 100*(ipc[sched][j]/ipc[smtsim.Traditional][j]-1))
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape (paper, Figure 3): 2op-block loses at every size;")
	fmt.Println("out-of-order dispatch recovers the loss and wins at small queues.")
}
