// Package allocfree implements the hot-path allocation analyzer.
// Functions annotated //smt:hotpath in their doc comment form the
// simulator's per-cycle closure (everything Core.Step reaches in steady
// state); the PR-1 speedup that makes large design-space sweeps
// tractable depends on that closure allocating nothing once warm.
//
// The check is an AST+types heuristic, deliberately conservative about
// what it flags so annotated code stays idiomatic:
//
//   - new(T), make(...), &T{...}, and slice/map composite literals are
//     definite allocations and are reported.
//   - append into an existing slice lvalue (x = append(x, ...), or into
//     a reused scratch/pool buffer) is allowed: growth is amortized into
//     a retained buffer and reaches zero in steady state, which the
//     runtime guard (testing.AllocsPerRun over Core.Step) verifies.
//     append to a freshly produced slice is reported.
//   - function literals that close over variables are reported (each
//     evaluation allocates the closure); capture-free literals are
//     static and allowed. Method-value expressions likewise allocate
//     and are reported.
//   - conversions of non-pointer-shaped concrete values to interface
//     types — explicit or implicit at call, assignment, or return —
//     box the value and are reported. Pointers, maps, channels, and
//     funcs are word-sized and box without allocating; constants fold
//     into static descriptors. Both stay legal.
//   - string concatenation and string<->[]byte/[]rune conversions are
//     reported; go statements are reported (a goroutine has no place
//     inside a simulated cycle).
//   - anything inside a panic(...) argument is exempt: a panicking
//     simulator is already dead, and panic messages want fmt.Sprintf.
//
// Since v2 the check is interprocedural: every function in the package
// — annotated or not — is summarized by the same walk, a MayAlloc fact
// is exported for functions that allocate, and a //smt:hotpath function
// is additionally rejected when any statically resolvable callee (in
// this package, or in an already-analyzed dependency via its fact) may
// allocate transitively. Callees annotated //smt:hotpath are clean by
// definition (they are checked where they are declared); callees
// annotated //smt:coldpath are the audited "off the per-cycle path"
// escape; dynamic calls (func values, interface methods) and non-module
// callees are outside the graph, which the runtime AllocsPerRun guards
// backstop. See interproc.go.
//
// Escape hatch: //smt:allow-alloc on the offending line (or the line
// above) with a reason — e.g. pool growth on the miss path. On a call
// line it also severs that call's edge in the graph. The static
// heuristic and runtime reality are cross-checked by the hotpath
// coverage test, which requires every annotated function to be covered
// by a zero-alloc AllocsPerRun guard.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"smtsim/internal/analysis/framework"
)

// Analyzer is the allocfree instance: the direct checks plus call-graph
// propagation of the MayAlloc fact.
var Analyzer = &framework.Analyzer{
	Name:      "allocfree",
	Doc:       "forbid allocation — direct or through any transitively reached callee — in //smt:hotpath functions",
	Run:       func(pass *framework.Pass) error { return run(pass, true) },
	FactTypes: []framework.Fact{(*MayAlloc)(nil)},
}

// Intraprocedural is the propagation-off variant: exactly the pre-v2
// analyzer. It exists to prove what the fact-driven pass adds (the
// transitive-allocation goldens pass under Analyzer and stay silent
// under Intraprocedural) and as the degraded behavior under a
// facts-free driver.
var Intraprocedural = &framework.Analyzer{
	Name: "allocfree",
	Doc:  "allocfree without callee propagation (comparison variant)",
	Run:  func(pass *framework.Pass) error { return run(pass, false) },
}

type checker struct {
	pass *framework.Pass
	dirs framework.LineDirectives
	fn   *ast.FuncDecl

	// sink receives each (already escape-hatch-filtered) finding: the
	// reporting mode for //smt:hotpath functions, the summary recorder
	// when the walk computes another function's MayAlloc verdict.
	sink func(pos token.Pos, msg string)
	// onCall observes every call expression outside panic arguments —
	// the interprocedural pass's edge collector. May be nil.
	onCall func(*ast.CallExpr)

	// callFuns holds every expression in callee position, so a method
	// selector that is immediately called is not mistaken for a
	// closure-allocating method value.
	callFuns map[ast.Expr]bool
	// funcLits holds literal ranges so return statements resolve
	// against the innermost signature.
	funcLits []*ast.FuncLit
}

func (c *checker) collectContext(body ast.Node) {
	c.callFuns = map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.callFuns[ast.Unparen(n.Fun)] = true
		case *ast.FuncLit:
			c.funcLits = append(c.funcLits, n)
		}
		return true
	})
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	if c.dirs.Allowed(c.pass.Fset, pos, "allow-alloc") {
		return
	}
	c.sink(pos, fmt.Sprintf(format, args...))
}

func (c *checker) walk(root ast.Node) {
	info := c.pass.TypesInfo
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(info, n) {
				return false // allocation on a panic path is moot
			}
			if c.onCall != nil {
				c.onCall(n)
			}
			c.checkCall(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, comp := ast.Unparen(n.X).(*ast.CompositeLit); comp {
					c.report(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.CompositeLit:
			c.checkCompositeLit(n)
		case *ast.FuncLit:
			c.checkFuncLit(n)
		case *ast.SelectorExpr:
			c.checkMethodValue(n)
		case *ast.BinaryExpr:
			c.checkConcat(n)
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.ValueSpec:
			c.checkValueSpec(n)
		case *ast.ReturnStmt:
			c.checkReturn(n)
		case *ast.GoStmt:
			c.report(n.Pos(), "go statement starts a goroutine on the hot path")
		}
		return true
	})
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Type conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				c.report(call.Pos(), "new(%s) allocates", exprString(call.Args))
			case "make":
				c.report(call.Pos(), "make(%s) allocates", exprString(call.Args))
			case "append":
				c.checkAppend(call)
			}
			return
		}
	}

	// Implicit boxing at call boundaries.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, nothing boxed here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.checkBox(arg, pt, "argument")
	}
}

// checkAppend allows growth into an existing slice lvalue (the reused
// scratch/pool idiom whose steady state is allocation-free) and flags
// appends onto freshly produced slices.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := call.Args[0]
	for {
		switch b := ast.Unparen(base).(type) {
		case *ast.SliceExpr:
			base = b.X
			continue
		case *ast.StarExpr:
			base = b.X
			continue
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			return // appending into an existing lvalue: amortized, runtime-guarded
		default:
			c.report(call.Pos(), "append to a fresh slice allocates every call")
			return
		}
	}
}

func (c *checker) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	src := c.pass.TypesInfo.TypeOf(arg)
	if src == nil {
		return
	}
	switch tu := target.Underlying().(type) {
	case *types.Interface:
		c.checkBox(arg, target, "conversion")
		return
	case *types.Slice:
		if basic, ok := src.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			c.report(call.Pos(), "string-to-slice conversion allocates")
		}
	case *types.Basic:
		if tu.Info()&types.IsString != 0 {
			if _, ok := src.Underlying().(*types.Slice); ok {
				c.report(call.Pos(), "slice-to-string conversion allocates")
			}
		}
	}
}

// checkBox reports expr when assigning it to target performs an
// allocating interface conversion.
func (c *checker) checkBox(expr ast.Expr, target types.Type, context string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	info := c.pass.TypesInfo
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil || tv.IsNil() {
		return // constants fold into static descriptors; nil never boxes
	}
	src := tv.Type
	if types.IsInterface(src) || isPointerShaped(src) {
		return
	}
	if basic, ok := src.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	c.report(expr.Pos(), "%s converts %s to interface %s (boxes on every evaluation)",
		context, types.TypeString(src, types.RelativeTo(c.pass.Pkg)),
		types.TypeString(target, types.RelativeTo(c.pass.Pkg)))
}

// isPointerShaped reports whether values of t fit an interface's data
// word without allocation.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates")
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
	}
	// Struct and array literals used as values live on the stack; the
	// &lit case is handled at the UnaryExpr.
}

func (c *checker) checkFuncLit(lit *ast.FuncLit) {
	info := c.pass.TypesInfo
	captured := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || captured[v] {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// this literal. Package-level variables are direct references.
		if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() >= c.fn.Pos() && v.Pos() < c.fn.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured[v] = true
			c.report(lit.Pos(), "function literal closes over %s (allocates a closure per evaluation)", v.Name())
		}
		return true
	})
}

func (c *checker) checkMethodValue(sel *ast.SelectorExpr) {
	if c.callFuns[sel] {
		return
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	c.report(sel.Pos(), "method value %s.%s allocates a bound-method closure", exprText(sel.X), sel.Sel.Name)
}

func (c *checker) checkConcat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	info := c.pass.TypesInfo
	tv, ok := info.Types[b]
	if !ok || tv.Type == nil || tv.Value != nil {
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		c.report(b.Pos(), "string concatenation allocates")
	}
}

func (c *checker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value form: boxing would happen in the callee's return
	}
	for i, rhs := range as.Rhs {
		c.checkBox(rhs, c.pass.TypesInfo.TypeOf(as.Lhs[i]), "assignment")
	}
}

func (c *checker) checkValueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) != len(vs.Names) {
		return
	}
	for i, name := range vs.Names {
		c.checkBox(vs.Values[i], c.pass.TypesInfo.TypeOf(name), "assignment")
	}
}

func (c *checker) checkReturn(ret *ast.ReturnStmt) {
	sig := c.enclosingSig(ret.Pos())
	if sig == nil {
		return
	}
	results := sig.Results()
	if results.Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		c.checkBox(r, results.At(i).Type(), "return")
	}
}

// enclosingSig resolves the signature governing a return statement: the
// innermost function literal containing pos, or the annotated function.
func (c *checker) enclosingSig(pos token.Pos) *types.Signature {
	info := c.pass.TypesInfo
	var best *ast.FuncLit
	for _, lit := range c.funcLits {
		if pos >= lit.Pos() && pos < lit.End() {
			if best == nil || (lit.Pos() >= best.Pos() && lit.End() <= best.End()) {
				best = lit
			}
		}
	}
	if best != nil {
		sig, _ := info.TypeOf(best).(*types.Signature)
		return sig
	}
	if obj, ok := info.Defs[c.fn.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature)
	}
	return nil
}

func exprString(args []ast.Expr) string {
	if len(args) == 0 {
		return ""
	}
	return exprText(args[0])
}

func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.ArrayType:
		return "[]" + exprText(e.Elt)
	default:
		return "..."
	}
}
