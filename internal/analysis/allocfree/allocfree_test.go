package allocfree_test

import (
	"testing"

	"smtsim/internal/analysis/allocfree"
	"smtsim/internal/analysis/analysistest"
)

func TestAllocfree(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "hotpath")
}

// TestAllocfreeTransitive proves the interprocedural verdicts: depalloc
// is analyzed first so its MayAlloc facts are in the session store when
// transhot — whose hot functions allocate only through callees — is
// checked against its goldens.
func TestAllocfreeTransitive(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "depalloc", "transhot")
}

// TestIntraproceduralMissesTransitive pins the v1 gap the fact-driven
// analyzer closes: the intraprocedural variant, run over the same
// fixture pair, reports nothing — every allocation in transhot's hot
// functions hides behind a call.
func TestIntraproceduralMissesTransitive(t *testing.T) {
	diags := analysistest.Diagnostics(t, "testdata", allocfree.Intraprocedural, "depalloc", "transhot")
	for _, d := range diags {
		t.Errorf("intraprocedural allocfree unexpectedly reported: %s", d.Message)
	}
}
