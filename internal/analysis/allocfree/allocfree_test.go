package allocfree_test

import (
	"testing"

	"smtsim/internal/analysis/allocfree"
	"smtsim/internal/analysis/analysistest"
)

func TestAllocfree(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "hotpath")
}
