package allocfree

// The interprocedural half of allocfree: every function in the package
// is summarized (may it allocate? which static callees does it reach?),
// the MayAlloc verdict is propagated over the package-local call graph
// to a fixpoint, imported MayAlloc facts stand in for callees in other
// packages, and verdicts for this package's functions are exported as
// facts for its dependents. //smt:hotpath functions are then rejected
// at every call whose target may allocate transitively.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"smtsim/internal/analysis/framework"
)

// MayAlloc marks a function that may allocate when called: directly, or
// through some statically reachable callee. Why carries the
// human-readable reason chain shown at the offending hot-path call.
type MayAlloc struct{ Why string }

// AFact marks MayAlloc as a framework fact.
func (*MayAlloc) AFact() {}

// maxWhyLen bounds the reason chain; deep chains truncate rather than
// bloat fact files and diagnostics.
const maxWhyLen = 220

type callEdge struct {
	pos    token.Pos
	callee *types.Func
}

type summary struct {
	fn    *ast.FuncDecl
	hot   bool
	cold  bool
	why   string // may-alloc reason; "" while presumed clean
	edges []callEdge
}

func run(pass *framework.Pass, interproc bool) error {
	sums := map[*types.Func]*summary{}
	var order []*types.Func // declaration order, for deterministic output

	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		dirs := framework.FileDirectives(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &summary{fn: fn}
			_, s.hot = framework.FuncDirective(fn, "hotpath")
			_, s.cold = framework.FuncDirective(fn, "coldpath")
			if !interproc && !s.hot {
				continue // pre-v2 behavior: only annotated functions matter
			}
			c := &checker{pass: pass, dirs: dirs, fn: fn}
			if s.hot {
				// Direct findings report immediately, as always.
				c.sink = func(pos token.Pos, msg string) {
					pass.Reportf(pos, "//smt:hotpath %s: %s", fn.Name.Name, msg)
				}
			} else {
				// Summary mode: the first finding is the function's
				// may-alloc reason; nothing is reported here.
				c.sink = func(pos token.Pos, msg string) {
					if s.why == "" {
						s.why = truncate(fmt.Sprintf("%s (%s)", msg, shortPos(pass.Fset, pos)))
					}
				}
			}
			if interproc {
				c.onCall = func(call *ast.CallExpr) {
					if dirs.Allowed(pass.Fset, call.Pos(), "allow-alloc") {
						return // the escape hatch severs the edge too
					}
					if callee := framework.CalleeFunc(pass.TypesInfo, call); callee != nil {
						s.edges = append(s.edges, callEdge{pos: call.Pos(), callee: callee})
					}
				}
			}
			c.collectContext(fn.Body)
			c.walk(fn.Body)
			sums[obj] = s
			order = append(order, obj)
		}
	}
	if !interproc {
		return nil
	}

	// calleeWhy resolves a callee's verdict: the local summary when the
	// callee lives here, its imported fact otherwise. Annotated callees
	// are clean by definition — //smt:hotpath is checked at its own
	// declaration, //smt:coldpath is the audited off-cycle escape (both
	// also never export facts, so the cross-package case agrees).
	// Absent facts (stdlib, dynamic targets resolved elsewhere) read as
	// clean: the AllocsPerRun guards own what the graph cannot see.
	calleeWhy := func(callee *types.Func) string {
		if s, ok := sums[callee]; ok {
			if s.hot || s.cold {
				return ""
			}
			return s.why
		}
		var f MayAlloc
		if pass.ImportFact(callee, &f) {
			return f.Why
		}
		return ""
	}

	// Propagate within the package to a fixpoint (handles call cycles:
	// verdicts only ever flip clean→may-alloc, so this terminates).
	for changed := true; changed; {
		changed = false
		for _, obj := range order {
			s := sums[obj]
			if s.hot || s.cold || s.why != "" {
				continue
			}
			for _, e := range s.edges {
				if w := calleeWhy(e.callee); w != "" {
					s.why = truncate(fmt.Sprintf("calls %s: %s", funcLabel(pass, e.callee), w))
					changed = true
					break
				}
			}
		}
	}

	for _, obj := range order {
		s := sums[obj]
		if s.hot {
			for _, e := range s.edges {
				if w := calleeWhy(e.callee); w != "" {
					pass.Reportf(e.pos, "//smt:hotpath %s: calls %s, which may allocate: %s",
						s.fn.Name.Name, funcLabel(pass, e.callee), w)
				}
			}
			continue
		}
		if !s.cold && s.why != "" {
			pass.ExportFact(obj, &MayAlloc{Why: s.why})
		}
	}
	return nil
}

// funcLabel renders a callee for diagnostics: Recv.Name or Name,
// package-qualified when foreign.
func funcLabel(pass *framework.Pass, fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if named := framework.NamedOf(recv.Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// shortPos renders a position as base-filename:line.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func truncate(s string) string {
	if len(s) <= maxWhyLen {
		return s
	}
	return s[:maxWhyLen] + "…"
}
