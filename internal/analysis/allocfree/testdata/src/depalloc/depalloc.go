// Package depalloc is the dependency half of the allocfree transitive
// fixture: its exported functions allocate directly or one call deep,
// so analyzing this package must export MayAlloc facts that the
// consumer fixture (transhot) imports across the package boundary.
package depalloc

// Grow allocates directly.
func Grow(n int) []int {
	return make([]int, n)
}

// Wrap allocates only through Grow — the package-local fixpoint must
// propagate Grow's verdict before Wrap's fact is exported.
func Wrap(n int) []int {
	return Grow(n)
}

// Clean is allocation-free; no fact is exported for it.
func Clean(a, b int) int {
	return a + b
}
