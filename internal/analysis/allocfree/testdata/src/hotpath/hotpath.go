// Package hotpath is an allocfree fixture. The analyzer keys on the
// //smt:hotpath doc-comment directive, not the package path.
package hotpath

import "fmt"

// T is a non-pointer-shaped value type, so converting it to an
// interface boxes.
type T struct{ x int }

// M makes *T satisfy Iface.
func (t *T) M() {}

// Iface exercises explicit interface conversions.
type Iface interface{ M() }

var sink interface{}
var scratch []int

// Heap exercises the definite-allocation rules.
//
//smt:hotpath
func Heap(n int) {
	_ = new(T)                   // want `new\(T\) allocates`
	_ = make([]int, n)           // want `make\(\[\]int\) allocates`
	_ = &T{x: n}                 // want `&composite literal allocates`
	_ = []int{n}                 // want `slice literal allocates`
	_ = map[int]int{n: n}        // want `map literal allocates`
	_ = T{x: n}                  // value struct literal lives on the stack
	scratch = append(scratch, n) // existing lvalue: amortized pool growth
	_ = append([]int(nil), n)    // want `append to a fresh slice allocates`
}

// Closures exercises the closure and method-value rules.
//
//smt:hotpath
func Closures(t *T, n int) func() int {
	f := func() int { return n } // want `closes over n`
	g := func() int { return 0 } // capture-free literals are static
	_ = g
	h := t.M // want `method value t.M allocates a bound-method closure`
	_ = h
	t.M() // direct method calls do not materialize a method value
	return f
}

// Boxing exercises implicit and explicit interface conversions.
//
//smt:hotpath
func Boxing(v T, p *T, i Iface) {
	sink = v              // want `assignment converts T to interface`
	sink = p              // pointers are word-sized, no box
	sink = i              // interface-to-interface, no box
	sink = 7              // constants fold into static descriptors
	sink = Iface(p)       // pointer-shaped conversion, no box
	var x interface{} = v // want `assignment converts T to interface`
	_ = x
	_ = fmt.Sprintf("%d", v.x) // want `argument converts int to interface`
}

// Strings exercises the string-allocation rules.
//
//smt:hotpath
func Strings(a, b string, bs []byte) string {
	_ = []byte(a)  // want `string-to-slice conversion allocates`
	_ = string(bs) // want `slice-to-string conversion allocates`
	return a + b   // want `string concatenation allocates`
}

// Escapes exercises the panic exemption, the escape hatch, and the go
// statement rule.
//
//smt:hotpath
func Escapes(n int) {
	buf := make([]int, n) //smt:allow-alloc — one-time warmup growth
	_ = buf
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // a panicking simulator is already dead
	}
	go func() {}() // want `go statement starts a goroutine on the hot path`
}

// Cold allocates freely: no //smt:hotpath, no diagnostics.
func Cold(n int) []int {
	return append([]int{}, make([]int, n)...)
}
