// Package transhot is the consumer half of the allocfree transitive
// fixture: its hot functions never allocate directly, so only the
// interprocedural analyzer — local call-graph fixpoint plus MayAlloc
// facts imported from depalloc — can reject them. The companion test
// also runs the Intraprocedural variant over this file and requires
// silence, pinning exactly the gap v2 closes.
package transhot

import "depalloc"

var sink []int

// helper reaches an allocation only through the imported package.
func helper(n int) {
	sink = depalloc.Wrap(n)
}

// ping and pong allocate through a package-local call cycle; the
// fixpoint must terminate and still find pong's make.
func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) {
	if n > 0 {
		ping(n - 1)
	}
	sink = make([]int, 1)
}

//smt:coldpath — fixture: audited off-cycle escape
func coldDrain(n int) {
	sink = make([]int, n)
}

//smt:hotpath — fixture
func Step(n int) {
	helper(n) // want `//smt:hotpath Step: calls helper, which may allocate: calls depalloc.Wrap: calls Grow: make`
}

//smt:hotpath — fixture
func StepDirect(n int) {
	sink = depalloc.Grow(n) // want `//smt:hotpath StepDirect: calls depalloc.Grow, which may allocate: make`
}

//smt:hotpath — fixture
func StepCycle(n int) {
	ping(n) // want `//smt:hotpath StepCycle: calls ping, which may allocate: calls pong: make`
}

//smt:hotpath — fixture
func StepAllowed(n int) {
	//smt:allow-alloc — fixture: audited startup-only growth
	sink = depalloc.Grow(n)
}

//smt:hotpath — fixture
func StepCold(n int) {
	coldDrain(n) // coldpath callees are audited escapes, not findings
}
