// Package analysistest runs one analyzer over golden source fixtures and
// compares its diagnostics against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest
// (which is not vendored here) on the standard library alone.
//
// Fixtures live under <testdata>/src/<import/path>/*.go, GOPATH-style,
// so package-path-sensitive analyzers (detlint's cycle-path list,
// statescope's owner check) see realistic import paths. Imports resolve
// testdata-first — a fixture may shadow a real repository package with a
// miniature stand-in — and fall back to the build cache's export data
// for everything else (stdlib, unshadowed repo packages).
//
// Expectations are trailing comments of the form
//
//	code() // want "regexp" "another regexp"
//
// Each quoted pattern must match, in message order is not required, one
// diagnostic reported on that line; unmatched diagnostics and unmatched
// expectations both fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"smtsim/internal/analysis/facts"
	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/load"
)

// Run applies analyzer a to each fixture package (named by import path
// under testdata/src) and checks diagnostics against // want comments.
// Packages are analyzed in the listed order against one shared fact
// store, so a fact-driven analyzer sees dependency facts as long as
// dependencies are listed before their dependents.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgPaths ...string) {
	t.Helper()
	facts.Register(a)
	store := facts.NewSet()
	l := newLoader(testdata)
	for _, path := range pkgPaths {
		diags, pkg := run(t, l, store, a, path)
		check(t, pkg, diags)
	}
}

// RunGob is Run with the fact store serialized and deserialized between
// packages: after each package is analyzed, the store is gob-encoded and
// a fresh store decoded from the bytes analyzes the next. A fact-driven
// analyzer that passes RunGob has proven its facts survive the wire
// format the go vet unitchecker protocol uses — the in-process Set
// cannot mask a field gob drops.
func RunGob(t *testing.T, testdata string, a *framework.Analyzer, pkgPaths ...string) {
	t.Helper()
	facts.Register(a)
	store := facts.NewSet()
	l := newLoader(testdata)
	for i, path := range pkgPaths {
		if i > 0 {
			wire, err := store.Encode()
			if err != nil {
				t.Fatalf("encoding fact store before %s: %v", path, err)
			}
			store = facts.NewSet()
			store.Decode(wire)
		}
		diags, pkg := run(t, l, store, a, path)
		check(t, pkg, diags)
	}
}

// Diagnostics applies analyzer a to the fixture packages in order
// (sharing one fact store, as Run does) and returns the diagnostics of
// the last listed package, ignoring // want comments. Tests use it to
// assert on raw output — e.g. that an analyzer variant stays silent on
// a fixture whose goldens another variant matches.
func Diagnostics(t *testing.T, testdata string, a *framework.Analyzer, pkgPaths ...string) []framework.Diagnostic {
	t.Helper()
	facts.Register(a)
	store := facts.NewSet()
	l := newLoader(testdata)
	var last []framework.Diagnostic
	for _, path := range pkgPaths {
		last, _ = run(t, l, store, a, path)
	}
	return last
}

func run(t *testing.T, l *loader, store *facts.Set, a *framework.Analyzer, path string) ([]framework.Diagnostic, *load.Package) {
	t.Helper()
	pkg, err := l.loadPkg(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	var diags []framework.Diagnostic
	pass := pkg.Pass(a, func(d framework.Diagnostic) { diags = append(diags, d) })
	facts.Attach(pass, store)
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, path, err)
	}
	return diags, pkg
}

// loader resolves fixture packages testdata-first with a build-cache
// fallback for everything else.
type loader struct {
	fset     *token.FileSet
	src      string
	pkgs     map[string]*load.Package
	fallback *load.GoListImporter
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		src:      filepath.Join(testdata, "src"),
		pkgs:     map[string]*load.Package{},
		fallback: load.NewGoListImporter(fset, "."),
	}
}

func (l *loader) loadPkg(path string) (*load.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("analysistest: no Go files in %s", dir)
	}
	sort.Strings(filenames)
	files, err := load.ParseFiles(l.fset, filenames)
	if err != nil {
		return nil, err
	}
	pkg, terr := load.TypeCheck(l.fset, path, files, l)
	if terr != nil {
		return nil, fmt.Errorf("fixture %s does not type-check: %v", path, terr)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: testdata packages shadow the real
// module; anything else comes from export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path))); err == nil {
		pkg, err := l.loadPkg(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// expectation is one parsed // want pattern.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")

func check(t *testing.T, pkg *load.Package, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: pat,
					})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
