// Package atomicfs implements the crash-consistency confinement
// analyzer for the service layer (policy.ServicePackages). The cell
// store's durability story (DESIGN.md §10) rests on exactly three
// write idioms — same-directory temp+rename, single O_APPEND record
// writes, and O_CREATE|O_EXCL lease creation — each packaged in one
// blessed helper enumerated in policy.AtomicFSAllowed. atomicfs
// rejects every other call to a raw file-mutating os function
// (os.WriteFile, os.Create, os.CreateTemp, os.OpenFile, os.Rename,
// os.Truncate, os.RemoveAll) in the service packages, turning the
// protocol from a convention into a checked invariant: a naive
// os.WriteFile over a manifest would reintroduce the torn-read window
// the helpers exist to close.
//
// os.Remove, os.ReadFile, os.MkdirAll and the read-only os surface are
// deliberately not checked — deleting a whole file or creating a
// directory is atomic at the filesystem level, and reads cannot tear
// state on disk.
//
// There is no line-level escape hatch. A new raw write site is a
// protocol change; it belongs in policy.AtomicFSAllowed, reviewed,
// next to the reasoning for the existing three.
package atomicfs

import (
	"go/ast"

	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/policy"
)

// Analyzer is the atomicfs instance.
var Analyzer = &framework.Analyzer{
	Name: "atomicfs",
	Doc:  "confine raw file-mutating os calls in service packages to the blessed crash-consistency helpers listed in policy.AtomicFSAllowed",
	Run:  run,
}

// rawWriters is the checked subset of package os: the calls that can
// leave a half-written or half-renamed file visible to a reader.
var rawWriters = map[string]bool{
	"WriteFile":  true,
	"Create":     true,
	"CreateTemp": true,
	"OpenFile":   true,
	"Rename":     true,
	"Truncate":   true,
	"RemoveAll":  true,
}

func run(pass *framework.Pass) error {
	pkgPath := framework.NormalizePkgPath(pass.Pkg.Path())
	if !policy.IsServicePackage(pkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			blessed := policy.IsAtomicFSAllowed(pkgPath, funcKey(fn))
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, isRaw := rawOSCall(pass, call)
				if !isRaw || blessed {
					return true
				}
				pass.Reportf(call.Pos(),
					"atomicfs: raw os.%s outside the blessed crash-consistency helpers: route the write through cellstore.AtomicWrite (or extend policy.AtomicFSAllowed if this is a reviewed protocol change)",
					name)
				return true
			})
		}
	}
	return nil
}

// rawOSCall reports whether call targets one of the checked os
// functions, returning its name.
func rawOSCall(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	fn := framework.PkgFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return "", false
	}
	return fn.Name(), rawWriters[fn.Name()]
}

// funcKey renders a FuncDecl as "Name" or "Recv.Name" — the grammar
// policy.FuncRef uses.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}
