package atomicfs_test

import (
	"testing"

	"smtsim/internal/analysis/analysistest"
	"smtsim/internal/analysis/atomicfs"
)

func TestAtomicfs(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfs.Analyzer,
		"smtsim/internal/cellstore",
		"smtsim/internal/report",
	)
}
