// Package cellstore is a miniature stand-in exercising atomicfs: the
// three blessed crash-consistency helpers may touch the raw os write
// surface; everything else is rejected, and the read-only/whole-file
// os calls are never checked.
package cellstore

import "os"

// Store anchors a method-receiver violation.
type Store struct {
	dir string
}

// AtomicWrite is blessed (policy.AtomicFSAllowed).
func AtomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// appendShard is blessed.
func appendShard(path string, line []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(line)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// createLease is blessed.
func createLease(path string, body []byte) (bool, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false, nil
	}
	_, werr := f.Write(body)
	cerr := f.Close()
	if werr != nil {
		return false, werr
	}
	return true, cerr
}

// Sloppy bypasses the protocol with a raw whole-file write.
func Sloppy(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `atomicfs: raw os\.WriteFile outside the blessed crash-consistency helpers`
}

// Dump bypasses it through a method.
func (s *Store) Dump(path string) error {
	f, err := os.Create(path) // want `atomicfs: raw os\.Create outside the blessed crash-consistency helpers`
	if err != nil {
		return err
	}
	return f.Close()
}

// Move renames outside the helpers.
func Move(a, b string) error {
	return os.Rename(a, b) // want `atomicfs: raw os\.Rename outside the blessed crash-consistency helpers`
}

// Clean uses only the unchecked os surface: removes are whole-file
// atomic, reads cannot tear on-disk state.
func Clean(path string) ([]byte, error) {
	if err := os.Remove(path); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}
