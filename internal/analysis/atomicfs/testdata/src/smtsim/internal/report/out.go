// Package report is outside policy.ServicePackages: atomicfs must stay
// silent on raw writes here — figure output has no crash-consistency
// protocol to protect.
package report

import "os"

// Save writes a figure file directly.
func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
