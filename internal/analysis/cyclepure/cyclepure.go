// Package cyclepure implements the I/O-purity analyzer: functions in
// cycle-path packages must not perform stream or file I/O. A fmt.Printf
// in a per-cycle function costs more than the stage it instruments,
// perturbs benchmark results, and interleaves nondeterministically when
// sweeps run simulations concurrently — so the cycle path stays pure
// and all reporting happens from package report/sweep after a run.
//
// Pure formatting (fmt.Sprintf, fmt.Errorf) is allowed: building a
// string or an error performs no I/O. Panic messages are likewise fine.
//
// Escape hatch: annotate a genuinely cold function (debug dumps,
// one-shot setup) with //smt:coldpath in its doc comment.
package cyclepure

import (
	"go/ast"
	"go/types"
	"strings"

	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/policy"
)

// Analyzer is the cyclepure instance.
var Analyzer = &framework.Analyzer{
	Name: "cyclepure",
	Doc:  "forbid fmt/log/os I/O inside cycle-path packages",
	Run:  run,
}

// fmtIO lists the fmt functions that touch a stream. Sprint*/Errorf are
// pure and stay legal.
var fmtIO = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Scan": true, "Scanf": true, "Scanln": true,
	"Fscan": true, "Fscanf": true, "Fscanln": true,
}

// osIO lists the os functions that open, create, or mutate files, plus
// process-level escapes.
var osIO = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Exit": true, "Pipe": true,
}

// osStreams lists the os package variables naming process streams.
var osStreams = map[string]bool{"Stdout": true, "Stderr": true, "Stdin": true}

func run(pass *framework.Pass) error {
	if !policy.IsCyclePath(framework.NormalizePkgPath(pass.Pkg.Path())) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, cold := framework.FuncDirective(fn, "coldpath"); cold {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkCall(pass, fn, n)
				case *ast.SelectorExpr:
					checkStream(pass, fn, n)
				}
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *framework.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	// Builtin print/println write to stderr.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok &&
			(b.Name() == "print" || b.Name() == "println") {
			pass.Reportf(call.Pos(),
				"builtin %s in cycle-path function %s writes to stderr (annotate //smt:coldpath if this function is off the per-cycle path)",
				b.Name(), fn.Name.Name)
			return
		}
	}
	callee := framework.PkgFunc(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	var kind string
	switch p := callee.Pkg().Path(); {
	case p == "fmt" && fmtIO[callee.Name()]:
		kind = "stream I/O"
	case p == "log" || strings.HasPrefix(p, "log/"):
		kind = "logging"
	case p == "os" && osIO[callee.Name()]:
		kind = "file/process I/O"
	default:
		return
	}
	pass.Reportf(call.Pos(),
		"%s: %s.%s inside cycle-path function %s (report after the run, or annotate //smt:coldpath with a reason)",
		kind, callee.Pkg().Path(), callee.Name(), fn.Name.Name)
}

// checkStream flags direct use of os.Stdout/Stderr/Stdin — handing the
// stream to an io.Writer-taking helper is I/O the call check above
// cannot see.
func checkStream(pass *framework.Pass, fn *ast.FuncDecl, sel *ast.SelectorExpr) {
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" || !osStreams[v.Name()] {
		return
	}
	pass.Reportf(sel.Pos(),
		"process stream os.%s referenced inside cycle-path function %s (annotate //smt:coldpath if off the per-cycle path)",
		v.Name(), fn.Name.Name)
}
