package cyclepure_test

import (
	"testing"

	"smtsim/internal/analysis/analysistest"
	"smtsim/internal/analysis/cyclepure"
)

func TestCyclepure(t *testing.T) {
	analysistest.Run(t, "testdata", cyclepure.Analyzer, "smtsim/internal/fetch")
}
