// Package fetch is a cyclepure fixture standing in for a cycle-path
// package.
package fetch

import (
	"fmt"
	"log"
	"os"
)

// PerCycle performs every kind of I/O the analyzer forbids.
func PerCycle(n int) error {
	fmt.Printf("cycle %d\n", n) // want `stream I/O: fmt.Printf inside cycle-path function PerCycle`
	log.Println(n)              // want `logging: log.Println inside cycle-path function PerCycle`
	println(n)                  // want `builtin println in cycle-path function PerCycle`
	fmt.Fprintln(os.Stderr, n)  // want `stream I/O: fmt.Fprintln` `process stream os.Stderr referenced inside cycle-path function PerCycle`
	if n < 0 {
		os.Exit(1) // want `file/process I/O: os.Exit inside cycle-path function PerCycle`
	}
	return fmt.Errorf("n=%d", n) // pure formatting is legal
}

// Dump is a debug aid explicitly declared off the per-cycle path.
//
//smt:coldpath
func Dump(n int) {
	fmt.Println(n)
	fmt.Fprintln(os.Stdout, n)
}
