// Package detlint implements the determinism analyzer: cycle-path
// packages must not iterate over maps (Go randomizes map iteration
// order, so any simulator state touched in map order diverges between
// runs) and must not read wall-clock time or the process-global
// math/rand source (seeded per-process, shared across goroutines —
// either leaks nondeterminism into a replay).
//
// The runtime counterpart is the differential layer: FuzzPipeline
// asserts scheduler-independent commit streams and event/polling
// bit-identity, which only holds if nothing on the cycle path consumes
// an unstable order. detlint stops the whole class before it compiles.
//
// The same replay argument forbids concurrency constructs outright on
// the cycle path: a `go` statement hands cycle-path state to the
// runtime scheduler, `select` resolves ready cases by a runtime coin
// flip, and ranging over a channel observes whatever order senders won
// the race in. The simulator is single-goroutine by design (DESIGN.md
// §2); there is no escape hatch for these. Concurrency is permitted —
// and separately verified — in the service layer: guardedby checks the
// lock discipline, golife the goroutine and channel lifecycles, and
// atomicfs the crash-consistency of on-disk writes (DESIGN.md §11).
//
// Escape hatch: //smt:allow-map-range on the offending line (or the
// line above) for iterations that are provably order-independent, e.g.
// draining a map into a slice that is sorted before use. Wall-clock and
// global-rand use has no escape hatch: derive randomness from a seeded
// *rand.Rand and take timestamps outside the cycle path.
package detlint

import (
	"go/ast"
	"go/types"

	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/policy"
)

// Analyzer is the detlint instance.
var Analyzer = &framework.Analyzer{
	Name: "detlint",
	Doc:  "forbid map iteration, wall-clock reads, global math/rand, and concurrency constructs in cycle-path packages",
	Run:  run,
}

// wallClock lists time-package functions that read the wall clock or
// schedule against it.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededConstructors are the math/rand functions that are fine on the
// cycle path: they build an explicitly seeded source the caller owns.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *framework.Pass) error {
	if !policy.IsCyclePath(framework.NormalizePkgPath(pass.Pkg.Path())) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		dirs := framework.FileDirectives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, dirs, n)
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"goroutine launched in cycle-path package: the runtime scheduler's interleaving is not replay-stable")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(),
					"select in cycle-path package: case choice among ready channels is randomized by the runtime")
			}
			return true
		})
	}
	return nil
}

func checkRange(pass *framework.Pass, dirs framework.LineDirectives, rng *ast.RangeStmt) {
	tv := pass.TypesInfo.TypeOf(rng.X)
	if tv == nil {
		return
	}
	if _, isChan := tv.Underlying().(*types.Chan); isChan {
		pass.Reportf(rng.Pos(),
			"range over channel %s in cycle-path package: receive order depends on the runtime scheduler",
			types.TypeString(tv, types.RelativeTo(pass.Pkg)))
		return
	}
	if _, isMap := tv.Underlying().(*types.Map); !isMap {
		return
	}
	// `for range m` without iteration variables only observes the
	// element count, which is deterministic.
	if rng.Key == nil && rng.Value == nil {
		return
	}
	if dirs.Allowed(pass.Fset, rng.Pos(), "allow-map-range") {
		return
	}
	pass.Reportf(rng.Pos(),
		"nondeterministic iteration over map %s in cycle-path package (replace with an ordered slice, or annotate //smt:allow-map-range with a reason)",
		types.TypeString(tv, types.RelativeTo(pass.Pkg)))
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := framework.PkgFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] {
			pass.Reportf(call.Pos(),
				"wall-clock dependence: time.%s on the cycle path breaks bit-identical replay", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"process-global math/rand source: %s.%s is not replay-stable; use an explicitly seeded *rand.Rand",
				fn.Pkg().Path(), fn.Name())
		}
	}
}
