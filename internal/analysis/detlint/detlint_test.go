package detlint_test

import (
	"testing"

	"smtsim/internal/analysis/analysistest"
	"smtsim/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, "testdata", detlint.Analyzer,
		"smtsim/internal/iq",
		"smtsim/internal/metrics",
	)
}
