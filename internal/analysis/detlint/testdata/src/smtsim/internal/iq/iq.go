// Package iq is a detlint fixture standing in for a cycle-path package.
package iq

import (
	"math/rand"
	"sort"
	"time"
)

// MapRanges exercises the map-iteration rules.
func MapRanges(m map[int]int) int {
	s := 0
	for k, v := range m { // want `nondeterministic iteration over map`
		s += k + v
	}
	for k := range m { // want `nondeterministic iteration over map`
		s += k
	}
	for range m { // count-only observation is deterministic
		s++
	}
	keys := make([]int, 0, len(m))
	//smt:allow-map-range — keys are sorted before use below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, v := range keys { // slice iteration is always fine
		s += v
	}
	return s
}

// Clocks exercises the wall-clock rules.
func Clocks() time.Duration {
	t0 := time.Now()      // want `wall-clock dependence: time.Now`
	time.Sleep(1)         // want `wall-clock dependence: time.Sleep`
	return time.Since(t0) // want `wall-clock dependence: time.Since`
}

// Durations shows that time the *type* is fine; only clock reads are not.
func Durations(d time.Duration) int64 {
	return d.Nanoseconds()
}

// Rands exercises the math/rand rules.
func Rands() int {
	r := rand.New(rand.NewSource(1)) // seeded source the caller owns
	return r.Int() + rand.Int()      // want `process-global math/rand source: math/rand.Int`
}

// Concurrency exercises the scheduler-dependence rules: goroutines,
// select, and channel ranges are forbidden outright on the cycle path.
func Concurrency(ch chan int, done chan struct{}) int {
	go func() { ch <- 1 }() // want `goroutine launched in cycle-path package`
	select {                // want `select in cycle-path package`
	case v := <-ch:
		return v
	case <-done:
		return 0
	}
}

// ChanRange exercises the range-over-channel rule.
func ChanRange(ch chan int) int {
	s := 0
	for v := range ch { // want `range over channel chan int in cycle-path package`
		s += v
	}
	return s
}
