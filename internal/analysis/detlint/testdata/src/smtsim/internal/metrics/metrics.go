// Package metrics is a detlint fixture for a package off the cycle path:
// the same constructs draw no diagnostics here.
package metrics

import "time"

// Summarize ranges over a map and reads the clock, legally: metrics
// aggregation happens after the simulated run.
func Summarize(m map[string]float64) (float64, time.Time) {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s, time.Now()
}

// Collect fans results in over a channel, legally: off-cycle harness
// code may use the scheduler.
func Collect(ch chan float64, n int) float64 {
	out := make(chan float64)
	go func() {
		s := 0.0
		for v := range ch {
			s += v
		}
		out <- s
	}()
	select {
	case s := <-out:
		return s
	}
}
