// Package facts carries analyzer facts across package boundaries: the
// interprocedural half of the framework's Analyzer/Pass model
// (mirroring golang.org/x/tools' analysis facts on the standard library
// alone). A fact is attached to a types.Object while its declaring
// package is analyzed and consumed — by type — when a dependent package
// is analyzed later.
//
// Objects are named by (package path, object key), where the key is the
// object's name for package-level declarations and "Recv.Method" for
// methods: exactly the objects visible through export data, which is
// all a cross-package consumer can ever resolve a callee to.
//
// The Set serializes to the vetx fact files the go vet unitchecker
// protocol passes between package-level tool invocations (gob, with a
// version header). A Set encodes everything it holds — its own
// package's facts plus everything imported from dependencies — so a
// consumer that only sees its direct dependencies' fact files still
// observes the transitive closure. Decoding is deliberately tolerant:
// unknown versions and undecodable payloads merge as empty rather than
// failing the build, so stale fact files from older tool versions
// degrade analyses to their intraprocedural verdicts instead of
// breaking `go vet`.
package facts

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"

	"smtsim/internal/analysis/framework"
)

// Version identifies the wire format; mismatched files decode as empty.
const Version = "smtlint.facts.v2"

// Set is one analysis session's fact store, shared by every package the
// session analyzes.
type Set struct {
	m map[factKey]framework.Fact
}

type factKey struct {
	pkg      string // declaring package's import path
	obj      string // ObjectKey of the object
	analyzer string // exporting analyzer's name
}

// NewSet returns an empty store.
func NewSet() *Set { return &Set{m: map[factKey]framework.Fact{}} }

// ObjectKey names obj within its package: the bare name for
// package-level functions and variables, "Recv.Method" for methods, or
// "" for objects facts cannot address (locals, interface methods).
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			named := framework.NamedOf(recv.Type())
			if named == nil {
				return ""
			}
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if obj.Pkg() != nil && obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() {
		return "" // local object: never visible across packages
	}
	return obj.Name()
}

// Attach wires pass's fact hooks to s. Exported facts are recorded
// under the declaring object's package (analyzers only export facts
// about objects of the package under analysis); imports resolve against
// everything the session has accumulated.
func Attach(pass *framework.Pass, s *Set) {
	pass.ExportObjectFact = func(obj types.Object, fact framework.Fact) {
		if obj == nil || obj.Pkg() == nil || fact == nil {
			return
		}
		key := ObjectKey(obj)
		if key == "" {
			return
		}
		s.m[factKey{
			pkg:      framework.NormalizePkgPath(obj.Pkg().Path()),
			obj:      key,
			analyzer: pass.Analyzer.Name,
		}] = fact
	}
	pass.ImportObjectFact = func(obj types.Object, fact framework.Fact) bool {
		if obj == nil || obj.Pkg() == nil || fact == nil {
			return false
		}
		key := ObjectKey(obj)
		if key == "" {
			return false
		}
		stored, ok := s.m[factKey{
			pkg:      framework.NormalizePkgPath(obj.Pkg().Path()),
			obj:      key,
			analyzer: pass.Analyzer.Name,
		}]
		if !ok || reflect.TypeOf(stored) != reflect.TypeOf(fact) {
			return false
		}
		reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
		return true
	}
}

// Register makes the analyzers' fact types known to gob so Sets holding
// them can be encoded and decoded. Idempotent.
func Register(analyzers ...*framework.Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// wireEntry is one serialized fact.
type wireEntry struct {
	Pkg      string
	Object   string
	Analyzer string
	Fact     framework.Fact
}

// wireFile is the vetx payload.
type wireFile struct {
	Version string
	Entries []wireEntry
}

// Encode serializes the whole store, deterministically ordered.
func (s *Set) Encode() ([]byte, error) {
	file := wireFile{Version: Version}
	for k, f := range s.m {
		file.Entries = append(file.Entries, wireEntry{Pkg: k.pkg, Object: k.obj, Analyzer: k.analyzer, Fact: f})
	}
	sort.Slice(file.Entries, func(i, j int) bool {
		a, b := file.Entries[i], file.Entries[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Analyzer < b.Analyzer
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(file); err != nil {
		return nil, fmt.Errorf("facts: encoding: %v", err)
	}
	return buf.Bytes(), nil
}

// Decode merges a serialized store into s. Payloads this version cannot
// read — other formats, unregistered fact types, the pre-v2 stub —
// merge as empty: a missing fact only weakens an analysis to its
// intraprocedural verdict, which must not fail the build.
func (s *Set) Decode(data []byte) {
	var file wireFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&file); err != nil {
		return
	}
	if file.Version != Version {
		return
	}
	for _, e := range file.Entries {
		if e.Fact == nil {
			continue
		}
		s.m[factKey{pkg: e.Pkg, obj: e.Object, analyzer: e.Analyzer}] = e.Fact
	}
}

// Len reports the number of stored facts (driver tests).
func (s *Set) Len() int { return len(s.m) }
