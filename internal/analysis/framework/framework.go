// Package framework is a minimal, dependency-free reimplementation of
// the go/analysis Analyzer/Pass model (golang.org/x/tools is not vendored
// in this repository). An Analyzer inspects one type-checked package and
// reports diagnostics; drivers — the cmd/smtlint multichecker, the
// go-vet unitchecker shim, and the analysistest harness — own loading
// and presentation.
//
// The framework also defines the repository's source annotation
// language: magic comments of the form
//
//	//smt:NAME args — free-form reason
//	//smt:NAME(args) — free-form reason
//
// Function-level directives (//smt:hotpath, //smt:coldpath, //smt:stage,
// //smt:trusted-id, //smt:locked(mu), //smt:nolock-audited) appear in a
// function's doc comment and change how analyzers treat the whole
// function. Declaration-level directives annotate one struct field or
// package variable on its own line (//smt:guarded-by(mu),
// //smt:close-owner(Recv.Method)). Line-level directives
// (//smt:allow-alloc, //smt:allow-map-range, //smt:trusted-id,
// //smt:nolock-audited, //smt:fire-and-forget(reason)) are escape
// hatches: placed on the offending line (trailing comment) or on the
// line directly above it, they suppress one analyzer's diagnostics for
// that line and should carry a reason — in the parenthesized argument
// or after an em/en dash.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flag names. It
	// must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description: first sentence is the
	// summary, the rest explains the invariant the check protects.
	Doc string
	// Run applies the check to one package, reporting findings through
	// pass.Report. A non-nil error aborts the whole run (driver bug or
	// unusable input — not a finding).
	Run func(*Pass) error
	// FactTypes lists the concrete fact types the analyzer exports or
	// imports (pointers to zero values). Drivers that persist facts
	// register these for serialization; an analyzer with no FactTypes
	// is purely intraprocedural.
	FactTypes []Fact
}

// Fact is a datum an analyzer computes about a types.Object in one
// package and consumes when analyzing a dependent package — the
// mechanism that makes a per-package analyzer interprocedural. A fact
// type must be a pointer to a struct with exported, gob-serializable
// fields; AFact is a marker only.
type Fact interface{ AFact() }

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled in by the driver, not by analyzers.
	Analyzer string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// ExportObjectFact and ImportObjectFact are wired by drivers that
	// carry facts across packages (the facts.Attach helper); both are
	// nil under a facts-free driver, in which case ExportFact is a
	// no-op and ImportFact always reports false — analyzers degrade to
	// their intraprocedural verdicts.
	ExportObjectFact func(obj types.Object, fact Fact)
	ImportObjectFact func(obj types.Object, fact Fact) bool
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportFact associates fact with obj (which must belong to the package
// under analysis) for consumers in dependent packages.
func (p *Pass) ExportFact(obj types.Object, fact Fact) {
	if p.ExportObjectFact != nil {
		p.ExportObjectFact(obj, fact)
	}
}

// ImportFact copies the fact of fact's type previously exported for obj
// into fact and reports whether one existed.
func (p *Pass) ImportFact(obj types.Object, fact Fact) bool {
	return p.ImportObjectFact != nil && p.ImportObjectFact(obj, fact)
}

// InTestFile reports whether pos lies in a _test.go file. The analyzers
// in this suite check production cycle-path code; tests are covered by
// the simsan runtime layer instead.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// NormalizePkgPath strips the " [foo.test]" variant suffix the go
// command appends to import paths of packages recompiled for a test
// binary, so package-list matching sees the declared import path.
func NormalizePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// directivePrefix introduces every smtlint source annotation.
const directivePrefix = "//smt:"

// parseDirective splits one comment into a directive name and its
// arguments, or reports ok=false for ordinary comments. Both argument
// grammars are accepted: space-separated (//smt:stage pkgs — reason)
// and parenthesized (//smt:guarded-by(mu) — reason); in the paren form
// anything after the closing paren is free-form commentary.
func parseDirective(text string) (name, args string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if i := strings.IndexAny(rest, " ("); i >= 0 && rest[i] == '(' {
		name = rest[:i]
		args = rest[i+1:]
		if j := strings.IndexByte(args, ')'); j >= 0 {
			args = args[:j]
		}
		if name == "" {
			return "", "", false
		}
		return name, strings.TrimSpace(args), true
	}
	name, args, _ = strings.Cut(rest, " ")
	if name == "" {
		return "", "", false
	}
	return name, strings.TrimSpace(args), true
}

// FuncDirective scans fn's doc comment for //smt:name and returns its
// arguments. ok distinguishes a present-but-bare directive from an
// absent one.
func FuncDirective(fn *ast.FuncDecl, name string) (args string, ok bool) {
	if fn == nil || fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if n, a, isDir := parseDirective(c.Text); isDir && n == name {
			return a, true
		}
	}
	return "", false
}

// LineDirectives indexes one file's line-level directives:
// name -> source line -> arguments.
type LineDirectives map[string]map[int]string

// FileDirectives collects every //smt: directive in f, keyed by the line
// the comment itself occupies.
func FileDirectives(fset *token.FileSet, f *ast.File) LineDirectives {
	dirs := LineDirectives{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, args, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			byLine := dirs[name]
			if byLine == nil {
				byLine = map[int]string{}
				dirs[name] = byLine
			}
			byLine[fset.Position(c.Pos()).Line] = args
		}
	}
	return dirs
}

// Allowed reports whether a name directive covers the line holding pos:
// either as a trailing comment on that line or as a comment on the line
// directly above.
func (d LineDirectives) Allowed(fset *token.FileSet, pos token.Pos, name string) bool {
	_, ok := d.Args(fset, pos, name)
	return ok
}

// Args returns the arguments of the name directive covering the line
// holding pos (trailing on that line, or on the line directly above),
// and whether one exists. This is how declaration-level directives —
// //smt:guarded-by(mu) on a struct field, //smt:close-owner(F) on a
// channel declaration — are looked up from the declaration's position.
func (d LineDirectives) Args(fset *token.FileSet, pos token.Pos, name string) (string, bool) {
	byLine := d[name]
	if byLine == nil {
		return "", false
	}
	line := fset.Position(pos).Line
	if a, ok := byLine[line]; ok {
		return a, true
	}
	if a, ok := byLine[line-1]; ok {
		return a, true
	}
	return "", false
}

// Deref removes all pointer indirections from t.
func Deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// NamedOf returns the named type of t after stripping pointers, or nil.
func NamedOf(t types.Type) *types.Named {
	n, _ := Deref(t).(*types.Named)
	return n
}

// CalleeFunc resolves a call's static target — a package-level function
// or a concrete method — or returns nil for builtins, type conversions,
// and dynamic calls (func values, interface method calls), whose
// targets a per-package analysis cannot name.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() != types.MethodVal {
			return nil
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if types.IsInterface(Deref(recv.Type())) {
			return nil // dynamic dispatch: the concrete target is unknown
		}
	}
	return fn
}

// PkgFunc resolves a call target to a package-level function (receiver-
// less) and returns it, or nil when the callee is a method, a builtin,
// a type conversion, or not resolvable.
func PkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}
