// Package golife implements the goroutine- and channel-lifecycle
// analyzer for the service layer (policy.ServicePackages). The cycle
// path forbids goroutines outright (detlint); the sweep service spawns
// them deliberately, so golife verifies that none of them leaks:
//
//   - Every `go` statement must be tied to a lifecycle: a
//     (*sync.WaitGroup).Add call textually before the spawn in the same
//     function body, with the spawned function — when its body is
//     visible — deferring a matching (*sync.WaitGroup).Done. A spawn
//     that is genuinely unowned carries
//     //smt:fire-and-forget(reason) on the `go` line (or the line
//     above); an empty reason is itself a diagnostic, because the
//     reason is the audit trail.
//
//   - close(ch) on a channel-typed struct field or package variable is
//     allowed only from the function named in the channel's
//     //smt:close-owner(Recv.Method) annotation (comma-separated list
//     for multiple owners). Closing an unannotated shared channel, or
//     closing from a non-owner, is a diagnostic — double-close panics
//     come from exactly this ambiguity. Channels held in locals never
//     escape the function, so they are exempt.
//
// The checks are syntactic and intra-procedural by design: a WaitGroup
// visible at the spawn site is the repository's lifecycle idiom
// (DESIGN.md §10), and an analyzer that demanded whole-program escape
// analysis to bless it would reject the idiom it exists to enforce.
package golife

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/policy"
)

// Analyzer is the golife instance.
var Analyzer = &framework.Analyzer{
	Name: "golife",
	Doc:  "require every go statement in service packages to be WaitGroup-tracked or annotated //smt:fire-and-forget(reason), and every shared channel close to come from its //smt:close-owner",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !policy.IsServicePackage(framework.NormalizePkgPath(pass.Pkg.Path())) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		dirs := framework.FileDirectives(pass.Fset, file)
		owners := collectCloseOwners(pass, file, dirs)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, dirs, owners)
		}
	}
	return nil
}

// collectCloseOwners resolves //smt:close-owner annotations on
// channel-typed struct fields and package variables in one file,
// reporting malformed ones.
func collectCloseOwners(pass *framework.Pass, file *ast.File, dirs framework.LineDirectives) map[*types.Var][]string {
	owners := map[*types.Var][]string{}
	if dirs["close-owner"] == nil {
		return owners
	}
	record := func(name *ast.Ident, pos token.Pos) {
		arg, ok := dirs.Args(pass.Fset, pos, "close-owner")
		if !ok {
			return
		}
		v, ok := pass.TypesInfo.Defs[name].(*types.Var)
		if !ok {
			return
		}
		if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
			pass.Reportf(pos, "golife: //smt:close-owner on %s, which is not a channel", name.Name)
			return
		}
		list := splitList(arg)
		if len(list) == 0 {
			pass.Reportf(pos, "golife: //smt:close-owner on %s names no owner", name.Name)
			return
		}
		owners[v] = list
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				for _, name := range field.Names {
					record(name, field.Pos())
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				record(name, n.Pos())
			}
		}
		return true
	})
	return owners
}

// checkFunc walks one function body checking go statements and closes.
func checkFunc(pass *framework.Pass, fn *ast.FuncDecl, dirs framework.LineDirectives, owners map[*types.Var][]string) {
	key := funcKey(fn)
	// addBefore records, per statement position, whether a wg.Add call
	// appears earlier in the same body — position order is statement
	// order within one file.
	var addPositions []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupMethod(pass.TypesInfo, call, "Add") {
			addPositions = append(addPositions, call.Pos())
		}
		return true
	})
	hasAddBefore := func(pos token.Pos) bool {
		for _, p := range addPositions {
			if p < pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			checkGo(pass, n, dirs, hasAddBefore)
		case *ast.CallExpr:
			checkClose(pass, n, owners, key)
		}
		return true
	})
}

// checkGo enforces the lifecycle rule for one go statement.
func checkGo(pass *framework.Pass, g *ast.GoStmt, dirs framework.LineDirectives, hasAddBefore func(token.Pos) bool) {
	if reason, ok := dirs.Args(pass.Fset, g.Pos(), "fire-and-forget"); ok {
		if reason == "" {
			pass.Reportf(g.Pos(), "golife: //smt:fire-and-forget needs a reason — the annotation is the audit trail for the leaked goroutine")
		}
		return
	}
	if !hasAddBefore(g.Pos()) {
		pass.Reportf(g.Pos(), "golife: go statement with no sync.WaitGroup Add visible before it in this function: track the goroutine, or annotate //smt:fire-and-forget(reason)")
		return
	}
	// The spawn is Add-tracked; when the spawned body is visible, it
	// must hand the count back with a deferred Done.
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := framework.CalleeFunc(pass.TypesInfo, g.Call); fn != nil {
			if decl := localFuncDecl(pass, fn); decl != nil {
				body = decl.Body
			}
		}
	}
	if body == nil {
		return // foreign or dynamic callee: trusted given the Add
	}
	if !hasDeferredDone(pass.TypesInfo, body) {
		pass.Reportf(g.Pos(), "golife: WaitGroup-tracked goroutine whose body never defers Done: the Add is never returned and Wait hangs")
	}
}

// checkClose enforces close-ownership for one call expression.
func checkClose(pass *framework.Pass, call *ast.CallExpr, owners map[*types.Var][]string, enclosing string) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	v := sharedChanVar(pass.TypesInfo, call.Args[0])
	if v == nil {
		return // local channel: cannot be closed by anyone else
	}
	list, annotated := owners[v]
	if !annotated {
		pass.Reportf(call.Pos(), "golife: close of shared channel %s with no //smt:close-owner annotation: declare the single owner on the channel's declaration", v.Name())
		return
	}
	for _, owner := range list {
		if owner == enclosing {
			return
		}
	}
	pass.Reportf(call.Pos(), "golife: close of %s from %s, but its //smt:close-owner is %s", v.Name(), enclosing, joinList(list))
}

// sharedChanVar resolves expr to the struct field or package-level
// variable it names, or nil for locals and unrecognized shapes.
func sharedChanVar(info *types.Info, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		s, ok := info.Selections[e]
		if ok && s.Kind() == types.FieldVal {
			v, _ := s.Obj().(*types.Var)
			return v
		}
		// Qualified package-level var (pkg.Ch).
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}

// isWaitGroupMethod reports whether call is (*sync.WaitGroup).name.
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := framework.NamedOf(recv.Type())
	return named != nil && named.Obj().Name() == "WaitGroup"
}

// hasDeferredDone reports whether body (or a FuncLit it defers) defers
// a (*sync.WaitGroup).Done call.
func hasDeferredDone(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if isWaitGroupMethod(info, d.Call, "Done") {
			found = true
		}
		return !found
	})
	return found
}

// localFuncDecl finds fn's declaration in the package under analysis.
func localFuncDecl(pass *framework.Pass, fn *types.Func) *ast.FuncDecl {
	if fn.Pkg() != pass.Pkg {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && pass.TypesInfo.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// funcKey renders a FuncDecl as "Name" or "Recv.Name" — the grammar
// //smt:close-owner arguments use.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

func splitList(arg string) []string {
	var out []string
	for _, s := range strings.Split(arg, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func joinList(list []string) string {
	return strings.Join(list, ",")
}
