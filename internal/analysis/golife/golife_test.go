package golife_test

import (
	"testing"

	"smtsim/internal/analysis/analysistest"
	"smtsim/internal/analysis/golife"
)

func TestGolife(t *testing.T) {
	analysistest.Run(t, "testdata", golife.Analyzer,
		"smtsim/internal/sweepd",
		"smtsim/internal/report",
	)
}
