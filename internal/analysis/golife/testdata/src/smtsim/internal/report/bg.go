// Package report is outside policy.ServicePackages: golife must stay
// silent here even on an untracked spawn and an unannotated close.
package report

var events = make(chan int)

// Background leaks freely — not a service package.
func Background() {
	go func() {
		close(events)
	}()
}
