// Package sweepd is a miniature stand-in exercising golife: WaitGroup
// tracking of go statements, fire-and-forget audits, and channel close
// ownership. Its import path is on policy.ServicePackages, so the
// analyzer is live here.
package sweepd

import "sync"

// Pool owns a worker fleet and its channels.
type Pool struct {
	wg sync.WaitGroup
	//smt:close-owner(Pool.Stop)
	quit chan struct{}
	//smt:close-owner(Pool.Stop, Pool.Abort)
	out chan int
}

// Start spawns tracked workers.
func (p *Pool) Start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	<-p.quit
}

// StartUntracked leaks a goroutine.
func (p *Pool) StartUntracked() {
	go p.worker() // want `golife: go statement with no sync\.WaitGroup Add visible before it`
}

// StartLit tracks an inline literal correctly.
func (p *Pool) StartLit() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		<-p.quit
	}()
}

// StartLitNoDone takes the Add but never gives it back.
func (p *Pool) StartLitNoDone() {
	p.wg.Add(1)
	go func() { // want `golife: WaitGroup-tracked goroutine whose body never defers Done`
		<-p.quit
	}()
}

// Fire is an audited leak.
func (p *Pool) Fire() {
	//smt:fire-and-forget(metrics flusher; exits with the process)
	go p.worker()
}

// FireNoReason forgets the audit trail.
func (p *Pool) FireNoReason() {
	//smt:fire-and-forget
	go p.worker() // want `golife: //smt:fire-and-forget needs a reason`
}

// Stop is the declared owner of both channels.
func (p *Pool) Stop() {
	close(p.quit)
	close(p.out)
}

// Abort co-owns out.
func (p *Pool) Abort() {
	close(p.out)
}

// Leak closes a channel it does not own.
func (p *Pool) Leak() {
	close(p.quit) // want `golife: close of quit from Pool\.Leak, but its //smt:close-owner is Pool\.Stop`
}

// Feed has an unannotated shared channel.
type Feed struct {
	ch chan int
}

// Close closes without a declared owner.
func (f *Feed) Close() {
	close(f.ch) // want `golife: close of shared channel ch with no //smt:close-owner annotation`
}

// LocalClose closes a channel that never escapes: exempt.
func LocalClose() {
	ch := make(chan int)
	close(ch)
}
