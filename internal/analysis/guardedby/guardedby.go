// Package guardedby implements the lock-discipline analyzer for the
// service layer. The cycle path forbids concurrency outright (detlint);
// the sweep service is concurrent by design, so its discipline is
// declared and verified instead: a struct field annotated
//
//	queue []string //smt:guarded-by(mu)
//
// may only be read or written while the named mutex is statically held.
// The annotation argument names a sibling field of the same struct, a
// Type.Field pair in the same package, or a package-level mutex
// variable; the mutex must be a sync.Mutex or sync.RWMutex.
//
// The check is an intra-procedural lock-set dataflow over the same
// AST+types layer the other analyzers use — a CFG-lite, not a full
// flow graph. Statements are walked in order; mu.Lock()/mu.RLock() add
// the lock to the set, mu.Unlock()/mu.RUnlock() remove it, and
// `defer mu.Unlock()` pins it held to the end of the function. Branches
// fork the set and merge by intersection, with early-terminating arms
// (return, panic, break/continue) excluded from the merge — so the
// idiomatic `if hit { mu.Unlock(); return }` early-exit is tracked
// precisely. Loops are analyzed with their entry set (first-iteration
// semantics); a body that releases a lock mid-loop and re-touches
// guarded state on the next iteration is beyond the lite dataflow —
// `make race` remains the runtime authority. Function literals run on
// their own goroutine or at an unknown time, so their bodies are
// analyzed with an empty lock set. The lock set is keyed by
// (package, type, field), not by instance: two distinct values of one
// type share a key, which is unsound in principle and fine for a lint
// over single-instance service state.
//
// The analyzer is interprocedural through two summaries per function,
// exported as gob facts (LockSummary) so cross-package callers are
// checked transitively under go vet's .vetx protocol:
//
//   - Requires: declared with //smt:locked(mu) in the doc comment — the
//     precondition that the caller already holds mu. The annotated
//     function is analyzed with the lock pre-held; every call site,
//     local or cross-package, is rejected unless the lock is in its set.
//   - Acquires: computed — the locks a function takes itself, directly
//     or through any statically resolvable callee (fixpoint over the
//     local call graph, imported facts standing in for foreign
//     callees). Calling a function that acquires a lock the caller
//     already holds is reported as a potential self-deadlock.
//
// Escape hatch: //smt:nolock-audited on the offending line (or the line
// above), or in a function's doc comment to waive the whole body, with
// a reason — e.g. initialization of a value not yet published to any
// other goroutine.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"smtsim/internal/analysis/framework"
)

// Analyzer is the guardedby instance.
var Analyzer = &framework.Analyzer{
	Name:      "guardedby",
	Doc:       "require //smt:guarded-by(mu) fields to be accessed only under their mutex, with //smt:locked preconditions and acquires-summaries crossing packages as facts",
	Run:       run,
	FactTypes: []framework.Fact{(*LockSummary)(nil)},
}

// LockSummary is the per-function fact: the locks a caller must hold
// (from //smt:locked) and the locks the function takes itself,
// transitively. Lock names are "pkg/path.Type.Field" (or
// "pkg/path.var" for package-level mutexes).
type LockSummary struct {
	Requires []string
	Acquires []string
}

// AFact marks LockSummary as a framework fact.
func (*LockSummary) AFact() {}

// holdMode distinguishes read (RLock) from write (Lock) holds.
type holdMode uint8

const (
	holdRead  holdMode = 1
	holdWrite holdMode = 2
)

// lockset maps lock keys to how they are held at one program point.
type lockset map[string]holdMode

func (ls lockset) clone() lockset {
	c := make(lockset, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

// intersect narrows ls to the locks also held (at the weaker mode) in
// other — the branch-merge operation.
func (ls lockset) intersect(other lockset) lockset {
	out := lockset{}
	for k, v := range ls {
		if o, ok := other[k]; ok {
			if o < v {
				v = o
			}
			out[k] = v
		}
	}
	return out
}

// guardInfo is one annotated field: the lock that guards it.
type guardInfo struct {
	lock string // lock key
}

// pkgState is the per-package analysis state.
type pkgState struct {
	pass    *framework.Pass
	path    string
	guarded map[*types.Var]guardInfo // annotated fields declared here
	sums    map[*types.Func]*fnSummary
	order   []*types.Func
}

// fnSummary accumulates one function's verdicts.
type fnSummary struct {
	fn       *ast.FuncDecl
	requires []string
	acquires map[string]bool
	// calls records every statically resolved call with the lock set
	// held at the site, judged after the acquires fixpoint.
	calls []callSite
}

type callSite struct {
	pos    token.Pos
	callee *types.Func
	held   lockset
}

func run(pass *framework.Pass) error {
	st := &pkgState{
		pass:    pass,
		path:    framework.NormalizePkgPath(pass.Pkg.Path()),
		guarded: map[*types.Var]guardInfo{},
		sums:    map[*types.Func]*fnSummary{},
	}

	// Phase 1: collect //smt:guarded-by field annotations (and validate
	// that the named mutex resolves).
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		st.collectGuards(file)
	}

	// Phase 2: walk every function with the lock-set dataflow,
	// reporting unguarded accesses and summarizing locks.
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		dirs := framework.FileDirectives(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			st.checkFunc(fn, obj, dirs)
		}
	}

	// Phase 3: propagate Acquires over the local call graph to a
	// fixpoint (imported facts stand in for foreign callees).
	st.propagateAcquires()

	// Phase 4: judge recorded call sites against the settled summaries,
	// and export facts for this package's functions.
	st.judgeCalls()
	st.exportFacts()
	return nil
}

// --- annotation collection --------------------------------------------

// collectGuards finds //smt:guarded-by(lock) annotations on struct
// fields and resolves each to a lock key.
func (st *pkgState) collectGuards(file *ast.File) {
	dirs := framework.FileDirectives(st.pass.Fset, file)
	if dirs["guarded-by"] == nil {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		structType, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range structType.Fields.List {
			arg, ok := dirs.Args(st.pass.Fset, field.Pos(), "guarded-by")
			if !ok {
				continue
			}
			lock, err := st.resolveLockArg(arg, ts)
			if err != "" {
				st.pass.Reportf(field.Pos(), "guardedby: bad //smt:guarded-by(%s) on %s.%s: %s",
					arg, ts.Name.Name, fieldNames(field), err)
				continue
			}
			for _, name := range field.Names {
				if v, ok := st.pass.TypesInfo.Defs[name].(*types.Var); ok {
					st.guarded[v] = guardInfo{lock: lock}
				}
			}
		}
		return true
	})
}

func fieldNames(f *ast.Field) string {
	var names []string
	for _, n := range f.Names {
		names = append(names, n.Name)
	}
	return strings.Join(names, ",")
}

// resolveLockArg resolves an annotation argument to a lock key:
// "mu" (sibling field of the annotated struct), "Type.Field" (struct in
// the same package), or "muVar" (package-level mutex variable). The
// empty error string means success.
func (st *pkgState) resolveLockArg(arg string, within *ast.TypeSpec) (lock, problem string) {
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return "", "empty lock name"
	}
	if typeName, fieldName, ok := strings.Cut(arg, "."); ok {
		obj := st.pass.Pkg.Scope().Lookup(typeName)
		tn, isType := obj.(*types.TypeName)
		if !isType {
			return "", "no type " + typeName + " in this package"
		}
		return st.lockKeyForField(tn, fieldName)
	}
	// Sibling field of the annotated struct.
	if within != nil {
		if tn, ok := st.pass.TypesInfo.Defs[within.Name].(*types.TypeName); ok {
			if key, problem := st.lockKeyForField(tn, arg); problem == "" {
				return key, ""
			}
		}
	}
	// Package-level mutex variable.
	if v, ok := st.pass.Pkg.Scope().Lookup(arg).(*types.Var); ok && isMutexType(v.Type()) {
		return st.path + "." + arg, ""
	}
	return "", "no sibling mutex field, same-package Type.Field, or package-level mutex named " + arg
}

// lockKeyForField builds the key for a named struct's mutex field.
func (st *pkgState) lockKeyForField(tn *types.TypeName, fieldName string) (lock, problem string) {
	s, ok := framework.Deref(tn.Type()).Underlying().(*types.Struct)
	if !ok {
		return "", tn.Name() + " is not a struct"
	}
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if f.Name() != fieldName {
			continue
		}
		if !isMutexType(f.Type()) {
			return "", tn.Name() + "." + fieldName + " is not a sync.Mutex or sync.RWMutex"
		}
		return st.path + "." + tn.Name() + "." + fieldName, ""
	}
	return "", tn.Name() + " has no field " + fieldName
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex
// (pointers included).
func isMutexType(t types.Type) bool {
	named := framework.NamedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// --- per-function dataflow --------------------------------------------

// fnChecker walks one function body with a flowing lock set.
type fnChecker struct {
	st     *pkgState
	fn     *ast.FuncDecl
	dirs   framework.LineDirectives
	sum    *fnSummary
	waived bool // //smt:nolock-audited on the whole function
}

func (st *pkgState) checkFunc(fn *ast.FuncDecl, obj *types.Func, dirs framework.LineDirectives) {
	sum := &fnSummary{fn: fn, acquires: map[string]bool{}}
	st.sums[obj] = sum
	st.order = append(st.order, obj)

	c := &fnChecker{st: st, fn: fn, dirs: dirs, sum: sum}
	_, c.waived = framework.FuncDirective(fn, "nolock-audited")

	entry := lockset{}
	if arg, ok := framework.FuncDirective(fn, "locked"); ok {
		for _, name := range strings.Split(arg, ",") {
			lock, problem := st.resolveLockedArg(strings.TrimSpace(name), fn)
			if problem != "" {
				st.pass.Reportf(fn.Pos(), "guardedby: bad //smt:locked(%s) on %s: %s",
					arg, fn.Name.Name, problem)
				continue
			}
			entry[lock] = holdWrite
			sum.requires = append(sum.requires, lock)
		}
	}
	c.walkBlock(fn.Body.List, entry)
}

// resolveLockedArg resolves a //smt:locked argument against the
// function's receiver type (methods) or the package scope.
func (st *pkgState) resolveLockedArg(arg string, fn *ast.FuncDecl) (lock, problem string) {
	if fn.Recv != nil && len(fn.Recv.List) > 0 && !strings.Contains(arg, ".") {
		t := fn.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			if tn, ok := st.pass.TypesInfo.Uses[id].(*types.TypeName); ok {
				return st.lockKeyForField(tn, arg)
			}
			if tn, ok := st.pass.TypesInfo.Defs[id].(*types.TypeName); ok {
				return st.lockKeyForField(tn, arg)
			}
		}
	}
	return st.resolveLockArg(arg, nil)
}

// walkBlock processes stmts in order; reports whether control never
// reaches the end (every path terminated).
func (c *fnChecker) walkBlock(stmts []ast.Stmt, ls lockset) bool {
	for _, s := range stmts {
		if c.walkStmt(s, ls) {
			return true
		}
	}
	return false
}

// walkStmt processes one statement, mutating ls in place, and reports
// whether the statement always terminates control flow.
func (c *fnChecker) walkStmt(stmt ast.Stmt, ls lockset) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if c.applyLockOp(call, ls, false) {
				return false
			}
			if isPanicCall(c.st.pass.TypesInfo, call) {
				c.checkRead(s.X, ls)
				return true
			}
		}
		c.checkRead(s.X, ls)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.checkRead(rhs, ls)
		}
		for _, lhs := range s.Lhs {
			c.checkWrite(lhs, ls)
		}
	case *ast.IncDecStmt:
		c.checkWrite(s.X, ls)
	case *ast.DeferStmt:
		// defer mu.Unlock() pins the lock held to function exit; other
		// deferred calls run with an unknown lock set, so their bodies
		// and edges are judged lock-free (conservative).
		if c.applyLockOp(s.Call, ls, true) {
			return false
		}
		for _, a := range s.Call.Args {
			c.checkRead(a, ls)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.walkBlock(lit.Body.List, lockset{})
		} else {
			c.checkRead(s.Call.Fun, ls)
		}
	case *ast.GoStmt:
		// The spawned function runs on another goroutine: empty set.
		for _, a := range s.Call.Args {
			c.checkRead(a, ls)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.walkBlock(lit.Body.List, lockset{})
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkRead(r, ls)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto end this path's straight line
	case *ast.BlockStmt:
		return c.walkBlock(s.List, ls)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, ls)
		}
		c.checkRead(s.Cond, ls)
		bodyLs := ls.clone()
		tBody := c.walkBlock(s.Body.List, bodyLs)
		if s.Else == nil {
			if !tBody {
				replace(ls, ls.intersect(bodyLs))
			}
			return false
		}
		elseLs := ls.clone()
		tElse := c.walkStmt(s.Else, elseLs)
		switch {
		case tBody && tElse:
			return true
		case tBody:
			replace(ls, elseLs)
		case tElse:
			replace(ls, bodyLs)
		default:
			replace(ls, bodyLs.intersect(elseLs))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, ls)
		}
		if s.Cond != nil {
			c.checkRead(s.Cond, ls)
		}
		bodyLs := ls.clone()
		c.walkBlock(s.Body.List, bodyLs)
		if s.Post != nil {
			c.walkStmt(s.Post, bodyLs)
		}
		replace(ls, ls.intersect(bodyLs))
	case *ast.RangeStmt:
		c.checkRead(s.X, ls)
		bodyLs := ls.clone()
		c.walkBlock(s.Body.List, bodyLs)
		replace(ls, ls.intersect(bodyLs))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, ls)
		}
		if s.Tag != nil {
			c.checkRead(s.Tag, ls)
		}
		return c.walkClauses(s.Body, ls, !switchHasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, ls)
		}
		return c.walkClauses(s.Body, ls, !switchHasDefault(s.Body))
	case *ast.SelectStmt:
		// A select always runs exactly one case (blocking until then).
		return c.walkClauses(s.Body, ls, false)
	case *ast.SendStmt:
		c.checkRead(s.Chan, ls)
		c.checkRead(s.Value, ls)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, ls)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkRead(v, ls)
					}
				}
			}
		}
	}
	return false
}

// walkClauses merges a switch/select body: the out-set is the
// intersection of every non-terminating clause (plus the entry set when
// fallThroughEntry — a switch without a default may match nothing).
// Terminates only when every clause terminates and entry cannot fall
// through.
func (c *fnChecker) walkClauses(body *ast.BlockStmt, ls lockset, fallThroughEntry bool) bool {
	var outs []lockset
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.checkRead(e, ls)
			}
			stmts = cl.Body
		case *ast.CommClause:
			cls := ls.clone()
			if cl.Comm != nil {
				c.walkStmt(cl.Comm, cls)
			}
			if !c.walkBlock(cl.Body, cls) {
				outs = append(outs, cls)
			}
			continue
		default:
			continue
		}
		cls := ls.clone()
		if !c.walkBlock(stmts, cls) {
			outs = append(outs, cls)
		}
	}
	if fallThroughEntry {
		outs = append(outs, ls.clone())
	}
	if len(outs) == 0 {
		return true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = merged.intersect(o)
	}
	replace(ls, merged)
	return false
}

// replace overwrites ls's contents with src (both alias callers' maps).
func replace(ls, src lockset) {
	for k := range ls {
		delete(ls, k)
	}
	for k, v := range src {
		ls[k] = v
	}
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// applyLockOp mutates ls when call is mu.Lock/RLock/Unlock/RUnlock on a
// keyable mutex, and reports whether it was one. Deferred unlocks pin
// the lock (no removal); TryLock is ignored — its success is a branch
// the lite dataflow does not follow.
func (c *fnChecker) applyLockOp(call *ast.CallExpr, ls lockset, deferred bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.st.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isMutexType(recv.Type()) {
		return false
	}
	key := c.st.lockKeyOf(sel.X)
	if key == "" {
		return true // a mutex op on an unkeyable expression: no tracking
	}
	switch fn.Name() {
	case "Lock":
		ls[key] = holdWrite
		c.sum.acquires[key] = true
	case "RLock":
		ls[key] = holdRead
		c.sum.acquires[key] = true
	case "Unlock", "RUnlock":
		if !deferred {
			delete(ls, key)
		}
	default:
		return true // TryLock &c.: recognized, untracked
	}
	return true
}

// lockKeyOf renders the expression a mutex method was called on as a
// lock key: base.mu (field selector) or mu (package-level var).
// Unkeyable shapes (local mutexes, embedded locks) return "".
func (st *pkgState) lockKeyOf(expr ast.Expr) string {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		s, ok := st.pass.TypesInfo.Selections[e]
		if !ok || s.Kind() != types.FieldVal {
			return ""
		}
		field, ok := s.Obj().(*types.Var)
		if !ok || field.Pkg() == nil {
			return ""
		}
		named := framework.NamedOf(s.Recv())
		if named == nil {
			return ""
		}
		return framework.NormalizePkgPath(field.Pkg().Path()) + "." + named.Obj().Name() + "." + field.Name()
	case *ast.Ident:
		v, ok := st.pass.TypesInfo.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return ""
		}
		return framework.NormalizePkgPath(v.Pkg().Path()) + "." + v.Name()
	}
	return ""
}

// --- access checking --------------------------------------------------

// checkRead walks expr, requiring any hold for each guarded field read
// and recording call edges. Function literals are analyzed with an
// empty lock set (they run at an unknown time, possibly on another
// goroutine).
func (c *fnChecker) checkRead(expr ast.Expr, ls lockset) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walkBlock(n.Body.List, lockset{})
			return false
		case *ast.CallExpr:
			c.recordCall(n, ls)
		case *ast.SelectorExpr:
			c.checkAccess(n, ls, false)
		}
		return true
	})
}

// checkWrite requires a write hold along the selector chain of an
// assignment target, then read-checks any embedded index expressions.
func (c *fnChecker) checkWrite(lhs ast.Expr, ls lockset) {
	lhs = ast.Unparen(lhs)
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			c.checkRead(e.Index, ls)
			lhs = ast.Unparen(e.X)
			continue
		case *ast.StarExpr:
			lhs = ast.Unparen(e.X)
			continue
		case *ast.SelectorExpr:
			c.checkAccess(e, ls, true)
			lhs = ast.Unparen(e.X)
			continue
		}
		return
	}
}

// checkAccess judges one selector against the guarded-field table.
func (c *fnChecker) checkAccess(sel *ast.SelectorExpr, ls lockset, write bool) {
	s, ok := c.st.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	g, guarded := c.st.guarded[field]
	if !guarded {
		return
	}
	mode := ls[g.lock]
	if write && mode == holdWrite {
		return
	}
	if !write && mode >= holdRead {
		return
	}
	if c.waived || c.dirs.Allowed(c.st.pass.Fset, sel.Pos(), "nolock-audited") {
		return
	}
	verb := "read"
	needs := "it"
	if write {
		verb = "write"
		if mode == holdRead {
			needs = "it for writing (RLock held)"
		}
	}
	c.st.pass.Reportf(sel.Sel.Pos(),
		"guardedby: %s of %s (guarded by %s) without holding %s: lock the mutex, or annotate //smt:nolock-audited with the reason it is safe",
		verb, field.Name(), shortLock(g.lock), needs)
}

// recordCall stores a resolved call edge with the current lock set for
// post-fixpoint judgment.
func (c *fnChecker) recordCall(call *ast.CallExpr, ls lockset) {
	callee := framework.CalleeFunc(c.st.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	c.sum.calls = append(c.sum.calls, callSite{pos: call.Pos(), callee: callee, held: ls.clone()})
}

// --- summaries, propagation, judgment ---------------------------------

// propagateAcquires unions callee acquires into callers to a fixpoint.
func (st *pkgState) propagateAcquires() {
	for changed := true; changed; {
		changed = false
		for _, obj := range st.order {
			s := st.sums[obj]
			for _, cs := range s.calls {
				for _, lock := range st.calleeAcquires(cs.callee) {
					if !s.acquires[lock] {
						s.acquires[lock] = true
						changed = true
					}
				}
			}
		}
	}
}

// calleeAcquires resolves a callee's acquires set: the local summary
// when it lives here, its imported fact otherwise.
func (st *pkgState) calleeAcquires(callee *types.Func) []string {
	if s, ok := st.sums[callee]; ok {
		return sortedKeys(s.acquires)
	}
	var f LockSummary
	if st.pass.ImportFact(callee, &f) {
		return f.Acquires
	}
	return nil
}

// calleeRequires resolves a callee's declared preconditions.
func (st *pkgState) calleeRequires(callee *types.Func) []string {
	if s, ok := st.sums[callee]; ok {
		return s.requires
	}
	var f LockSummary
	if st.pass.ImportFact(callee, &f) {
		return f.Requires
	}
	return nil
}

// judgeCalls enforces, at every recorded call site, the callee's
// //smt:locked preconditions and the no-self-deadlock rule.
func (st *pkgState) judgeCalls() {
	for _, obj := range st.order {
		s := st.sums[obj]
		for _, cs := range s.calls {
			for _, lock := range st.calleeRequires(cs.callee) {
				if cs.held[lock] == 0 {
					st.pass.Reportf(cs.pos,
						"guardedby: call to %s requires %s held (//smt:locked): acquire it first",
						funcLabel(st.pass, cs.callee), shortLock(lock))
				}
			}
			for _, lock := range st.calleeAcquires(cs.callee) {
				if cs.held[lock] != 0 && !requiresLock(st.calleeRequires(cs.callee), lock) {
					st.pass.Reportf(cs.pos,
						"guardedby: call to %s acquires %s, which is already held here — potential self-deadlock",
						funcLabel(st.pass, cs.callee), shortLock(lock))
				}
			}
		}
	}
}

func requiresLock(requires []string, lock string) bool {
	for _, r := range requires {
		if r == lock {
			return true
		}
	}
	return false
}

// exportFacts publishes each function's LockSummary for dependents.
// A function whose summary is empty exports nothing.
func (st *pkgState) exportFacts() {
	for _, obj := range st.order {
		s := st.sums[obj]
		acq := sortedKeys(s.acquires)
		if len(s.requires) == 0 && len(acq) == 0 {
			continue
		}
		req := append([]string(nil), s.requires...)
		sort.Strings(req)
		st.pass.ExportFact(obj, &LockSummary{Requires: req, Acquires: acq})
	}
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// shortLock trims the module prefix for readable diagnostics while
// keeping the path unambiguous.
func shortLock(lock string) string {
	return lock
}

// funcLabel renders a callee as Recv.Name or Name, package-qualified
// when foreign.
func funcLabel(pass *framework.Pass, fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if named := framework.NamedOf(recv.Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
