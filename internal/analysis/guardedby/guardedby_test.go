package guardedby_test

import (
	"testing"

	"smtsim/internal/analysis/analysistest"
	"smtsim/internal/analysis/guardedby"
)

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer,
		"smtsim/internal/cellstore",
		"smtsim/internal/sweepd",
	)
}

// TestGuardedbyFactsGob re-runs the cross-package fixture with the fact
// store gob-encoded and decoded between the two packages, proving the
// LockSummary facts survive the wire format go vet's .vetx files use —
// the same round trip the PR 7 scratch→fu allocfree chain proves.
func TestGuardedbyFactsGob(t *testing.T) {
	analysistest.RunGob(t, "testdata", guardedby.Analyzer,
		"smtsim/internal/cellstore",
		"smtsim/internal/sweepd",
	)
}
