// Package cellstore is a miniature stand-in exercising the guardedby
// annotation grammar and lock-set dataflow: sibling-field guards,
// //smt:locked preconditions, early-unlock branches, self-deadlock
// through acquires summaries, and the nolock-audited escapes.
package cellstore

import "sync"

// Meter counts hits under a mutex.
type Meter struct {
	Mu sync.Mutex
	//smt:guarded-by(Mu)
	hits int
	//smt:guarded-by(Mu)
	peak int
}

// Add increments the counter; the caller holds the lock.
//
//smt:locked(Mu)
func (m *Meter) Add(n int) {
	m.hits += n
}

// Bump locks around the whole update.
func (m *Meter) Bump() {
	m.Mu.Lock()
	defer m.Mu.Unlock()
	m.hits++
	if m.hits > m.peak {
		m.peak = m.hits
	}
}

// Snapshot uses the early-unlock hit path the store's Get uses.
func (m *Meter) Snapshot(fast bool) int {
	m.Mu.Lock()
	if fast {
		n := m.hits
		m.Mu.Unlock()
		return n
	}
	n := m.hits + m.peak
	m.Mu.Unlock()
	return n
}

// Racy reads without the lock.
func (m *Meter) Racy() int {
	return m.hits // want `guardedby: read of hits \(guarded by smtsim/internal/cellstore\.Meter\.Mu\) without holding it`
}

// EarlyUnlock writes after the lock is provably gone.
func (m *Meter) EarlyUnlock(flush bool) {
	m.Mu.Lock()
	if flush {
		m.hits = 0
		m.Mu.Unlock()
		return
	}
	m.Mu.Unlock()
	m.hits++ // want `guardedby: write of hits .* without holding it`
}

// Nested calls a self-locking method while already holding the lock.
func (m *Meter) Nested() {
	m.Mu.Lock()
	defer m.Mu.Unlock()
	m.Bump() // want `guardedby: call to Meter\.Bump acquires smtsim/internal/cellstore\.Meter\.Mu, which is already held`
}

// CallsAddUnlocked violates Add's declared precondition.
func (m *Meter) CallsAddUnlocked() {
	m.Add(1) // want `guardedby: call to Meter\.Add requires smtsim/internal/cellstore\.Meter\.Mu held`
}

// AddLocked satisfies it.
func (m *Meter) AddLocked() {
	m.Mu.Lock()
	m.Add(1)
	m.Mu.Unlock()
}

// NewMeter initializes a value no other goroutine can see yet.
//
//smt:nolock-audited — fresh Meter, unpublished until return
func NewMeter(seed int) *Meter {
	m := &Meter{}
	m.hits = seed
	return m
}

// LineAudited escapes one line only.
func (m *Meter) LineAudited() int {
	n := m.hits //smt:nolock-audited — test-only accessor, single-threaded harness
	return n
}
