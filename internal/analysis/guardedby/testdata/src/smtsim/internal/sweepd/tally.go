// Package sweepd is the cross-package half of the guardedby fixtures:
// every requirement checked here arrives as a LockSummary fact exported
// while the cellstore fixture package was analyzed — nothing in this
// file names a lock except by acquiring it.
package sweepd

import "smtsim/internal/cellstore"

// Tally calls a lock-requiring method without the lock; the
// precondition crosses the package boundary as a fact.
func Tally(m *cellstore.Meter) {
	m.Add(1) // want `guardedby: call to cellstore\.Meter\.Add requires smtsim/internal/cellstore\.Meter\.Mu held`
}

// TallyLocked holds the foreign mutex first.
func TallyLocked(m *cellstore.Meter) {
	m.Mu.Lock()
	m.Add(1)
	m.Mu.Unlock()
}

// Deadlock wraps a self-locking foreign method in its own lock; the
// acquires summary crosses as a fact too.
func Deadlock(m *cellstore.Meter) {
	m.Mu.Lock()
	defer m.Mu.Unlock()
	m.Bump() // want `guardedby: call to cellstore\.Meter\.Bump acquires smtsim/internal/cellstore\.Meter\.Mu, which is already held`
}
