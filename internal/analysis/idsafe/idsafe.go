// Package idsafe implements the id-staleness analyzer for the
// structure-of-arrays cycle path. A uop id (uop.ID, an int32 into
// uop.Bank) names a ROB slot, not an instruction: the slot is recycled
// the moment it drains, so a stored id may outlive its referent. The
// bank's discipline is that stale references identify themselves by
// token mismatch — Reset zeroes GSeq (live sequence numbers start at
// one) and flushes set Squashed — but only if the code holding the id
// actually checks before touching the record.
//
// The rule: in a cycle-path package, a function that materializes a
// record with uop.Bank.Get must read the result's GSeq or Squashed
// token before (or in the same statement as) any other use of the
// record. "Same statement" deliberately blesses the idiomatic combined
// guard (`if !u.InIQ || u.Squashed { continue }`): the check is
// flow-insensitive by position, a discipline gate rather than a
// dataflow proof — simsan's per-cycle sweeps remain the runtime
// authority.
//
// Escape hatch: //smt:trusted-id, in the function's doc comment or as
// a line directive on the Get call, with a reason. It is the audited
// claim that the id is live by construction — the owner structures
// (ROB ring, IQ entry list, LSQ ring, DAB, dispatch buffer) only hold
// live ids, so their accessors dereference without a token check.
package idsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/policy"
)

// Analyzer is the idsafe instance.
var Analyzer = &framework.Analyzer{
	Name: "idsafe",
	Doc:  "require a GSeq/Squashed token check before using a uop.Bank.Get record, with //smt:trusted-id as the audited escape",
	Run:  run,
}

// bankPkg/bankType/getName identify the guarded accessor.
const (
	bankPkg  = "smtsim/internal/uop"
	bankType = "Bank"
	getName  = "Get"
)

// tokenFields are the staleness tokens; reading either counts as the
// validation.
var tokenFields = map[string]bool{"GSeq": true, "Squashed": true}

func run(pass *framework.Pass) error {
	if !policy.IsCyclePath(framework.NormalizePkgPath(pass.Pkg.Path())) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		dirs := framework.FileDirectives(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, trusted := framework.FuncDirective(fn, "trusted-id"); trusted {
				continue
			}
			checkFunc(pass, dirs, fn)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, dirs framework.LineDirectives, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	// bound maps each Get call that is the single RHS of an assignment
	// to the variable receiving it; selofGet maps Get calls consumed
	// directly through a selector (bank.Get(id).Field).
	bound := map[*ast.CallExpr]*types.Var{}
	selOfGet := map[*ast.CallExpr]*ast.SelectorExpr{}
	var gets []*ast.CallExpr

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBankGet(info, n) {
				gets = append(gets, n)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBankGet(info, call) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				v, _ := info.Defs[id].(*types.Var)
				if v == nil {
					v, _ = info.Uses[id].(*types.Var)
				}
				if v != nil {
					bound[call] = v
				}
			}
		case *ast.SelectorExpr:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isBankGet(info, call) {
				selOfGet[call] = n
			}
		}
		return true
	})

	for _, call := range gets {
		if dirs.Allowed(pass.Fset, call.Pos(), "trusted-id") {
			continue
		}
		if v, ok := bound[call]; ok {
			checkBound(pass, fn, call, v)
			continue
		}
		if sel, ok := selOfGet[call]; ok {
			if tokenFields[sel.Sel.Name] {
				continue // the direct use IS the token read
			}
			pass.Reportf(sel.Pos(),
				"idsafe: field %s read through unvalidated uop.Bank.Get in %s: check GSeq/Squashed first, or annotate //smt:trusted-id with the liveness argument",
				sel.Sel.Name, fn.Name.Name)
			continue
		}
		pass.Reportf(call.Pos(),
			"idsafe: uop.Bank.Get result escapes %s without a GSeq/Squashed check: bind and validate it, or annotate //smt:trusted-id with the liveness argument",
			fn.Name.Name)
	}
}

// checkBound enforces the rule for `u := bank.Get(id)`: the first use
// of u after the binding must lie in a statement that also reads
// u.GSeq or u.Squashed (or there must be no use at all).
func checkBound(pass *framework.Pass, fn *ast.FuncDecl, call *ast.CallExpr, v *types.Var) {
	info := pass.TypesInfo

	var firstUse token.Pos = token.NoPos
	var tokenReads []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok {
			if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent && info.Uses[id] == v && tokenFields[sel.Sel.Name] {
				tokenReads = append(tokenReads, sel.Pos())
			}
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != v || id.Pos() <= call.End() {
			return true
		}
		if firstUse == token.NoPos || id.Pos() < firstUse {
			firstUse = id.Pos()
		}
		return true
	})
	if firstUse == token.NoPos {
		return // bound but never touched
	}
	stmt := enclosingStmt(fn.Body, firstUse)
	lo, hi := firstUse, firstUse
	if stmt != nil {
		lo, hi = stmt.Pos(), stmt.End()
	}
	for _, p := range tokenReads {
		if p >= lo && p < hi {
			return // validated within (or by) the first-use statement
		}
	}
	pass.Reportf(firstUse,
		"idsafe: %s from uop.Bank.Get is used before its GSeq/Squashed token is checked in %s: validate first, or annotate //smt:trusted-id with the liveness argument",
		v.Name(), fn.Name.Name)
}

// enclosingStmt returns the innermost statement containing pos (the
// statement an if-condition guard shares with the guarded body).
func enclosingStmt(body *ast.BlockStmt, pos token.Pos) ast.Stmt {
	var best ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || pos >= n.End() {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			if _, block := n.(*ast.BlockStmt); !block {
				best = s
			}
		}
		return true
	})
	return best
}

// isBankGet reports whether call invokes uop.Bank's Get method.
func isBankGet(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != getName {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := framework.NamedOf(recv.Type())
	return named != nil && named.Obj().Name() == bankType &&
		named.Obj().Pkg() != nil &&
		framework.NormalizePkgPath(named.Obj().Pkg().Path()) == bankPkg
}
