package idsafe_test

import (
	"testing"

	"smtsim/internal/analysis/analysistest"
	"smtsim/internal/analysis/idsafe"
)

func TestIdsafe(t *testing.T) {
	analysistest.Run(t, "testdata", idsafe.Analyzer,
		"smtsim/internal/uop",
		"smtsim/internal/rob",
		"smtsim/internal/trace",
	)
}
