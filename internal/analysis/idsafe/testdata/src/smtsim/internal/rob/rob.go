// Package rob is an idsafe fixture on the cycle path, exercising the
// token-check rule's violation and compliance shapes.
package rob

import "smtsim/internal/uop"

// ROB holds a bank and stored ids whose referents may have drained.
type ROB struct {
	bank *uop.Bank
	ids  []uop.ID
}

func consume(u *uop.UOp) {}

// BadFirstUse touches a field before any token check.
func (r *ROB) BadFirstUse(id uop.ID) int {
	u := r.bank.Get(id)
	return u.Thread // want `idsafe: u from uop.Bank.Get is used before its GSeq/Squashed token is checked in BadFirstUse`
}

// BadLateUse binds, then uses the record a statement later, unchecked.
func (r *ROB) BadLateUse(id uop.ID) int {
	u := r.bank.Get(id)
	n := 0
	n += int(u.ID) // want `idsafe: u from uop.Bank.Get is used before its GSeq/Squashed token is checked in BadLateUse`
	return n
}

// BadWrite writes through an unvalidated direct selector.
func (r *ROB) BadWrite(id uop.ID) {
	r.bank.Get(id).Completed = true // want `idsafe: field Completed read through unvalidated uop.Bank.Get in BadWrite`
}

// BadEscape hands the record away without validating it.
func (r *ROB) BadEscape(id uop.ID) {
	consume(r.bank.Get(id)) // want `idsafe: uop.Bank.Get result escapes BadEscape without a GSeq/Squashed check`
}

// GoodGuard validates against both tokens before any other use.
func (r *ROB) GoodGuard(id uop.ID, gseq uint64) int {
	u := r.bank.Get(id)
	if u.Squashed || u.GSeq != gseq {
		return -1
	}
	return u.Thread
}

// GoodCombined is the pipeline's combined-guard idiom: the non-token
// read shares its statement with the token read that blesses it.
func (r *ROB) GoodCombined(id uop.ID) bool {
	u := r.bank.Get(id)
	if !u.InIQ || u.Squashed {
		return false
	}
	return true
}

// GoodDirectToken reads a token field directly — that IS the check.
func (r *ROB) GoodDirectToken(id uop.ID) bool {
	return r.bank.Get(id).Squashed
}

// GoodPair binds two records; each first use is a token comparison.
func (r *ROB) GoodPair(a, b uop.ID) bool {
	ua, ub := r.bank.Get(a), r.bank.Get(b)
	return ua.GSeq < ub.GSeq
}

//smt:trusted-id — fixture: ids come from the live ring by construction
func (r *ROB) TrustedFunc(id uop.ID) int {
	return r.bank.Get(id).Thread
}

// TrustedLine blesses one Get with a line directive.
func (r *ROB) TrustedLine(id uop.ID) int {
	u := r.bank.Get(id) //smt:trusted-id — fixture: caller validated id this cycle
	return u.Thread
}
