// Package trace is an idsafe fixture off the cycle path: the same
// unvalidated access draws no diagnostic here.
package trace

import "smtsim/internal/uop"

// Dump reads a record unchecked, legally: trace assembly runs between
// cycles on quiesced state.
func Dump(b *uop.Bank, id uop.ID) int {
	return b.Get(id).Thread
}
