// Package uop is an idsafe fixture: a miniature stand-in for the real
// slab shadowing its import path, so the analyzer's Bank.Get matching
// sees the true package/type names.
package uop

// ID indexes a Bank slot.
type ID = int32

// UOp is the record a stale id could resurrect.
type UOp struct {
	ID        ID
	GSeq      uint64
	Thread    int
	InIQ      bool
	Squashed  bool
	Completed bool
}

// Bank is the slab.
type Bank struct {
	slab []UOp
}

// Get materializes the record for id.
func (b *Bank) Get(id ID) *UOp {
	return &b.slab[id]
}
