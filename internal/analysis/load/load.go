// Package load type-checks Go packages for the smtlint analyzers using
// only the standard library: go/parser + go/types, with compiled export
// data for imports resolved either from an explicit file map (the go
// vet unitchecker protocol hands one over) or by querying the go
// command (`go list -export`), which serves cached export data from the
// build cache without network access.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"

	"smtsim/internal/analysis/framework"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass builds a framework.Pass over the package for one analyzer,
// delivering diagnostics to report.
func (p *Package) Pass(a *framework.Analyzer, report func(framework.Diagnostic)) *framework.Pass {
	return &framework.Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.Info,
		Report: func(d framework.Diagnostic) {
			d.Analyzer = a.Name
			report(d)
		},
	}
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// ParseFiles parses the named files (which must belong to one package)
// with comments retained — the analyzers read //smt: directives.
func ParseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// TypeCheck checks one package's parsed files against imp. Soft type
// errors are collected rather than fatal so analysis can proceed on a
// best-effort basis; the first error is returned alongside the package.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := NewInfo()
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(path, fset, files, info)
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, firstErr
}

// GoListImporter resolves imports through the go command's build cache:
// `go list -export` compiles (or reuses) a package and reports the file
// holding its export data, which the gc importer then reads. Lookups
// are batched with -deps and memoized, so a whole-module load costs one
// go list invocation.
type GoListImporter struct {
	fset *token.FileSet
	dir  string

	mu      sync.Mutex
	exports map[string]string

	underlying types.Importer
}

// NewGoListImporter builds an importer rooted at dir (any directory
// inside the module whose import paths should resolve).
func NewGoListImporter(fset *token.FileSet, dir string) *GoListImporter {
	g := &GoListImporter{fset: fset, dir: dir, exports: map[string]string{}}
	g.underlying = importer.ForCompiler(fset, "gc", g.lookup)
	return g
}

// listEntry is the subset of `go list -json` output the loader uses.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Name       string
}

// goList runs `go list -export -json` over patterns and returns the
// decoded entries.
func goList(dir string, extraArgs []string, patterns ...string) ([]listEntry, error) {
	args := append([]string{"list", "-e", "-export", "-json"}, extraArgs...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Preload batch-resolves patterns (and their dependency closure) so
// later Import calls hit the memo table.
func (g *GoListImporter) Preload(patterns ...string) error {
	entries, err := goList(g.dir, []string{"-deps"}, patterns...)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range entries {
		if e.Export != "" {
			g.exports[e.ImportPath] = e.Export
		}
	}
	return nil
}

func (g *GoListImporter) lookup(path string) (io.ReadCloser, error) {
	g.mu.Lock()
	file := g.exports[path]
	g.mu.Unlock()
	if file == "" {
		if err := g.Preload(path); err != nil {
			return nil, err
		}
		g.mu.Lock()
		file = g.exports[path]
		g.mu.Unlock()
	}
	if file == "" {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

// Import implements types.Importer.
func (g *GoListImporter) Import(path string) (*types.Package, error) {
	return g.underlying.Import(path)
}

// LoadPatterns loads the packages matching the go package patterns
// (e.g. "./...") rooted at dir, type-checked from source with their
// dependencies resolved from export data. Dependencies named by the
// patterns' closure are loaded for import resolution only; the returned
// slice holds just the matched packages, in go list order. Each
// package's first type error, if any, is reported through onTypeError
// rather than aborting the load.
func LoadPatterns(dir string, onTypeError func(path string, err error), patterns ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	g := NewGoListImporter(fset, dir)
	entries, err := goList(dir, []string{"-deps"}, patterns...)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	for _, e := range entries {
		if e.Export != "" {
			g.exports[e.ImportPath] = e.Export
		}
	}
	g.mu.Unlock()

	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || len(e.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			filenames[i] = filepath.Join(e.Dir, f)
		}
		files, err := ParseFiles(fset, filenames)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", e.ImportPath, err)
		}
		pkg, terr := TypeCheck(fset, e.ImportPath, files, g)
		if terr != nil && onTypeError != nil {
			onTypeError(e.ImportPath, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
