// Package memocoherent implements the memo-coherence analyzer. The SoA
// cycle path memoizes provably repeat-identical scans (DESIGN.md §8):
// the dispatcher's per-thread scan freeze over the dispatch buffer and
// operand-readiness counters, and commit's per-thread skip mask over
// ROB-head completion. A memo is only sound while every write to the
// state it summarizes also invalidates it — exactly the bug class the
// sanitizer's freeze-hides-dispatchable and commit-skip cross-checks
// catch at cycle N, turned into a compile-time error at the write site.
//
// policy.Memos declares each memo: its validity field, the guarded
// fields whose mutation must invalidate it, and the audited writer
// list. A function may write a guarded field if it (a) appears in the
// memo's Writers list — the reviewed claim that invalidation happens
// on another, audited path — or (b) also writes the memo field
// somewhere in its own body (Push bumping Buffer.gen, writeback
// setting the commitable bit). Writes through index expressions
// (d.bank.NotReady[i] = n) and wholesale pointer stores (*u = UOp{})
// count as writes to the underlying guarded fields. Test files are
// exempt: tests corrupt state on purpose and simsan watches them.
package memocoherent

import (
	"go/ast"
	"go/types"

	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/policy"
)

// Analyzer is the memocoherent instance.
var Analyzer = &framework.Analyzer{
	Name: "memocoherent",
	Doc:  "require writes to memo-guarded state to invalidate the memo or come from a declared writer",
	Run:  run,
}

func run(pass *framework.Pass) error {
	self := framework.NormalizePkgPath(pass.Pkg.Path())
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, self, fn)
		}
	}
	return nil
}

// fieldWrite is one write to a guarded field.
type fieldWrite struct {
	pos   ast.Node
	field string // rendered pkg.Type.Field for the message
}

func checkFunc(pass *framework.Pass, self string, fn *ast.FuncDecl) {
	// Collect every field written in the function body (including memo
	// fields), then judge guarded writes against each memo's contract.
	guarded := map[int][]fieldWrite{} // memo index -> writes
	memoWritten := map[int]bool{}     // memo index -> its memo field is written here

	record := func(lhs ast.Expr) {
		for i := range policy.Memos {
			m := &policy.Memos[i]
			if ref, ok := resolveWrite(pass, lhs, m.Guarded); ok {
				guarded[i] = append(guarded[i], fieldWrite{pos: lhs, field: ref.Pkg + "." + ref.Type + "." + ref.Field})
			}
			if _, ok := resolveWrite(pass, lhs, []policy.FieldRef{m.Memo}); ok {
				memoWritten[i] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		}
		return true
	})

	name := funcKey(fn)
	for i, writes := range guarded {
		m := &policy.Memos[i]
		if memoWritten[i] || isDeclaredWriter(m, self, name) {
			continue
		}
		for _, w := range writes {
			pass.Reportf(w.pos.Pos(),
				"memocoherent: %s writes %s, guarded by memo %q, without invalidating %s.%s.%s: write the memo field in this function or add %s.%s to the memo's writer list in policy.Memos",
				name, w.field, m.Name, m.Memo.Pkg, m.Memo.Type, m.Memo.Field, self, name)
		}
	}
}

// resolveWrite reports whether an assignment target lhs writes one of
// refs: a direct or index-qualified field selector, or a wholesale
// store through a pointer to a struct type declaring a listed field.
func resolveWrite(pass *framework.Pass, lhs ast.Expr, refs []policy.FieldRef) (policy.FieldRef, bool) {
	info := pass.TypesInfo
	lhs = ast.Unparen(lhs)

	// *u = T{...}: a wholesale store writes every field of *u's type.
	if star, ok := lhs.(*ast.StarExpr); ok {
		named := framework.NamedOf(info.TypeOf(star))
		if named == nil || named.Obj().Pkg() == nil {
			return policy.FieldRef{}, false
		}
		pkg := framework.NormalizePkgPath(named.Obj().Pkg().Path())
		for _, r := range refs {
			if r.Pkg == pkg && r.Type == named.Obj().Name() {
				return r, true
			}
		}
		return policy.FieldRef{}, false
	}

	// q.entries[i] = x writes the entries field; peel index layers.
	for {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			lhs = ast.Unparen(ix.X)
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return policy.FieldRef{}, false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return policy.FieldRef{}, false
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return policy.FieldRef{}, false
	}
	named := framework.NamedOf(s.Recv())
	if named == nil {
		return policy.FieldRef{}, false
	}
	pkg := framework.NormalizePkgPath(field.Pkg().Path())
	for _, r := range refs {
		if r.Pkg == pkg && r.Type == named.Obj().Name() && r.Field == field.Name() {
			return r, true
		}
	}
	return policy.FieldRef{}, false
}

func isDeclaredWriter(m *policy.MemoSpec, pkg, fnKey string) bool {
	for _, w := range m.Writers {
		if w.Pkg == pkg && w.Func == fnKey {
			return true
		}
	}
	return false
}

// funcKey renders a function as Recv.Name or Name, matching
// policy.FuncRef.Func.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}
