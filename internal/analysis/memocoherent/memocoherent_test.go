package memocoherent_test

import (
	"testing"

	"smtsim/internal/analysis/analysistest"
	"smtsim/internal/analysis/memocoherent"
)

func TestMemocoherent(t *testing.T) {
	analysistest.Run(t, "testdata", memocoherent.Analyzer,
		"smtsim/internal/uop",
		"smtsim/internal/core",
		"smtsim/internal/pipeline",
	)
}
