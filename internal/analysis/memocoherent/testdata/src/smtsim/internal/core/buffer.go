// Package core is a memocoherent fixture stand-in: Buffer.gen is the
// memo (content generation), the content fields are guarded by it.
package core

// Buffer is a ring whose scans are memoized against gen.
type Buffer struct {
	buf  []int32
	head int
	size int
	gen  uint32
}

// Push mutates content and bumps the generation in the same body —
// the self-invalidating shape needs no writer listing.
func (b *Buffer) Push(id int32) {
	b.buf[(b.head+b.size)%len(b.buf)] = id
	b.size++
	b.gen++
}

// BadDrop mutates content without invalidating the memo: a frozen scan
// would keep describing entries that are gone.
func (b *Buffer) BadDrop() {
	b.head = (b.head + 1) % len(b.buf) // want `memocoherent: Buffer.BadDrop writes smtsim/internal/core.Buffer.head, guarded by memo "buffer-generation"`
	b.size--                           // want `memocoherent: Buffer.BadDrop writes smtsim/internal/core.Buffer.size, guarded by memo "buffer-generation"`
}
