// Package pipeline is the cross-package memocoherent fixture: its Core
// owns the commit-skip mask memo and writes guarded state declared in
// other packages.
package pipeline

import "smtsim/internal/uop"

// Core carries the commit-skip mask.
type Core struct {
	bank       *uop.Bank
	commitable uint64
}

// GoodWriteback completes a uop and sets the thread's skip-mask bit in
// the same body (rule b: the write invalidates its own memo).
func (c *Core) GoodWriteback(u *uop.UOp, t int) {
	u.Completed = true
	c.commitable |= 1 << uint(t)
}

// BadComplete completes a uop without touching the mask: commit would
// keep skipping a thread whose head is now ready.
func (c *Core) BadComplete(u *uop.UOp) {
	u.Completed = true // want `memocoherent: Core.BadComplete writes smtsim/internal/uop.UOp.Completed, guarded by memo "commit-skip-mask"`
}

// rename is on the dispatch-scan-freeze memo's declared writer list:
// counter initialization here is audited against the wakeup path.
func (c *Core) rename(u *uop.UOp, nr int16) {
	c.bank.NotReady[u.ID] = nr
}

// BadPoke mutates a readiness counter outside the audited paths: a
// frozen scan would hide the instruction this wakes.
func (c *Core) BadPoke(id int32) {
	c.bank.NotReady[id]-- // want `memocoherent: Core.BadPoke writes smtsim/internal/uop.Bank.NotReady, guarded by memo "dispatch-scan-freeze"`
}
