// Package uop is a memocoherent fixture stand-in shadowing the real
// slab: UOp.Completed is guarded by the commit-skip mask, Bank.NotReady
// by the dispatch-scan freeze.
package uop

// UOp is one record.
type UOp struct {
	ID        int32
	Completed bool
}

// Bank holds the readiness counters the dispatch scan memoizes over.
type Bank struct {
	NotReady []int16
}

// Reset recycles a slot wholesale; it is on the commit-skip memo's
// declared writer list.
func (u *UOp) Reset() {
	*u = UOp{}
}

// BadClobber performs the same wholesale store outside the audited
// writer: every guarded field of UOp counts as written.
func (u *UOp) BadClobber() {
	*u = UOp{} // want `memocoherent: UOp.BadClobber writes smtsim/internal/uop.UOp.Completed, guarded by memo "commit-skip-mask"`
}
