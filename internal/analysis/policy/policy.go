// Package policy declares which packages the smtlint analyzers guard
// and how. It is the single place the repository's static-discipline
// boundaries are written down; the analyzers consume it, DESIGN.md §7
// documents it.
package policy

// CyclePath lists the packages whose code runs inside the simulated
// cycle loop. Determinism (detlint), I/O purity (cyclepure), and
// id-staleness discipline (idsafe) are enforced here: these packages
// produce the bit-identical replays the differential tests and the
// paper's comparisons depend on.
var CyclePath = []string{
	"smtsim/internal/core",
	"smtsim/internal/pipeline",
	"smtsim/internal/iq",
	"smtsim/internal/rob",
	"smtsim/internal/regfile",
	"smtsim/internal/rename",
	"smtsim/internal/lsq",
	"smtsim/internal/fetch",
	"smtsim/internal/fu",
	"smtsim/internal/cache",
	"smtsim/internal/bpred",
	"smtsim/internal/uop",
}

// IsCyclePath reports whether a (normalized) import path is on the
// cycle path.
func IsCyclePath(path string) bool {
	for _, p := range CyclePath {
		if path == p {
			return true
		}
	}
	return false
}

// ServicePackages lists the packages that form the concurrent sweep
// service (DESIGN.md §10): the cell store, the HTTP daemon, and its
// command wrapper. Concurrency is *allowed* here — unlike the cycle
// path, where detlint forbids it outright — so the discipline is
// verification instead of prohibition: guardedby proves annotated
// shared state is only touched under its mutex, golife ties every
// goroutine to a lifecycle and every channel close to its declared
// owner, and atomicfs confines raw filesystem mutation to the blessed
// crash-consistency helpers (DESIGN.md §11).
var ServicePackages = []string{
	"smtsim/internal/sweepd",
	"smtsim/internal/cellstore",
	"smtsim/cmd/smtsweepd",
}

// IsServicePackage reports whether a (normalized) import path is part
// of the service layer.
func IsServicePackage(path string) bool {
	for _, p := range ServicePackages {
		if path == p {
			return true
		}
	}
	return false
}

// AtomicFSAllowed enumerates the blessed crash-consistency helpers:
// the only functions in the service layer allowed to call the raw
// file-mutating os functions (os.WriteFile, os.Create, os.CreateTemp,
// os.OpenFile, os.Rename, os.Truncate, os.RemoveAll). Everything else
// must route through these, so the cell store's torn-tail/atomic-rename
// protocol (DESIGN.md §10) is an invariant, not a convention. There is
// deliberately no line-level escape hatch: a new raw write site is a
// protocol change and belongs on this list, reviewed.
var AtomicFSAllowed = []FuncRef{
	// AtomicWrite: same-directory temp file + rename; readers observe
	// old or new bytes, never a prefix.
	{Pkg: "smtsim/internal/cellstore", Func: "AtomicWrite"},
	// appendShard: one O_APPEND write per record; a torn tail is
	// recovered (truncated) by the next Open.
	{Pkg: "smtsim/internal/cellstore", Func: "appendShard"},
	// createLease: O_CREATE|O_EXCL fast path of the lease protocol;
	// steals go through AtomicWrite.
	{Pkg: "smtsim/internal/cellstore", Func: "createLease"},
}

// IsAtomicFSAllowed reports whether pkg.fnKey is a blessed helper.
func IsAtomicFSAllowed(pkg, fnKey string) bool {
	for _, f := range AtomicFSAllowed {
		if f.Pkg == pkg && f.Func == fnKey {
			return true
		}
	}
	return false
}

// ProtectedState describes one package whose architectural state is
// location-exclusive: its struct fields may be mutated only from inside
// the owning package, or from a function that declares itself a pipeline
// stage for that package with //smt:stage. simsan re-derives the same
// exclusivity dynamically each cycle; statescope proves it statically.
type ProtectedState struct {
	// Pkg is the owning package's import path.
	Pkg string
	// Types restricts protection to the named types; empty protects
	// every type the package declares.
	Types []string
}

// Protected lists the location-exclusive architectural state.
var Protected = []ProtectedState{
	{Pkg: "smtsim/internal/rob"},
	{Pkg: "smtsim/internal/iq"},
	{Pkg: "smtsim/internal/regfile"},
	{Pkg: "smtsim/internal/lsq"},
	// Package core also holds dispatch bookkeeping that is not
	// architectural state; only the deadlock-avoidance buffer and the
	// watchdog carry location-exclusive state.
	{Pkg: "smtsim/internal/core", Types: []string{"DAB", "Watchdog"}},
	// Measurement accumulators: not architectural state, but the same
	// single-writer discipline applies — a stray field write from a
	// consumer would silently skew every paper artifact derived from
	// them. Only declared results-assembly stages may fill them.
	{Pkg: "smtsim/internal/metrics", Types: []string{"Results", "ThreadResult"}},
	{Pkg: "smtsim/internal/power", Types: []string{"Events", "Breakdown"}},
}

// ProtectedTypes returns the type filter for a protected package and
// whether the package is protected at all. A nil filter with ok=true
// means every type is protected.
func ProtectedTypes(pkg string) (typeNames []string, ok bool) {
	for _, p := range Protected {
		if p.Pkg == pkg {
			return p.Types, true
		}
	}
	return nil, false
}

// FieldRef names one struct field by declaring package, type, and field
// name — the granularity the memo-coherence analyzer matches writes at.
type FieldRef struct {
	Pkg   string
	Type  string
	Field string
}

// FuncRef names one function: Func is "Name" for package-level
// functions and "Recv.Name" for methods (pointer receivers included).
type FuncRef struct {
	Pkg  string
	Func string
}

// MemoSpec declares one memoized-scan cache and its coherence contract:
// Memo is the validity state (generation counter, valid bit, skip
// mask); Guarded lists the fields whose mutation invalidates the memo;
// Writers enumerates the functions audited to perform the matching
// invalidation themselves or to run only while the memo is provably
// cold. memocoherent rejects any other function that writes a guarded
// field without also writing the memo field in the same body — the
// compile-time form of the sanitizer's freeze-hides-dispatchable and
// commit-skip cross-checks.
type MemoSpec struct {
	Name    string
	Memo    FieldRef
	Guarded []FieldRef
	Writers []FuncRef
}

// Memos lists the cycle path's memoized scans (DESIGN.md §8): the
// dispatch buffer's content generation, the dispatch-scan freeze over
// operand-readiness state, and the commit-skip mask over completion
// state.
var Memos = []MemoSpec{
	{
		// Buffer.gen counts content mutations; the dispatcher's scan
		// freeze keys on it. Push/RemoveAt bump it inline (rule: a
		// guarded writer that also writes the memo needs no listing).
		Name: "buffer-generation",
		Memo: FieldRef{Pkg: "smtsim/internal/core", Type: "Buffer", Field: "gen"},
		Guarded: []FieldRef{
			{Pkg: "smtsim/internal/core", Type: "Buffer", Field: "buf"},
			{Pkg: "smtsim/internal/core", Type: "Buffer", Field: "head"},
			{Pkg: "smtsim/internal/core", Type: "Buffer", Field: "size"},
		},
	},
	{
		// The per-thread dispatch-scan freeze memoizes "this buffer has
		// no dispatchable instruction". It is invalidated on buffer
		// mutation via the generation above, and on operand readiness
		// changes via Dispatcher.OnComplete — so every writer of a
		// not-ready counter must be audited against that wakeup path.
		Name: "dispatch-scan-freeze",
		Memo: FieldRef{Pkg: "smtsim/internal/core", Type: "threadFreeze", Field: "valid"},
		Guarded: []FieldRef{
			{Pkg: "smtsim/internal/uop", Type: "Bank", Field: "NotReady"},
			{Pkg: "smtsim/internal/regfile", Type: "File", Field: "notReady"},
		},
		Writers: []FuncRef{
			// rename initializes a new uop's counter; a freshly pushed
			// buffer entry bumps Buffer.gen, which invalidates the
			// freeze through the generation check.
			{Pkg: "smtsim/internal/pipeline", Func: "Core.rename"},
			// SetReady decrements counters on tag broadcast; the
			// pipeline calls Dispatcher.OnComplete on the same event.
			{Pkg: "smtsim/internal/regfile", Func: "File.SetReady"},
			// AttachWakeup aliases the bank's column at construction,
			// before any freeze exists.
			{Pkg: "smtsim/internal/regfile", Func: "File.AttachWakeup"},
		},
	},
	{
		// commitable caches "this thread's ROB head is completed";
		// commit skips threads whose bit is clear. writeback sets the
		// bit inline when it completes a head; Reset recycles a slot
		// whose thread bit was consumed at commit time.
		Name: "commit-skip-mask",
		Memo: FieldRef{Pkg: "smtsim/internal/pipeline", Type: "Core", Field: "commitable"},
		Guarded: []FieldRef{
			{Pkg: "smtsim/internal/uop", Type: "UOp", Field: "Completed"},
		},
		Writers: []FuncRef{
			{Pkg: "smtsim/internal/uop", Func: "UOp.Reset"},
		},
	},
}
