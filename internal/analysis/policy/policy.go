// Package policy declares which packages the smtlint analyzers guard
// and how. It is the single place the repository's static-discipline
// boundaries are written down; the analyzers consume it, DESIGN.md §7
// documents it.
package policy

// CyclePath lists the packages whose code runs inside the simulated
// cycle loop. Determinism (detlint) and I/O purity (cyclepure) are
// enforced here: these packages produce the bit-identical replays the
// differential tests and the paper's comparisons depend on.
var CyclePath = []string{
	"smtsim/internal/core",
	"smtsim/internal/pipeline",
	"smtsim/internal/iq",
	"smtsim/internal/rob",
	"smtsim/internal/regfile",
	"smtsim/internal/rename",
	"smtsim/internal/lsq",
	"smtsim/internal/fetch",
	"smtsim/internal/fu",
	"smtsim/internal/cache",
	"smtsim/internal/bpred",
}

// IsCyclePath reports whether a (normalized) import path is on the
// cycle path.
func IsCyclePath(path string) bool {
	for _, p := range CyclePath {
		if path == p {
			return true
		}
	}
	return false
}

// ProtectedState describes one package whose architectural state is
// location-exclusive: its struct fields may be mutated only from inside
// the owning package, or from a function that declares itself a pipeline
// stage for that package with //smt:stage. simsan re-derives the same
// exclusivity dynamically each cycle; statescope proves it statically.
type ProtectedState struct {
	// Pkg is the owning package's import path.
	Pkg string
	// Types restricts protection to the named types; empty protects
	// every type the package declares.
	Types []string
}

// Protected lists the location-exclusive architectural state.
var Protected = []ProtectedState{
	{Pkg: "smtsim/internal/rob"},
	{Pkg: "smtsim/internal/iq"},
	{Pkg: "smtsim/internal/regfile"},
	{Pkg: "smtsim/internal/lsq"},
	// Package core also holds dispatch bookkeeping that is not
	// architectural state; only the deadlock-avoidance buffer and the
	// watchdog carry location-exclusive state.
	{Pkg: "smtsim/internal/core", Types: []string{"DAB", "Watchdog"}},
	// Measurement accumulators: not architectural state, but the same
	// single-writer discipline applies — a stray field write from a
	// consumer would silently skew every paper artifact derived from
	// them. Only declared results-assembly stages may fill them.
	{Pkg: "smtsim/internal/metrics", Types: []string{"Results", "ThreadResult"}},
	{Pkg: "smtsim/internal/power", Types: []string{"Events", "Breakdown"}},
}

// ProtectedTypes returns the type filter for a protected package and
// whether the package is protected at all. A nil filter with ok=true
// means every type is protected.
func ProtectedTypes(pkg string) (typeNames []string, ok bool) {
	for _, p := range Protected {
		if p.Pkg == pkg {
			return p.Types, true
		}
	}
	return nil, false
}
