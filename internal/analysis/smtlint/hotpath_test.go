package smtlint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/policy"
)

// hotpathManifest lists every //smt:hotpath function together with the
// runtime guard that verifies the static allocfree verdict against
// reality. All current entries form the Core.Step closure, exercised
// under every dispatch policy by TestStepSteadyStateZeroAllocs
// (internal/pipeline/bench_test.go), which asserts
// testing.AllocsPerRun == 0 over steady-state Step; the leaf packages
// additionally carry direct AllocsPerRun micro-guards (see the
// alloc_test.go files in cache, bpred, fu, fetch, and uop).
//
// The SoA slab entries (uop.Bank.Get, uop.UOp.Reset) are guarded
// directly by TestBankHotOpsZeroAllocs (internal/uop/alloc_test.go) and
// transitively by the pipeline bench guard, which drives them through
// the dispatch-scan freeze and commit-skip mask paths every cycle.
//
// TestHotpathAnnotationsMatchManifest fails when an annotation is added
// without updating this list — adding an entry is the reviewed promise
// that a zero-alloc AllocsPerRun guard covers the new function.
var hotpathManifest = []string{
	"bpred.BTB.Insert",
	"bpred.BTB.Lookup",
	"bpred.BTB.set",
	"bpred.Gshare.Predict",
	"bpred.Gshare.Update",
	"bpred.Gshare.index",
	"bpred.Predictor.Predict",
	"bpred.Predictor.Resolve",
	"bpred.counter.taken",
	"bpred.counter.update",
	"cache.Cache.Access",
	"cache.Cache.locate",
	"cache.Hierarchy.FetchLatencyExtra",
	"cache.Hierarchy.LoadLatencyExtra",
	"cache.Hierarchy.StoreCommit",
	"cache.Hierarchy.access",
	"core.Buffer.At",
	"core.Buffer.CanPush",
	"core.Buffer.Len",
	"core.Buffer.Push",
	"core.Buffer.RemoveAt",
	"core.DAB.CanInsert",
	"core.DAB.Entries",
	"core.DAB.Insert",
	"core.DAB.Len",
	"core.DAB.Remove",
	"core.Dispatcher.OnComplete",
	"core.Dispatcher.ReplayIdle",
	"core.Dispatcher.Run",
	"core.Dispatcher.atCap",
	"core.Dispatcher.commitDispatch",
	"core.Dispatcher.dependsOnNDI",
	"core.Dispatcher.dispatchToDAB",
	"core.Dispatcher.markNDI",
	"core.Dispatcher.runThread",
	"core.Dispatcher.runThreadInOrder",
	"core.Dispatcher.runThreadOOO",
	"core.Dispatcher.samplePiled",
	"core.Dispatcher.srcNotReady",
	"core.Dispatcher.tickEmpty",
	"core.Watchdog.Tick",
	"core.taintSet.clear",
	"core.taintSet.has",
	"core.taintSet.set",
	"fetch.Selector.Order",
	"fu.Pool.tryReserve",
	"fu.Pools.TryIssue",
	"iq.Queue.CanAccept",
	"iq.Queue.ClassSupported",
	"iq.Queue.Insert",
	"iq.Queue.ReadyOldestFirst",
	"iq.Queue.ReadyOrdered",
	"iq.Queue.Remove",
	"iq.Queue.Sample",
	"iq.Queue.ThreadCount",
	"iq.Queue.UOpReady",
	"iq.Queue.detach",
	"iq.Queue.dropReady",
	"iq.Queue.settle",
	"iq.Queue.settleTo",
	"iq.Queue.srcNotReady",
	"iq.Queue.wake",
	"lsq.LSQ.Alloc",
	"lsq.LSQ.CanAlloc",
	"lsq.LSQ.CheckLoad",
	"lsq.LSQ.Release",
	"lsq.line8",
	"pipeline.Core.Step",
	"pipeline.Core.commit",
	"pipeline.Core.fastForward",
	"pipeline.Core.fetch",
	"pipeline.Core.fetchThread",
	"pipeline.Core.gateAllows",
	"pipeline.Core.issue",
	"pipeline.Core.issueUOp",
	"pipeline.Core.noteLoadDone",
	"pipeline.Core.noteLoadIssue",
	"pipeline.Core.recomputeFetchHorizon",
	"pipeline.Core.rename",
	"pipeline.Core.stepCycle",
	"pipeline.Core.stepGated",
	"pipeline.Core.stepPlain",
	"pipeline.Core.writeback",
	"pipeline.eventWheel.hasDue",
	"pipeline.eventWheel.nextDue",
	"pipeline.eventWheel.popDue",
	"pipeline.eventWheel.schedule",
	"pipeline.threadState.fetchQFull",
	"pipeline.threadState.fetchQPeek",
	"pipeline.threadState.fetchQPop",
	"pipeline.threadState.fetchQPushSlot",
	"pipeline.threadState.nextInst",
	"regfile.File.Alloc",
	"regfile.File.Allocated",
	"regfile.File.CanAlloc",
	"regfile.File.Free",
	"regfile.File.Ready",
	"regfile.File.SetReady",
	"regfile.File.Watch",
	"rob.ROB.Alloc",
	"rob.ROB.CanAlloc",
	"rob.ROB.Head",
	"rob.ROB.IsHead",
	"rob.ROB.PopHead",
	"uop.Bank.Get",
	"uop.UOp.Reset",
}

// TestHotpathAnnotationsMatchManifest parses the cycle-path packages and
// requires the set of //smt:hotpath annotations to equal the manifest
// above, tying every static annotation to a named runtime guard.
func TestHotpathAnnotationsMatchManifest(t *testing.T) {
	annotated := map[string]bool{}
	fset := token.NewFileSet()
	for _, pkgPath := range policy.CyclePath {
		rel := strings.TrimPrefix(pkgPath, "smtsim/")
		dir := filepath.Join("..", "..", "..", filepath.FromSlash(rel))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		pkgName := rel[strings.LastIndexByte(rel, '/')+1:]
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", e.Name(), err)
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if _, hot := framework.FuncDirective(fn, "hotpath"); !hot {
					continue
				}
				annotated[pkgName+"."+funcKey(fn)] = true
			}
		}
	}

	manifest := map[string]bool{}
	for _, m := range hotpathManifest {
		manifest[m] = true
	}
	var missing, stale []string
	for name := range annotated {
		if !manifest[name] {
			missing = append(missing, name)
		}
	}
	for name := range manifest {
		if !annotated[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	for _, name := range missing {
		t.Errorf("%s is annotated //smt:hotpath but absent from hotpathManifest: add it together with an AllocsPerRun guard", name)
	}
	for _, name := range stale {
		t.Errorf("hotpathManifest entry %s has no //smt:hotpath annotation left in the tree", name)
	}
}

// funcKey renders a FuncDecl as Recv.Name or Name.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}
