// Package smtlint aggregates the repository's analyzer suite. The
// cmd/smtlint binary (standalone or as a go vet -vettool) and the
// in-repo self-check test both run exactly this list, so "the tree is
// lint-clean" means the same thing everywhere.
package smtlint

import (
	"fmt"
	"sort"
	"strings"

	"smtsim/internal/analysis/allocfree"
	"smtsim/internal/analysis/atomicfs"
	"smtsim/internal/analysis/cyclepure"
	"smtsim/internal/analysis/detlint"
	"smtsim/internal/analysis/facts"
	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/golife"
	"smtsim/internal/analysis/guardedby"
	"smtsim/internal/analysis/idsafe"
	"smtsim/internal/analysis/load"
	"smtsim/internal/analysis/memocoherent"
	"smtsim/internal/analysis/statescope"
)

// Analyzers is the suite, in reporting order: the cycle-path
// prohibitions first, then the service-layer verifications.
var Analyzers = []*framework.Analyzer{
	detlint.Analyzer,
	allocfree.Analyzer,
	statescope.Analyzer,
	cyclepure.Analyzer,
	idsafe.Analyzer,
	memocoherent.Analyzer,
	guardedby.Analyzer,
	golife.Analyzer,
	atomicfs.Analyzer,
}

// Select resolves a comma-joined list of analyzer names to suite
// entries, preserving suite order, for cmd/smtlint's -only flag. An
// unknown name is an error listing the valid ones.
func Select(names string) ([]*framework.Analyzer, error) {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("empty analyzer list")
	}
	var out []*framework.Analyzer
	for _, a := range Analyzers {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		var unknown, valid []string
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		for _, a := range Analyzers {
			valid = append(valid, a.Name)
		}
		return nil, fmt.Errorf("unknown analyzer(s) %s; valid: %s",
			strings.Join(unknown, ","), strings.Join(valid, ","))
	}
	return out, nil
}

func init() {
	facts.Register(Analyzers...)
}

// Session is one lint run's cross-package state: the fact store that
// lets allocfree's MayAlloc and guardedby's LockSummary verdicts flow
// from a dependency to its dependents. Standalone mode analyzes
// packages in dependency order against one Session; the vettool driver
// reconstitutes an equivalent Session per package from the .vetx files
// go vet hands it.
type Session struct {
	Facts *facts.Set
	// Analyzers restricts the run to a subset of the suite (cmd/smtlint
	// -only); nil means the whole suite.
	Analyzers []*framework.Analyzer
}

// NewSession returns a Session with an empty fact store running the
// whole suite.
func NewSession() *Session {
	return &Session{Facts: facts.NewSet()}
}

// Run applies the session's analyzers to one loaded package,
// accumulating and consuming facts through the session store, and
// returns the package's diagnostics sorted by position.
func (s *Session) Run(pkg *load.Package) ([]framework.Diagnostic, error) {
	suite := s.Analyzers
	if suite == nil {
		suite = Analyzers
	}
	var diags []framework.Diagnostic
	for _, a := range suite {
		pass := pkg.Pass(a, func(d framework.Diagnostic) { diags = append(diags, d) })
		facts.Attach(pass, s.Facts)
		if err := a.Run(pass); err != nil {
			return diags, err
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// Run applies the suite to one package in a fresh single-package
// session (no imported facts); callers analyzing a dependency graph
// should hold a Session and call its Run in dependency order instead.
func Run(pkg *load.Package) ([]framework.Diagnostic, error) {
	return NewSession().Run(pkg)
}
