// Package smtlint aggregates the repository's analyzer suite. The
// cmd/smtlint binary (standalone or as a go vet -vettool) and the
// in-repo self-check test both run exactly this list, so "the tree is
// lint-clean" means the same thing everywhere.
package smtlint

import (
	"sort"

	"smtsim/internal/analysis/allocfree"
	"smtsim/internal/analysis/cyclepure"
	"smtsim/internal/analysis/detlint"
	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/load"
	"smtsim/internal/analysis/statescope"
)

// Analyzers is the suite, in reporting order.
var Analyzers = []*framework.Analyzer{
	detlint.Analyzer,
	allocfree.Analyzer,
	statescope.Analyzer,
	cyclepure.Analyzer,
}

// Run applies the whole suite to one loaded package and returns its
// diagnostics sorted by position.
func Run(pkg *load.Package) ([]framework.Diagnostic, error) {
	var diags []framework.Diagnostic
	for _, a := range Analyzers {
		pass := pkg.Pass(a, func(d framework.Diagnostic) { diags = append(diags, d) })
		if err := a.Run(pass); err != nil {
			return diags, err
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
