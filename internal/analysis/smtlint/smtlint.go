// Package smtlint aggregates the repository's analyzer suite. The
// cmd/smtlint binary (standalone or as a go vet -vettool) and the
// in-repo self-check test both run exactly this list, so "the tree is
// lint-clean" means the same thing everywhere.
package smtlint

import (
	"sort"

	"smtsim/internal/analysis/allocfree"
	"smtsim/internal/analysis/cyclepure"
	"smtsim/internal/analysis/detlint"
	"smtsim/internal/analysis/facts"
	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/idsafe"
	"smtsim/internal/analysis/load"
	"smtsim/internal/analysis/memocoherent"
	"smtsim/internal/analysis/statescope"
)

// Analyzers is the suite, in reporting order.
var Analyzers = []*framework.Analyzer{
	detlint.Analyzer,
	allocfree.Analyzer,
	statescope.Analyzer,
	cyclepure.Analyzer,
	idsafe.Analyzer,
	memocoherent.Analyzer,
}

func init() {
	facts.Register(Analyzers...)
}

// Session is one lint run's cross-package state: the fact store that
// lets allocfree's MayAlloc verdicts flow from a dependency to its
// dependents. Standalone mode analyzes packages in dependency order
// against one Session; the vettool driver reconstitutes an equivalent
// Session per package from the .vetx files go vet hands it.
type Session struct {
	Facts *facts.Set
}

// NewSession returns a Session with an empty fact store.
func NewSession() *Session {
	return &Session{Facts: facts.NewSet()}
}

// Run applies the whole suite to one loaded package, accumulating and
// consuming facts through the session store, and returns the package's
// diagnostics sorted by position.
func (s *Session) Run(pkg *load.Package) ([]framework.Diagnostic, error) {
	var diags []framework.Diagnostic
	for _, a := range Analyzers {
		pass := pkg.Pass(a, func(d framework.Diagnostic) { diags = append(diags, d) })
		facts.Attach(pass, s.Facts)
		if err := a.Run(pass); err != nil {
			return diags, err
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// Run applies the suite to one package in a fresh single-package
// session (no imported facts); callers analyzing a dependency graph
// should hold a Session and call its Run in dependency order instead.
func Run(pkg *load.Package) ([]framework.Diagnostic, error) {
	return NewSession().Run(pkg)
}
