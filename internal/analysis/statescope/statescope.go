// Package statescope implements the location-exclusivity analyzer:
// architectural state owned by the reorder buffers, issue queue,
// physical register file, load/store queues, and the deadlock-avoidance
// buffer (policy.Protected) may be mutated only by its owning package,
// or by a function that declares itself a pipeline stage for that
// package with //smt:stage in its doc comment:
//
//	//smt:stage rob,regfile — commit retires into both structures
//
// Arguments name the protected packages the stage may touch, by import
// path or final path element, comma- or space-separated.
//
// The rule statically enforces what simsan's location-exclusivity sweep
// re-derives dynamically every cycle: each in-flight instruction's
// structural state has exactly one writer. Reads are always free;
// mutation goes through the owner's methods, so the owner's invariants
// (occupancy accounting, back-indices, free-list conservation) cannot
// be bypassed from a distance. Test files are exempt — tests corrupt
// state on purpose and simsan watches them at runtime.
package statescope

import (
	"go/ast"
	"go/types"
	"strings"

	"smtsim/internal/analysis/framework"
	"smtsim/internal/analysis/policy"
)

// Analyzer is the statescope instance.
var Analyzer = &framework.Analyzer{
	Name: "statescope",
	Doc:  "restrict mutation of protected architectural state to its owning package or declared stage methods",
	Run:  run,
}

func run(pass *framework.Pass) error {
	self := framework.NormalizePkgPath(pass.Pkg.Path())
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			grants := stageGrants(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkWrite(pass, self, fn, grants, lhs)
					}
				case *ast.IncDecStmt:
					checkWrite(pass, self, fn, grants, n.X)
				}
				return true
			})
		}
	}
	return nil
}

// stageGrants parses //smt:stage into the set of protected packages the
// function may mutate, keyed by both full import path and final element.
func stageGrants(fn *ast.FuncDecl) map[string]bool {
	args, ok := framework.FuncDirective(fn, "stage")
	if !ok {
		return nil
	}
	grants := map[string]bool{}
	for _, f := range strings.FieldsFunc(args, func(r rune) bool { return r == ',' || r == ' ' }) {
		if f == "—" || f == "-" {
			break // reason text follows
		}
		grants[f] = true
	}
	return grants
}

func checkWrite(pass *framework.Pass, self string, fn *ast.FuncDecl, grants map[string]bool, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	// A write through an index expression mutates the container named by
	// its base: q.entries[i] = u is a write to the entries field.
	for {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			lhs = ast.Unparen(ix.X)
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}

	// Package-level variable of a protected package (pkg.Var = x).
	if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && !v.IsField() {
		if v.Pkg() != nil && isProtectedVar(v) {
			owner := v.Pkg().Path()
			if owner != self && !granted(grants, owner) {
				pass.Reportf(sel.Pos(),
					"write to %s.%s from package %s: protected state is mutated only by its owner or a //smt:stage function",
					owner, v.Name(), self)
			}
		}
		return
	}

	// Field write: resolve the field's declaring package and the
	// receiver's named type for the type filter.
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return
	}
	owner := field.Pkg().Path()
	if owner == self {
		return
	}
	typeFilter, protected := policy.ProtectedTypes(owner)
	if !protected {
		return
	}
	named := framework.NamedOf(s.Recv())
	if len(typeFilter) > 0 {
		if named == nil || !contains(typeFilter, named.Obj().Name()) {
			return
		}
	}
	if granted(grants, owner) {
		return
	}
	typeName := owner
	if named != nil {
		typeName = owner + "." + named.Obj().Name()
	}
	pass.Reportf(sel.Pos(),
		"write to field %s of protected type %s from package %s: mutate through the owner's methods or declare //smt:stage %s",
		field.Name(), typeName, self, lastElem(owner))
}

// isProtectedVar reports whether v is a package-level variable of a
// protected package (the type filter does not apply to variables).
func isProtectedVar(v *types.Var) bool {
	_, ok := policy.ProtectedTypes(v.Pkg().Path())
	return ok && v.Parent() == v.Pkg().Scope()
}

func granted(grants map[string]bool, owner string) bool {
	return grants[owner] || grants[lastElem(owner)]
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
