package statescope_test

import (
	"testing"

	"smtsim/internal/analysis/analysistest"
	"smtsim/internal/analysis/statescope"
)

func TestStatescope(t *testing.T) {
	analysistest.Run(t, "testdata", statescope.Analyzer,
		"smtsim/internal/rob",
		"smtsim/internal/pipeline",
	)
}
