// Package core is a statescope fixture standing in for the real core
// package, whose protection is filtered to the DAB and Watchdog types.
package core

// DAB is protected architectural state.
type DAB struct{ Inserts uint64 }

// Watchdog is protected architectural state.
type Watchdog struct{ Expiries uint64 }

// Stats is ordinary bookkeeping outside the type filter.
type Stats struct{ Cycles int }
