// Package pipeline is the statescope fixture for cross-package writes.
package pipeline

import (
	"smtsim/internal/core"
	"smtsim/internal/rob"
)

// Bad mutates protected state from outside the owner with no stage grant.
func Bad(r *rob.ROB, w *core.Watchdog, s *core.Stats) int {
	r.Size = 3     // want `write to field Size of protected type smtsim/internal/rob.ROB`
	r.Size++       // want `write to field Size of protected type smtsim/internal/rob.ROB`
	r.Buf[0] = 1   // want `write to field Buf of protected type smtsim/internal/rob.ROB`
	rob.Debug = 1  // want `write to smtsim/internal/rob.Debug`
	w.Expiries = 0 // want `write to field Expiries of protected type smtsim/internal/core.Watchdog`
	s.Cycles = 0   // Stats is outside core's DAB/Watchdog type filter
	local := rob.ROB{}
	_ = local
	return r.Size // reads are always free
}

// Commit retires into the ROB and resets the watchdog, as a declared
// stage for both owners.
//
//smt:stage rob,core — commit is the retirement stage for both structures
func Commit(r *rob.ROB, w *core.Watchdog) {
	r.Size--
	w.Expiries++
	rob.Debug = 0
}

// PartialGrant holds a grant for rob only; core writes still flag.
//
//smt:stage rob — adjusts occupancy only
func PartialGrant(r *rob.ROB, d *core.DAB) {
	r.Size = 0
	d.Inserts = 0 // want `write to field Inserts of protected type smtsim/internal/core.DAB`
}
