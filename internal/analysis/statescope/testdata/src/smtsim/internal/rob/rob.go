// Package rob is a statescope fixture standing in for the real reorder
// buffer: every type it declares is protected (no type filter).
package rob

// ROB is protected architectural state.
type ROB struct {
	Size int
	Buf  []int
}

// Debug is a protected package-level variable.
var Debug int

// Grow mutates from the owning package, which is always legal.
func (r *ROB) Grow() {
	r.Size++
	Debug = r.Size
}
