module smtsim

go 1.22
