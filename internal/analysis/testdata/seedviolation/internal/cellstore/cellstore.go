// Package cellstore seeds the service-layer violations. Dump is the
// atomicfs seed: a raw os.WriteFile in a service package, outside the
// blessed crash-consistency helpers. Ledger is the dependency half of
// the cross-package guardedby seed: Add's //smt:locked precondition is
// exported as a LockSummary fact here and must be read back — in a
// separate vettool process — when internal/sweepd is analyzed.
package cellstore

import (
	"os"
	"sync"
)

// Ledger counts landed cells.
type Ledger struct {
	Mu sync.Mutex
	//smt:guarded-by(Mu)
	N int
}

// Add increments; the caller holds Mu.
//
//smt:locked(Mu)
func (l *Ledger) Add(n int) {
	l.N += n
}

// Dump is the seeded atomicfs violation: a torn-readable whole-file
// write where the protocol demands AtomicWrite.
func Dump(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
