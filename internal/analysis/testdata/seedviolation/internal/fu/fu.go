// Package fu carries the seeded transitive-allocation violation: its
// hot path allocates only through the imported scratch package, so an
// intraprocedural allocfree passes it and only the fact-driven analyzer
// rejects it.
package fu

import "smtsim/internal/scratch"

var sink []int

// fill hides the allocation one local call deeper.
func fill(n int) {
	sink = scratch.Wrap(n)
}

// Tick is the seeded violation: clean body, allocating closure.
//
//smt:hotpath
func Tick(n int) {
	fill(n)
}
