// Package iq carries the deliberately seeded determinism violation: the
// import path matches a cycle-path package, and Sum iterates a map.
package iq

// Sum observes map iteration order, which Go randomizes per run.
func Sum(m map[int]int) int {
	s := 0
	for _, v := range m {
		s = s*31 + v
	}
	return s
}
