// Package lsq carries the seeded id-staleness violation: a cycle-path
// import path, a stored id dereferenced with no GSeq/Squashed check and
// no //smt:trusted-id audit.
package lsq

import "smtsim/internal/uop"

// Tracker remembers an id past its referent's lifetime.
type Tracker struct {
	bank *uop.Bank
	last uop.ID
}

// Thread is the seeded violation: the slot behind last may have been
// recycled since it was stored.
func (t *Tracker) Thread() int {
	u := t.bank.Get(t.last)
	return u.Thread
}
