// Package rob is the fixture module's clean cycle-path package: the
// vettool must pass it without diagnostics.
package rob

// Window is a deterministic ring over a slice.
type Window struct {
	buf  []int
	head int
}

// Push overwrites the oldest element.
func (w *Window) Push(v int) {
	w.buf[w.head] = v
	w.head = (w.head + 1) % len(w.buf)
}
