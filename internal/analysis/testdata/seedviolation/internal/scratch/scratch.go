// Package scratch is the dependency half of the seeded transitive
// allocation: nothing here is annotated, so the only way the vettool
// can reject internal/fu is by exporting MayAlloc facts from this
// package's analysis and reading them back — in a different process —
// when fu is analyzed. That is the fact round-trip the tests pin.
package scratch

// Grow allocates directly.
func Grow(n int) []int {
	return make([]int, n)
}

// Wrap allocates only through Grow.
func Wrap(n int) []int {
	return Grow(n)
}
