// Package sweepd seeds two service-layer violations. Tick is the
// cross-package guardedby seed: it calls cellstore.Ledger.Add without
// the lock Add's //smt:locked(Mu) precondition demands — nothing in
// this package names the requirement, so rejecting it needs the
// LockSummary fact exported while internal/cellstore was analyzed, read
// back through go vet's .vetx round trip. Spawn is the golife seed: an
// untracked, unaudited goroutine.
package sweepd

import "smtsim/internal/cellstore"

// Tick bumps the ledger lock-free.
func Tick(l *cellstore.Ledger) {
	l.Add(1)
}

// Spawn leaks a goroutine with no WaitGroup and no audit.
func Spawn(l *cellstore.Ledger) {
	go Tick(l)
}
