// Package uop is the fixture module's stand-in for the real slab: its
// import path makes Bank.Get the accessor idsafe guards and UOp's
// fields the state the memo specs in policy guard.
package uop

// ID indexes a Bank slot.
type ID = int32

// UOp is one record.
type UOp struct {
	ID        ID
	GSeq      uint64
	Thread    int
	Squashed  bool
	Completed bool
}

// Bank is the slab.
type Bank struct {
	slab []UOp
}

// Get materializes the record for id.
func (b *Bank) Get(id ID) *UOp {
	return &b.slab[id]
}
