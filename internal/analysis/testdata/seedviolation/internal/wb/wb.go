// Package wb carries the seeded memo-coherence violation: it completes
// a uop — state guarded by the commit-skip mask memo — while neither
// writing the mask nor appearing on the memo's declared writer list.
package wb

import "smtsim/internal/uop"

// Complete is the seeded violation: the thread's commit-skip bit keeps
// claiming the head is incomplete.
func Complete(u *uop.UOp) {
	u.Completed = true
}
