package bpred

import "testing"

// TestPredictZeroAllocs is the runtime counterpart of the //smt:hotpath
// annotations in this package (see the hotpath manifest in
// internal/analysis/smtlint): predict and resolve must not allocate.
func TestPredictZeroAllocs(t *testing.T) {
	p := NewWithGshare(NewGshare(4096, 12), NewBTB(512, 4))
	pc := uint64(0x1000)
	if avg := testing.AllocsPerRun(10_000, func() {
		taken, target := p.Predict(pc)
		p.Resolve(pc, taken, target, pc%3 == 0, pc+8)
		pc += 4
	}); avg != 0 {
		t.Errorf("predict/resolve allocates %v objects/op, want 0", avg)
	}
}
