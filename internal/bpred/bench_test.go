package bpred

import "testing"

// BenchmarkPredictResolve measures the per-branch front-end cost: one
// direction + target prediction and one training update.
func BenchmarkPredictResolve(b *testing.B) {
	p := New(NewBTB(2048, 2))
	pcs := make([]uint64, 64)
	for i := range pcs {
		pcs[i] = 0x120000000 + uint64(i)*16
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := pcs[i%len(pcs)]
		taken := i%3 != 0
		pt, ptg := p.Predict(pc)
		p.Resolve(pc, pt, ptg, taken, pc+64)
	}
}
