// Package bpred implements the branch prediction substrate of Table 1:
// a per-thread 2K-entry gShare predictor with 10-bit global history and a
// 2048-entry 2-way set-associative branch target buffer.
//
// The simulator is trace-driven, so predictions are compared against the
// recorded outcome: a mismatch charges the front-end redirect penalty in
// the pipeline; wrong-path instructions are not injected (see DESIGN.md).
package bpred

// counter is a 2-bit saturating counter; values >= 2 predict taken.
type counter uint8

//smt:hotpath
func (c counter) taken() bool { return c >= 2 }

// counterNext[c<<1|outcome] is the saturating next state: an 8-entry
// lookup replacing the two-branch increment/decrement, so the PHT train
// path is branchless (the bool materializes as a flag set, not a jump).
var counterNext = [8]counter{0, 1, 0, 2, 1, 3, 2, 3}

//smt:hotpath
func (c counter) update(taken bool) counter {
	t := counter(0)
	if taken {
		t = 1
	}
	return counterNext[c<<1|t]
}

// Gshare is a gShare direction predictor: the pattern-history table is
// indexed by PC xor global-history.
type Gshare struct {
	pht      []counter
	history  uint32
	histBits uint
	histMask uint32
	mask     uint32
}

// NewGshare builds a predictor with the given table size (a power of two)
// and history length in bits.
func NewGshare(entries int, historyBits uint) *Gshare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: gshare entries must be a positive power of two")
	}
	g := &Gshare{
		pht:      make([]counter, entries),
		histBits: historyBits,
		histMask: uint32(1)<<historyBits - 1,
		mask:     uint32(entries - 1),
	}
	// Weakly taken initial state converges quickly either way.
	for i := range g.pht {
		g.pht[i] = 1
	}
	return g
}

//smt:hotpath
func (g *Gshare) index(pc uint64) uint32 {
	return (uint32(pc>>2) ^ g.history) & g.mask
}

// Predict returns the predicted direction for the branch at pc.
//
//smt:hotpath
func (g *Gshare) Predict(pc uint64) bool {
	return g.pht[g.index(pc)].taken()
}

// Update trains the predictor with the actual outcome and shifts it into
// the global history. Callers must invoke Update exactly once per
// predicted branch, in program order.
//
//smt:hotpath
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	// One bool materialization (a flag set, not a jump) feeds both the
	// saturating-counter LUT index and the history shift; the history
	// mask is precomputed at construction.
	t := uint32(0)
	if taken {
		t = 1
	}
	g.pht[i] = counterNext[uint32(g.pht[i])<<1|t]
	g.history = ((g.history << 1) | t) & g.histMask
}

// History exposes the current global history register (for tests).
func (g *Gshare) History() uint32 { return g.history }

// btbEntry is one BTB way.
type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64
}

// BTB is a set-associative branch target buffer shared by all threads
// (PCs from different threads land in distinct synthetic code segments,
// so destructive aliasing between threads is realistic but rare).
type BTB struct {
	sets    [][]btbEntry
	setMask uint64
	tick    uint64
}

// NewBTB builds a BTB with the given total entries and associativity.
func NewBTB(entries, ways int) *BTB {
	if ways <= 0 || entries%ways != 0 {
		panic("bpred: BTB entries must divide by ways")
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic("bpred: BTB set count must be a power of two")
	}
	b := &BTB{sets: make([][]btbEntry, nsets), setMask: uint64(nsets - 1)}
	// One flat backing array for all sets (1024 per-set makes otherwise).
	backing := make([]btbEntry, nsets*ways)
	for i := range b.sets {
		b.sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return b
}

//smt:hotpath
func (b *BTB) set(pc uint64) ([]btbEntry, uint64) {
	idx := (pc >> 2) & b.setMask
	return b.sets[idx], pc >> 2 / (b.setMask + 1)
}

// Lookup returns the stored target for pc, if present.
//
//smt:hotpath
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.tick++
	set, tag := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = b.tick
			return set[i].target, true
		}
	}
	return 0, false
}

// Insert records pc -> target, evicting the LRU way on conflict.
//
//smt:hotpath
func (b *BTB) Insert(pc, target uint64) {
	b.tick++
	set, tag := b.set(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].target = target
			set[i].lru = b.tick
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbEntry{valid: true, tag: tag, target: target, lru: b.tick}
}

// Predictor bundles the per-thread direction predictor with the shared
// BTB view, exposing the interface the fetch stage consumes.
type Predictor struct {
	dir *Gshare
	btb *BTB

	// Statistics.
	Branches    uint64
	Mispredicts uint64
	BTBMisses   uint64
}

// New builds a predictor in the paper's configuration: 2K-entry gShare
// with 10-bit history over the supplied shared BTB.
func New(btb *BTB) *Predictor {
	return &Predictor{dir: NewGshare(2048, 10), btb: btb}
}

// NewWithGshare builds a predictor with a custom direction predictor,
// used by configuration sweeps and tests.
func NewWithGshare(g *Gshare, btb *BTB) *Predictor {
	return &Predictor{dir: g, btb: btb}
}

// Predict produces the predicted direction and target for the branch at
// pc. If the direction is taken but the BTB misses, the front end cannot
// redirect and the prediction degrades to not-taken (fall-through), which
// is how a real fetch unit behaves.
//
//smt:hotpath
func (p *Predictor) Predict(pc uint64) (taken bool, target uint64) {
	taken = p.dir.Predict(pc)
	if !taken {
		return false, 0
	}
	target, ok := p.btb.Lookup(pc)
	if !ok {
		p.BTBMisses++
		return false, 0
	}
	return true, target
}

// Resolve trains direction and target state with the actual outcome and
// reports whether the original prediction was correct.
//
//smt:hotpath
func (p *Predictor) Resolve(pc uint64, predictedTaken bool, predictedTarget uint64, actualTaken bool, actualTarget uint64) (correct bool) {
	p.Branches++
	correct = predictedTaken == actualTaken && (!actualTaken || predictedTarget == actualTarget)
	if !correct {
		p.Mispredicts++
	}
	p.dir.Update(pc, actualTaken)
	if actualTaken {
		p.btb.Insert(pc, actualTarget)
	}
	return correct
}

// ResetStats clears the counters without touching predictor state, for
// measurement after a warmup period.
func (p *Predictor) ResetStats() {
	p.Branches, p.Mispredicts, p.BTBMisses = 0, 0, 0
}

// MispredictRate returns the fraction of resolved branches mispredicted.
func (p *Predictor) MispredictRate() float64 {
	if p.Branches == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Branches)
}
