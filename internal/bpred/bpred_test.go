package bpred

import (
	"testing"
	"testing/quick"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter underflowed to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter did not saturate at 3, got %d", c)
	}
	if !c.taken() {
		t.Error("saturated counter predicts not-taken")
	}
}

func TestGshareLearnsBiasedBranch(t *testing.T) {
	g := NewGshare(2048, 10)
	pc := uint64(0x120000040)
	// Always-taken branch must be predicted correctly after warmup.
	for i := 0; i < 32; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("gshare failed to learn an always-taken branch")
	}
}

func TestGshareLearnsAlternatingPattern(t *testing.T) {
	g := NewGshare(2048, 10)
	pc := uint64(0x120000080)
	// A strict T/NT alternation is history-disambiguated: after warmup,
	// gshare should predict it near-perfectly.
	taken := false
	for i := 0; i < 2048; i++ {
		g.Update(pc, taken)
		taken = !taken
	}
	errs := 0
	for i := 0; i < 256; i++ {
		if g.Predict(pc) != taken {
			errs++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if errs > 8 {
		t.Errorf("gshare mispredicted alternating pattern %d/256 times", errs)
	}
}

func TestGshareHistoryMasked(t *testing.T) {
	g := NewGshare(1024, 10)
	for i := 0; i < 100; i++ {
		g.Update(0x1000, true)
	}
	if g.History() >= 1<<10 {
		t.Errorf("history %#x exceeds 10 bits", g.History())
	}
}

func TestGshareRejectsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size did not panic")
		}
	}()
	NewGshare(1000, 10)
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(2048, 2)
	if _, ok := b.Lookup(0x4000); ok {
		t.Error("empty BTB hit")
	}
	b.Insert(0x4000, 0x5000)
	tgt, ok := b.Lookup(0x4000)
	if !ok || tgt != 0x5000 {
		t.Errorf("lookup = %#x,%v want 0x5000,true", tgt, ok)
	}
	// Update in place.
	b.Insert(0x4000, 0x6000)
	tgt, _ = b.Lookup(0x4000)
	if tgt != 0x6000 {
		t.Errorf("update not applied, got %#x", tgt)
	}
}

func TestBTBEvictsLRUWithinSet(t *testing.T) {
	b := NewBTB(4, 2) // 2 sets x 2 ways
	nsets := uint64(2)
	// Three PCs in the same set: the least recently used must go.
	pcA := uint64(0) << 2 * nsets
	pcA = 0x0 << 2            // set 0
	pcB := uint64(nsets) << 2 // set 0, different tag
	pcC := uint64(2*nsets) << 2
	b.Insert(pcA, 1)
	b.Insert(pcB, 2)
	b.Lookup(pcA) // A most recently used
	b.Insert(pcC, 3)
	if _, ok := b.Lookup(pcA); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := b.Lookup(pcB); ok {
		t.Error("LRU entry survived eviction")
	}
}

func TestPredictorTakenNeedsBTB(t *testing.T) {
	btb := NewBTB(2048, 2)
	p := New(btb)
	pc := uint64(0x120000100)
	// Train direction taken without a BTB entry: prediction degrades to
	// not-taken because the front end has no target. Train long enough
	// that the evolving global history has wrapped through its saturated
	// all-ones state, so the prediction-time PHT entry is warm.
	for i := 0; i < 32; i++ {
		p.dir.Update(pc, true)
	}
	taken, _ := p.Predict(pc)
	if taken {
		t.Error("predicted taken without a BTB target")
	}
	if p.BTBMisses == 0 {
		t.Error("BTB miss not counted")
	}
}

func TestPredictorResolveCountsMispredicts(t *testing.T) {
	p := New(NewBTB(2048, 2))
	pc := uint64(0x120000200)
	pt, ptg := p.Predict(pc)
	p.Resolve(pc, pt, ptg, true, 0x9000) // cold: likely mispredict either way
	for i := 0; i < 64; i++ {
		pt, ptg = p.Predict(pc)
		p.Resolve(pc, pt, ptg, true, 0x9000)
	}
	if p.Branches != 65 {
		t.Errorf("branches = %d, want 65", p.Branches)
	}
	// After warmup the always-taken branch with stable target must
	// predict correctly.
	pt, ptg = p.Predict(pc)
	if !pt || ptg != 0x9000 {
		t.Errorf("warm prediction = %v,%#x", pt, ptg)
	}
	if p.MispredictRate() > 0.2 {
		t.Errorf("mispredict rate %.2f too high for an always-taken branch", p.MispredictRate())
	}
}

func TestPredictorWrongTargetIsMispredict(t *testing.T) {
	p := New(NewBTB(2048, 2))
	pc := uint64(0x120000300)
	// Train taken to target A, then the branch goes to target B: even
	// with the right direction, a wrong target is a misprediction.
	for i := 0; i < 16; i++ {
		pt, ptg := p.Predict(pc)
		p.Resolve(pc, pt, ptg, true, 0xA000)
	}
	before := p.Mispredicts
	pt, ptg := p.Predict(pc)
	if !pt {
		t.Fatal("expected taken prediction after training")
	}
	if correct := p.Resolve(pc, pt, ptg, true, 0xB000); correct {
		t.Error("wrong target counted as correct")
	}
	if p.Mispredicts != before+1 {
		t.Error("wrong-target mispredict not counted")
	}
}

func TestGshareIndexWithinRange(t *testing.T) {
	g := NewGshare(2048, 10)
	f := func(pc uint64, outcomes []bool) bool {
		for _, o := range outcomes {
			g.Update(pc, o)
			if g.index(pc) >= 2048 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
