package cache

import "testing"

// TestAccessZeroAllocs is the runtime counterpart of the //smt:hotpath
// annotations in this package (see the hotpath manifest in
// internal/analysis/smtlint): the access paths must not allocate.
func TestAccessZeroAllocs(t *testing.T) {
	h := DefaultHierarchy()
	addr := uint64(0)
	if avg := testing.AllocsPerRun(10_000, func() {
		h.LoadLatencyExtra(addr)
		h.StoreCommit(addr + 64)
		h.FetchLatencyExtra(addr * 3)
		addr += 4096 // mix hits and misses, forcing evictions
	}); avg != 0 {
		t.Errorf("cache access paths allocate %v objects/op, want 0", avg)
	}
}
