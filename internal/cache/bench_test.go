package cache

import "testing"

// BenchmarkL1DHit measures the hit path of the Table 1 L1 data cache.
func BenchmarkL1DHit(b *testing.B) {
	h := DefaultHierarchy()
	h.LoadLatencyExtra(0x1000) // warm the line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.LoadLatencyExtra(0x1000)
	}
}

// BenchmarkStridedSweep measures a strided walk through a working set
// larger than the L1 — the synthetic workloads' dominant access pattern.
func BenchmarkStridedSweep(b *testing.B) {
	h := DefaultHierarchy()
	const footprint = 256 << 10
	addr := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.LoadLatencyExtra(0x200000000 + addr)
		addr = (addr + 64) % footprint
	}
}

// BenchmarkFetchPath measures the instruction-side access path.
func BenchmarkFetchPath(b *testing.B) {
	h := DefaultHierarchy()
	pc := uint64(0x120000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.FetchLatencyExtra(pc + uint64(i%1024)*4)
	}
}
