// Package cache implements the memory hierarchy of Table 1: generic
// set-associative write-back, write-allocate caches with LRU replacement,
// composed into an L1 instruction cache, an L1 data cache, a unified L2,
// and a flat main memory latency.
//
// The simulator charges each access the latency of the deepest level it
// had to reach. Misses are implicitly overlapping (infinite MSHRs): each
// in-flight load carries its own completion time, which is the common
// trace-driven simplification and affects all compared schedulers equally.
package cache

import "fmt"

// line is one cache line's bookkeeping; data contents are not simulated.
type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// Config describes one cache level.
type Config struct {
	Name      string
	Size      int // total bytes
	Ways      int
	LineSize  int // bytes
	HitCycles int // access latency on hit
}

// Stats accumulates access counters for one cache.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns Misses/Accesses, or 0 before any access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a single set-associative cache level.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	offBits uint
	tick    uint64

	stats Stats
}

// New builds a cache from cfg, validating geometry.
func New(cfg Config) (*Cache, error) {
	switch {
	case cfg.Size <= 0 || cfg.Ways <= 0 || cfg.LineSize <= 0:
		return nil, fmt.Errorf("cache %s: non-positive geometry", cfg.Name)
	case cfg.LineSize&(cfg.LineSize-1) != 0:
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineSize)
	case cfg.Size%(cfg.Ways*cfg.LineSize) != 0:
		return nil, fmt.Errorf("cache %s: size %d not divisible by ways*line", cfg.Name, cfg.Size)
	}
	nsets := cfg.Size / (cfg.Ways * cfg.LineSize)
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", cfg.Name, nsets)
	}
	c := &Cache{cfg: cfg, sets: make([][]line, nsets), setMask: uint64(nsets - 1)}
	// One flat backing array for every set: an L2-sized cache is thousands
	// of sets, and a per-set make was the dominant setup allocation.
	backing := make([]line, nsets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	for b := cfg.LineSize; b > 1; b >>= 1 {
		c.offBits++
	}
	return c, nil
}

// MustNew is New that panics on error, for static configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the access counters without touching cache contents,
// for measurement after a warmup period.
func (c *Cache) ResetStats() { c.stats = Stats{} }

//smt:hotpath
func (c *Cache) locate(addr uint64) ([]line, uint64) {
	set := (addr >> c.offBits) & c.setMask
	tag := addr >> c.offBits >> uint(popcount(c.setMask))
	return c.sets[set], tag
}

// Access performs a read or write probe. It returns hit, and whether a
// dirty line was evicted to make room (the caller charges the writeback to
// the next level). On miss the line is allocated (write-allocate).
//
//smt:hotpath
func (c *Cache) Access(addr uint64, write bool) (hit bool, writeback bool) {
	c.tick++
	c.stats.Accesses++
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			if write {
				set[i].dirty = true
			}
			return true, false
		}
	}
	c.stats.Misses++
	// Allocate: pick invalid way, else LRU.
	victim := 0
	found := false
	for i := range set {
		if !set[i].valid {
			victim = i
			found = true
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if !found && set[victim].dirty {
		writeback = true
		c.stats.Writebacks++
	}
	set[victim] = line{valid: true, dirty: write, tag: tag, lru: c.tick}
	return false, writeback
}

// Contains reports whether addr currently hits without touching LRU or
// statistics (for tests and invariant checks).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Hierarchy composes the Table 1 memory system. The L2 is unified: both
// L1I and L1D misses probe it.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	MemCycles    int
}

// DefaultHierarchy builds the paper's configuration: 64KB/2-way/128B L1I,
// 32KB/4-way/256B L1D, 2MB/8-way/512B L2 with 10-cycle hits, 150-cycle
// memory.
func DefaultHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I:       MustNew(Config{Name: "l1i", Size: 64 << 10, Ways: 2, LineSize: 128, HitCycles: 1}),
		L1D:       MustNew(Config{Name: "l1d", Size: 32 << 10, Ways: 4, LineSize: 256, HitCycles: 1}),
		L2:        MustNew(Config{Name: "l2", Size: 2 << 20, Ways: 8, LineSize: 512, HitCycles: 10}),
		MemCycles: 150,
	}
}

// access runs the two-level protocol below one L1.
//
//smt:hotpath
func (h *Hierarchy) access(l1 *Cache, addr uint64, write bool) int {
	hit, wb := l1.Access(addr, write)
	if hit {
		return 0
	}
	extra := 0
	if wb {
		// Dirty eviction installs into L2; charge nothing on the load's
		// critical path but keep L2 state honest.
		h.L2.Access(addr, true)
	}
	l2hit, _ := h.L2.Access(addr, false)
	if l2hit {
		extra = h.L2.Config().HitCycles
	} else {
		extra = h.L2.Config().HitCycles + h.MemCycles
	}
	return extra
}

// LoadLatencyExtra returns the cycles beyond the L1 pipeline latency a
// data load at addr costs (0 for an L1 hit).
//
//smt:hotpath
func (h *Hierarchy) LoadLatencyExtra(addr uint64) int {
	return h.access(h.L1D, addr, false)
}

// StoreCommit retires a store's data into the hierarchy at commit time.
// Stores are not on the critical path (the LSQ buffers them), but they
// keep cache state warm and cause allocations/writebacks.
//
//smt:hotpath
func (h *Hierarchy) StoreCommit(addr uint64) {
	h.access(h.L1D, addr, true)
}

// FetchLatencyExtra returns the cycles beyond the base fetch latency an
// instruction fetch at pc costs (0 for an L1I hit).
//
//smt:hotpath
func (h *Hierarchy) FetchLatencyExtra(pc uint64) int {
	return h.access(h.L1I, pc, false)
}
