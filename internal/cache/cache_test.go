package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{Name: "zero", Size: 0, Ways: 1, LineSize: 64},
		{Name: "badline", Size: 1024, Ways: 2, LineSize: 48},
		{Name: "indivisible", Size: 1000, Ways: 2, LineSize: 64},
		{Name: "badsets", Size: 3 * 64 * 2, Ways: 2, LineSize: 64},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %s accepted", cfg.Name)
		}
	}
	if _, err := New(Config{Name: "ok", Size: 1 << 14, Ways: 4, LineSize: 64}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Size: 1 << 12, Ways: 2, LineSize: 64})
	if hit, _ := c.Access(0x1000, false); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Error("second access missed")
	}
	// Same line, different offset: still a hit.
	if hit, _ := c.Access(0x103f, false); !hit {
		t.Error("same-line access missed")
	}
	// Next line: miss.
	if hit, _ := c.Access(0x1040, false); hit {
		t.Error("adjacent line hit")
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, line 64, 2 sets -> set stride 128.
	c := mustCache(t, Config{Name: "t", Size: 2 * 2 * 64, Ways: 2, LineSize: 64})
	a, b, d := uint64(0x0000), uint64(0x0080), uint64(0x0100) // same set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recently used
	c.Access(d, false) // evicts b
	if !c.Contains(a) {
		t.Error("MRU line evicted")
	}
	if c.Contains(b) {
		t.Error("LRU line survived")
	}
	if !c.Contains(d) {
		t.Error("new line not installed")
	}
}

func TestDirtyEvictionSignalsWriteback(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Size: 2 * 64, Ways: 1, LineSize: 64})
	c.Access(0x0000, true)           // dirty line in set 0
	c.Access(0x0040, true)           // set 1
	_, wb := c.Access(0x0080, false) // evicts dirty set-0 line
	if !wb {
		t.Error("dirty eviction did not signal writeback")
	}
	_, wb = c.Access(0x0000, false) // evicts clean 0x0080
	if wb {
		t.Error("clean eviction signalled writeback")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Size: 1 << 12, Ways: 2, LineSize: 64})
	for i := 0; i < 10; i++ {
		c.Access(uint64(i)*64, false)
	}
	for i := 0; i < 10; i++ {
		c.Access(uint64(i)*64, false)
	}
	s := c.Stats()
	if s.Accesses != 20 || s.Misses != 10 {
		t.Errorf("stats = %+v, want 20 accesses 10 misses", s)
	}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty stats miss rate not 0")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Size: 2 * 64, Ways: 1, LineSize: 64})
	c.Access(0x0000, false)
	before := c.Stats()
	for i := 0; i < 5; i++ {
		c.Contains(0x0000)
		c.Contains(0xfff000)
	}
	if c.Stats() != before {
		t.Error("Contains changed statistics")
	}
}

// TestWorkingSetProperty: accesses confined to a working set no larger
// than the cache must (after one cold pass) always hit; this is the
// fundamental inclusion property the synthetic workloads rely on to
// separate L1-resident from L2-resident benchmarks.
func TestWorkingSetProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c := MustNew(Config{Name: "p", Size: 1 << 12, Ways: 4, LineSize: 64})
		// 64 lines of capacity; working set of 32 lines.
		addrs := make([]uint64, 32)
		for i := range addrs {
			addrs[i] = uint64(i) * 64
		}
		for _, a := range addrs {
			c.Access(a, seed%2 == 0)
		}
		for i := 0; i < 128; i++ {
			a := addrs[(seed+uint64(i)*2654435761)%uint64(len(addrs))]
			if hit, _ := c.Access(a, false); !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := DefaultHierarchy()
	addr := uint64(0x200000000)
	// Cold: L1 miss, L2 miss -> L2 hit time + memory.
	if got := h.LoadLatencyExtra(addr); got != 10+150 {
		t.Errorf("cold load extra = %d, want 160", got)
	}
	// Warm L1.
	if got := h.LoadLatencyExtra(addr); got != 0 {
		t.Errorf("L1-hit extra = %d, want 0", got)
	}
	// An address that falls out of L1 but stays in L2 costs the L2 hit
	// time. Build that by touching enough conflicting lines to evict the
	// L1 copy (L1D is 32KB 4-way with 256B lines -> 32 sets, stride 8KB).
	for i := 1; i <= 8; i++ {
		h.LoadLatencyExtra(addr + uint64(i)*8<<10)
	}
	if got := h.LoadLatencyExtra(addr); got != 10 {
		t.Errorf("L2-hit extra = %d, want 10", got)
	}
}

func TestHierarchyTable1Geometry(t *testing.T) {
	h := DefaultHierarchy()
	checks := []struct {
		c                     *Cache
		size, ways, line, hit int
	}{
		{h.L1I, 64 << 10, 2, 128, 1},
		{h.L1D, 32 << 10, 4, 256, 1},
		{h.L2, 2 << 20, 8, 512, 10},
	}
	for _, chk := range checks {
		cfg := chk.c.Config()
		if cfg.Size != chk.size || cfg.Ways != chk.ways || cfg.LineSize != chk.line || cfg.HitCycles != chk.hit {
			t.Errorf("%s geometry %+v does not match Table 1", cfg.Name, cfg)
		}
	}
	if h.MemCycles != 150 {
		t.Errorf("memory latency %d, want 150", h.MemCycles)
	}
}

func TestFetchPathUsesL1I(t *testing.T) {
	h := DefaultHierarchy()
	pc := uint64(0x120000000)
	if got := h.FetchLatencyExtra(pc); got != 160 {
		t.Errorf("cold fetch extra = %d, want 160", got)
	}
	if got := h.FetchLatencyExtra(pc); got != 0 {
		t.Errorf("warm fetch extra = %d, want 0", got)
	}
	if h.L1I.Stats().Accesses != 2 {
		t.Errorf("L1I accesses = %d, want 2", h.L1I.Stats().Accesses)
	}
}

func TestStoreCommitWarmsCache(t *testing.T) {
	h := DefaultHierarchy()
	addr := uint64(0x300000000)
	h.StoreCommit(addr)
	if got := h.LoadLatencyExtra(addr); got != 0 {
		t.Errorf("load after store-commit extra = %d, want 0 (write-allocate)", got)
	}
}
