// Package cellstore is the content-addressed result store behind the
// sweep service: every simulation cell is keyed by a stable hash of its
// complete input description, and results persist on disk so repeated
// figure and report requests become cache hits instead of simulations.
//
// The store is deliberately boring: JSON-lines shard files (one per
// hash prefix), a manifest written by atomic rename, torn-tail recovery
// on open, and lease files with expiry so a fleet of worker processes
// can drain one sweep without double-simulating or orphaning cells.
package cellstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"smtsim"
)

// SchemaVersion identifies the cell hashing and result schema. It is
// part of every content hash: bump it whenever the meaning of a Spec
// field, the canonicalization rules, the simulator's statistics, or
// anything else that could change a cell's result drifts — old caches
// then miss instead of silently serving stale results. The golden hash
// test (internal/sweep) fails loudly when hashes move without a bump.
const SchemaVersion = 1

// Spec describes one simulation cell completely: everything that
// determines its Result is a field here, and nothing else is. The JSON
// encoding of the canonicalized Spec is the hash preimage, so field
// order, names, and omitempty rules are part of the schema — changing
// any of them requires a SchemaVersion bump.
type Spec struct {
	// Benchmarks names the workload of each hardware thread, in thread
	// order (order matters: it selects per-thread seeds).
	Benchmarks []string `json:"benchmarks"`
	// Scheduler is the canonical scheduler name (smtsim.Scheduler.String).
	Scheduler string `json:"scheduler"`
	// IQSize is the shared issue-queue capacity.
	IQSize int `json:"iq_size"`
	// FetchGate is the fetch-gating policy ("" = none).
	FetchGate string `json:"fetch_gate,omitempty"`
	// MemoryLatency overrides the main-memory latency (0 = Table 1's).
	MemoryLatency int `json:"memory_latency,omitempty"`
	// Budget is the measured per-run instruction budget.
	Budget uint64 `json:"budget"`
	// Warmup is the pre-measurement instruction budget.
	Warmup uint64 `json:"warmup"`
	// Seed is the workload seed as passed to smtsim.Config.
	Seed uint64 `json:"seed"`
}

// Canonical returns the spec with presentation aliases normalized: the
// "none" fetch gate becomes the empty string and the benchmark list is
// copied non-nil. Two specs that simulate identically canonicalize
// identically, so they share a hash.
func (s Spec) Canonical() Spec {
	if s.FetchGate == "none" {
		s.FetchGate = ""
	}
	s.Benchmarks = append([]string{}, s.Benchmarks...)
	return s
}

// Validate rejects specs that could not have come from the sweep
// harness; the daemon calls it on every submitted cell.
func (s Spec) Validate() error {
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("cellstore: spec has no benchmarks")
	}
	if _, err := smtsim.ParseScheduler(s.Scheduler); err != nil {
		return fmt.Errorf("cellstore: %w", err)
	}
	if s.IQSize < 1 {
		return fmt.Errorf("cellstore: non-positive IQ size %d", s.IQSize)
	}
	if s.Budget < 1 {
		return fmt.Errorf("cellstore: non-positive budget")
	}
	return nil
}

// Config converts the spec to the simulator configuration it denotes.
// Both the in-process sweep path and the daemon's workers build their
// Config through here, so the two are identical by construction.
func (s Spec) Config() (smtsim.Config, error) {
	sched, err := smtsim.ParseScheduler(s.Scheduler)
	if err != nil {
		return smtsim.Config{}, err
	}
	gate := s.FetchGate
	if gate == "none" {
		gate = ""
	}
	return smtsim.Config{
		Benchmarks:         append([]string(nil), s.Benchmarks...),
		IQSize:             s.IQSize,
		Scheduler:          sched,
		FetchGate:          gate,
		MemoryLatency:      s.MemoryLatency,
		MaxInstructions:    s.Budget,
		WarmupInstructions: s.Warmup,
		Seed:               s.Seed,
	}, nil
}

// Key returns the cell's content hash: the hex SHA-256 of a versioned
// preimage over the canonicalized spec's JSON encoding. The hash is the
// cell's identity everywhere — store shards, lease files, HTTP routes.
func (s Spec) Key() string {
	b, err := json.Marshal(s.Canonical())
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on one. Keep the
		// invariant loud rather than returning a colliding key.
		panic(fmt.Sprintf("cellstore: marshal spec: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "smtsim-cell-v%d\n", SchemaVersion)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}
