package cellstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"smtsim"
)

// prefixLen is the shard fan-out: cells land in shards/<hash[:2]>.jsonl.
const prefixLen = 2

// manifest is the store's self-description, written atomically at
// creation. A schema mismatch on open is a hard error: a store written
// under one schema can never serve cells to another.
type manifest struct {
	Schema    int    `json:"schema"`
	PrefixLen int    `json:"prefix_len"`
	CreatedAt string `json:"created_at"`
}

// record is one persisted cell: its hash, the full spec (so the store
// is self-describing and auditable), and the result.
type record struct {
	Hash   string        `json:"hash"`
	Spec   Spec          `json:"spec"`
	Result smtsim.Result `json:"result"`
}

// lease is the on-disk claim a worker holds on a cell it is simulating.
// A worker that dies leaves its lease behind; once ExpiresUnixNano
// passes, any other worker may steal the cell.
type lease struct {
	Owner           string `json:"owner"`
	ExpiresUnixNano int64  `json:"expires_unix_nano"`
}

// Stats counts store traffic since open. Values only grow.
type Stats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Puts         int64 `json:"puts"`
	TornTails    int64 `json:"torn_tails"`
	LeasesStolen int64 `json:"leases_stolen"`
}

// Store is an on-disk, content-addressed cell result store. It is safe
// for concurrent use within a process, and safe across processes for
// the operations the sweep service needs: appends are single-write
// JSON lines (torn tails are recovered, not fatal), manifest and lease
// writes go through atomic renames, and Get transparently picks up
// records appended by other processes.
type Store struct {
	dir string

	// Now is the lease clock, injectable for expiry tests.
	Now func() time.Time

	mu sync.Mutex
	//smt:guarded-by(mu)
	index map[string]record
	// shardSize tracks the bytes of each shard already indexed.
	//smt:guarded-by(mu)
	shardSize map[string]int64
	//smt:guarded-by(mu)
	stats Stats
}

// Open opens (creating if necessary) the store rooted at dir, verifies
// its manifest, and recovers any torn shard tails left by a crashed
// writer. The recovered suffix is truncated — those cells simply miss
// and re-simulate.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "shards"), filepath.Join(dir, "leases")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("cellstore: %w", err)
		}
	}
	s := &Store{
		dir:       dir,
		Now:       time.Now,
		index:     make(map[string]record),
		shardSize: make(map[string]int64),
	}
	if err := s.checkManifest(); err != nil {
		return nil, err
	}
	shards, err := filepath.Glob(filepath.Join(dir, "shards", "*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("cellstore: %w", err)
	}
	for _, path := range shards {
		if err := s.recoverShard(path); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dir returns the store's root directory (the daemon parks its queue
// checkpoint next to the shards).
func (s *Store) Dir() string { return s.dir }

func (s *Store) checkManifest() error {
	path := filepath.Join(s.dir, "MANIFEST.json")
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		m := manifest{Schema: SchemaVersion, PrefixLen: prefixLen, CreatedAt: s.Now().UTC().Format(time.RFC3339)}
		mb, _ := json.MarshalIndent(m, "", "  ")
		return AtomicWrite(path, append(mb, '\n'))
	}
	if err != nil {
		return fmt.Errorf("cellstore: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return fmt.Errorf("cellstore: corrupt manifest %s: %w", path, err)
	}
	if m.Schema != SchemaVersion || m.PrefixLen != prefixLen {
		return fmt.Errorf("cellstore: store %s has schema v%d/prefix %d, this build wants v%d/prefix %d: point at a fresh directory (old caches must never serve a new schema)",
			s.dir, m.Schema, m.PrefixLen, SchemaVersion, prefixLen)
	}
	return nil
}

// recoverShard indexes one shard file. A torn tail — a final line that
// is incomplete or fails to parse, the signature of a writer killed
// mid-append — is truncated away by rewriting the valid prefix through
// an atomic rename, and counted in Stats.TornTails. Anything beyond a
// torn line is unreachable by the append-only protocol, so truncation
// loses at most the one record that was being written.
func (s *Store) recoverShard(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("cellstore: %w", err)
	}
	valid, recs := scanRecords(b)
	if valid < int64(len(b)) {
		if err := AtomicWrite(path, b[:valid]); err != nil {
			return fmt.Errorf("cellstore: truncating torn tail of %s: %w", path, err)
		}
		s.mu.Lock()
		s.stats.TornTails++
		s.mu.Unlock()
	}
	s.mu.Lock()
	for _, r := range recs {
		s.index[r.Hash] = r
	}
	s.shardSize[filepath.Base(path)] = valid
	s.mu.Unlock()
	return nil
}

// scanRecords parses newline-terminated JSON records from b, returning
// the byte length of the valid prefix and the records in it. Parsing
// stops at the first line that is unterminated or not a record.
func scanRecords(b []byte) (int64, []record) {
	var recs []record
	var valid int64
	for off := 0; off < len(b); {
		nl := -1
		for i := off; i < len(b); i++ {
			if b[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // unterminated tail
		}
		var r record
		if err := json.Unmarshal(b[off:nl], &r); err != nil || r.Hash == "" {
			break // torn or foreign line; everything after is suspect
		}
		recs = append(recs, r)
		valid = int64(nl + 1)
		off = nl + 1
	}
	return valid, recs
}

func (s *Store) shardPath(hash string) (string, error) {
	if len(hash) < prefixLen {
		return "", fmt.Errorf("cellstore: malformed hash %q", hash)
	}
	return filepath.Join(s.dir, "shards", hash[:prefixLen]+".jsonl"), nil
}

// Get returns the stored result for a cell hash. On an index miss it
// re-reads the cell's shard from disk first, so results appended by
// other worker processes are visible without reopening the store. The
// in-progress tail of a concurrent append (if any) is skipped, not
// treated as corruption.
func (s *Store) Get(hash string) (smtsim.Result, bool, error) {
	s.mu.Lock()
	if r, ok := s.index[hash]; ok {
		s.stats.Hits++
		s.mu.Unlock()
		return r.Result, true, nil
	}
	s.mu.Unlock()

	path, err := s.shardPath(hash)
	if err != nil {
		return smtsim.Result{}, false, err
	}
	b, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return smtsim.Result{}, false, fmt.Errorf("cellstore: %w", err)
	}
	valid, recs := scanRecords(b)

	s.mu.Lock()
	defer s.mu.Unlock()
	name := filepath.Base(path)
	if valid > s.shardSize[name] {
		s.shardSize[name] = valid
	}
	for _, r := range recs {
		s.index[r.Hash] = r
	}
	if r, ok := s.index[hash]; ok {
		s.stats.Hits++
		return r.Result, true, nil
	}
	s.stats.Misses++
	return smtsim.Result{}, false, nil
}

// Put persists one cell result. The record is appended to its shard as
// a single write; a crash mid-append leaves a torn tail the next Open
// recovers. Re-putting an existing hash is idempotent (cells are
// deterministic, so any two writers wrote the same result).
func (s *Store) Put(spec Spec, res smtsim.Result) (string, error) {
	hash := spec.Key()
	line, err := json.Marshal(record{Hash: hash, Spec: spec.Canonical(), Result: res})
	if err != nil {
		return "", fmt.Errorf("cellstore: %w", err)
	}
	line = append(line, '\n')
	path, err := s.shardPath(hash)
	if err != nil {
		return "", err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[hash]; ok {
		return hash, nil
	}
	if err := appendShard(path, line); err != nil {
		return "", fmt.Errorf("cellstore: %w", err)
	}
	s.index[hash] = record{Hash: hash, Spec: spec.Canonical(), Result: res}
	s.shardSize[filepath.Base(path)] += int64(len(line))
	s.stats.Puts++
	return hash, nil
}

// Len returns the number of cells currently indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// StatsSnapshot returns a copy of the traffic counters.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// --- leases -----------------------------------------------------------

func (s *Store) leasePath(hash string) string {
	return filepath.Join(s.dir, "leases", hash+".lease")
}

// TryLease attempts to claim a cell for owner until ttl from now. It
// returns true when the claim holds: either the lease file was created
// fresh, renewed (same owner), or stolen from an expired holder. A
// live lease held by someone else returns false.
//
// Stealing goes through an atomic rename and then re-reads the file:
// if two workers race to steal the same expired lease, the rename that
// lands second wins and the loser observes a foreign owner.
func (s *Store) TryLease(hash, owner string, ttl time.Duration) (bool, error) {
	path := s.leasePath(hash)
	now := s.Now()
	body, err := json.Marshal(lease{Owner: owner, ExpiresUnixNano: now.Add(ttl).UnixNano()})
	if err != nil {
		return false, fmt.Errorf("cellstore: %w", err)
	}
	body = append(body, '\n')

	// Fast path: no lease exists yet.
	created, err := createLease(path, body)
	if err != nil {
		return false, err
	}
	if created {
		return true, nil
	}

	cur, ok, err := s.readLease(hash)
	if err != nil {
		return false, err
	}
	if ok && cur.Owner != owner && cur.ExpiresUnixNano > now.UnixNano() {
		return false, nil // live, foreign
	}
	stolen := ok && cur.Owner != owner
	if err := AtomicWrite(path, body); err != nil {
		return false, fmt.Errorf("cellstore: stealing lease: %w", err)
	}
	// Confirm the steal landed (another stealer's rename may have won).
	got, ok, err := s.readLease(hash)
	if err != nil {
		return false, err
	}
	if !ok || got.Owner != owner {
		return false, nil
	}
	if stolen {
		s.mu.Lock()
		s.stats.LeasesStolen++
		s.mu.Unlock()
	}
	return true, nil
}

// readLease decodes a lease file; a missing or corrupt file reads as
// "no lease" (corrupt means a torn atomic-rename temp is impossible,
// so treat it as expired garbage to be overwritten).
func (s *Store) readLease(hash string) (lease, bool, error) {
	b, err := os.ReadFile(s.leasePath(hash))
	if errors.Is(err, fs.ErrNotExist) {
		return lease{}, false, nil
	}
	if err != nil {
		return lease{}, false, fmt.Errorf("cellstore: %w", err)
	}
	var l lease
	if err := json.Unmarshal(b, &l); err != nil || l.Owner == "" {
		return lease{}, false, nil
	}
	return l, true, nil
}

// LeaseHolder reports the current lease owner and expiry, if any.
func (s *Store) LeaseHolder(hash string) (owner string, expires time.Time, ok bool) {
	l, ok, err := s.readLease(hash)
	if err != nil || !ok {
		return "", time.Time{}, false
	}
	return l.Owner, time.Unix(0, l.ExpiresUnixNano), true
}

// Release drops a lease if (and only if) owner still holds it.
func (s *Store) Release(hash, owner string) error {
	l, ok, err := s.readLease(hash)
	if err != nil {
		return err
	}
	if !ok || l.Owner != owner {
		return nil
	}
	if err := os.Remove(s.leasePath(hash)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cellstore: %w", err)
	}
	return nil
}

// AtomicWrite writes data to path through a same-directory temp file
// and rename, so readers observe either the old content or the new,
// never a partial write. It is one of the three blessed
// crash-consistency helpers (policy.AtomicFSAllowed): all service-layer
// durable writes outside shard appends and lease creation route
// through it, and the atomicfs analyzer enforces that.
func AtomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tmp)
	_, werr := w.Write(data)
	ferr := w.Flush()
	cerr := tmp.Close()
	if err := errors.Join(werr, ferr, cerr); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// appendShard appends one pre-terminated record line to a shard file as
// a single write. A crash mid-append leaves a torn tail that the next
// Open truncates away — the append-only protocol's recovery unit is one
// record. Blessed helper (policy.AtomicFSAllowed).
func appendShard(path string, line []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(line)
	cerr := f.Close()
	return errors.Join(werr, cerr)
}

// createLease creates a lease file with O_CREATE|O_EXCL — the atomic
// "first claimant wins" fast path of the lease protocol. created=false
// with a nil error means the file already existed (somebody holds or
// held the lease); steals go through AtomicWrite instead. Blessed
// helper (policy.AtomicFSAllowed).
func createLease(path string, body []byte) (created bool, err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return false, nil
		}
		return false, fmt.Errorf("cellstore: %w", err)
	}
	_, werr := f.Write(body)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		return false, fmt.Errorf("cellstore: writing lease: %w", errors.Join(werr, cerr))
	}
	return true, nil
}
