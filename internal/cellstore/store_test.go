package cellstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smtsim"
)

func testSpec(bench string, iq int) Spec {
	return Spec{
		Benchmarks: []string{bench, "gzip"},
		Scheduler:  smtsim.TwoOpOOOD.String(),
		IQSize:     iq,
		Budget:     1000,
		Warmup:     500,
		Seed:       2,
	}
}

func testResult(ipc float64) smtsim.Result {
	return smtsim.Result{
		Cycles:    1234,
		Committed: 1000,
		IPC:       ipc,
		Threads: []smtsim.ThreadResult{
			{Benchmark: "equake", Committed: 600, IPC: ipc / 2},
			{Benchmark: "gzip", Committed: 400, IPC: ipc / 2},
		},
	}
}

func TestKeyCanonicalization(t *testing.T) {
	a := testSpec("equake", 64)
	b := a
	b.FetchGate = "none" // alias of ""
	if a.Key() != b.Key() {
		t.Errorf("gate alias changes key: %s vs %s", a.Key(), b.Key())
	}
	c := a
	c.IQSize = 96
	if a.Key() == c.Key() {
		t.Error("different IQ sizes share a key")
	}
	d := a
	d.Benchmarks = []string{"gzip", "equake"} // thread order matters
	if a.Key() == d.Key() {
		t.Error("reordered benchmarks share a key")
	}
	if len(a.Key()) != 64 {
		t.Errorf("key %q is not hex sha256", a.Key())
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("equake", 64)
	want := testResult(1.5)
	hash, err := s.Put(spec, want)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(hash)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if got.Cycles != want.Cycles || got.IPC != want.IPC || len(got.Threads) != 2 {
		t.Errorf("round trip mutated result: %+v", got)
	}

	// A fresh Store over the same directory must see the record (disk,
	// not just the in-process index).
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got2, ok, err := s2.Get(hash)
	if err != nil || !ok {
		t.Fatalf("Get after reopen: ok=%v err=%v", ok, err)
	}
	if got2.Cycles != want.Cycles || got2.Threads[0].IPC != want.Threads[0].IPC {
		t.Errorf("reopened result mutated: %+v", got2)
	}
}

func TestStoreCrossProcessVisibility(t *testing.T) {
	// Two Stores over one directory model two worker processes: a put
	// through one must be visible to a Get on the other without reopen.
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("twolf", 32)
	hash, err := a.Put(spec, testResult(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := b.Get(hash); err != nil || !ok {
		t.Fatalf("cross-store Get: ok=%v err=%v", ok, err)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	specA := testSpec("equake", 64)
	specB := testSpec("twolf", 64)
	hashA, err := s.Put(specA, testResult(1.5))
	if err != nil {
		t.Fatal(err)
	}
	hashB, err := s.Put(specB, testResult(0.7))
	if err != nil {
		t.Fatal(err)
	}

	// Tear the tail of every shard: simulate a writer killed mid-append.
	shards, _ := filepath.Glob(filepath.Join(dir, "shards", "*.jsonl"))
	if len(shards) == 0 {
		t.Fatal("no shards written")
	}
	for _, p := range shards {
		f, err := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"hash":"deadbeef","spec":{"benchm`); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn tails: %v", err)
	}
	if got := s2.StatsSnapshot().TornTails; got != int64(len(shards)) {
		t.Errorf("TornTails = %d, want %d", got, len(shards))
	}
	for _, h := range []string{hashA, hashB} {
		if _, ok, err := s2.Get(h); err != nil || !ok {
			t.Errorf("record %s lost to torn-tail recovery: ok=%v err=%v", h[:8], ok, err)
		}
	}
	// The torn bytes are gone from disk.
	for _, p := range shards {
		b, _ := os.ReadFile(p)
		if strings.Contains(string(b), "deadbeef") {
			t.Errorf("torn tail survives in %s", p)
		}
	}
}

func TestManifestSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "MANIFEST.json")
	if err := os.WriteFile(path, []byte(`{"schema": 999, "prefix_len": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("schema-mismatched store opened without error")
	} else if !strings.Contains(err.Error(), "schema") {
		t.Errorf("unhelpful mismatch error: %v", err)
	}
}

func TestLeaseLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	s.Now = func() time.Time { return now }
	hash := testSpec("equake", 64).Key()

	if ok, err := s.TryLease(hash, "w1", time.Second); err != nil || !ok {
		t.Fatalf("fresh lease: ok=%v err=%v", ok, err)
	}
	// A live lease repels other owners but renews for its holder.
	if ok, _ := s.TryLease(hash, "w2", time.Second); ok {
		t.Error("live lease stolen by w2")
	}
	if ok, _ := s.TryLease(hash, "w1", time.Second); !ok {
		t.Error("holder could not renew")
	}
	// Expiry opens the lease to stealing.
	now = now.Add(2 * time.Second)
	if ok, err := s.TryLease(hash, "w2", time.Second); err != nil || !ok {
		t.Fatalf("expired lease not stolen: ok=%v err=%v", ok, err)
	}
	if got := s.StatsSnapshot().LeasesStolen; got != 1 {
		t.Errorf("LeasesStolen = %d, want 1", got)
	}
	if owner, _, ok := s.LeaseHolder(hash); !ok || owner != "w2" {
		t.Errorf("holder = %q, %v", owner, ok)
	}
	// Release is owner-checked.
	if err := s.Release(hash, "w1"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.LeaseHolder(hash); !ok {
		t.Error("foreign release dropped the lease")
	}
	if err := s.Release(hash, "w2"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.LeaseHolder(hash); ok {
		t.Error("lease survives owner release")
	}
}

func TestPutIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("equake", 48)
	if _, err := s.Put(spec, testResult(1.0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(spec, testResult(1.0)); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 1 {
		t.Errorf("Len = %d after duplicate put", n)
	}
	path, _ := s.shardPath(spec.Key())
	b, _ := os.ReadFile(path)
	if got := strings.Count(string(b), "\n"); got != 1 {
		t.Errorf("%d lines on disk after duplicate put, want 1", got)
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec("equake", 64)
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Spec){
		"no-benchmarks": func(s *Spec) { s.Benchmarks = nil },
		"bad-scheduler": func(s *Spec) { s.Scheduler = "quantum" },
		"zero-iq":       func(s *Spec) { s.IQSize = 0 },
		"zero-budget":   func(s *Spec) { s.Budget = 0 },
	} {
		s := testSpec("equake", 64)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
}
