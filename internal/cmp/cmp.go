// Package cmp composes several SMT cores into a chip multiprocessor
// sharing a unified L2 cache — the configuration the paper's
// introduction motivates ("IBM Power 5 is dual-core CMP, with each core
// being 2-way SMT"; likewise Pentium Extreme Edition and Montecito).
//
// Each core is a complete Table 1 machine with private L1 caches,
// predictors, and scheduling logic; the cores advance in lockstep, one
// cycle at a time, interacting only through the shared L2's contents
// and replacement state. The composition answers the natural follow-on
// question to the paper: do the scheduler conclusions survive when two
// SMT cores contend for the L2?
package cmp

import (
	"fmt"

	"smtsim/internal/cache"
	"smtsim/internal/metrics"
	"smtsim/internal/pipeline"
)

// Config describes a chip multiprocessor.
type Config struct {
	// Core is the per-core configuration (the Hierarchy field is
	// overwritten by the shared-L2 plumbing).
	Core pipeline.Config
	// Workloads binds each core's hardware threads; one inner slice per
	// core.
	Workloads [][]pipeline.ThreadSpec
	// L2 optionally overrides the shared L2 geometry (nil = Table 1's
	// 2MB/8-way/512B at 10 cycles).
	L2 *cache.Config
	// MemCycles is the main-memory latency (0 = Table 1's 150).
	MemCycles int
}

// System is an instantiated chip multiprocessor.
type System struct {
	cores []*pipeline.Core
	l2    *cache.Cache
}

// New builds the system: one shared L2, per-core private L1s.
func New(cfg Config) (*System, error) {
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("cmp: no cores configured")
	}
	l2cfg := cache.Config{Name: "l2", Size: 2 << 20, Ways: 8, LineSize: 512, HitCycles: 10}
	if cfg.L2 != nil {
		l2cfg = *cfg.L2
	}
	l2, err := cache.New(l2cfg)
	if err != nil {
		return nil, err
	}
	mem := cfg.MemCycles
	if mem == 0 {
		mem = 150
	}
	s := &System{l2: l2}
	for i, specs := range cfg.Workloads {
		ccfg := cfg.Core
		ccfg.Hierarchy = &cache.Hierarchy{
			L1I:       cache.MustNew(cache.Config{Name: "l1i", Size: 64 << 10, Ways: 2, LineSize: 128, HitCycles: 1}),
			L1D:       cache.MustNew(cache.Config{Name: "l1d", Size: 32 << 10, Ways: 4, LineSize: 256, HitCycles: 1}),
			L2:        l2,
			MemCycles: mem,
		}
		core, err := pipeline.New(ccfg, specs)
		if err != nil {
			return nil, fmt.Errorf("cmp: core %d: %w", i, err)
		}
		s.cores = append(s.cores, core)
	}
	return s, nil
}

// Cores returns the number of cores.
func (s *System) Cores() int { return len(s.cores) }

// Core exposes one core (tests and instrumentation).
func (s *System) Core(i int) *pipeline.Core { return s.cores[i] }

// L2 exposes the shared cache.
func (s *System) L2() *cache.Cache { return s.l2 }

// Run steps every core in lockstep until each core has some thread with
// maxCommit committed instructions, then returns per-core results
// snapshotted at each core's own completion cycle (so a fast core's
// statistics are not diluted by cycles it spent merely keeping the L2
// warm for the laggards). The step order within a cycle is fixed
// (core 0 first), keeping runs deterministic.
func (s *System) Run(maxCommit uint64) ([]metrics.Results, error) {
	if maxCommit == 0 {
		return nil, fmt.Errorf("cmp: zero commit budget")
	}
	results := make([]metrics.Results, len(s.cores))
	done := make([]bool, len(s.cores))
	remaining := len(s.cores)
	var cycles int64
	maxCycles := int64(maxCommit)*400*int64(len(s.cores)) + 10_000_000
	for remaining > 0 {
		cycles++
		if cycles > maxCycles {
			return results, fmt.Errorf("cmp: cycle cap reached with %d cores unfinished", remaining)
		}
		for i, c := range s.cores {
			if done[i] {
				continue
			}
			c.Step()
			if c.MaxCommitted() >= maxCommit {
				results[i] = c.Results()
				done[i] = true
				remaining--
			}
		}
	}
	return results, nil
}
