package cmp

import (
	"testing"

	"smtsim/internal/cache"
	icore "smtsim/internal/core"
	"smtsim/internal/pipeline"
	"smtsim/internal/workload"
)

func threadSpec(t *testing.T, name string, seed uint64) pipeline.ThreadSpec {
	t.Helper()
	prog, err := workload.CompileBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return pipeline.ThreadSpec{Name: name, Reader: prog.NewStream(seed)}
}

func dualCore(t *testing.T, policy icore.Policy) *System {
	t.Helper()
	cfg := Config{Core: pipeline.DefaultConfig()}
	cfg.Core.Policy = policy
	cfg.Workloads = [][]pipeline.ThreadSpec{
		{threadSpec(t, "equake", 1), threadSpec(t, "gzip", 2)},
		{threadSpec(t, "gcc", 3), threadSpec(t, "vortex", 4)},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDualCoreRuns(t *testing.T) {
	s := dualCore(t, icore.TwoOpOOOD)
	if s.Cores() != 2 {
		t.Fatalf("cores = %d", s.Cores())
	}
	results, err := s.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Committed < 10_000 || r.IPC <= 0 {
			t.Errorf("core %d result degenerate: %+v", i, r)
		}
		if len(r.Threads) != 2 {
			t.Errorf("core %d thread count %d", i, len(r.Threads))
		}
	}
	if s.L2().Stats().Accesses == 0 {
		t.Error("shared L2 never accessed")
	}
}

func TestSharedL2SeesBothCores(t *testing.T) {
	s := dualCore(t, icore.InOrder)
	if _, err := s.Run(5_000); err != nil {
		t.Fatal(err)
	}
	// Both cores' L1 miss streams funnel into the single L2; its access
	// count must exceed either core's private L1D miss count alone.
	l2 := s.L2().Stats()
	if l2.Accesses == 0 || l2.Misses == 0 {
		t.Errorf("shared L2 stats empty: %+v", l2)
	}
}

func TestCMPDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		s := dualCore(t, icore.TwoOpOOOD)
		res, err := s.Run(5_000)
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Cycles, res[1].Cycles
	}
	a0, a1 := run()
	b0, b1 := run()
	if a0 != b0 || a1 != b1 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", a0, a1, b0, b1)
	}
}

func TestL2ContentionVisible(t *testing.T) {
	// A core sharing its L2 with a cache-hungry neighbor must run no
	// faster than the same core with the L2 to itself.
	solo := Config{Core: pipeline.DefaultConfig()}
	solo.Workloads = [][]pipeline.ThreadSpec{
		{threadSpec(t, "gcc", 3), threadSpec(t, "vortex", 4)},
	}
	s1, err := New(solo)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}

	s2 := dualCore(t, icore.InOrder)
	r2, err := s2.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	// Core 1 of the dual config runs gcc+vortex, like the solo system.
	if r2[1].IPC > r1[0].IPC*1.02 {
		t.Errorf("L2 contention made the core faster: %.3f vs %.3f solo", r2[1].IPC, r1[0].IPC)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty CMP accepted")
	}
	bad := Config{
		Core: pipeline.DefaultConfig(),
		L2:   &cache.Config{Name: "l2", Size: 100, Ways: 3, LineSize: 48},
		Workloads: [][]pipeline.ThreadSpec{
			{threadSpec(t, "gcc", 1)},
		},
	}
	if _, err := New(bad); err == nil {
		t.Error("bad L2 geometry accepted")
	}
	if _, err := New(Config{Core: pipeline.DefaultConfig(), Workloads: [][]pipeline.ThreadSpec{{}}}); err == nil {
		t.Error("empty core workload accepted")
	}
}

func TestZeroBudget(t *testing.T) {
	s := dualCore(t, icore.InOrder)
	if _, err := s.Run(0); err == nil {
		t.Error("zero budget accepted")
	}
}
