package core

import "smtsim/internal/uop"

// Buffer is one thread's dispatch buffer: the renamed instructions that
// have not yet entered the issue queue, in program order. Under in-order
// policies only the head is a dispatch candidate; under out-of-order
// dispatch the whole buffer is scanned, so its capacity bounds how much
// hidden ILP the OOOD mechanism can expose.
//
// Storage is a ring of uop ids over the core's bank, rounded up to a
// power of two so the scan indexes with a mask instead of a modulo.
type Buffer struct {
	bank *uop.Bank
	buf  []int32
	mask int
	capn int // logical capacity (CanPush gate), <= len(buf)
	head int
	size int
	// gen counts content mutations (pushes and removals). The
	// dispatcher's per-thread scan freeze uses it to detect that a
	// buffer is unchanged since the scan it memoized.
	gen uint32
}

// NewBuffer builds a buffer with the given capacity over the bank.
func NewBuffer(bank *uop.Bank, capacity int) *Buffer {
	if capacity <= 0 {
		panic("core: buffer capacity must be positive")
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Buffer{bank: bank, buf: make([]int32, n), mask: n - 1, capn: capacity}
}

// Cap returns the capacity.
func (b *Buffer) Cap() int { return b.capn }

// Len returns the number of buffered instructions.
//
//smt:hotpath
func (b *Buffer) Len() int { return b.size }

// CanPush reports whether one more instruction fits.
//
//smt:hotpath
func (b *Buffer) CanPush() bool { return b.size < b.capn }

// Push appends a renamed instruction in program order.
//
//smt:hotpath
func (b *Buffer) Push(u *uop.UOp) {
	if b.size == b.capn {
		panic("core: dispatch buffer overflow")
	}
	b.buf[(b.head+b.size)&b.mask] = u.ID
	b.size++
	b.gen++
}

// At returns the i-th oldest buffered instruction (0 = oldest).
//
//smt:hotpath
//smt:trusted-id — b.buf[head..head+size) holds only resident ids; Push adds, RemoveAt deletes
func (b *Buffer) At(i int) *uop.UOp {
	if i < 0 || i >= b.size {
		panic("core: buffer index out of range")
	}
	return b.bank.Get(b.buf[(b.head+i)&b.mask])
}

// RemoveAt extracts the i-th oldest instruction, preserving the order of
// the rest. i==0 is the common in-order case and is O(1); out-of-order
// removal shifts at most Cap-1 ids, which is trivial at the buffer
// sizes involved (tens of entries).
//
//smt:hotpath
func (b *Buffer) RemoveAt(i int) *uop.UOp {
	u := b.At(i)
	b.gen++
	if i == 0 {
		b.head = (b.head + 1) & b.mask
		b.size--
		return u
	}
	for j := i; j < b.size-1; j++ {
		b.buf[(b.head+j)&b.mask] = b.buf[(b.head+j+1)&b.mask]
	}
	b.size--
	return u
}

// DrainYoungerThan removes every buffered instruction younger than gseq
// from the tail, returning them in program order (selective-squash path).
func (b *Buffer) DrainYoungerThan(gseq uint64) []*uop.UOp {
	cut := b.size
	for cut > 0 && b.At(cut-1).GSeq > gseq {
		cut--
	}
	n := b.size - cut
	out := make([]*uop.UOp, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = b.RemoveAt(b.size - 1)
	}
	return out
}

// DrainAll empties the buffer, returning its contents in program order
// (watchdog flush path).
func (b *Buffer) DrainAll() []*uop.UOp {
	out := make([]*uop.UOp, 0, b.size)
	for b.size > 0 {
		out = append(out, b.RemoveAt(0))
	}
	return out
}
