package core

import "smtsim/internal/uop"

// Buffer is one thread's dispatch buffer: the renamed instructions that
// have not yet entered the issue queue, in program order. Under in-order
// policies only the head is a dispatch candidate; under out-of-order
// dispatch the whole buffer is scanned, so its capacity bounds how much
// hidden ILP the OOOD mechanism can expose.
type Buffer struct {
	buf  []*uop.UOp
	head int
	size int
}

// NewBuffer builds a buffer with the given capacity.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("core: buffer capacity must be positive")
	}
	return &Buffer{buf: make([]*uop.UOp, capacity)}
}

// Cap returns the capacity.
func (b *Buffer) Cap() int { return len(b.buf) }

// Len returns the number of buffered instructions.
//
//smt:hotpath
func (b *Buffer) Len() int { return b.size }

// CanPush reports whether one more instruction fits.
//
//smt:hotpath
func (b *Buffer) CanPush() bool { return b.size < len(b.buf) }

// Push appends a renamed instruction in program order.
//
//smt:hotpath
func (b *Buffer) Push(u *uop.UOp) {
	if b.size == len(b.buf) {
		panic("core: dispatch buffer overflow")
	}
	b.buf[(b.head+b.size)%len(b.buf)] = u
	b.size++
}

// At returns the i-th oldest buffered instruction (0 = oldest).
//
//smt:hotpath
func (b *Buffer) At(i int) *uop.UOp {
	if i < 0 || i >= b.size {
		panic("core: buffer index out of range")
	}
	return b.buf[(b.head+i)%len(b.buf)]
}

// RemoveAt extracts the i-th oldest instruction, preserving the order of
// the rest. i==0 is the common in-order case and is O(1); out-of-order
// removal shifts at most Cap-1 pointers, which is trivial at the buffer
// sizes involved (tens of entries).
//
//smt:hotpath
func (b *Buffer) RemoveAt(i int) *uop.UOp {
	u := b.At(i)
	if i == 0 {
		b.buf[b.head] = nil
		b.head = (b.head + 1) % len(b.buf)
		b.size--
		return u
	}
	for j := i; j < b.size-1; j++ {
		b.buf[(b.head+j)%len(b.buf)] = b.buf[(b.head+j+1)%len(b.buf)]
	}
	b.buf[(b.head+b.size-1)%len(b.buf)] = nil
	b.size--
	return u
}

// DrainYoungerThan removes every buffered instruction younger than gseq
// from the tail, returning them in program order (selective-squash path).
func (b *Buffer) DrainYoungerThan(gseq uint64) []*uop.UOp {
	cut := b.size
	for cut > 0 && b.At(cut-1).GSeq > gseq {
		cut--
	}
	n := b.size - cut
	out := make([]*uop.UOp, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = b.RemoveAt(b.size - 1)
	}
	return out
}

// DrainAll empties the buffer, returning its contents in program order
// (watchdog flush path).
func (b *Buffer) DrainAll() []*uop.UOp {
	out := make([]*uop.UOp, 0, b.size)
	for b.size > 0 {
		out = append(out, b.RemoveAt(0))
	}
	return out
}
