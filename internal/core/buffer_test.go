package core

import (
	"testing"
	"testing/quick"

	"smtsim/internal/uop"
)

// bankAlloc hands out bank records round-robin with ascending GSeqs,
// standing in for the rename stage's ROB allocation.
type bankAlloc struct {
	bank *uop.Bank
	next int32
	seq  uint64
}

func newBankAlloc(n int) *bankAlloc { return &bankAlloc{bank: uop.NewBank(n)} }

func (a *bankAlloc) get() *uop.UOp {
	u := a.bank.Get(a.next % int32(a.bank.Cap()))
	a.next++
	a.seq++
	u.GSeq = a.seq
	return u
}

func TestBufferPushAtRemove(t *testing.T) {
	a := newBankAlloc(8)
	b := NewBuffer(a.bank, 4)
	us := []*uop.UOp{a.get(), a.get(), a.get()}
	for _, u := range us {
		if !b.CanPush() {
			t.Fatal("CanPush false below capacity")
		}
		b.Push(u)
	}
	for i, u := range us {
		if b.At(i) != u {
			t.Fatalf("At(%d) wrong", i)
		}
	}
	// Remove the middle entry: order of the rest preserved.
	if got := b.RemoveAt(1); got != us[1] {
		t.Fatal("RemoveAt(1) returned wrong entry")
	}
	if b.At(0) != us[0] || b.At(1) != us[2] || b.Len() != 2 {
		t.Fatal("order broken after middle removal")
	}
}

func TestBufferOverflowPanics(t *testing.T) {
	a := newBankAlloc(4)
	b := NewBuffer(a.bank, 1)
	b.Push(a.get())
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	b.Push(a.get())
}

func TestBufferIndexPanics(t *testing.T) {
	a := newBankAlloc(4)
	b := NewBuffer(a.bank, 2)
	b.Push(a.get())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	b.At(1)
}

func TestBufferDrainAll(t *testing.T) {
	a := newBankAlloc(8)
	b := NewBuffer(a.bank, 4)
	var want []*uop.UOp
	for i := 0; i < 4; i++ {
		u := a.get()
		b.Push(u)
		want = append(want, u)
	}
	got := b.DrainAll()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order broken at %d", i)
		}
	}
	if b.Len() != 0 || !b.CanPush() {
		t.Error("buffer unusable after drain")
	}
}

// TestBufferOrderProperty: arbitrary push/removeAt sequences keep the
// buffer ordered by insertion sequence — the program-order invariant the
// dispatch policies scan under.
func TestBufferOrderProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a := newBankAlloc(256)
		b := NewBuffer(a.bank, 8)
		for _, op := range ops {
			if op%3 != 0 && b.CanPush() {
				b.Push(a.get())
			} else if b.Len() > 0 {
				b.RemoveAt(int(op) % b.Len())
			}
			for i := 1; i < b.Len(); i++ {
				if b.At(i-1).GSeq >= b.At(i).GSeq {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBufferWrapAround(t *testing.T) {
	a := newBankAlloc(8)
	b := NewBuffer(a.bank, 3)
	push := func() { b.Push(a.get()) }
	push()
	push()
	b.RemoveAt(0)
	push()
	push() // wraps
	if b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
	for i := 1; i < b.Len(); i++ {
		if b.At(i-1).GSeq >= b.At(i).GSeq {
			t.Fatal("wrap-around broke ordering")
		}
	}
}
