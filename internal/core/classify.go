package core

import (
	"smtsim/internal/regfile"
	"smtsim/internal/uop"
)

// Kind is the paper's Section 4 classification of an instruction
// considered for dispatch.
type Kind uint8

const (
	// DI (Dispatchable Instruction): an appropriate IQ entry exists for
	// its current non-ready source count.
	DI Kind = iota
	// NDI (Non-Dispatchable Instruction): no IQ entry has enough tag
	// comparators (under a one-comparator scheduler, two non-ready
	// sources).
	NDI
	// HDI (Hidden Dispatchable Instruction): a DI that sits behind an
	// older NDI in its thread's program order — invisible to the
	// scheduler under in-order dispatch, exposed by out-of-order
	// dispatch.
	HDI
)

// String returns "DI", "NDI", or "HDI".
func (k Kind) String() string {
	switch k {
	case DI:
		return "DI"
	case NDI:
		return "NDI"
	case HDI:
		return "HDI"
	}
	return "?"
}

// Classify labels each instruction of a program-order dispatch window
// according to the paper's taxonomy, given the current register ready
// state and the scheduler's per-entry comparator count (maxNonReady, 1
// for 2OP designs). This is the logic of Figure 2 as a pure function,
// used by tests and by the example programs.
func Classify(window []*uop.UOp, rf *regfile.File, maxNonReady int) []Kind {
	kinds := make([]Kind, len(window))
	behindNDI := false
	for i, u := range window {
		if u.NumSrcNotReady(rf) > maxNonReady {
			kinds[i] = NDI
			behindNDI = true
			continue
		}
		if behindNDI {
			kinds[i] = HDI
		} else {
			kinds[i] = DI
		}
	}
	return kinds
}
