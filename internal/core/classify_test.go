package core

import (
	"testing"

	"smtsim/internal/isa"
	"smtsim/internal/regfile"
	"smtsim/internal/uop"
)

// TestFigure2Example reproduces the paper's Figure 2 walkthrough: under a
// one-comparator scheduler, I1 (ready sources) is a DI, I2 (two non-ready
// sources) is an NDI, and I3/I4 behind it are HDIs — including I4, which
// depends on I2 but is still dispatchable because only one of its sources
// is non-ready.
func TestFigure2Example(t *testing.T) {
	rf := regfile.New(32, 32)
	alloc := func(ready bool) regfile.PhysRef {
		p := rf.Alloc(isa.IntReg)
		if ready {
			rf.SetReady(p)
		}
		return p
	}

	r1, r2 := alloc(true), alloc(true)
	r3, r4 := alloc(false), alloc(false) // produced by in-flight loads
	i1 := &uop.UOp{GSeq: 1, Srcs: [2]regfile.PhysRef{r1, r2}, Dest: alloc(false)}
	i2 := &uop.UOp{GSeq: 2, Srcs: [2]regfile.PhysRef{r3, r4}, Dest: alloc(false)}
	i3 := &uop.UOp{GSeq: 3, Srcs: [2]regfile.PhysRef{r1, regfile.NoPhys}, Dest: alloc(false)}
	i4 := &uop.UOp{GSeq: 4, Srcs: [2]regfile.PhysRef{i2.Dest, r2}, Dest: alloc(false)}

	kinds := Classify([]*uop.UOp{i1, i2, i3, i4}, rf, 1)
	want := []Kind{DI, NDI, HDI, HDI}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("I%d classified %v, want %v", i+1, kinds[i], want[i])
		}
	}
}

func TestClassifyTraditionalHasNoNDIs(t *testing.T) {
	rf := regfile.New(32, 32)
	nr := func() regfile.PhysRef { return rf.Alloc(isa.IntReg) }
	u := &uop.UOp{GSeq: 1, Srcs: [2]regfile.PhysRef{nr(), nr()}}
	kinds := Classify([]*uop.UOp{u}, rf, 2)
	if kinds[0] != DI {
		t.Errorf("two-comparator scheduler classified %v, want DI", kinds[0])
	}
}

func TestClassifyEmptyWindow(t *testing.T) {
	if got := Classify(nil, regfile.New(4, 4), 1); len(got) != 0 {
		t.Errorf("empty window returned %v", got)
	}
}

func TestKindString(t *testing.T) {
	if DI.String() != "DI" || NDI.String() != "NDI" || HDI.String() != "HDI" {
		t.Error("Kind names wrong")
	}
	if Kind(9).String() != "?" {
		t.Error("unknown kind not handled")
	}
}
