package core

import "smtsim/internal/uop"

// DAB is the deadlock-avoidance buffer of Section 4: a small RAM (no
// wakeup CAM) holding instructions that are the oldest in their thread's
// ROB but could not obtain an issue-queue entry. Such instructions have
// all source operands ready by definition — every older instruction has
// committed — so they only wait for a functional unit.
//
// Instructions in the DAB take issue precedence over the IQ; when the DAB
// is non-empty, IQ selection is disabled (the paper's preferred, simpler
// arbitration, noted to cost essentially nothing because the IQ is
// unlikely to issue anything in these episodes anyway).
type DAB struct {
	bank    *uop.Bank
	entries []int32
	cap     int

	// Inserts counts total captures, an indicator of how often the
	// deadlock-avoidance path engages.
	Inserts uint64
}

// NewDAB builds a buffer with the given capacity over the core's uop
// bank. One entry per hardware thread is sufficient to guarantee forward
// progress: only a thread's single ROB-oldest instruction is ever
// eligible.
func NewDAB(bank *uop.Bank, capacity int) *DAB {
	if capacity <= 0 {
		panic("core: DAB capacity must be positive")
	}
	return &DAB{bank: bank, cap: capacity}
}

// Cap returns the capacity.
func (d *DAB) Cap() int { return d.cap }

// Len returns the number of waiting instructions.
//
//smt:hotpath
func (d *DAB) Len() int { return len(d.entries) }

// CanInsert reports whether a free slot exists.
//
//smt:hotpath
func (d *DAB) CanInsert() bool { return len(d.entries) < d.cap }

// Insert captures a ROB-oldest instruction.
//
//smt:hotpath
func (d *DAB) Insert(u *uop.UOp) {
	if !d.CanInsert() {
		panic("core: DAB overflow")
	}
	u.InDAB = true
	d.entries = append(d.entries, u.ID)
	d.Inserts++
}

// Entries returns the current occupants' ids oldest-insertion-first. The
// returned slice is the internal storage; callers must not mutate it.
//
//smt:hotpath
func (d *DAB) Entries() []int32 { return d.entries }

// Remove extracts u at issue (or squash).
//
//smt:hotpath
func (d *DAB) Remove(u *uop.UOp) {
	for i, id := range d.entries {
		if id == u.ID {
			d.entries = append(d.entries[:i], d.entries[i+1:]...)
			u.InDAB = false
			return
		}
	}
	panic("core: DAB remove of absent entry")
}

// DrainThread removes all of thread t's occupants (watchdog flush path).
//
//smt:trusted-id — scans d.entries, which holds only resident ids
func (d *DAB) DrainThread(t int) []*uop.UOp {
	var out []*uop.UOp
	kept := d.entries[:0]
	for _, id := range d.entries {
		u := d.bank.Get(id)
		if u.Thread == t {
			u.InDAB = false
			out = append(out, u)
		} else {
			kept = append(kept, id)
		}
	}
	d.entries = kept
	return out
}

// Watchdog is the alternative deadlock-recovery mechanism of Section 4: a
// countdown since the last dispatch. When it expires, the pipeline
// flushes all in-flight instructions and refetches from the ROB-oldest
// PCs. The paper sets the limit to 2-3x the memory latency; the pipeline
// configuration chooses the concrete value.
type Watchdog struct {
	limit     int64
	remaining int64

	// Expiries counts watchdog firings (each costs a full pipeline flush).
	Expiries uint64
}

// NewWatchdog builds a watchdog with the given cycle limit.
func NewWatchdog(limit int64) *Watchdog {
	if limit <= 0 {
		panic("core: watchdog limit must be positive")
	}
	return &Watchdog{limit: limit, remaining: limit}
}

// Tick advances one cycle. dispatched reports whether any instruction was
// dispatched this cycle (which resets the counter). Tick returns true
// when the watchdog expires; the counter is then reset for the next epoch.
//
//smt:hotpath
func (w *Watchdog) Tick(dispatched bool) bool {
	if dispatched {
		w.remaining = w.limit
		return false
	}
	w.remaining--
	if w.remaining > 0 {
		return false
	}
	w.Expiries++
	w.remaining = w.limit
	return true
}

// Limit returns the configured countdown start value.
func (w *Watchdog) Limit() int64 { return w.limit }

// Remaining returns the number of further consecutive idle cycles until
// the watchdog expires; the quiescent-cycle fast-forward must not skip
// past cycle now+Remaining(), where the expiry flush runs.
func (w *Watchdog) Remaining() int64 { return w.remaining }

// SkipIdle advances the countdown by k dispatch-free cycles at once, the
// watchdog's share of the pipeline's quiescent-cycle fast-forward. The
// skip must stop short of the expiry cycle (Remaining bounds it), so
// crossing it here is a fast-forward bug.
func (w *Watchdog) SkipIdle(k int64) {
	if k >= w.remaining {
		panic("core: watchdog idle skip crossed the expiry cycle")
	}
	w.remaining -= k
}

// ResetStats clears the expiry counter without disturbing the running
// countdown, for measurement after a warmup period. (statescope: the
// counter is this package's state; callers must not zero it directly.)
func (w *Watchdog) ResetStats() { w.Expiries = 0 }
