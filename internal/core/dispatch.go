package core

import (
	"fmt"

	"smtsim/internal/iq"
	"smtsim/internal/isa"
	"smtsim/internal/regfile"
	"smtsim/internal/rob"
	"smtsim/internal/uop"
)

// Stats aggregates the dispatch-stage statistics the paper reports.
type Stats struct {
	// Dispatched counts instructions sent to the IQ or DAB.
	Dispatched uint64
	// Cycles counts dispatch-stage invocations (one per machine cycle),
	// the denominator for the stall fractions.
	Cycles uint64
	// StallAllNDI counts cycles in which nothing dispatched and every
	// thread simultaneously held buffered instructions blocked by the
	// 2OP condition (an NDI at the head under in-order dispatch; only
	// NDIs buffered under OOOD) — the paper's "dispatch of all threads
	// stalls" statistic (43%/17%/7% for 2/3/4 threads at 64 entries
	// under 2OP_BLOCK; 0.2% under OOOD for 2 threads).
	StallAllNDI uint64
	// StallNDIWeak counts zero-dispatch cycles in which at least one
	// thread was NDI-blocked and no thread was blocked for any other
	// reason (threads with empty buffers — starved upstream — are
	// ignored). This looser reading of the paper's statistic bounds the
	// strict StallAllNDI from above.
	StallNDIWeak uint64
	// StallAllAny counts cycles with buffered work somewhere and zero
	// dispatches for any reason (NDI or IQ-full).
	StallAllAny uint64
	// WorkCycles counts cycles in which at least one thread had buffered
	// instructions.
	WorkCycles uint64
	// NDIBlockCycles counts, per thread, cycles the thread's oldest
	// undispatched instruction was an NDI.
	NDIBlockCycles []uint64
	// PiledSampled and PiledHDI sample, once per NDI-blocked thread
	// cycle, the instructions queued behind the blocking NDI and how
	// many of them are themselves dispatchable — the paper's "almost
	// 90% of instructions piled up behind the NDIs are HDIs".
	PiledSampled uint64
	PiledHDI     uint64
	// HDIDispatched counts instructions dispatched out of program order
	// (ahead of an older NDI); HDIDepOnNDI counts those that directly or
	// transitively depended on a blocked NDI (the paper's ~10%).
	HDIDispatched uint64
	HDIDepOnNDI   uint64
	// NDIDispatchDelayed counts instructions that spent at least one
	// cycle classified as NDI before eventually dispatching.
	NDIDispatchDelayed uint64
}

// taintSet tracks one thread's tainted physical registers — destinations
// of currently blocked NDIs and of dispatched instructions transitively
// dependent on them — as per-class bitmaps over register indices. The
// set is consulted on every buffered instruction during the OOOD scan,
// so membership must be a couple of shifts, not a map probe.
type taintSet struct {
	w [isa.NumRegClasses][]uint64
}

func (s *taintSet) init(rf *regfile.File) {
	for c := range s.w {
		s.w[c] = make([]uint64, (rf.Size(isa.RegClass(c))+63)/64)
	}
}

//smt:hotpath
func (s *taintSet) set(p regfile.PhysRef) {
	s.w[p.Class][p.Index>>6] |= 1 << (uint(p.Index) & 63)
}

//smt:hotpath
func (s *taintSet) clear(p regfile.PhysRef) {
	if s.w[p.Class] == nil {
		return
	}
	s.w[p.Class][p.Index>>6] &^= 1 << (uint(p.Index) & 63)
}

//smt:hotpath
func (s *taintSet) has(p regfile.PhysRef) bool {
	return s.w[p.Class][p.Index>>6]>>(uint(p.Index)&63)&1 != 0
}

func (s *taintSet) reset() {
	for c := range s.w {
		words := s.w[c]
		for i := range words {
			words[i] = 0
		}
	}
}

// Dispatcher implements one dispatch policy over the per-thread buffers.
// It owns the buffers and the DAB; the pipeline pushes renamed
// instructions in and calls Run once per cycle.
type Dispatcher struct {
	bank    *uop.Bank
	policy  Policy
	width   int
	bufs    []Buffer
	dab     *DAB
	useDAB  bool
	threads int
	rr      int

	// filtered caches policy.filtered(): the policy is fixed at
	// construction and the flag is consulted per buffered instruction in
	// the OOOD scan.
	filtered bool

	// perThreadCap, when positive, statically partitions the shared
	// queue: no thread may hold more than this many IQ entries (Raasch &
	// Reinhardt-style resource partitioning, [9] in the paper).
	perThreadCap int

	// taint feeds the DepOnNDI statistic and the idealized filter; sized
	// lazily on the first Run (the register file arrives there).
	taint      []taintSet
	taintReady bool

	// eventWakeup selects the bank's event-maintained not-ready counters
	// over register-file polling for source-readiness classification; it
	// must match the issue queue's wakeup mode.
	eventWakeup bool

	// reasons is per-cycle scratch for the stall accounting.
	reasons []blockReason

	// frozen memoizes, per thread, an OOOD scan that found every
	// buffered instruction statically blocked (the 2OP condition or the
	// idealized filter — never a queue-occupancy decision): until the
	// buffer's generation changes or one of the thread's instructions
	// completes, re-running the scan is pure recomputation, so Run
	// replays the memoized statistics instead. Event-wakeup mode only.
	frozen []threadFreeze

	// Idle-replay capture for the pipeline's dispatch freeze and
	// quiescent-cycle fast-forward: Run records which flat stall
	// counters it bumped and by how much the per-thread/pile counters
	// moved, so ReplayIdle can re-apply one zero-dispatch cycle's
	// accounting k times (idempotently — the deltas are captured, not
	// recomputed from the live stats).
	idleWork, idleStallAny, idleStallWeak, idleStallStrict bool
	idleNDI                                                []uint64
	idlePiled, idlePiledHDI                                uint64

	stats Stats
}

// NewDispatcher builds a dispatcher over the core's uop bank for the
// given policy, total dispatch width (machine width, shared by all
// threads), per-thread buffer capacity, and thread count. The DAB is
// sized one entry per thread, which Section 4 argues is sufficient to
// prevent deadlock.
func NewDispatcher(bank *uop.Bank, policy Policy, width, bufCap, threads int) *Dispatcher {
	d := &Dispatcher{
		bank:     bank,
		policy:   policy,
		filtered: policy.filtered(),
		width:    width,
		threads:  threads,
		dab:      NewDAB(bank, threads),
		useDAB:   true,
		taint:    make([]taintSet, threads),
	}
	d.bufs = make([]Buffer, threads)
	for t := range d.bufs {
		d.bufs[t] = *NewBuffer(bank, bufCap)
	}
	d.stats.NDIBlockCycles = make([]uint64, threads)
	d.reasons = make([]blockReason, threads)
	d.frozen = make([]threadFreeze, threads)
	d.idleNDI = make([]uint64, threads)
	return d
}

// SetEventWakeup selects event-driven source-readiness tracking: NDI/HDI
// classification reads the bank's NotReady counters the wakeup
// broadcasts maintain, instead of re-polling every operand against the
// register file each cycle. Must match the issue queue's mode.
func (d *Dispatcher) SetEventWakeup(on bool) { d.eventWakeup = on }

// srcNotReady returns u's non-ready source count under the active mode.
//
//smt:hotpath
func (d *Dispatcher) srcNotReady(u *uop.UOp, rf *regfile.File) int {
	if d.eventWakeup {
		return int(d.bank.NotReady[u.ID])
	}
	return u.NumSrcNotReady(rf)
}

// Policy returns the configured policy.
func (d *Dispatcher) Policy() Policy { return d.policy }

// DAB exposes the deadlock-avoidance buffer to the issue stage.
func (d *Dispatcher) DAB() *DAB { return d.dab }

// SetDABEnabled turns the deadlock-avoidance path on or off (it is on by
// default). The watchdog-timer configuration and the deadlock
// demonstration tests disable it.
func (d *Dispatcher) SetDABEnabled(on bool) { d.useDAB = on }

// SetPerThreadCap statically partitions the queue: each thread may hold
// at most cap entries (0 restores full sharing). Dispatch for a thread
// at its cap blocks as if the queue were full for it.
func (d *Dispatcher) SetPerThreadCap(cap int) { d.perThreadCap = cap }

// atCap reports whether thread t has exhausted its queue share.
//
//smt:hotpath
func (d *Dispatcher) atCap(t int, q *iq.Queue) bool {
	return d.perThreadCap > 0 && q.ThreadCount(t) >= d.perThreadCap
}

// Buffer returns thread t's dispatch buffer.
func (d *Dispatcher) Buffer(t int) *Buffer { return &d.bufs[t] }

// Stats returns a copy of the accumulated statistics.
func (d *Dispatcher) Stats() Stats { return d.stats }

// ResetStats clears the accumulated statistics (taint and buffer state
// are untouched), for measurement after a warmup period.
func (d *Dispatcher) ResetStats() {
	d.stats = Stats{NDIBlockCycles: make([]uint64, d.threads)}
	d.dab.Inserts = 0
}

// threadFreeze is one thread's memoized statically-blocked scan: the
// head-NDI statistics the scan bumps each cycle it repeats, and the
// buffer generation it is valid for. OnComplete invalidates it (a
// completion is the only event that changes the thread's source-
// readiness counters or clears its taint), and any buffer mutation is
// caught by the generation check.
type threadFreeze struct {
	valid    bool
	headNDI  bool
	gen      uint32
	piled    uint64
	piledHDI uint64
}

// blockReason records why a thread dispatched nothing this cycle.
type blockReason uint8

const (
	blockNone   blockReason = iota // dispatched something or no work
	blockNDI                       // 2OP condition: oldest undispatched is an NDI (or, under OOOD, all candidates are)
	blockIQFull                    // no free IQ entry (and DAB not applicable)
)

// Run performs one cycle of dispatch: up to width instructions move from
// the thread buffers into the IQ (or the DAB). The scan order across
// threads rotates every cycle for fairness. Returns the number
// dispatched.
//
//smt:hotpath
func (d *Dispatcher) Run(cycle int64, q *iq.Queue, rf *regfile.File, robs []*rob.ROB) int {
	if !d.taintReady {
		for t := range d.taint {
			//smt:allow-alloc — one-time lazy sizing against the regfile on the first Run; steady state never re-enters
			d.taint[t].init(rf)
		}
		d.taintReady = true
	}
	// Fast path: with every buffer empty the cycle's only effects are the
	// cycle count, the scan-origin rotation, and an all-idle replay
	// capture — skip the per-thread scan and stall accounting entirely.
	empty := true
	for t := range d.bufs {
		if d.bufs[t].size != 0 {
			empty = false
			break
		}
	}
	if empty {
		d.tickEmpty()
		return 0
	}

	budget := d.width
	dispatched := 0
	anyWork := false
	reasons := d.reasons
	for i := range reasons {
		reasons[i] = blockNone
	}
	entryPiled, entryPiledHDI := d.stats.PiledSampled, d.stats.PiledHDI
	copy(d.idleNDI, d.stats.NDIBlockCycles)
	d.idleWork, d.idleStallAny, d.idleStallWeak, d.idleStallStrict = false, false, false, false

	t := d.rr
	d.rr++
	if d.rr == d.threads {
		d.rr = 0
	}
	for i := 0; i < d.threads; i, t = i+1, t+1 {
		if t >= d.threads {
			t = 0
		}
		if d.bufs[t].Len() == 0 {
			continue
		}
		anyWork = true
		n, reason := d.runThread(cycle, t, q, rf, robs[t], budget)
		budget -= n
		dispatched += n
		if n == 0 {
			reasons[t] = reason
		}
		if budget == 0 {
			break
		}
	}

	// Stall accounting. A cycle counts against the 2OP condition only if
	// every thread simultaneously held work and was NDI-blocked; a
	// thread with an empty buffer is starved upstream, not stalled by
	// the scheduler.
	d.stats.Cycles++
	d.idleWork = anyWork
	if anyWork {
		d.stats.WorkCycles++
		if dispatched == 0 {
			d.stats.StallAllAny++
			d.idleStallAny = true
			strict := true
			weak := false
			for t := 0; t < d.threads; t++ {
				switch {
				case d.bufs[t].Len() == 0:
					strict = false
				case reasons[t] == blockNDI:
					weak = true
				default:
					strict = false
					weak = false
					t = d.threads // a non-NDI block disqualifies both
				}
			}
			if weak {
				d.stats.StallNDIWeak++
				d.idleStallWeak = true
			}
			if strict && weak {
				d.stats.StallAllNDI++
				d.idleStallStrict = true
			}
		}
	}
	d.stats.Dispatched += uint64(dispatched)
	// Finish the idle-replay capture: turn the entry snapshots into
	// per-cycle deltas.
	for t := range d.idleNDI {
		d.idleNDI[t] = d.stats.NDIBlockCycles[t] - d.idleNDI[t]
	}
	d.idlePiled = d.stats.PiledSampled - entryPiled
	d.idlePiledHDI = d.stats.PiledHDI - entryPiledHDI
	return dispatched
}

// tickEmpty is Run's all-buffers-empty cycle: identical observable
// effect to a full scan over empty buffers — the cycle count, the
// rotating scan origin, and an idle-replay capture of "no work, zero
// deltas" so a following ReplayIdle replays this cycle, not a stale one.
//
//smt:hotpath
func (d *Dispatcher) tickEmpty() {
	d.stats.Cycles++
	d.rr++
	if d.rr == d.threads {
		d.rr = 0
	}
	d.idleWork, d.idleStallAny, d.idleStallWeak, d.idleStallStrict = false, false, false, false
	for t := range d.idleNDI {
		d.idleNDI[t] = 0
	}
	d.idlePiled, d.idlePiledHDI = 0, 0
}

// ReplayIdle applies k further cycles' worth of the accounting the last
// Run recorded: the rotating scan origin and every per-cycle statistic
// advance exactly as k more Run calls would have. Valid only while the
// machine state feeding dispatch is unchanged since a zero-dispatch Run
// — the pipeline's dispatch freeze and quiescent-cycle fast-forward
// both guarantee it — under which every replayed cycle classifies and
// counts identically. Safe to call repeatedly (the deltas were captured
// at Run exit). (NDIDispatchDelayed and the taint marks are
// deliberately untouched: the executed cycle already applied them, and
// re-running would be idempotent.)
//
//smt:hotpath
func (d *Dispatcher) ReplayIdle(k int64) {
	ku := uint64(k)
	d.stats.Cycles += ku
	if d.idleWork {
		d.stats.WorkCycles += ku
	}
	if d.idleStallAny {
		d.stats.StallAllAny += ku
	}
	if d.idleStallWeak {
		d.stats.StallNDIWeak += ku
	}
	if d.idleStallStrict {
		d.stats.StallAllNDI += ku
	}
	for t := range d.stats.NDIBlockCycles {
		d.stats.NDIBlockCycles[t] += ku * d.idleNDI[t]
	}
	d.stats.PiledSampled += ku * d.idlePiled
	d.stats.PiledHDI += ku * d.idlePiledHDI
	d.rr = (d.rr + int(k%int64(d.threads))) % d.threads
}

// runThread dispatches from one thread's buffer within the remaining
// budget, returning how many instructions moved and, when zero, why.
//
//smt:hotpath
func (d *Dispatcher) runThread(cycle int64, t int, q *iq.Queue, rf *regfile.File, r *rob.ROB, budget int) (int, blockReason) {
	if d.policy.OutOfOrder() {
		return d.runThreadOOO(cycle, t, q, rf, r, budget)
	}
	return d.runThreadInOrder(cycle, t, q, rf, r, budget)
}

//smt:hotpath
func (d *Dispatcher) runThreadInOrder(cycle int64, t int, q *iq.Queue, rf *regfile.File, r *rob.ROB, budget int) (int, blockReason) {
	buf := &d.bufs[t]
	moved := 0
	reason := blockNone
	for moved < budget && buf.Len() > 0 {
		u := buf.At(0)
		nr := d.srcNotReady(u, rf)
		if !q.ClassSupported(nr) {
			// Static NDI: no entry type in this queue has enough tag
			// comparators (the 2OP condition). The whole thread stalls
			// at dispatch until an operand becomes ready.
			d.markNDI(t, u)
			d.stats.NDIBlockCycles[t]++
			d.samplePiled(t, rf)
			reason = blockNDI
			break
		}
		if d.atCap(t, q) {
			reason = blockIQFull
			break
		}
		if !q.CanAccept(nr) {
			if q.Free() == 0 {
				reason = blockIQFull
			} else {
				// Dynamic NDI: suitable entry types exist but all are
				// occupied (tag-elimination partitions hit this; the
				// paper's DI definition requires an *available*
				// appropriate entry).
				d.markNDI(t, u)
				d.stats.NDIBlockCycles[t]++
				reason = blockNDI
			}
			break
		}
		d.commitDispatch(cycle, t, u, nr, q, rf, false)
		buf.RemoveAt(0)
		moved++
	}
	return moved, reason
}

//smt:hotpath
func (d *Dispatcher) runThreadOOO(cycle int64, t int, q *iq.Queue, rf *regfile.File, r *rob.ROB, budget int) (int, blockReason) {
	buf := &d.bufs[t]
	fz := &d.frozen[t]
	if fz.valid && fz.gen == buf.gen {
		// The memoized statically-blocked scan repeats exactly: the
		// per-uop NDI/taint marks are already in place, so only the
		// per-cycle statistics and the live partition-cap check remain.
		if fz.headNDI {
			d.stats.NDIBlockCycles[t]++
			d.stats.PiledSampled += fz.piled
			d.stats.PiledHDI += fz.piledHDI
		}
		if d.atCap(t, q) {
			return 0, blockIQFull
		}
		return 0, blockNDI
	}
	fz.valid = false
	moved := 0
	reason := blockNone

	// Per-cycle statistics: if the oldest undispatched instruction is an
	// NDI this cycle, record the block and sample the pile behind it.
	headNDI := false
	var piled, piledHDI uint64
	if d.srcNotReady(buf.At(0), rf) > 1 {
		headNDI = true
		d.stats.NDIBlockCycles[t]++
		p0, h0 := d.stats.PiledSampled, d.stats.PiledHDI
		d.samplePiled(t, rf)
		piled, piledHDI = d.stats.PiledSampled-p0, d.stats.PiledHDI-h0
	}

	if d.atCap(t, q) {
		return 0, blockIQFull
	}

	dynamic := false
scan:
	for moved < budget && buf.Len() > 0 {
		idx := -1
		sawNDI := false
		var pick *uop.UOp
		pickNR := 0
		for j := 0; j < buf.Len(); j++ {
			u := buf.At(j)
			nr := d.srcNotReady(u, rf)
			if !q.ClassSupported(nr) {
				// Static NDI (the 2OP condition): skip it; younger
				// dispatchable instructions may proceed out of order.
				d.markNDI(t, u)
				sawNDI = true
				continue
			}
			if d.filtered && d.dependsOnNDI(t, u) {
				// Idealized filter: withhold NDI-dependent HDIs. Their
				// destinations are tainted so transitive dependents are
				// withheld too.
				u.DepOnNDI = true
				if u.Dest.Valid() {
					d.taint[t].set(u.Dest)
				}
				continue
			}
			if !q.CanAccept(nr) {
				dynamic = true
				if q.Free() == 0 {
					// Queue completely full. Deadlock-avoidance path:
					// the ROB-oldest instruction may proceed to the DAB
					// (its sources are ready by definition).
					if d.useDAB && r.IsHead(u) && d.dab.CanInsert() {
						buf.RemoveAt(j)
						d.dispatchToDAB(cycle, t, u, sawNDI && j > 0)
						moved++
						continue scan
					}
					reason = blockIQFull
					break scan
				}
				// Dynamic NDI: u's entry class is exhausted but other
				// classes have room; a younger instruction with fewer
				// non-ready operands may still fit.
				d.markNDI(t, u)
				sawNDI = true
				continue
			}
			idx = j
			pick = u
			pickNR = nr
			break
		}
		if idx < 0 {
			// Everything buffered is an NDI (or filtered): the 2OP
			// condition blocks the thread even under OOOD.
			reason = blockNDI
			break
		}
		buf.RemoveAt(idx)
		d.commitDispatch(cycle, t, pick, pickNR, q, rf, sawNDI && idx > 0)
		moved++
		if d.atCap(t, q) {
			reason = blockIQFull
			break
		}
	}
	if d.eventWakeup && moved == 0 && reason == blockNDI && !dynamic {
		// Every buffered instruction was skipped on a static condition:
		// memoize the scan until the buffer mutates or a completion of
		// this thread changes readiness or taint.
		fz.valid, fz.gen = true, buf.gen
		fz.headNDI, fz.piled, fz.piledHDI = headNDI, piled, piledHDI
	}
	return moved, reason
}

// markNDI records that u is blocked as an NDI this cycle and taints its
// destination so dependents can be recognized.
//
//smt:hotpath
func (d *Dispatcher) markNDI(t int, u *uop.UOp) {
	if !u.WasNDI {
		u.WasNDI = true
		d.stats.NDIDispatchDelayed++
	}
	if u.Dest.Valid() {
		d.taint[t].set(u.Dest)
	}
}

// samplePiled samples the instructions queued behind the thread's oldest
// NDI for the HDI-fraction statistic. Callers invoke it at most once per
// thread per cycle, when the buffer head is an NDI.
//
//smt:hotpath
func (d *Dispatcher) samplePiled(t int, rf *regfile.File) {
	buf := &d.bufs[t]
	for j := 1; j < buf.Len(); j++ {
		d.stats.PiledSampled++
		if d.srcNotReady(buf.At(j), rf) <= 1 {
			d.stats.PiledHDI++
		}
	}
}

// dependsOnNDI reports whether any of u's sources is currently tainted —
// produced by a blocked NDI or by an instruction transitively dependent
// on one.
//
//smt:hotpath
func (d *Dispatcher) dependsOnNDI(t int, u *uop.UOp) bool {
	for _, s := range u.Srcs {
		if s.Valid() && d.taint[t].has(s) {
			return true
		}
	}
	return false
}

// commitDispatch finalizes a dispatch into the IQ.
//
//smt:hotpath
func (d *Dispatcher) commitDispatch(cycle int64, t int, u *uop.UOp, nonReady int, q *iq.Queue, rf *regfile.File, outOfOrder bool) {
	u.DispatchedAt = cycle
	u.NonReadyAtDispatch = nonReady
	if u.Dest.Valid() {
		d.taint[t].clear(u.Dest) // no longer a blocked producer
	}
	if outOfOrder {
		u.WasHDI = true
		d.stats.HDIDispatched++
		if d.dependsOnNDI(t, u) {
			u.DepOnNDI = true
			d.stats.HDIDepOnNDI++
			if u.Dest.Valid() {
				d.taint[t].set(u.Dest)
			}
		}
	}
	q.Insert(u, rf)
}

// dispatchToDAB finalizes a capture into the deadlock-avoidance buffer.
//
//smt:hotpath
func (d *Dispatcher) dispatchToDAB(cycle int64, t int, u *uop.UOp, outOfOrder bool) {
	u.DispatchedAt = cycle
	u.NonReadyAtDispatch = 0
	if u.Dest.Valid() {
		d.taint[t].clear(u.Dest)
	}
	if outOfOrder {
		u.WasHDI = true
		d.stats.HDIDispatched++
	}
	d.dab.Insert(u)
}

// OnComplete clears dependence taint for a finished producer: once the
// value exists, younger readers no longer "depend on an NDI" in the sense
// of the paper's statistic.
//
//smt:hotpath
func (d *Dispatcher) OnComplete(u *uop.UOp) {
	d.frozen[u.Thread].valid = false
	if u.Dest.Valid() {
		d.taint[u.Thread].clear(u.Dest)
	}
}

// DrainThread empties thread t's buffer and DAB slots, returning the
// drained instructions (watchdog flush path). Taint state is reset.
func (d *Dispatcher) DrainThread(t int) (buffered, dab []*uop.UOp) {
	buffered = d.bufs[t].DrainAll()
	dab = d.dab.DrainThread(t)
	d.taint[t].reset()
	return buffered, dab
}

// CheckInvariants verifies the dispatch stage's structural contracts:
// each thread's buffer holds renamed, undispatched instructions in
// strict program order, and — in event-wakeup mode — the NDI/DI
// classification every buffered instruction would receive from its
// event-maintained not-ready counter agrees with a from-scratch
// recomputation against the register file (the Figure 2 taxonomy redone
// with fresh eyes each cycle). It returns an error describing the first
// violation.
func (d *Dispatcher) CheckInvariants(q *iq.Queue, rf *regfile.File) error {
	for t := range d.bufs {
		buf := &d.bufs[t]
		var prev uint64
		for j := 0; j < buf.Len(); j++ {
			u := buf.At(j)
			switch {
			case u.InIQ || u.InDAB:
				return fmt.Errorf("core: thread %d buffered gseq=%d already in IQ/DAB", t, u.GSeq)
			case u.Issued:
				return fmt.Errorf("core: thread %d buffered gseq=%d already issued", t, u.GSeq)
			case u.DispatchedAt != uop.NoCycle:
				return fmt.Errorf("core: thread %d buffered gseq=%d carries dispatch stamp %d", t, u.GSeq, u.DispatchedAt)
			case j > 0 && u.GSeq <= prev:
				return fmt.Errorf("core: thread %d buffer order broken at %d: gseq %d after %d", t, j, u.GSeq, prev)
			}
			prev = u.GSeq
			if d.eventWakeup {
				counter := int(d.bank.NotReady[u.ID])
				polled := u.NumSrcNotReady(rf)
				if counter != polled {
					return fmt.Errorf("core: thread %d buffered gseq=%d pc=%#x counter says %d non-ready, register file says %d",
						t, u.GSeq, u.Inst.PC, counter, polled)
				}
				if q.ClassSupported(counter) != q.ClassSupported(polled) {
					return fmt.Errorf("core: thread %d gseq=%d NDI classification diverges (counter %d, polled %d)",
						t, u.GSeq, counter, polled)
				}
			}
		}
	}
	if got := d.dab.Len(); got > d.dab.Cap() {
		return fmt.Errorf("core: DAB holds %d entries over capacity %d", got, d.dab.Cap())
	}
	// A live scan freeze asserts the whole buffer is statically blocked:
	// every entry must still classify as a 2OP-condition NDI or a
	// filtered NDI-dependent, or the memo is hiding dispatchable work.
	for t := range d.frozen {
		fz := &d.frozen[t]
		buf := &d.bufs[t]
		if !d.eventWakeup || !fz.valid || fz.gen != buf.gen {
			continue
		}
		for j := 0; j < buf.Len(); j++ {
			u := buf.At(j)
			nr := int(d.bank.NotReady[u.ID])
			if !q.ClassSupported(nr) {
				continue
			}
			if d.filtered && d.dependsOnNDI(t, u) {
				continue
			}
			return fmt.Errorf("core: thread %d scan freeze hides dispatchable gseq=%d (%d non-ready sources)",
				t, u.GSeq, nr)
		}
	}
	return nil
}

// SquashYoungerThan removes thread t's undispatched instructions younger
// than gseq from the dispatch buffer (selective-squash path) and clears
// their dependence taint. DAB occupants are never younger squash victims
// in practice — only the ROB-oldest instruction enters the DAB — but the
// caller still owns removing squashed instructions from the IQ/DAB by
// identity.
func (d *Dispatcher) SquashYoungerThan(t int, gseq uint64) []*uop.UOp {
	out := d.bufs[t].DrainYoungerThan(gseq)
	for _, u := range out {
		if u.Dest.Valid() {
			d.taint[t].clear(u.Dest)
		}
	}
	return out
}
