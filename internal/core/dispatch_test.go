package core

import (
	"testing"

	"smtsim/internal/iq"
	"smtsim/internal/isa"
	"smtsim/internal/regfile"
	"smtsim/internal/rob"
	"smtsim/internal/uop"
)

// rig is a dispatch-stage test rig: a dispatcher over real IQ, register
// file, ROBs, and a shared uop bank, with helpers to fabricate renamed
// instructions whose operand readiness is controlled directly.
type rig struct {
	t    *testing.T
	bank *uop.Bank
	d    *Dispatcher
	q    *iq.Queue
	rf   *regfile.File
	robs []*rob.ROB
	seq  uint64
}

const rigROBCap = 96

func newRig(t *testing.T, policy Policy, iqSize, bufCap, threads int) *rig {
	bank := uop.NewBank(threads * rigROBCap)
	r := &rig{
		t:    t,
		bank: bank,
		d:    NewDispatcher(bank, policy, 8, bufCap, threads),
		q:    iq.New(bank, iqSize, policy.MaxNonReady(), threads),
		rf:   newRigRegfile(),
	}
	for i := 0; i < threads; i++ {
		r.robs = append(r.robs, rob.New(bank, int32(i*rigROBCap), rigROBCap))
	}
	return r
}

func newRigRegfile() *regfile.File { return regfile.New(256, 256) }

// add fabricates a renamed instruction for thread t with the given
// number of non-ready source operands, allocates its ROB entry, and
// buffers it for dispatch.
func (r *rig) add(t int, nonReady int) *uop.UOp {
	r.seq++
	u := r.robs[t].Alloc()
	u.Thread = t
	u.GSeq = r.seq
	u.Inst = isa.Inst{Class: isa.IntAlu, Dest: isa.Int(5)}
	for i := 0; i < isa.MaxSources; i++ {
		p := r.rf.Alloc(isa.IntReg)
		if i >= nonReady {
			r.rf.SetReady(p)
		}
		u.Srcs[i] = p
	}
	u.Dest = r.rf.Alloc(isa.IntReg)
	r.d.Buffer(t).Push(u)
	return u
}

// addDep fabricates an instruction whose first source is the destination
// of producer (and therefore not ready until the producer completes).
func (r *rig) addDep(t int, producer *uop.UOp) *uop.UOp {
	r.seq++
	u := r.robs[t].Alloc()
	u.Thread = t
	u.GSeq = r.seq
	u.Inst = isa.Inst{Class: isa.IntAlu, Dest: isa.Int(6)}
	u.Srcs[0] = producer.Dest
	p := r.rf.Alloc(isa.IntReg)
	r.rf.SetReady(p)
	u.Srcs[1] = p
	u.Dest = r.rf.Alloc(isa.IntReg)
	r.d.Buffer(t).Push(u)
	return u
}

func (r *rig) run(cycle int64) int {
	return r.d.Run(cycle, r.q, r.rf, r.robs)
}

func TestInOrderDispatchesTwoNonReady(t *testing.T) {
	r := newRig(t, InOrder, 16, 8, 1)
	u := r.add(0, 2)
	if n := r.run(1); n != 1 {
		t.Fatalf("dispatched %d, want 1", n)
	}
	if !u.InIQ || u.NonReadyAtDispatch != 2 {
		t.Errorf("traditional scheduler mishandled 2-non-ready: inIQ=%v nr=%d", u.InIQ, u.NonReadyAtDispatch)
	}
}

func TestInOrderStallsOnFullIQ(t *testing.T) {
	r := newRig(t, InOrder, 8, 8, 1)
	for i := 0; i < 8; i++ {
		r.add(0, 2)
	}
	if n := r.run(1); n != 8 {
		t.Fatalf("dispatched %d, want 8", n)
	}
	u := r.add(0, 0)
	if n := r.run(2); n != 0 {
		t.Fatalf("dispatched %d into a full queue", n)
	}
	if u.InIQ {
		t.Error("instruction entered a full queue")
	}
}

func TestTwoOpBlocksThreadAtNDI(t *testing.T) {
	r := newRig(t, TwoOpBlock, 16, 8, 1)
	ndi := r.add(0, 2)
	younger := r.add(0, 0)
	if n := r.run(1); n != 0 {
		t.Fatalf("dispatched %d past an NDI", n)
	}
	if !ndi.WasNDI {
		t.Error("NDI not marked")
	}
	if younger.InIQ {
		t.Error("in-order 2OP dispatched past the NDI")
	}
	// First source becomes ready: the thread unblocks; both dispatch.
	r.rf.SetReady(ndi.Srcs[0])
	if n := r.run(2); n != 2 {
		t.Fatalf("dispatched %d after wakeup, want 2", n)
	}
	if ndi.NonReadyAtDispatch != 1 {
		t.Errorf("NDI dispatched with %d non-ready recorded", ndi.NonReadyAtDispatch)
	}
}

func TestTwoOpOtherThreadProceeds(t *testing.T) {
	r := newRig(t, TwoOpBlock, 16, 8, 2)
	r.add(0, 2) // thread 0 blocked
	b := r.add(1, 0)
	if n := r.run(1); n != 1 {
		t.Fatalf("dispatched %d, want 1", n)
	}
	if !b.InIQ {
		t.Error("unblocked thread did not dispatch")
	}
}

func TestOOODHopsOverNDI(t *testing.T) {
	r := newRig(t, TwoOpOOOD, 16, 8, 1)
	ndi := r.add(0, 2)
	h1 := r.add(0, 1)
	h2 := r.add(0, 0)
	if n := r.run(1); n != 2 {
		t.Fatalf("dispatched %d, want 2 HDIs", n)
	}
	if ndi.InIQ {
		t.Error("NDI entered the IQ")
	}
	if !h1.InIQ || !h2.InIQ {
		t.Error("HDIs not dispatched")
	}
	if !h1.WasHDI || !h2.WasHDI {
		t.Error("HDIs not marked")
	}
	st := r.d.Stats()
	if st.HDIDispatched != 2 {
		t.Errorf("HDIDispatched = %d, want 2", st.HDIDispatched)
	}
	// The NDI stays buffered in program order and dispatches on wakeup.
	r.rf.SetReady(ndi.Srcs[0])
	if n := r.run(2); n != 1 {
		t.Fatalf("NDI did not dispatch after wakeup: %d", n)
	}
	if !ndi.InIQ {
		t.Error("NDI missing from IQ")
	}
}

func TestOOODRespectsAgeOrderAmongDIs(t *testing.T) {
	r := newRig(t, TwoOpOOOD, 1, 8, 1) // room for exactly one
	r.add(0, 2)
	first := r.add(0, 0)
	second := r.add(0, 0)
	if n := r.run(1); n != 1 {
		t.Fatalf("dispatched %d, want 1", n)
	}
	if !first.InIQ || second.InIQ {
		t.Error("OOOD picked a younger DI over an older one")
	}
}

func TestOOODDepOnNDITracking(t *testing.T) {
	r := newRig(t, TwoOpOOOD, 16, 8, 1)
	ndi := r.add(0, 2)
	dep := r.addDep(0, ndi) // reads the NDI's destination
	indep := r.add(0, 0)    // independent of the NDI
	if n := r.run(1); n != 2 {
		t.Fatalf("dispatched %d, want 2", n)
	}
	// dep has one non-ready source (the NDI's dest) -> dispatchable, and
	// it must be flagged as NDI-dependent.
	if !dep.InIQ || !dep.DepOnNDI {
		t.Errorf("dependent HDI: inIQ=%v depOnNDI=%v", dep.InIQ, dep.DepOnNDI)
	}
	if indep.DepOnNDI {
		t.Error("independent HDI flagged as NDI-dependent")
	}
	st := r.d.Stats()
	if st.HDIDepOnNDI != 1 {
		t.Errorf("HDIDepOnNDI = %d, want 1", st.HDIDepOnNDI)
	}
}

func TestFilteredWithholdsNDIDependents(t *testing.T) {
	r := newRig(t, TwoOpOOODFiltered, 16, 8, 1)
	ndi := r.add(0, 2)
	dep := r.addDep(0, ndi)
	indep := r.add(0, 0)
	if n := r.run(1); n != 1 {
		t.Fatalf("dispatched %d, want only the independent HDI", n)
	}
	if dep.InIQ {
		t.Error("filtered policy dispatched an NDI-dependent HDI")
	}
	if !indep.InIQ {
		t.Error("independent HDI withheld")
	}
	// Once the NDI unblocks and dispatches, the dependent follows.
	r.rf.SetReady(ndi.Srcs[0])
	if n := r.run(2); n != 2 {
		t.Fatalf("post-wakeup dispatched %d, want NDI + dependent", n)
	}
}

func TestDABCapturesROBHeadWhenIQFull(t *testing.T) {
	r := newRig(t, TwoOpOOOD, 1, 8, 1)
	blocker := r.add(0, 0)
	if r.run(1) != 1 || !blocker.InIQ {
		t.Fatal("setup dispatch failed")
	}
	// blocker still occupies the single IQ entry; the ROB head is the
	// next buffered instruction, which is all-ready.
	r.robs[0].PopHead() // pretend blocker committed; head advances
	head := r.add(0, 0)
	// Manually make head the ROB head: it already is (blocker popped).
	if !r.robs[0].IsHead(head) {
		t.Fatal("test setup: head not ROB-oldest")
	}
	if n := r.run(2); n != 1 {
		t.Fatalf("dispatched %d, want 1 via DAB", n)
	}
	if !head.InDAB {
		t.Error("ROB-oldest not captured by DAB")
	}
	if r.d.DAB().Inserts != 1 {
		t.Error("DAB insert not counted")
	}
}

func TestNonHeadDoesNotUseDAB(t *testing.T) {
	r := newRig(t, TwoOpOOOD, 1, 8, 1)
	blocker := r.add(0, 0)
	r.run(1)
	if !blocker.InIQ {
		t.Fatal("setup failed")
	}
	// blocker is still ROB head (not committed); the younger all-ready
	// instruction must NOT enter the DAB.
	young := r.add(0, 0)
	if n := r.run(2); n != 0 {
		t.Fatalf("dispatched %d, want 0", n)
	}
	if young.InDAB {
		t.Error("non-ROB-head instruction captured by DAB")
	}
}

func TestStallAccounting(t *testing.T) {
	r := newRig(t, TwoOpBlock, 16, 8, 2)
	r.add(0, 2)
	r.add(1, 2)
	r.run(1)
	st := r.d.Stats()
	if st.StallAllNDI != 1 || st.StallNDIWeak != 1 || st.StallAllAny != 1 {
		t.Errorf("stall counters = %+v", st)
	}
	// One thread empty, the other NDI-blocked: weak counts, strict not.
	r2 := newRig(t, TwoOpBlock, 16, 8, 2)
	r2.add(0, 2)
	r2.run(1)
	st2 := r2.d.Stats()
	if st2.StallAllNDI != 0 || st2.StallNDIWeak != 1 {
		t.Errorf("weak/strict distinction broken: %+v", st2)
	}
}

func TestPiledHDISampling(t *testing.T) {
	r := newRig(t, TwoOpBlock, 16, 8, 1)
	r.add(0, 2) // NDI at head
	r.add(0, 0) // HDI behind it
	r.add(0, 2) // another NDI
	r.run(1)
	st := r.d.Stats()
	if st.PiledSampled != 2 || st.PiledHDI != 1 {
		t.Errorf("piled sampling = %d/%d, want 1/2", st.PiledHDI, st.PiledSampled)
	}
}

func TestRoundRobinFairnessAcrossThreads(t *testing.T) {
	// With width 8 and two threads each holding 8 ready instructions,
	// repeated cycles must serve both threads (the rotating scan origin).
	r := newRig(t, InOrder, 64, 8, 2)
	for i := 0; i < 8; i++ {
		r.add(0, 0)
		r.add(1, 0)
	}
	r.run(1)
	r.run(2)
	if got := r.q.ThreadCount(0); got != 8 {
		t.Errorf("thread 0 dispatched %d, want 8", got)
	}
	if got := r.q.ThreadCount(1); got != 8 {
		t.Errorf("thread 1 dispatched %d, want 8", got)
	}
}

func TestDrainThreadResetsTaint(t *testing.T) {
	r := newRig(t, TwoOpOOOD, 16, 8, 1)
	ndi := r.add(0, 2)
	r.addDep(0, ndi)
	r.run(1)
	buffered, dab := r.d.DrainThread(0)
	if len(buffered) != 1 { // the NDI stays buffered; the dep dispatched
		t.Errorf("drained %d buffered, want 1", len(buffered))
	}
	if len(dab) != 0 {
		t.Errorf("drained %d DAB entries, want 0", len(dab))
	}
	if r.d.Buffer(0).Len() != 0 {
		t.Error("buffer not empty after drain")
	}
}
