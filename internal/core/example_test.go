package core_test

import (
	"fmt"

	"smtsim/internal/core"
	"smtsim/internal/isa"
	"smtsim/internal/regfile"
	"smtsim/internal/uop"
)

// ExampleClassify reproduces the paper's Figure 2: a four-instruction
// dispatch window classified under a one-comparator (2OP) scheduler.
// I2's two source operands are both produced by in-flight loads, so it
// is an NDI; I3 and I4 behind it are hidden dispatchable instructions —
// including I4, which depends on I2 but has only one non-ready source.
func ExampleClassify() {
	rf := regfile.New(16, 16)
	ready := func() regfile.PhysRef {
		p := rf.Alloc(isa.IntReg)
		rf.SetReady(p)
		return p
	}
	pending := func() regfile.PhysRef { return rf.Alloc(isa.IntReg) }

	i1 := &uop.UOp{GSeq: 1, Srcs: [2]regfile.PhysRef{ready(), ready()}, Dest: pending()}
	i2 := &uop.UOp{GSeq: 2, Srcs: [2]regfile.PhysRef{pending(), pending()}, Dest: pending()}
	i3 := &uop.UOp{GSeq: 3, Srcs: [2]regfile.PhysRef{ready(), regfile.NoPhys}, Dest: pending()}
	i4 := &uop.UOp{GSeq: 4, Srcs: [2]regfile.PhysRef{i2.Dest, ready()}, Dest: pending()}

	kinds := core.Classify([]*uop.UOp{i1, i2, i3, i4}, rf, 1)
	for i, k := range kinds {
		fmt.Printf("I%d: %s\n", i+1, k)
	}
	// Output:
	// I1: DI
	// I2: NDI
	// I3: HDI
	// I4: HDI
}

// ExamplePolicy shows the policy taxonomy the simulator exposes.
func ExamplePolicy() {
	for _, p := range []core.Policy{core.InOrder, core.TwoOpBlock, core.TwoOpOOOD} {
		fmt.Printf("%s: %d comparator(s)/entry, out-of-order dispatch: %v\n",
			p, p.MaxNonReady(), p.OutOfOrder())
	}
	// Output:
	// traditional: 2 comparator(s)/entry, out-of-order dispatch: false
	// 2op-block: 1 comparator(s)/entry, out-of-order dispatch: false
	// 2op-ooo-dispatch: 1 comparator(s)/entry, out-of-order dispatch: true
}
