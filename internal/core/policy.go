// Package core implements the paper's contribution: the instruction
// dispatch policies that mediate between per-thread renamed-instruction
// buffers and the shared issue queue.
//
//   - InOrder is the traditional SMT baseline: two tag comparators per IQ
//     entry, program-order dispatch per thread, stalling only on IQ-full.
//   - TwoOpBlock is the HPCA'06 design the paper revisits: one comparator
//     per entry; an instruction with two non-ready sources is a
//     Non-Dispatchable Instruction (NDI) and blocks its whole thread at
//     the dispatch stage until one source becomes ready.
//   - TwoOpOOOD is the paper's proposal: same one-comparator queue, but
//     dispatch within a thread is out of order — Hidden Dispatchable
//     Instructions (HDIs) behind an NDI enter the IQ ahead of it, while
//     renaming and ROB/LSQ allocation remain in program order. A
//     deadlock-avoidance buffer captures the ROB-oldest instruction when
//     the IQ is full.
//   - TwoOpOOODFiltered is the idealized ablation of Section 4: HDIs that
//     directly or transitively depend on a blocked NDI are withheld, at
//     zero modeled cost.
package core

import "fmt"

// Policy selects a dispatch policy.
type Policy uint8

const (
	// InOrder is the traditional scheduler baseline.
	InOrder Policy = iota
	// TwoOpBlock is the basic 2OP_BLOCK design.
	TwoOpBlock
	// TwoOpOOOD is 2OP_BLOCK with out-of-order dispatch (the paper's
	// proposal).
	TwoOpOOOD
	// TwoOpOOODFiltered is TwoOpOOOD with idealized NDI-dependence
	// filtering (ablation only; not a buildable design).
	TwoOpOOODFiltered
	// TagElim is a statically partitioned queue in the style of Ernst &
	// Austin's tag elimination ([5] in the paper): entries with two,
	// one, and zero comparators coexist; in-order dispatch blocks when
	// no appropriate entry is available.
	TagElim
	// TagElimOOOD applies this paper's out-of-order dispatch to the
	// tag-elimination queue — the natural generalization of the
	// proposal to any reduced-comparator scheduler.
	TagElimOOOD
)

// String returns the policy's name as used in the paper and the harness.
func (p Policy) String() string {
	switch p {
	case InOrder:
		return "traditional"
	case TwoOpBlock:
		return "2op-block"
	case TwoOpOOOD:
		return "2op-ooo-dispatch"
	case TwoOpOOODFiltered:
		return "2op-ooo-dispatch-filtered"
	case TagElim:
		return "tag-elim"
	case TagElimOOOD:
		return "tag-elim-ooo-dispatch"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy converts a name (as printed by String) back to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range []Policy{InOrder, TwoOpBlock, TwoOpOOOD, TwoOpOOODFiltered, TagElim, TagElimOOOD} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown dispatch policy %q", s)
}

// MaxNonReady returns the number of tag comparators of the policy's
// largest IQ entry type: two for the traditional scheduler and the
// tag-elimination partitions, one for the uniform 2OP designs — the
// hardware saving that motivates 2OP_BLOCK.
func (p Policy) MaxNonReady() int {
	switch p {
	case InOrder, TagElim, TagElimOOOD:
		return 2
	}
	return 1
}

// Partitioned reports whether the policy uses a mixed-comparator queue.
func (p Policy) Partitioned() bool { return p == TagElim || p == TagElimOOOD }

// OutOfOrder reports whether the policy dispatches out of program order
// within a thread.
func (p Policy) OutOfOrder() bool {
	return p == TwoOpOOOD || p == TwoOpOOODFiltered || p == TagElimOOOD
}

// filtered reports whether the policy applies the idealized
// NDI-dependence filter.
func (p Policy) filtered() bool { return p == TwoOpOOODFiltered }

// Policies lists the policies in presentation order.
var Policies = []Policy{InOrder, TwoOpBlock, TwoOpOOOD}
