package core

import (
	"testing"

	"smtsim/internal/isa"
	"smtsim/internal/uop"
)

func TestPolicyNames(t *testing.T) {
	want := map[Policy]string{
		InOrder:           "traditional",
		TwoOpBlock:        "2op-block",
		TwoOpOOOD:         "2op-ooo-dispatch",
		TwoOpOOODFiltered: "2op-ooo-dispatch-filtered",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
		back, err := ParsePolicy(s)
		if err != nil || back != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, back, err)
		}
	}
	if _, err := ParsePolicy("nonsense"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

func TestPolicyComparators(t *testing.T) {
	if InOrder.MaxNonReady() != 2 {
		t.Error("traditional scheduler must support two non-ready sources")
	}
	for _, p := range []Policy{TwoOpBlock, TwoOpOOOD, TwoOpOOODFiltered} {
		if p.MaxNonReady() != 1 {
			t.Errorf("%v must have one comparator per entry", p)
		}
	}
}

func TestPolicyOutOfOrder(t *testing.T) {
	if InOrder.OutOfOrder() || TwoOpBlock.OutOfOrder() {
		t.Error("in-order policies report out-of-order dispatch")
	}
	if !TwoOpOOOD.OutOfOrder() || !TwoOpOOODFiltered.OutOfOrder() {
		t.Error("OOOD policies report in-order dispatch")
	}
}

func TestWatchdog(t *testing.T) {
	w := NewWatchdog(3)
	if w.Limit() != 3 {
		t.Fatalf("limit = %d", w.Limit())
	}
	// Dispatches keep resetting the countdown.
	for i := 0; i < 10; i++ {
		if w.Tick(true) {
			t.Fatal("watchdog fired despite dispatches")
		}
	}
	// Three idle cycles fire it.
	if w.Tick(false) || w.Tick(false) {
		t.Fatal("watchdog fired early")
	}
	if !w.Tick(false) {
		t.Fatal("watchdog did not fire after limit idle cycles")
	}
	if w.Expiries != 1 {
		t.Errorf("expiries = %d", w.Expiries)
	}
	// Counter resets after firing.
	if w.Tick(false) {
		t.Error("watchdog re-fired immediately")
	}
}

// mkReadyUOp fills the next bank slot as an all-ready instruction for
// the given thread, for DAB tests.
func mkReadyUOp(bank *uop.Bank, id int32, thread int) *uop.UOp {
	u := bank.Get(id)
	u.Thread = thread
	u.GSeq = uint64(id + 1)
	u.Inst = isa.Inst{Class: isa.IntAlu}
	return u
}

func TestDABBasics(t *testing.T) {
	bank := uop.NewBank(4)
	d := NewDAB(bank, 2)
	if !d.CanInsert() || d.Len() != 0 || d.Cap() != 2 {
		t.Fatal("fresh DAB state wrong")
	}
	a := mkReadyUOp(bank, 0, 0)
	b := mkReadyUOp(bank, 1, 1)
	d.Insert(a)
	d.Insert(b)
	if d.CanInsert() {
		t.Error("CanInsert true at capacity")
	}
	if !a.InDAB || !b.InDAB {
		t.Error("InDAB not set")
	}
	d.Remove(a)
	if a.InDAB || d.Len() != 1 {
		t.Error("remove did not update state")
	}
	if d.Inserts != 2 {
		t.Errorf("inserts = %d", d.Inserts)
	}
}

func TestDABOverflowPanics(t *testing.T) {
	bank := uop.NewBank(4)
	d := NewDAB(bank, 1)
	d.Insert(mkReadyUOp(bank, 0, 0))
	defer func() {
		if recover() == nil {
			t.Error("DAB overflow did not panic")
		}
	}()
	d.Insert(mkReadyUOp(bank, 1, 0))
}

func TestDABDrainThread(t *testing.T) {
	bank := uop.NewBank(4)
	d := NewDAB(bank, 4)
	a := mkReadyUOp(bank, 0, 0)
	b := mkReadyUOp(bank, 1, 1)
	d.Insert(a)
	d.Insert(b)
	out := d.DrainThread(0)
	if len(out) != 1 || out[0] != a || a.InDAB {
		t.Error("DrainThread(0) wrong")
	}
	if d.Len() != 1 || d.Entries()[0] != b.ID {
		t.Error("other thread's entry disturbed")
	}
}
