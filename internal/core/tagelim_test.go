package core

import (
	"testing"

	"smtsim/internal/iq"
	"smtsim/internal/rob"
	"smtsim/internal/uop"
)

// newPartRig builds a rig over a mixed-comparator queue.
func newPartRig(t *testing.T, policy Policy, part iq.Partition, bufCap, threads int) *rig {
	bank := uop.NewBank(threads * rigROBCap)
	r := &rig{
		t:    t,
		bank: bank,
		d:    NewDispatcher(bank, policy, 8, bufCap, threads),
		q:    iq.NewPartitioned(bank, part, threads),
		rf:   newRigRegfile(),
	}
	for i := 0; i < threads; i++ {
		r.robs = append(r.robs, rob.New(bank, int32(i*rigROBCap), rigROBCap))
	}
	return r
}

func TestTagElimUsesSmallestSufficientEntry(t *testing.T) {
	// 2 zero-cmp, 2 one-cmp, 2 two-cmp entries.
	r := newPartRig(t, TagElim, iq.Partition{2, 2, 2}, 8, 1)
	ready := r.add(0, 0)
	one := r.add(0, 1)
	two := r.add(0, 2)
	if n := r.run(1); n != 3 {
		t.Fatalf("dispatched %d, want 3", n)
	}
	if ready.IQClass != 0 || one.IQClass != 1 || two.IQClass != 2 {
		t.Errorf("entry classes %d/%d/%d, want 0/1/2", ready.IQClass, one.IQClass, two.IQClass)
	}
}

func TestTagElimOverflowsToLargerEntries(t *testing.T) {
	r := newPartRig(t, TagElim, iq.Partition{1, 1, 1}, 8, 1)
	a := r.add(0, 0)
	b := r.add(0, 0)
	c := r.add(0, 0)
	if n := r.run(1); n != 3 {
		t.Fatalf("dispatched %d, want 3", n)
	}
	if a.IQClass != 0 || b.IQClass != 1 || c.IQClass != 2 {
		t.Errorf("overflow classes %d/%d/%d, want 0/1/2", a.IQClass, b.IQClass, c.IQClass)
	}
}

func TestTagElimDynamicNDIBlocksInOrder(t *testing.T) {
	// Only one 2-comparator entry: the second 2-non-ready instruction is
	// a dynamic NDI (appropriate class exists but is occupied) and, with
	// in-order dispatch, blocks its thread even though smaller entries
	// are free.
	r := newPartRig(t, TagElim, iq.Partition{4, 4, 1}, 8, 1)
	first := r.add(0, 2)
	second := r.add(0, 2)
	younger := r.add(0, 0)
	if n := r.run(1); n != 1 {
		t.Fatalf("dispatched %d, want 1", n)
	}
	if !first.InIQ || second.InIQ || younger.InIQ {
		t.Error("dynamic NDI did not block in-order dispatch")
	}
	if !second.WasNDI {
		t.Error("dynamic NDI not marked")
	}
	st := r.d.Stats()
	if st.NDIBlockCycles[0] == 0 {
		t.Error("dynamic NDI block not counted")
	}
}

func TestTagElimOOODHopsOverDynamicNDI(t *testing.T) {
	r := newPartRig(t, TagElimOOOD, iq.Partition{4, 4, 1}, 8, 1)
	r.add(0, 2)            // takes the only 2-cmp entry
	blocked := r.add(0, 2) // dynamic NDI
	younger := r.add(0, 0)
	if n := r.run(1); n != 2 {
		t.Fatalf("dispatched %d, want 2", n)
	}
	if blocked.InIQ {
		t.Error("dynamic NDI entered the queue")
	}
	if !younger.InIQ || !younger.WasHDI {
		t.Error("OOOD did not hop over the dynamic NDI")
	}
	// Free the 2-cmp entry: the blocked instruction follows.
	r.q.Remove(r.robs[0].Head())
	if n := r.run(2); n != 1 || !blocked.InIQ {
		t.Fatalf("dynamic NDI did not dispatch after its class freed (n=%d)", n)
	}
}

func TestUniformQueueUnchangedByGeneralization(t *testing.T) {
	// The generalized dispatch logic must reproduce the original 2OP
	// semantics on uniform one-comparator queues: static NDIs block
	// in-order threads, and a full queue reports IQ-full (not NDI).
	r := newRig(t, TwoOpBlock, 2, 8, 1)
	r.add(0, 0)
	r.add(0, 0)
	r.run(1)
	r.add(0, 0)
	if n := r.run(2); n != 0 {
		t.Fatal("dispatched into a full queue")
	}
	st := r.d.Stats()
	if st.StallAllNDI != 0 {
		t.Error("full-queue stall misclassified as the 2OP condition")
	}
}

func TestPerThreadCapPartitionsQueue(t *testing.T) {
	r := newRig(t, InOrder, 16, 8, 2)
	r.d.SetPerThreadCap(3)
	for i := 0; i < 5; i++ {
		r.add(0, 0)
		r.add(1, 0)
	}
	r.run(1)
	r.run(2)
	if got := r.q.ThreadCount(0); got != 3 {
		t.Errorf("thread 0 holds %d entries, cap 3", got)
	}
	if got := r.q.ThreadCount(1); got != 3 {
		t.Errorf("thread 1 holds %d entries, cap 3", got)
	}
	// Issuing one of thread 0's entries frees its share.
	r.q.Remove(r.robs[0].Head())
	if n := r.run(3); n != 1 {
		t.Errorf("dispatched %d after share freed, want 1", n)
	}
}

func TestPerThreadCapWithOOOD(t *testing.T) {
	r := newRig(t, TwoOpOOOD, 16, 8, 1)
	r.d.SetPerThreadCap(2)
	r.add(0, 0)
	r.add(0, 0)
	r.add(0, 0)
	if n := r.run(1); n != 2 {
		t.Errorf("dispatched %d, want cap of 2", n)
	}
}
