package core

import "testing"

// TestWatchdogTick drives the countdown through dispatch/stall
// sequences and checks exactly when it fires.
func TestWatchdogTick(t *testing.T) {
	const D, S = true, false // dispatched / stalled cycle
	cases := []struct {
		name     string
		limit    int64
		cycles   []bool
		wantFire []int // indexes into cycles where Tick must return true
		expiries uint64
	}{
		{
			name:     "fires-after-limit-stalls",
			limit:    3,
			cycles:   []bool{S, S, S},
			wantFire: []int{2},
			expiries: 1,
		},
		{
			name:     "dispatch-resets-countdown",
			limit:    3,
			cycles:   []bool{S, S, D, S, S, S},
			wantFire: []int{5},
			expiries: 1,
		},
		{
			name:     "steady-dispatch-never-fires",
			limit:    2,
			cycles:   []bool{D, D, D, D, D, D},
			wantFire: nil,
			expiries: 0,
		},
		{
			name:     "rearms-after-expiry",
			limit:    2,
			cycles:   []bool{S, S, S, S, S, S},
			wantFire: []int{1, 3, 5},
			expiries: 3,
		},
		{
			name:     "limit-one-fires-every-stall",
			limit:    1,
			cycles:   []bool{S, D, S, S},
			wantFire: []int{0, 2, 3},
			expiries: 3,
		},
		{
			name:     "dispatch-just-before-expiry",
			limit:    3,
			cycles:   []bool{S, S, D, S, S, D, S, S, S},
			wantFire: []int{8},
			expiries: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWatchdog(tc.limit)
			fired := []int{}
			for i, dispatched := range tc.cycles {
				if w.Tick(dispatched) {
					fired = append(fired, i)
				}
			}
			if len(fired) != len(tc.wantFire) {
				t.Fatalf("fired at %v, want %v", fired, tc.wantFire)
			}
			for i := range fired {
				if fired[i] != tc.wantFire[i] {
					t.Fatalf("fired at %v, want %v", fired, tc.wantFire)
				}
			}
			if w.Expiries != tc.expiries {
				t.Errorf("Expiries = %d, want %d", w.Expiries, tc.expiries)
			}
			if w.Limit() != tc.limit {
				t.Errorf("Limit = %d, want %d", w.Limit(), tc.limit)
			}
		})
	}
}

func TestWatchdogRejectsBadLimit(t *testing.T) {
	for _, limit := range []int64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWatchdog(%d) did not panic", limit)
				}
			}()
			NewWatchdog(limit)
		}()
	}
}
