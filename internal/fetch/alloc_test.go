package fetch

import "testing"

// TestOrderZeroAllocs is the runtime counterpart of the //smt:hotpath
// annotation on Selector.Order (see the hotpath manifest in
// internal/analysis/smtlint): per-cycle thread selection must not
// allocate under either policy.
func TestOrderZeroAllocs(t *testing.T) {
	counts := []int{3, 1, 4, 1}
	runnable := func(t int) bool { return t != 2 }
	icount := func(t int) int { return counts[t] }
	for _, policy := range []Policy{ICount, RoundRobin} {
		s := NewSelector(policy, 4)
		if avg := testing.AllocsPerRun(10_000, func() {
			s.Order(runnable, icount)
		}); avg != 0 {
			t.Errorf("%s Order allocates %v objects/op, want 0", policy, avg)
		}
	}
}
