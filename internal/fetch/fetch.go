// Package fetch implements the instruction-fetch thread-selection
// policies. The paper's baseline uses I-Count (Tullsen et al. [16]) with
// fetching limited to two threads per cycle (ICOUNT.2.8 at an 8-wide
// machine): threads with the fewest not-yet-executed instructions in the
// front end and issue queue get priority, which keeps any one thread from
// clogging the shared queue.
package fetch

import "fmt"

// Policy selects a fetch thread-selection policy.
type Policy uint8

const (
	// ICount is the paper's baseline policy.
	ICount Policy = iota
	// RoundRobin rotates through runnable threads, provided as a
	// reference point for the fetch-policy ablation benchmarks.
	RoundRobin
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case ICount:
		return "icount"
	case RoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("fetch(%d)", uint8(p))
}

// ParsePolicy converts a name back to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range []Policy{ICount, RoundRobin} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("fetch: unknown fetch policy %q", s)
}

// Selector orders runnable threads for fetch each cycle.
type Selector struct {
	policy  Policy
	threads int
	rr      int
	order   []int
	counts  []int // per-thread icount cache for the in-place sort
}

// NewSelector builds a selector over the given number of threads.
func NewSelector(policy Policy, threads int) *Selector {
	return &Selector{
		policy:  policy,
		threads: threads,
		order:   make([]int, 0, threads),
		counts:  make([]int, threads),
	}
}

// SkipIdle advances the rotating tie-break offset by k cycles at once,
// exactly as k Order calls would have: the rotation is unconditional,
// so idle cycles replayed by the pipeline's quiescent-cycle
// fast-forward must advance it too.
func (s *Selector) SkipIdle(k int64) {
	s.rr = (s.rr + int(k%int64(s.threads))) % s.threads
}

// Order returns the thread ids to fetch from, highest priority first.
// runnable reports whether a thread can fetch this cycle; icount supplies
// each thread's in-flight front-end + IQ instruction count. The returned
// slice is reused across calls.
//
//smt:hotpath
func (s *Selector) Order(runnable func(t int) bool, icount func(t int) int) []int {
	s.order = s.order[:0]
	switch s.policy {
	case RoundRobin:
		for i := 0; i < s.threads; i++ {
			t := (s.rr + i) % s.threads
			if runnable(t) {
				s.order = append(s.order, t)
			}
		}
		s.rr = (s.rr + 1) % s.threads
	default: // ICount
		for t := 0; t < s.threads; t++ {
			if runnable(t) {
				s.order = append(s.order, t)
			}
		}
		// Ascending sort by icount; ties broken by a rotating offset so
		// equal-count threads share priority over time. The comparator is
		// a total order (thread ids are distinct), so this in-place
		// insertion sort — chosen over sort.SliceStable to keep the
		// per-cycle fetch path allocation-free — produces the same
		// ordering the stable library sort did. Counts are sampled once
		// per thread; icount is deterministic within a cycle.
		rot := s.rr
		s.rr = (s.rr + 1) % s.threads
		for _, t := range s.order {
			s.counts[t] = icount(t)
		}
		for i := 1; i < len(s.order); i++ {
			t := s.order[i]
			ct := s.counts[t]
			kt := (t + s.threads - rot) % s.threads
			j := i - 1
			for j >= 0 {
				o := s.order[j]
				if co := s.counts[o]; co < ct ||
					(co == ct && (o+s.threads-rot)%s.threads < kt) {
					break
				}
				s.order[j+1] = o
				j--
			}
			s.order[j+1] = t
		}
	}
	return s.order
}
