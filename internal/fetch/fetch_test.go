package fetch

import (
	"testing"
)

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{ICount, RoundRobin} {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip of %v failed: %v, %v", p, back, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestICountOrdersByCount(t *testing.T) {
	s := NewSelector(ICount, 3)
	counts := []int{10, 2, 5}
	order := s.Order(func(int) bool { return true }, func(t int) int { return counts[t] })
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("order = %v, want [1 2 0]", order)
	}
}

func TestICountSkipsUnrunnable(t *testing.T) {
	s := NewSelector(ICount, 3)
	order := s.Order(func(t int) bool { return t != 1 }, func(int) int { return 0 })
	for _, t2 := range order {
		if t2 == 1 {
			t.Error("unrunnable thread selected")
		}
	}
	if len(order) != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestICountTieRotation(t *testing.T) {
	s := NewSelector(ICount, 2)
	first := map[int]int{}
	for i := 0; i < 10; i++ {
		order := s.Order(func(int) bool { return true }, func(int) int { return 0 })
		first[order[0]]++
	}
	if first[0] == 0 || first[1] == 0 {
		t.Errorf("tie-breaking starved a thread: %v", first)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	s := NewSelector(RoundRobin, 3)
	lead := map[int]bool{}
	for i := 0; i < 3; i++ {
		order := s.Order(func(int) bool { return true }, func(int) int { return 0 })
		lead[order[0]] = true
		if len(order) != 3 {
			t.Fatalf("order %v", order)
		}
	}
	if len(lead) != 3 {
		t.Errorf("round robin lead set %v, want all threads", lead)
	}
}

func TestEmptyRunnableSet(t *testing.T) {
	s := NewSelector(ICount, 4)
	if got := s.Order(func(int) bool { return false }, func(int) int { return 0 }); len(got) != 0 {
		t.Errorf("order = %v, want empty", got)
	}
}
