package fu

import (
	"testing"

	"smtsim/internal/isa"
)

// TestTryIssueZeroAllocs is the runtime counterpart of the //smt:hotpath
// annotations in this package (see the hotpath manifest in
// internal/analysis/smtlint): unit reservation must not allocate.
func TestTryIssueZeroAllocs(t *testing.T) {
	ps := MustNew(DefaultConfig())
	cycle := int64(0)
	if avg := testing.AllocsPerRun(10_000, func() {
		ps.TryIssue(isa.IntAlu, cycle)
		ps.TryIssue(isa.Load, cycle)
		ps.TryIssue(isa.FpDiv, cycle) // exercises the busy-for-interval path
		cycle++
	}); avg != 0 {
		t.Errorf("TryIssue allocates %v objects/op, want 0", avg)
	}
}
