// Package fu models the functional-unit pools of Table 1: 8 integer ALUs
// (which also resolve branches), 4 integer multiply/divide units, 4
// load/store ports, 8 floating-point adders, and 4 floating-point
// multiply/divide/sqrt units. Pipelined operations have an initiation
// interval of one cycle; divides and square roots occupy their unit for
// their full issue interval (isa.IssueInterval).
package fu

import (
	"fmt"

	"smtsim/internal/isa"
)

// Pool is one class of identical functional units, tracked as per-unit
// next-free cycles. minFree caches min(freeAt) so the saturated case — a
// blocked instruction retrying its reservation every cycle — fails in
// one branchless compare instead of scanning every unit.
type Pool struct {
	name    string
	freeAt  []int64
	minFree int64
}

// newPool builds a pool of n units, all free at cycle 0.
func newPool(name string, n int) Pool {
	return Pool{name: name, freeAt: make([]int64, n)}
}

// tryReserve finds a unit free at cycle and occupies it for busy cycles.
// The single pass both claims the first free unit and re-derives minFree
// over the updated columns, so the cached minimum is always exact.
//
//smt:hotpath
func (p *Pool) tryReserve(cycle int64, busy int) bool {
	if p.minFree > cycle {
		return false // every unit busy: min(freeAt) is exact
	}
	idx := -1
	min := int64(1<<63 - 1)
	for i, f := range p.freeAt {
		if idx < 0 && f <= cycle {
			idx = i
			f = cycle + int64(busy)
			p.freeAt[i] = f
		}
		if f < min {
			min = f
		}
	}
	if idx < 0 {
		return false // unreachable while minFree tracks min(freeAt)
	}
	p.minFree = min
	return true
}

// available counts units free at the given cycle.
func (p *Pool) available(cycle int64) int {
	n := 0
	for _, f := range p.freeAt {
		if f <= cycle {
			n++
		}
	}
	return n
}

// poolID distinguishes the five Table 1 pools.
type poolID uint8

const (
	poolIntAlu poolID = iota
	poolIntMult
	poolMem
	poolFpAdd
	poolFpMult
	numPools
)

// poolOf maps each op class to the pool that executes it.
var poolOf = [isa.NumOpClasses]poolID{
	isa.Nop:     poolIntAlu,
	isa.IntAlu:  poolIntAlu,
	isa.Branch:  poolIntAlu,
	isa.IntMult: poolIntMult,
	isa.IntDiv:  poolIntMult,
	isa.Load:    poolMem,
	isa.Store:   poolMem,
	isa.FpAdd:   poolFpAdd,
	isa.FpMult:  poolFpMult,
	isa.FpDiv:   poolFpMult,
	isa.FpSqrt:  poolFpMult,
}

// Config sets the number of units per pool.
type Config struct {
	IntAlu, IntMult, Mem, FpAdd, FpMult int
}

// DefaultConfig is the Table 1 unit inventory.
func DefaultConfig() Config {
	return Config{IntAlu: 8, IntMult: 4, Mem: 4, FpAdd: 8, FpMult: 4}
}

// Pools is the complete execution-unit inventory. The pools are stored
// by value — one flat array of next-free columns — so TryIssue reaches
// the unit state without a pointer hop per issue attempt.
type Pools struct {
	pools [numPools]Pool
}

// New builds the pools from cfg.
func New(cfg Config) (*Pools, error) {
	// Validation walks an ordered slice so the same invalid Config
	// always yields the same error (a map literal here made the winning
	// diagnostic iteration-order dependent — found by detlint).
	counts := []struct {
		name string
		n    int
	}{
		{"int-alu", cfg.IntAlu}, {"int-mult", cfg.IntMult}, {"mem", cfg.Mem},
		{"fp-add", cfg.FpAdd}, {"fp-mult", cfg.FpMult},
	}
	for _, c := range counts {
		if c.n <= 0 {
			return nil, fmt.Errorf("fu: pool %s must have at least one unit, got %d", c.name, c.n)
		}
	}
	return &Pools{pools: [numPools]Pool{
		poolIntAlu:  newPool("int-alu", cfg.IntAlu),
		poolIntMult: newPool("int-mult", cfg.IntMult),
		poolMem:     newPool("mem", cfg.Mem),
		poolFpAdd:   newPool("fp-add", cfg.FpAdd),
		poolFpMult:  newPool("fp-mult", cfg.FpMult),
	}}, nil
}

// MustNew is New that panics on error, for static configurations.
func MustNew(cfg Config) *Pools {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// TryIssue attempts to reserve a unit for an operation of the given class
// starting at cycle. It returns false when every unit in the class's pool
// is busy (structural hazard); the instruction then retries next cycle.
//
//smt:hotpath
func (ps *Pools) TryIssue(class isa.OpClass, cycle int64) bool {
	return ps.pools[poolOf[class]].tryReserve(cycle, isa.IssueInterval[class])
}

// Available returns the number of free units for a class at cycle, for
// tests and occupancy statistics.
func (ps *Pools) Available(class isa.OpClass, cycle int64) int {
	return ps.pools[poolOf[class]].available(cycle)
}
