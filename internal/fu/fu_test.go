package fu

import (
	"testing"

	"smtsim/internal/isa"
)

func TestDefaultInventory(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.IntAlu != 8 || cfg.IntMult != 4 || cfg.Mem != 4 || cfg.FpAdd != 8 || cfg.FpMult != 4 {
		t.Errorf("default inventory %+v does not match Table 1", cfg)
	}
}

func TestRejectsEmptyPool(t *testing.T) {
	if _, err := New(Config{IntAlu: 8, IntMult: 0, Mem: 4, FpAdd: 8, FpMult: 4}); err == nil {
		t.Error("zero-unit pool accepted")
	}
}

func TestPipelinedPoolIssuesEveryCycle(t *testing.T) {
	ps := MustNew(DefaultConfig())
	// 8 int ALUs: exactly 8 issues per cycle.
	for cyc := int64(1); cyc <= 3; cyc++ {
		n := 0
		for ps.TryIssue(isa.IntAlu, cyc) {
			n++
			if n > 8 {
				break
			}
		}
		if n != 8 {
			t.Fatalf("cycle %d: issued %d int-alu, want 8", cyc, n)
		}
	}
}

func TestBranchesShareIntAluPool(t *testing.T) {
	ps := MustNew(DefaultConfig())
	for i := 0; i < 4; i++ {
		if !ps.TryIssue(isa.Branch, 1) {
			t.Fatal("branch rejected with free ALUs")
		}
	}
	if got := ps.Available(isa.IntAlu, 1); got != 4 {
		t.Errorf("branches did not consume ALUs: %d available, want 4", got)
	}
}

func TestUnpipelinedDivideOccupiesUnit(t *testing.T) {
	ps := MustNew(Config{IntAlu: 1, IntMult: 1, Mem: 1, FpAdd: 1, FpMult: 1})
	if !ps.TryIssue(isa.IntDiv, 1) {
		t.Fatal("divide rejected on idle unit")
	}
	// The single int-mult/div unit is busy for IssueInterval (19) cycles.
	if ps.TryIssue(isa.IntMult, 2) {
		t.Error("multiply issued on busy divide unit")
	}
	if ps.TryIssue(isa.IntDiv, 19) {
		t.Error("divide issued before unit freed")
	}
	if !ps.TryIssue(isa.IntMult, 20) {
		t.Error("unit not freed after issue interval")
	}
}

func TestFpPoolsIndependent(t *testing.T) {
	ps := MustNew(Config{IntAlu: 1, IntMult: 1, Mem: 1, FpAdd: 1, FpMult: 1})
	if !ps.TryIssue(isa.FpSqrt, 1) {
		t.Fatal("sqrt rejected")
	}
	// Sqrt ties up the fp-mult pool but not fp-add.
	if ps.TryIssue(isa.FpMult, 2) || ps.TryIssue(isa.FpDiv, 2) {
		t.Error("fp mult/div issued on busy sqrt unit")
	}
	if !ps.TryIssue(isa.FpAdd, 2) {
		t.Error("fp-add pool affected by sqrt")
	}
}

func TestMemPortsLimitLoadsAndStores(t *testing.T) {
	ps := MustNew(DefaultConfig())
	n := 0
	for ps.TryIssue(isa.Load, 1) || ps.TryIssue(isa.Store, 1) {
		n++
		if n > 4 {
			break
		}
	}
	if n != 4 {
		t.Errorf("issued %d memory ops in one cycle, want 4", n)
	}
}

func TestAvailableCounts(t *testing.T) {
	ps := MustNew(DefaultConfig())
	if got := ps.Available(isa.FpAdd, 1); got != 8 {
		t.Errorf("fp-add available = %d, want 8", got)
	}
	ps.TryIssue(isa.FpAdd, 1)
	if got := ps.Available(isa.FpAdd, 1); got != 7 {
		t.Errorf("fp-add available after issue = %d, want 7", got)
	}
	if got := ps.Available(isa.FpAdd, 2); got != 8 {
		t.Errorf("pipelined unit not free next cycle: %d", got)
	}
}
