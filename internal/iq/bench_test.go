package iq

import (
	"testing"

	"smtsim/internal/isa"
	"smtsim/internal/regfile"
	"smtsim/internal/uop"
)

// BenchmarkInsertRemove measures the queue's entry management, the
// per-dispatch cost of the simulator's hottest structure.
func BenchmarkInsertRemove(b *testing.B) {
	rf := regfile.New(256, 256)
	q := New(64, 2, 4)
	us := make([]*uop.UOp, 64)
	for i := range us {
		p := rf.Alloc(isa.IntReg)
		rf.SetReady(p)
		us[i] = &uop.UOp{Thread: i % 4, GSeq: uint64(i), Srcs: [2]regfile.PhysRef{p, regfile.NoPhys}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range us {
			q.Insert(u, rf)
		}
		for _, u := range us {
			q.Remove(u)
		}
	}
}

// BenchmarkReadySelect measures oldest-first selection over a full
// 64-entry queue with half the entries ready — the per-cycle issue cost.
func BenchmarkReadySelect(b *testing.B) {
	rf := regfile.New(256, 256)
	q := New(64, 2, 4)
	for i := 0; i < 64; i++ {
		p := rf.Alloc(isa.IntReg)
		if i%2 == 0 {
			rf.SetReady(p)
		}
		q.Insert(&uop.UOp{Thread: i % 4, GSeq: uint64(i), Srcs: [2]regfile.PhysRef{p, regfile.NoPhys}}, rf)
	}
	var scratch []*uop.UOp
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = q.ReadyOldestFirst(rf, scratch)
	}
}

// BenchmarkIQWakeup measures the full wakeup chain for one batch of 64
// dependent instructions — dispatch, tag broadcast, selection, issue —
// under both disciplines. In event mode the broadcast itself moves each
// entry onto the ready list (Watch + OperandReady + wake) and selection
// copies that list; in polling mode the broadcast is a bit flip and
// selection re-scans and re-sorts the queue.
func BenchmarkIQWakeup(b *testing.B) {
	for _, mode := range []struct {
		name  string
		event bool
	}{{"event", true}, {"polling", false}} {
		b.Run(mode.name, func(b *testing.B) {
			rf := regfile.New(256, 256)
			q := New(64, 2, 4)
			q.SetEventWakeup(mode.event)
			us := make([]*uop.UOp, 64)
			regs := make([]regfile.PhysRef, 64)
			for i := range us {
				us[i] = new(uop.UOp)
				us[i].Reset()
			}
			var scratch []*uop.UOp
			gseq := uint64(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, u := range us {
					p := rf.Alloc(isa.IntReg)
					regs[j] = p
					u.Thread = j % 4
					u.GSeq = gseq
					gseq++
					u.Srcs[0] = p
					if mode.event {
						u.NotReady = 0
						if rf.Watch(p, u, u.GSeq) {
							u.NotReady = 1
						}
					}
					q.Insert(u, rf)
				}
				for _, p := range regs {
					rf.SetReady(p) // the tag broadcast
				}
				scratch = q.ReadyOrdered(rf, scratch, OldestFirst, 0)
				if len(scratch) != len(us) {
					b.Fatalf("ready %d, want %d", len(scratch), len(us))
				}
				for _, u := range scratch {
					q.Remove(u)
				}
				for _, p := range regs {
					rf.Free(p)
				}
			}
		})
	}
}

// BenchmarkIQRemove measures entry removal via the back-index. Removal
// proceeds in insertion order, so every Remove targets the logical front
// — the old linear scan's best case was the back, its worst case this.
func BenchmarkIQRemove(b *testing.B) {
	rf := regfile.New(256, 256)
	q := New(64, 2, 4)
	us := make([]*uop.UOp, 64)
	for i := range us {
		p := rf.Alloc(isa.IntReg)
		rf.SetReady(p)
		us[i] = &uop.UOp{Thread: i % 4, GSeq: uint64(i + 1), Srcs: [2]regfile.PhysRef{p, regfile.NoPhys}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range us {
			q.Insert(u, rf)
		}
		for _, u := range us {
			q.Remove(u)
		}
	}
}
