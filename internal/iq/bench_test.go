package iq

import (
	"testing"

	"smtsim/internal/isa"
	"smtsim/internal/regfile"
	"smtsim/internal/uop"
)

// BenchmarkInsertRemove measures the queue's entry management, the
// per-dispatch cost of the simulator's hottest structure.
func BenchmarkInsertRemove(b *testing.B) {
	rf := regfile.New(256, 256)
	q := New(64, 2, 4)
	us := make([]*uop.UOp, 64)
	for i := range us {
		p := rf.Alloc(isa.IntReg)
		rf.SetReady(p)
		us[i] = &uop.UOp{Thread: i % 4, GSeq: uint64(i), Srcs: [2]regfile.PhysRef{p, regfile.NoPhys}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range us {
			q.Insert(u, rf)
		}
		for _, u := range us {
			q.Remove(u)
		}
	}
}

// BenchmarkReadySelect measures oldest-first selection over a full
// 64-entry queue with half the entries ready — the per-cycle issue cost.
func BenchmarkReadySelect(b *testing.B) {
	rf := regfile.New(256, 256)
	q := New(64, 2, 4)
	for i := 0; i < 64; i++ {
		p := rf.Alloc(isa.IntReg)
		if i%2 == 0 {
			rf.SetReady(p)
		}
		q.Insert(&uop.UOp{Thread: i % 4, GSeq: uint64(i), Srcs: [2]regfile.PhysRef{p, regfile.NoPhys}}, rf)
	}
	var scratch []*uop.UOp
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = q.ReadyOldestFirst(rf, scratch)
	}
}
