package iq

import (
	"testing"

	"smtsim/internal/isa"
	"smtsim/internal/regfile"
	"smtsim/internal/uop"
)

// BenchmarkInsertRemove measures the queue's entry management, the
// per-dispatch cost of the simulator's hottest structure.
func BenchmarkInsertRemove(b *testing.B) {
	bank := uop.NewBank(64)
	rf := regfile.New(256, 256)
	q := New(bank, 64, 2, 4)
	us := make([]*uop.UOp, 64)
	for i := range us {
		p := rf.Alloc(isa.IntReg)
		rf.SetReady(p)
		u := bank.Get(int32(i))
		u.Thread = i % 4
		u.GSeq = uint64(i + 1)
		u.Srcs = [2]regfile.PhysRef{p, regfile.NoPhys}
		us[i] = u
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range us {
			q.Insert(u, rf)
		}
		for _, u := range us {
			q.Remove(u)
		}
	}
}

// BenchmarkReadySelect measures oldest-first selection over a full
// 64-entry queue with half the entries ready — the per-cycle issue cost.
func BenchmarkReadySelect(b *testing.B) {
	bank := uop.NewBank(64)
	rf := regfile.New(256, 256)
	q := New(bank, 64, 2, 4)
	for i := 0; i < 64; i++ {
		p := rf.Alloc(isa.IntReg)
		if i%2 == 0 {
			rf.SetReady(p)
		}
		u := bank.Get(int32(i))
		u.Thread = i % 4
		u.GSeq = uint64(i + 1)
		u.Srcs = [2]regfile.PhysRef{p, regfile.NoPhys}
		q.Insert(u, rf)
	}
	var scratch []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = q.ReadyOldestFirst(rf, scratch)
	}
}

// BenchmarkIQWakeup measures the full wakeup chain for one batch of 64
// dependent instructions — dispatch, tag broadcast, selection, issue —
// under both disciplines. In event mode the broadcast walks the
// register's consumer bitmap, decrements each watcher's bank counter,
// and moves zero-counter entries onto the ready list; in polling mode
// the broadcast is a bit flip and selection re-scans and re-sorts the
// queue.
func BenchmarkIQWakeup(b *testing.B) {
	for _, mode := range []struct {
		name  string
		event bool
	}{{"event", true}, {"polling", false}} {
		b.Run(mode.name, func(b *testing.B) {
			bank := uop.NewBank(64)
			rf := regfile.New(256, 256)
			q := New(bank, 64, 2, 4)
			q.SetEventWakeup(mode.event)
			if mode.event {
				rf.AttachWakeup(bank.Cap(), bank.NotReady, func(id int32) {
					q.UOpReady(bank.Get(id))
				})
			}
			us := make([]*uop.UOp, 64)
			regs := make([]regfile.PhysRef, 64)
			for i := range us {
				us[i] = bank.Get(int32(i))
			}
			var scratch []int32
			gseq := uint64(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, u := range us {
					p := rf.Alloc(isa.IntReg)
					regs[j] = p
					u.Thread = j % 4
					u.GSeq = gseq
					gseq++
					u.Srcs[0] = p
					if mode.event {
						nr := int8(0)
						if rf.Watch(p, u.ID) {
							nr = 1
						}
						bank.NotReady[u.ID] = nr
					}
					q.Insert(u, rf)
				}
				for _, p := range regs {
					rf.SetReady(p) // the tag broadcast
				}
				scratch = q.ReadyOrdered(rf, scratch, OldestFirst, 0)
				if len(scratch) != len(us) {
					b.Fatalf("ready %d, want %d", len(scratch), len(us))
				}
				for _, id := range scratch {
					q.Remove(bank.Get(id))
				}
				for _, p := range regs {
					rf.Free(p)
				}
			}
		})
	}
}

// BenchmarkIQRemove measures entry removal via the back-index. Removal
// proceeds in insertion order, so every Remove targets the logical front
// — the old linear scan's best case was the back, its worst case this.
func BenchmarkIQRemove(b *testing.B) {
	bank := uop.NewBank(64)
	rf := regfile.New(256, 256)
	q := New(bank, 64, 2, 4)
	us := make([]*uop.UOp, 64)
	for i := range us {
		p := rf.Alloc(isa.IntReg)
		rf.SetReady(p)
		u := bank.Get(int32(i))
		u.Thread = i % 4
		u.GSeq = uint64(i + 1)
		u.Srcs = [2]regfile.PhysRef{p, regfile.NoPhys}
		us[i] = u
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range us {
			q.Insert(u, rf)
		}
		for _, u := range us {
			q.Remove(u)
		}
	}
}
