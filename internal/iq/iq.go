// Package iq implements the shared issue queue (scheduler) of the SMT
// machine: a bounded pool of entries holding dispatched instructions
// until their source operands are ready and a functional unit accepts
// them, with oldest-first selection up to the issue width.
//
// Entries are typed by their tag-comparator count. The paper's designs
// are uniform queues — two comparators per entry (traditional) or one
// (the 2OP designs) — but the queue also supports mixed partitions in
// the style of Ernst & Austin's tag elimination ([5] in the paper):
// some entries with two comparators, some with one, some with none. An
// instruction with n non-ready sources needs an entry with at least n
// comparators; Insert allocates the smallest sufficient class so scarce
// big entries stay available.
//
// Behaviour inside the queue is identical across entry types; the
// designs differ in what the dispatch stage may send (package core).
//
// The queue stores dense uop ids, not pointers: entry and ready-list
// state is a few flat int32/struct arrays over the core's uop bank, so
// the steady-state select loop walks contiguous memory.
package iq

import (
	"fmt"
	"sort"

	"smtsim/internal/regfile"
	"smtsim/internal/uop"
)

// NumClasses is the number of comparator classes (0, 1, and 2).
const NumClasses = 3

// Partition sets the number of entries per comparator class:
// Partition[k] entries can hold instructions with up to k non-ready
// source operands.
type Partition [NumClasses]int

// Total returns the queue capacity the partition implies.
func (p Partition) Total() int { return p[0] + p[1] + p[2] }

// Uniform returns a partition with all capacity in one class.
func Uniform(capacity, comparators int) Partition {
	var p Partition
	p[comparators] = capacity
	return p
}

// readyEnt is one ready-list element: the uop's age, id, and thread,
// denormalized so selection and the thread-rotate pass never touch the
// bank.
type readyEnt struct {
	seq    uint64
	id     int32
	thread int32
}

// Queue is the shared issue queue.
//
// The queue supports two wakeup disciplines. In the legacy polling mode
// (the default for a bare Queue, kept for the differential cross-check
// and for tests that build entries by hand), ReadyOrdered re-scans every
// entry against the register file each call. In event-driven mode
// (SetEventWakeup, what the pipeline uses) the queue mirrors a hardware
// tag-broadcast CAM: each entry's not-ready operand counter lives in the
// uop bank and is maintained by the register file's consumer bitmaps,
// and entries whose counter hits zero move onto an age-ordered ready
// list at broadcast time, so selection pops from an already-sorted list
// and never rescans the queue.
type Queue struct {
	bank      *uop.Bank
	part      Partition
	used      [NumClasses]int
	entries   []int32 // uop ids, slot order mirrored in UOp.IQSlot
	perThread []int

	// maxClass is the largest comparator count any entry has (precomputed
	// from the partition so the per-uop NDI classification is a single
	// compare, not a class scan).
	maxClass int

	// event selects event-driven wakeup; ready is the incrementally
	// maintained ready list, ascending by seq (oldest first).
	event bool
	ready []readyEnt

	// Statistics. The occupancy statistic runs in one of two modes:
	// legacy per-cycle sampling (Sample/SampleIdle, kept for standalone
	// queues built by tests) or — when occNow is bound to the core's
	// cycle counter — O(1) incremental integration: occupancy is
	// piecewise constant between queue mutations, so every mutation first
	// settles the elapsed span at the old occupancy (settle), and nothing
	// at all runs on cycles that leave the queue untouched. Both modes
	// accumulate the same integers, so the mean is bit-identical.
	Inserts      uint64
	occupancySum uint64
	samples      uint64
	occNow       *int64
	occSettled   int64
}

// New builds a uniform queue over the core's uop bank with the given
// number of entries, each with maxNonReady tag comparators: 2 for the
// traditional scheduler, 1 for the 2OP designs.
func New(bank *uop.Bank, capacity, maxNonReady, threads int) *Queue {
	if capacity <= 0 {
		panic("iq: capacity must be positive")
	}
	if maxNonReady < 0 || maxNonReady >= NumClasses {
		panic("iq: maxNonReady must be 0..2")
	}
	return NewPartitioned(bank, Uniform(capacity, maxNonReady), threads)
}

// NewPartitioned builds a queue with typed entries.
func NewPartitioned(bank *uop.Bank, part Partition, threads int) *Queue {
	if part.Total() <= 0 {
		panic("iq: empty partition")
	}
	for _, n := range part {
		if n < 0 {
			panic("iq: negative partition class")
		}
	}
	maxClass := 0
	for k := NumClasses - 1; k >= 0; k-- {
		if part[k] > 0 {
			maxClass = k
			break
		}
	}
	return &Queue{
		bank:      bank,
		part:      part,
		entries:   make([]int32, 0, part.Total()),
		perThread: make([]int, threads),
		maxClass:  maxClass,
	}
}

// SetEventWakeup switches between event-driven wakeup (true) and the
// legacy per-cycle polling (false). In event mode, callers must maintain
// the bank's NotReady counter before Insert (the pipeline does this at
// rename via regfile.Watch) and route zero-crossing broadcasts to
// UOpReady; the queue then keeps its ready list current. Must be called
// while the queue is empty.
func (q *Queue) SetEventWakeup(on bool) {
	if len(q.entries) > 0 {
		panic("iq: cannot switch wakeup mode with entries in flight")
	}
	q.event = on
}

// EventWakeup reports the active wakeup discipline.
func (q *Queue) EventWakeup() bool { return q.event }

// srcNotReady returns u's non-ready source count under the active mode:
// the bank's event-maintained counter, or a register-file poll.
//
//smt:hotpath
func (q *Queue) srcNotReady(u *uop.UOp, rf *regfile.File) int {
	if q.event {
		return int(q.bank.NotReady[u.ID])
	}
	return u.NumSrcNotReady(rf)
}

// Cap returns the total number of entries.
func (q *Queue) Cap() int { return q.part.Total() }

// Len returns the current occupancy.
func (q *Queue) Len() int { return len(q.entries) }

// Free returns the total number of unoccupied entries of any class.
func (q *Queue) Free() int { return q.Cap() - len(q.entries) }

// Partition returns the entry-type configuration.
func (q *Queue) Partition() Partition { return q.part }

// MaxNonReady returns the largest comparator count any entry has.
func (q *Queue) MaxNonReady() int { return q.maxClass }

// ClassSupported reports whether the queue has any entries (occupied or
// not) with at least n comparators: an instruction with n non-ready
// sources can never dispatch into a queue that does not support its
// class — the static NDI condition of the 2OP designs.
//
//smt:hotpath
func (q *Queue) ClassSupported(n int) bool { return n <= q.maxClass }

// CanAccept reports whether a free entry with at least n comparators
// exists right now — the paper's Dispatchable Instruction condition
// ("an appropriate IQ entry is also available").
//
//smt:hotpath
func (q *Queue) CanAccept(n int) bool {
	if n < 0 {
		n = 0
	}
	for k := n; k < NumClasses; k++ {
		if q.used[k] < q.part[k] {
			return true
		}
	}
	return false
}

// ClassUsed returns the occupancy of one comparator class (for tests).
func (q *Queue) ClassUsed(k int) int { return q.used[k] }

// ThreadCount returns the occupancy attributed to thread t (feeds the
// ICOUNT fetch policy).
//
//smt:hotpath
func (q *Queue) ThreadCount(t int) int { return q.perThread[t] }

// Insert places a dispatched instruction into the smallest free entry
// class that fits its current non-ready source count. It panics if no
// suitable entry is available — the dispatch policies gate on CanAccept,
// so a violation is a policy bug (hunted by the property tests).
//
//smt:hotpath
func (q *Queue) Insert(u *uop.UOp, rf *regfile.File) {
	q.settle()
	n := q.srcNotReady(u, rf)
	for k := n; k < NumClasses; k++ {
		if q.used[k] < q.part[k] {
			q.used[k]++
			u.IQClass = int8(k)
			u.InIQ = true
			u.IQSlot = int32(len(q.entries))
			q.entries = append(q.entries, u.ID)
			q.perThread[u.Thread]++
			q.Inserts++
			if q.event && n == 0 {
				q.wake(u)
			}
			return
		}
	}
	panic(fmt.Sprintf("iq: thread %d inst %#x has %d non-ready sources and no suitable free entry",
		u.Thread, u.Inst.PC, n))
}

// Remove extracts u from the queue (at issue or squash) in O(1) via the
// back-index stored on the UOp at Insert.
//
//smt:hotpath
//smt:trusted-id — q.entries holds only resident ids: Insert adds, Remove/DrainThread delete, so the moved entry is live
func (q *Queue) Remove(u *uop.UOp) {
	q.settle()
	i := int(u.IQSlot)
	if !u.InIQ || i >= len(q.entries) || q.entries[i] != u.ID {
		panic("iq: remove of absent entry")
	}
	last := len(q.entries) - 1
	moved := q.entries[last]
	q.entries[i] = moved
	q.bank.Get(moved).IQSlot = int32(i)
	q.entries = q.entries[:last]
	q.perThread[u.Thread]--
	q.used[u.IQClass]--
	q.detach(u)
}

// detach clears u's queue-membership state, dropping it from the ready
// list if present.
//
//smt:hotpath
func (q *Queue) detach(u *uop.UOp) {
	u.InIQ = false
	if u.InReady {
		q.dropReady(u)
	}
}

// UOpReady is the wakeup sink: u's last outstanding source operand was
// just produced (tag broadcast). If u occupies a queue entry, it joins
// the ready list at its age-ordered position; broadcasts for uops still
// in dispatch buffers are ignored here (the dispatch stage reads the
// bank counter directly).
//
//smt:hotpath
func (q *Queue) UOpReady(u *uop.UOp) {
	if !u.InIQ || u.InReady {
		return
	}
	q.wake(u)
}

// wake inserts u into the ready list, keeping it ascending by GSeq — the
// incremental equivalent of the polling mode's sort-by-age. The list is
// small (bounded by the issue-ready set, not the queue), so a binary
// search plus a memmove beats re-sorting every cycle.
//
//smt:hotpath
func (q *Queue) wake(u *uop.UOp) {
	lo, hi := 0, len(q.ready)
	for lo < hi {
		mid := (lo + hi) / 2
		if q.ready[mid].seq < u.GSeq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.ready = append(q.ready, readyEnt{})
	copy(q.ready[lo+1:], q.ready[lo:])
	q.ready[lo] = readyEnt{seq: u.GSeq, id: u.ID, thread: int32(u.Thread)}
	u.InReady = true
}

// dropReady removes u from the ready list (issue or squash).
//
//smt:hotpath
func (q *Queue) dropReady(u *uop.UOp) {
	lo, hi := 0, len(q.ready)
	for lo < hi {
		mid := (lo + hi) / 2
		if q.ready[mid].seq < u.GSeq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(q.ready) || q.ready[lo].id != u.ID {
		panic("iq: ready-list entry missing")
	}
	copy(q.ready[lo:], q.ready[lo+1:])
	q.ready = q.ready[:len(q.ready)-1]
	u.InReady = false
}

// SelectPolicy orders the ready instructions competing for issue slots.
type SelectPolicy uint8

const (
	// OldestFirst issues by global age, the conventional heuristic and
	// the paper's select policy.
	OldestFirst SelectPolicy = iota
	// ThreadRotate rotates which thread's instructions get priority each
	// cycle (age-ordered within a thread) — a cheap position-style
	// arbiter in the spirit of the partitioned issue of related work.
	ThreadRotate
)

// String names the policy.
func (p SelectPolicy) String() string {
	if p == ThreadRotate {
		return "thread-rotate"
	}
	return "oldest-first"
}

// ReadyOldestFirst returns the ids of instructions whose sources are all
// ready, sorted oldest-first by global rename order — the default select
// policy. The returned slice is valid until the next call.
//
//smt:hotpath
func (q *Queue) ReadyOldestFirst(rf *regfile.File, scratch []int32) []int32 {
	return q.ReadyOrdered(rf, scratch, OldestFirst, 0)
}

// ReadyOrdered returns the ready instructions' ids in the order the
// given select policy would grant them issue slots; tick (typically the
// cycle number) seeds rotating policies. The ids are written into
// scratch so the caller may issue (and Remove) while iterating.
//
//smt:hotpath
func (q *Queue) ReadyOrdered(rf *regfile.File, scratch []int32, pol SelectPolicy, tick int64) []int32 {
	if !q.event {
		//smt:allow-alloc — polled-mode fallback only: sort.Slice boxes its argument (see readyPolled doc); the event-driven path is the measured steady state
		return q.readyPolled(rf, scratch, pol, tick)
	}
	out := scratch[:0]
	if pol == ThreadRotate && len(q.perThread) > 1 {
		// Threads visited in rotating sequence from this tick's first
		// thread, age order within each — a stable bucket pass over the
		// (small) age-sorted ready list, equivalent to sorting by
		// (rotated thread index, GSeq).
		n := len(q.perThread)
		first := int(tick % int64(n))
		for k := 0; k < n; k++ {
			t := int32((first + k) % n)
			for _, e := range q.ready {
				if e.thread == t {
					out = append(out, e.id)
				}
			}
		}
		return out
	}
	for _, e := range q.ready {
		out = append(out, e.id)
	}
	return out
}

// readyPolled is ReadyOrdered for the legacy polling mode: re-scan every
// entry against the register file and sort. Kept for the differential
// cross-check; it is off the zero-alloc hot path (sort.Slice boxes its
// argument and allocates the comparator closure), which is why it lives
// outside the //smt:hotpath annotation.
//
//smt:trusted-id — scans q.entries and its own ready subset; both hold only resident ids
func (q *Queue) readyPolled(rf *regfile.File, scratch []int32, pol SelectPolicy, tick int64) []int32 {
	ready := scratch[:0]
	for _, id := range q.entries {
		if q.bank.Get(id).SrcsReady(rf) {
			ready = append(ready, id)
		}
	}
	switch pol {
	case ThreadRotate:
		n := len(q.perThread)
		if n == 0 {
			n = 1
		}
		first := int(tick % int64(n))
		sort.Slice(ready, func(i, j int) bool {
			ui, uj := q.bank.Get(ready[i]), q.bank.Get(ready[j])
			a := (ui.Thread - first + n) % n
			b := (uj.Thread - first + n) % n
			if a != b {
				return a < b
			}
			return ui.GSeq < uj.GSeq
		})
	default:
		sort.Slice(ready, func(i, j int) bool {
			return q.bank.Get(ready[i]).GSeq < q.bank.Get(ready[j]).GSeq
		})
	}
	return ready
}

// DrainThread removes and returns every entry belonging to thread t
// (watchdog flush path).
//
//smt:trusted-id — scans q.entries, which holds only resident ids
func (q *Queue) DrainThread(t int) []*uop.UOp {
	q.settle()
	var out []*uop.UOp
	kept := q.entries[:0]
	for _, id := range q.entries {
		u := q.bank.Get(id)
		if u.Thread == t {
			q.used[u.IQClass]--
			q.detach(u)
			out = append(out, u)
		} else {
			u.IQSlot = int32(len(kept))
			kept = append(kept, id)
		}
	}
	q.entries = kept
	q.perThread[t] = 0
	return out
}

// BindCycleCounter switches the occupancy statistic to incremental
// integration against the caller's cycle counter: every queue mutation
// settles the span since the last one at the then-current occupancy, so
// per-cycle Sample calls disappear from the cycle path. now must outlive
// the queue and advance monotonically. Call before the first cycle;
// Sample/SampleIdle become invalid afterwards.
func (q *Queue) BindCycleCounter(now *int64) {
	if len(q.entries) > 0 {
		panic("iq: cannot bind a cycle counter with entries in flight")
	}
	q.occNow = now
	q.occSettled = *now
}

// settle integrates the occupancy statistic through the end of the cycle
// before the current one; callers invoke it before any mutation of the
// entry set, while the occupancy still reflects every fully elapsed
// cycle. No-op for unbound (legacy-sampling) queues.
//
//smt:hotpath
func (q *Queue) settle() {
	if q.occNow != nil {
		q.settleTo(*q.occNow - 1)
	}
}

// settleTo integrates the occupancy statistic through the end of cycle c
// at the current occupancy.
//
//smt:hotpath
func (q *Queue) settleTo(c int64) {
	if c > q.occSettled {
		q.occupancySum += uint64(c-q.occSettled) * uint64(len(q.entries))
		q.samples += uint64(c - q.occSettled)
		q.occSettled = c
	}
}

// Sample accumulates an occupancy observation; call once per cycle
// (legacy mode only — a bound queue integrates incrementally).
//
//smt:hotpath
func (q *Queue) Sample() {
	if q.occNow != nil {
		panic("iq: Sample on a queue bound to a cycle counter")
	}
	q.occupancySum += uint64(len(q.entries))
	q.samples++
}

// SampleIdle accumulates k occupancy observations at the current
// occupancy in one step (legacy mode only — a bound queue integrates
// skipped spans by itself).
func (q *Queue) SampleIdle(k int64) {
	if q.occNow != nil {
		panic("iq: SampleIdle on a queue bound to a cycle counter")
	}
	q.occupancySum += uint64(k) * uint64(len(q.entries))
	q.samples += uint64(k)
}

// ResetStats clears the sampling counters without touching queue
// contents, for measurement after a warmup period. A bound queue's
// integration restarts at the current cycle — the caller resets at the
// end of a cycle, whose observation belongs to the warmup period.
func (q *Queue) ResetStats() {
	q.Inserts, q.occupancySum, q.samples = 0, 0, 0
	if q.occNow != nil {
		q.occSettled = *q.occNow
	}
}

// MeanOccupancy returns the average per-cycle occupancy: the mean of the
// end-of-cycle samples in legacy mode, or the identical integral in
// bound mode (settled through the current cycle first — callers read
// results at cycle boundaries).
func (q *Queue) MeanOccupancy() float64 {
	if q.occNow != nil {
		q.settleTo(*q.occNow)
	}
	if q.samples == 0 {
		return 0
	}
	return float64(q.occupancySum) / float64(q.samples)
}

// ForEach visits all entries in arbitrary order.
//
//smt:trusted-id — scans q.entries, which holds only resident ids
func (q *Queue) ForEach(fn func(*uop.UOp)) {
	for _, id := range q.entries {
		fn(q.bank.Get(id))
	}
}

// ReadyLen returns the current ready-list length (event-wakeup mode).
func (q *Queue) ReadyLen() int { return len(q.ready) }

// CheckInvariants verifies the queue's structural contracts against the
// register file: occupancy accounting (per-class and per-thread counts
// match the entries), back-index integrity, entry-class sufficiency
// (every resident sits in an entry with enough tag comparators for its
// current non-ready source count), and — in event-wakeup mode — that
// every entry's bank not-ready counter matches a from-scratch register-
// file poll and that the incremental ready list is exactly the
// age-sorted set of entries whose counters reached zero. Returns an
// error describing the first violation.
//
//smt:trusted-id — invariant sweep over q.entries and q.ready; residency itself is what it verifies
func (q *Queue) CheckInvariants(rf *regfile.File) error {
	var used [NumClasses]int
	perThread := make([]int, len(q.perThread))
	for i, id := range q.entries {
		u := q.bank.Get(id)
		if !u.InIQ {
			return fmt.Errorf("iq: entry gseq=%d pc=%#x at slot %d has InIQ unset", u.GSeq, u.Inst.PC, i)
		}
		if int(u.IQSlot) != i {
			return fmt.Errorf("iq: entry gseq=%d back-index %d, actual slot %d", u.GSeq, u.IQSlot, i)
		}
		if u.IQClass < 0 || int(u.IQClass) >= NumClasses {
			return fmt.Errorf("iq: entry gseq=%d has comparator class %d", u.GSeq, u.IQClass)
		}
		used[u.IQClass]++
		if u.Thread < 0 || u.Thread >= len(perThread) {
			return fmt.Errorf("iq: entry gseq=%d names thread %d of %d", u.GSeq, u.Thread, len(perThread))
		}
		perThread[u.Thread]++
		polled := u.NumSrcNotReady(rf)
		if polled > int(u.IQClass) {
			return fmt.Errorf("iq: entry gseq=%d has %d non-ready sources in a %d-comparator entry",
				u.GSeq, polled, u.IQClass)
		}
		if q.event {
			counter := q.bank.NotReady[u.ID]
			if int(counter) != polled {
				return fmt.Errorf("iq: entry gseq=%d pc=%#x counter says %d non-ready, register file says %d",
					u.GSeq, u.Inst.PC, counter, polled)
			}
			if counter == 0 && !u.InReady {
				return fmt.Errorf("iq: entry gseq=%d is ready but missing from the ready list", u.GSeq)
			}
			if counter > 0 && u.InReady {
				return fmt.Errorf("iq: entry gseq=%d on the ready list with %d pending sources", u.GSeq, counter)
			}
		}
	}
	for k := 0; k < NumClasses; k++ {
		if used[k] != q.used[k] {
			return fmt.Errorf("iq: class-%d occupancy count %d, actual %d", k, q.used[k], used[k])
		}
		if used[k] > q.part[k] {
			return fmt.Errorf("iq: class-%d occupancy %d exceeds partition %d", k, used[k], q.part[k])
		}
	}
	for t := range perThread {
		if perThread[t] != q.perThread[t] {
			return fmt.Errorf("iq: thread %d occupancy count %d, actual %d", t, q.perThread[t], perThread[t])
		}
	}
	if q.event {
		for i, e := range q.ready {
			u := q.bank.Get(e.id)
			if !u.InIQ || !u.InReady {
				return fmt.Errorf("iq: ready list holds gseq=%d with InIQ=%t InReady=%t", e.seq, u.InIQ, u.InReady)
			}
			if u.GSeq != e.seq || int32(u.Thread) != e.thread {
				return fmt.Errorf("iq: ready list entry %d denormalized as (seq=%d thread=%d), uop says (seq=%d thread=%d)",
					i, e.seq, e.thread, u.GSeq, u.Thread)
			}
			if i > 0 && q.ready[i-1].seq >= e.seq {
				return fmt.Errorf("iq: ready list out of age order at %d (gseq %d >= %d)",
					i, q.ready[i-1].seq, e.seq)
			}
		}
	} else if len(q.ready) > 0 {
		return fmt.Errorf("iq: polling mode with %d ready-list entries", len(q.ready))
	}
	return nil
}
