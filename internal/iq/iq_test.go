package iq

import (
	"testing"

	"smtsim/internal/isa"
	"smtsim/internal/regfile"
	"smtsim/internal/uop"
)

// env bundles a uop bank and register file with helpers for building
// queue entries.
type env struct {
	bank *uop.Bank
	rf   *regfile.File
	next int32
	seq  uint64
}

func newEnv() *env { return &env{bank: uop.NewBank(64), rf: regfile.New(64, 64)} }

// mkUOp builds a bank-backed UOp with n non-ready sources (0..2) for
// thread t.
func (e *env) mkUOp(t, nonReady int) *uop.UOp {
	u := e.bank.Get(e.next)
	e.next++
	e.seq++
	u.Thread = t
	u.GSeq = e.seq
	u.Srcs[0], u.Srcs[1] = regfile.NoPhys, regfile.NoPhys
	for i := 0; i < nonReady; i++ {
		u.Srcs[i] = e.rf.Alloc(isa.IntReg) // allocated, not ready
	}
	for i := nonReady; i < 2; i++ {
		p := e.rf.Alloc(isa.IntReg)
		e.rf.SetReady(p)
		u.Srcs[i] = p
	}
	return u
}

// uops resolves a ready-id slice back to records for assertions.
func (e *env) uops(ids []int32) []*uop.UOp {
	us := make([]*uop.UOp, len(ids))
	for i, id := range ids {
		us[i] = e.bank.Get(id)
	}
	return us
}

func TestInsertRemoveOccupancy(t *testing.T) {
	e := newEnv()
	q := New(e.bank, 4, 2, 2)
	u := e.mkUOp(1, 1)
	q.Insert(u, e.rf)
	if q.Len() != 1 || q.Free() != 3 || !u.InIQ {
		t.Fatalf("occupancy wrong after insert: len=%d free=%d", q.Len(), q.Free())
	}
	if q.ThreadCount(1) != 1 || q.ThreadCount(0) != 0 {
		t.Error("per-thread accounting wrong")
	}
	q.Remove(u)
	if q.Len() != 0 || u.InIQ {
		t.Error("remove did not clear state")
	}
}

func TestInsertFullPanics(t *testing.T) {
	e := newEnv()
	q := New(e.bank, 1, 2, 1)
	q.Insert(e.mkUOp(0, 0), e.rf)
	defer func() {
		if recover() == nil {
			t.Error("insert into full queue did not panic")
		}
	}()
	q.Insert(e.mkUOp(0, 0), e.rf)
}

func TestComparatorInvariantEnforced(t *testing.T) {
	e := newEnv()
	q := New(e.bank, 4, 1, 1) // one comparator per entry (2OP queue)
	q.Insert(e.mkUOp(0, 1), e.rf)
	defer func() {
		if recover() == nil {
			t.Error("two-non-ready insert into 1-comparator queue did not panic")
		}
	}()
	q.Insert(e.mkUOp(0, 2), e.rf)
}

func TestReadyOldestFirst(t *testing.T) {
	e := newEnv()
	q := New(e.bank, 8, 2, 1)
	ready1 := e.mkUOp(0, 0)
	waiting := e.mkUOp(0, 1)
	ready2 := e.mkUOp(0, 0)
	// Insert out of age order to exercise the sort.
	q.Insert(ready2, e.rf)
	q.Insert(waiting, e.rf)
	q.Insert(ready1, e.rf)

	got := e.uops(q.ReadyOldestFirst(e.rf, nil))
	if len(got) != 2 || got[0] != ready1 || got[1] != ready2 {
		t.Fatalf("ready set wrong: %v", got)
	}

	// Wake the waiter: it must appear, ordered by age.
	e.rf.SetReady(waiting.Srcs[0])
	got = e.uops(q.ReadyOldestFirst(e.rf, nil))
	if len(got) != 3 || got[1] != waiting {
		t.Fatalf("woken instruction misplaced: %v", got)
	}
}

func TestDrainThread(t *testing.T) {
	e := newEnv()
	q := New(e.bank, 8, 2, 2)
	a0 := e.mkUOp(0, 0)
	b0 := e.mkUOp(1, 0)
	a1 := e.mkUOp(0, 1)
	for _, u := range []*uop.UOp{a0, b0, a1} {
		q.Insert(u, e.rf)
	}
	drained := q.DrainThread(0)
	if len(drained) != 2 {
		t.Fatalf("drained %d entries, want 2", len(drained))
	}
	for _, u := range drained {
		if u.Thread != 0 || u.InIQ {
			t.Errorf("drained entry %+v in bad state", u)
		}
	}
	if q.Len() != 1 || q.ThreadCount(0) != 0 || q.ThreadCount(1) != 1 {
		t.Error("thread-1 entry disturbed by drain")
	}
}

func TestRemoveAbsentPanics(t *testing.T) {
	e := newEnv()
	q := New(e.bank, 4, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("remove of absent entry did not panic")
		}
	}()
	q.Remove(e.mkUOp(0, 0))
}

func TestOccupancySampling(t *testing.T) {
	e := newEnv()
	q := New(e.bank, 4, 2, 1)
	q.Sample() // 0
	q.Insert(e.mkUOp(0, 0), e.rf)
	q.Sample() // 1
	q.Insert(e.mkUOp(0, 0), e.rf)
	q.Sample() // 2
	if got := q.MeanOccupancy(); got != 1.0 {
		t.Errorf("mean occupancy = %v, want 1.0", got)
	}
	if q.Inserts != 2 {
		t.Errorf("inserts = %d, want 2", q.Inserts)
	}
}

func TestForEach(t *testing.T) {
	e := newEnv()
	q := New(e.bank, 4, 2, 1)
	q.Insert(e.mkUOp(0, 0), e.rf)
	q.Insert(e.mkUOp(0, 1), e.rf)
	n := 0
	q.ForEach(func(u *uop.UOp) { n++ })
	if n != 2 {
		t.Errorf("ForEach visited %d, want 2", n)
	}
}

func TestThreadRotateSelect(t *testing.T) {
	e := newEnv()
	q := New(e.bank, 8, 2, 2)
	a0 := e.mkUOp(0, 0) // oldest overall
	b0 := e.mkUOp(1, 0)
	a1 := e.mkUOp(0, 0)
	for _, u := range []*uop.UOp{a0, b0, a1} {
		q.Insert(u, e.rf)
	}
	// tick 0: thread 0 first (age order within), then thread 1.
	got := e.uops(q.ReadyOrdered(e.rf, nil, ThreadRotate, 0))
	if got[0] != a0 || got[1] != a1 || got[2] != b0 {
		t.Errorf("tick 0 order wrong: %v", got)
	}
	// tick 1: thread 1 first.
	got = e.uops(q.ReadyOrdered(e.rf, nil, ThreadRotate, 1))
	if got[0] != b0 || got[1] != a0 {
		t.Errorf("tick 1 order wrong: %v", got)
	}
}

func TestSelectPolicyNames(t *testing.T) {
	if OldestFirst.String() != "oldest-first" || ThreadRotate.String() != "thread-rotate" {
		t.Error("select policy names wrong")
	}
}
