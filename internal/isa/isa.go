// Package isa defines the instruction model used throughout the simulator:
// operation classes, architectural registers, and dynamic instruction
// records as produced by the synthetic workload generator and consumed by
// the pipeline.
//
// The model follows the paper's assumption of an ISA with at most two
// source register operands and at most one destination register operand
// per instruction (Alpha-like), which is what makes the 2OP_BLOCK
// one-comparator issue-queue entry meaningful.
package isa

import "fmt"

// OpClass enumerates the operation classes distinguished by the simulated
// machine. Each class maps to a functional-unit pool and a latency
// (see Table 1 of the paper).
type OpClass uint8

const (
	// Nop performs no computation and writes no register.
	Nop OpClass = iota
	// IntAlu is a single-cycle integer operation (add, logical, shift, compare).
	IntAlu
	// IntMult is a pipelined 3-cycle integer multiply.
	IntMult
	// IntDiv is an unpipelined 20-cycle integer divide.
	IntDiv
	// Load reads memory through the L1 data cache.
	Load
	// Store writes memory; the value retires to the cache at commit.
	Store
	// FpAdd is a pipelined 2-cycle floating-point add/subtract/convert.
	FpAdd
	// FpMult is a pipelined 4-cycle floating-point multiply.
	FpMult
	// FpDiv is an unpipelined 12-cycle floating-point divide.
	FpDiv
	// FpSqrt is an unpipelined 24-cycle floating-point square root.
	FpSqrt
	// Branch is a conditional or unconditional control transfer resolved
	// on an integer ALU.
	Branch
	// NumOpClasses is the number of distinct operation classes.
	NumOpClasses = iota
)

var opClassNames = [NumOpClasses]string{
	"nop", "int-alu", "int-mult", "int-div", "load", "store",
	"fp-add", "fp-mult", "fp-div", "fp-sqrt", "branch",
}

// String returns the lower-case mnemonic name of the class.
func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return fmt.Sprintf("opclass(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c OpClass) IsMem() bool { return c == Load || c == Store }

// IsFloat reports whether the class reads/writes floating-point registers.
func (c OpClass) IsFloat() bool {
	switch c {
	case FpAdd, FpMult, FpDiv, FpSqrt:
		return true
	}
	return false
}

// RegClass identifies one of the two architectural/physical register files.
type RegClass uint8

const (
	// IntReg selects the integer register file.
	IntReg RegClass = iota
	// FpReg selects the floating-point register file.
	FpReg
	// NumRegClasses is the number of register classes.
	NumRegClasses = iota
)

// String returns "int" or "fp".
func (rc RegClass) String() string {
	if rc == IntReg {
		return "int"
	}
	return "fp"
}

// NumArchRegs is the number of architectural registers per class per
// thread (Alpha has 32 integer and 32 floating-point registers).
const NumArchRegs = 32

// InvalidReg marks an absent register operand.
const InvalidReg int8 = -1

// Reg is an architectural register reference: a class and an index in
// [0, NumArchRegs). A Reg with Index == InvalidReg denotes "no operand".
type Reg struct {
	Class RegClass
	Index int8
}

// NoReg is the absent-operand sentinel.
var NoReg = Reg{Class: IntReg, Index: InvalidReg}

// Valid reports whether the register reference names a real register.
func (r Reg) Valid() bool { return r.Index >= 0 }

// String formats the register as e.g. "r7" or "f12", or "-" if absent.
func (r Reg) String() string {
	if !r.Valid() {
		return "-"
	}
	if r.Class == IntReg {
		return fmt.Sprintf("r%d", r.Index)
	}
	return fmt.Sprintf("f%d", r.Index)
}

// Int returns an integer register reference.
func Int(i int) Reg { return Reg{Class: IntReg, Index: int8(i)} }

// Fp returns a floating-point register reference.
func Fp(i int) Reg { return Reg{Class: FpReg, Index: int8(i)} }

// MaxSources is the maximum number of register source operands of any
// instruction, fixed at two by the modeled ISA.
const MaxSources = 2

// Inst is one dynamic instruction as it leaves the workload generator.
// The pipeline wraps it in its own micro-op bookkeeping structure; Inst
// itself stays immutable once generated.
type Inst struct {
	// PC is the (synthetic) address of the instruction. Consecutive
	// static instructions are 4 bytes apart, as on Alpha.
	PC uint64

	// Class is the operation class.
	Class OpClass

	// Src holds up to two source register operands; absent operands are
	// NoReg. For stores, Src[0] is the data register and Src[1] (if
	// valid) feeds the address; for loads Src[0] feeds the address.
	Src [MaxSources]Reg

	// Dest is the destination register, or NoReg (stores, branches, nops).
	Dest Reg

	// Addr is the effective data address for loads and stores.
	Addr uint64

	// Taken reports the branch outcome for Class == Branch.
	Taken bool

	// Target is the branch target address for Class == Branch.
	Target uint64

	// Seq is the per-thread program-order sequence number, starting at 0.
	Seq uint64
}

// NumSources returns the number of valid source operands.
func (in *Inst) NumSources() int {
	n := 0
	for _, s := range in.Src {
		if s.Valid() {
			n++
		}
	}
	return n
}

// HasDest reports whether the instruction writes a register.
func (in *Inst) HasDest() bool { return in.Dest.Valid() }

// String renders a compact human-readable form, for debugging and traces.
func (in *Inst) String() string {
	switch in.Class {
	case Branch:
		dir := "nt"
		if in.Taken {
			dir = "t"
		}
		return fmt.Sprintf("%#x: branch %s,%s -> %#x (%s)", in.PC, in.Src[0], in.Src[1], in.Target, dir)
	case Load:
		return fmt.Sprintf("%#x: load %s <- [%#x](%s)", in.PC, in.Dest, in.Addr, in.Src[0])
	case Store:
		return fmt.Sprintf("%#x: store %s -> [%#x](%s)", in.PC, in.Src[0], in.Addr, in.Src[1])
	default:
		return fmt.Sprintf("%#x: %s %s <- %s,%s", in.PC, in.Class, in.Dest, in.Src[0], in.Src[1])
	}
}

// Latency is the execution latency in cycles of each operation class
// (Table 1: "Function Units and Lat (total/issue)"). Loads use the cache
// hierarchy on top of their 2-cycle pipeline access (L1 hit time is
// folded into the 2-cycle latency, matching the table's Load/Store 2/1).
var Latency = [NumOpClasses]int{
	Nop:     1,
	IntAlu:  1,
	IntMult: 3,
	IntDiv:  20,
	Load:    2,
	Store:   1,
	FpAdd:   2,
	FpMult:  4,
	FpDiv:   12,
	FpSqrt:  24,
	Branch:  1,
}

// IssueInterval is the initiation interval of each class: 1 for fully
// pipelined units, equal to the latency for unpipelined ones (Table 1
// lists Int Div 20/19, FP Div 12/12, FP Sqrt 24/24).
var IssueInterval = [NumOpClasses]int{
	Nop:     1,
	IntAlu:  1,
	IntMult: 1,
	IntDiv:  19,
	Load:    1,
	Store:   1,
	FpAdd:   1,
	FpMult:  1,
	FpDiv:   12,
	FpSqrt:  24,
	Branch:  1,
}
