package isa

import "testing"

func TestOpClassString(t *testing.T) {
	cases := map[OpClass]string{
		Nop: "nop", IntAlu: "int-alu", IntMult: "int-mult", IntDiv: "int-div",
		Load: "load", Store: "store", FpAdd: "fp-add", FpMult: "fp-mult",
		FpDiv: "fp-div", FpSqrt: "fp-sqrt", Branch: "branch",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("OpClass(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := OpClass(200).String(); got != "opclass(200)" {
		t.Errorf("unknown class formatted as %q", got)
	}
}

func TestOpClassPredicates(t *testing.T) {
	for _, c := range []OpClass{Load, Store} {
		if !c.IsMem() {
			t.Errorf("%v.IsMem() = false", c)
		}
	}
	for _, c := range []OpClass{Nop, IntAlu, IntMult, IntDiv, FpAdd, FpMult, FpDiv, FpSqrt, Branch} {
		if c.IsMem() {
			t.Errorf("%v.IsMem() = true", c)
		}
	}
	for _, c := range []OpClass{FpAdd, FpMult, FpDiv, FpSqrt} {
		if !c.IsFloat() {
			t.Errorf("%v.IsFloat() = false", c)
		}
	}
	for _, c := range []OpClass{IntAlu, Load, Store, Branch} {
		if c.IsFloat() {
			t.Errorf("%v.IsFloat() = true", c)
		}
	}
}

func TestRegHelpers(t *testing.T) {
	r := Int(7)
	if !r.Valid() || r.Class != IntReg || r.Index != 7 {
		t.Errorf("Int(7) = %+v", r)
	}
	if r.String() != "r7" {
		t.Errorf("Int(7).String() = %q", r.String())
	}
	f := Fp(12)
	if f.String() != "f12" {
		t.Errorf("Fp(12).String() = %q", f.String())
	}
	if NoReg.Valid() {
		t.Error("NoReg reported valid")
	}
	if NoReg.String() != "-" {
		t.Errorf("NoReg.String() = %q", NoReg.String())
	}
}

func TestNumSourcesAndDest(t *testing.T) {
	in := Inst{Class: IntAlu, Src: [MaxSources]Reg{Int(1), Int(2)}, Dest: Int(3)}
	if in.NumSources() != 2 || !in.HasDest() {
		t.Errorf("two-source inst misreported: %d sources, dest=%v", in.NumSources(), in.HasDest())
	}
	in = Inst{Class: Branch, Src: [MaxSources]Reg{Int(1), NoReg}, Dest: NoReg}
	if in.NumSources() != 1 || in.HasDest() {
		t.Errorf("branch misreported: %d sources, dest=%v", in.NumSources(), in.HasDest())
	}
}

func TestLatencyTables(t *testing.T) {
	// Table 1 latencies must be encoded exactly.
	want := map[OpClass]int{
		IntAlu: 1, IntMult: 3, IntDiv: 20, Load: 2, Store: 1,
		FpAdd: 2, FpMult: 4, FpDiv: 12, FpSqrt: 24, Branch: 1,
	}
	for c, lat := range want {
		if Latency[c] != lat {
			t.Errorf("Latency[%v] = %d, want %d", c, Latency[c], lat)
		}
	}
	// Unpipelined units occupy their unit for (nearly) the full latency.
	if IssueInterval[IntDiv] != 19 || IssueInterval[FpDiv] != 12 || IssueInterval[FpSqrt] != 24 {
		t.Errorf("unpipelined issue intervals wrong: %d %d %d",
			IssueInterval[IntDiv], IssueInterval[FpDiv], IssueInterval[FpSqrt])
	}
	// Pipelined classes initiate every cycle.
	for _, c := range []OpClass{IntAlu, IntMult, Load, Store, FpAdd, FpMult, Branch} {
		if IssueInterval[c] != 1 {
			t.Errorf("IssueInterval[%v] = %d, want 1", c, IssueInterval[c])
		}
	}
	for c := OpClass(0); c < NumOpClasses; c++ {
		if Latency[c] < 1 {
			t.Errorf("Latency[%v] = %d < 1", c, Latency[c])
		}
		if IssueInterval[c] < 1 || IssueInterval[c] > Latency[c] {
			t.Errorf("IssueInterval[%v] = %d outside [1, %d]", c, IssueInterval[c], Latency[c])
		}
	}
}

func TestInstString(t *testing.T) {
	br := Inst{PC: 0x1000, Class: Branch, Src: [MaxSources]Reg{Int(1), NoReg}, Taken: true, Target: 0x2000}
	if got := br.String(); got == "" {
		t.Error("branch String empty")
	}
	ld := Inst{PC: 0x1004, Class: Load, Src: [MaxSources]Reg{Int(2), NoReg}, Dest: Int(3), Addr: 0x8000}
	if got := ld.String(); got == "" {
		t.Error("load String empty")
	}
	st := Inst{PC: 0x1008, Class: Store, Src: [MaxSources]Reg{Int(4), Int(5)}, Addr: 0x8008}
	if got := st.String(); got == "" {
		t.Error("store String empty")
	}
	alu := Inst{PC: 0x100c, Class: IntAlu, Src: [MaxSources]Reg{Int(1), Int(2)}, Dest: Int(6)}
	if got := alu.String(); got == "" {
		t.Error("alu String empty")
	}
}
