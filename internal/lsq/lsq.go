// Package lsq implements the per-thread load/store queue (Table 1: 48
// entries): program-order tracking of memory operations, store-to-load
// forwarding, and same-address ordering.
//
// The simulator is trace-driven, so effective addresses are known at
// rename; disambiguation is therefore exact: a load may bypass older
// stores to different addresses, must wait for an older same-address
// store whose data is not yet produced, and forwards from an older
// same-address store whose data is ready.
package lsq

import "smtsim/internal/uop"

// LSQ is one thread's load/store queue, a ring buffer in program order.
type LSQ struct {
	buf  []*uop.UOp
	head int
	size int
}

// New builds a queue with the given capacity.
func New(capacity int) *LSQ {
	if capacity <= 0 {
		panic("lsq: capacity must be positive")
	}
	return &LSQ{buf: make([]*uop.UOp, capacity)}
}

// Cap returns the capacity.
func (q *LSQ) Cap() int { return len(q.buf) }

// Len returns the number of occupied entries.
func (q *LSQ) Len() int { return q.size }

// CanAlloc reports whether n more entries fit.
//
//smt:hotpath
func (q *LSQ) CanAlloc(n int) bool { return q.size+n <= len(q.buf) }

// Alloc appends a memory operation in program order at rename time.
//
//smt:hotpath
func (q *LSQ) Alloc(u *uop.UOp) {
	if q.size == len(q.buf) {
		panic("lsq: overflow")
	}
	q.buf[(q.head+q.size)%len(q.buf)] = u
	q.size++
}

// Release removes the oldest entry, which must be u (memory operations
// commit in program order). Used at commit and during squash.
//
//smt:hotpath
func (q *LSQ) Release(u *uop.UOp) {
	if q.size == 0 || q.buf[q.head] != u {
		panic("lsq: release out of order")
	}
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.size--
}

// DrainYoungerThan removes every memory operation younger than gseq from
// the tail (selective-squash path). Entries at or below gseq stay.
func (q *LSQ) DrainYoungerThan(gseq uint64) {
	for q.size > 0 {
		i := (q.head + q.size - 1) % len(q.buf)
		if q.buf[i].GSeq <= gseq {
			return
		}
		q.buf[i] = nil
		q.size--
	}
}

// ForEach visits occupied entries oldest-first (invariant checks).
func (q *LSQ) ForEach(fn func(*uop.UOp)) {
	for i := 0; i < q.size; i++ {
		fn(q.buf[(q.head+i)%len(q.buf)])
	}
}

// DrainAll empties the queue (watchdog flush path).
func (q *LSQ) DrainAll() {
	for q.size > 0 {
		q.buf[q.head] = nil
		q.head = (q.head + 1) % len(q.buf)
		q.size--
	}
}

// line8 collapses an address to its naturally aligned 8-byte granule, the
// granularity of conflict detection.
//
//smt:hotpath
func line8(addr uint64) uint64 { return addr &^ 7 }

// LoadDisposition is the verdict of the disambiguation check for a load
// that is a candidate for issue.
type LoadDisposition uint8

const (
	// LoadGoesToCache means no older same-address store is in flight;
	// the load accesses the data cache.
	LoadGoesToCache LoadDisposition = iota
	// LoadForwards means the youngest older same-address store has its
	// data ready; the value is forwarded at L1-hit latency.
	LoadForwards
	// LoadBlocked means an older same-address store's data is not yet
	// produced; the load cannot issue this cycle.
	LoadBlocked
)

// CheckLoad classifies a load against the older stores in the queue.
// Scans youngest-to-oldest among entries older than the load so the
// nearest matching store wins (correct forwarding source).
//
//smt:hotpath
func (q *LSQ) CheckLoad(ld *uop.UOp) LoadDisposition {
	target := line8(ld.Inst.Addr)
	for i := q.size - 1; i >= 0; i-- {
		u := q.buf[(q.head+i)%len(q.buf)]
		if !u.Older(ld) || !u.IsStore() {
			continue
		}
		if line8(u.Inst.Addr) != target {
			continue
		}
		if u.Completed {
			return LoadForwards
		}
		return LoadBlocked
	}
	return LoadGoesToCache
}

// OldestPendingStoreAge returns the global sequence number of the oldest
// store that has not completed, and whether one exists (for tests and
// invariant checks).
func (q *LSQ) OldestPendingStoreAge() (uint64, bool) {
	for i := 0; i < q.size; i++ {
		u := q.buf[(q.head+i)%len(q.buf)]
		if u.IsStore() && !u.Completed {
			return u.GSeq, true
		}
	}
	return 0, false
}
