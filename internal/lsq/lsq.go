// Package lsq implements the per-thread load/store queue (Table 1: 48
// entries): program-order tracking of memory operations, store-to-load
// forwarding, and same-address ordering.
//
// The simulator is trace-driven, so effective addresses are known at
// rename; disambiguation is therefore exact: a load may bypass older
// stores to different addresses, must wait for an older same-address
// store whose data is not yet produced, and forwards from an older
// same-address store whose data is ready.
//
// The queue is structure-of-arrays: per slot it stores the uop's dense
// id and a packed tag (the 8-byte-aligned address with the store kind in
// bit 0, which address alignment leaves free). The disambiguation scan
// is then a single-array compare against `line8(addr)|1` — an entry
// matches only if it is a store to the same granule — touching the full
// uop record just for the rare matching store's Completed bit.
package lsq

import "smtsim/internal/uop"

// LSQ is one thread's load/store queue, a ring buffer in program order.
type LSQ struct {
	bank   *uop.Bank
	id     []int32
	tag    []uint64 // line8(addr) | storeBit
	head   int
	size   int
	stores int // store entries in the queue (completed or not)
}

const storeBit = 1

// New builds a queue of the given capacity over the core's uop bank.
func New(bank *uop.Bank, capacity int) *LSQ {
	if capacity <= 0 {
		panic("lsq: capacity must be positive")
	}
	return &LSQ{
		bank: bank,
		id:   make([]int32, capacity),
		tag:  make([]uint64, capacity),
	}
}

// Cap returns the capacity.
func (q *LSQ) Cap() int { return len(q.id) }

// Len returns the number of occupied entries.
func (q *LSQ) Len() int { return q.size }

// CanAlloc reports whether n more entries fit.
//
//smt:hotpath
func (q *LSQ) CanAlloc(n int) bool { return q.size+n <= len(q.id) }

// Alloc appends a memory operation in program order at rename time and
// records its ring slot in u.LSQSlot (so CheckLoad can scan only the
// strictly older entries).
//
//smt:hotpath
func (q *LSQ) Alloc(u *uop.UOp) {
	if q.size == len(q.id) {
		panic("lsq: overflow")
	}
	slot := q.head + q.size
	if slot >= len(q.id) {
		slot -= len(q.id)
	}
	tag := line8(u.Inst.Addr)
	if u.IsStore() {
		tag |= storeBit
		q.stores++
	}
	q.id[slot] = u.ID
	q.tag[slot] = tag
	u.LSQSlot = int32(slot)
	q.size++
}

// Release removes the oldest entry, which must be u (memory operations
// commit in program order). Used at commit and during squash.
//
//smt:hotpath
func (q *LSQ) Release(u *uop.UOp) {
	if q.size == 0 || q.id[q.head] != u.ID {
		panic("lsq: release out of order")
	}
	if q.tag[q.head]&storeBit != 0 {
		q.stores--
	}
	u.LSQSlot = -1
	q.head++
	if q.head == len(q.id) {
		q.head = 0
	}
	q.size--
}

// DrainYoungerThan removes every memory operation younger than gseq from
// the tail (selective-squash path). Entries at or below gseq stay.
func (q *LSQ) DrainYoungerThan(gseq uint64) {
	for q.size > 0 {
		slot := q.head + q.size - 1
		if slot >= len(q.id) {
			slot -= len(q.id)
		}
		u := q.bank.Get(q.id[slot])
		if u.GSeq <= gseq {
			return
		}
		if q.tag[slot]&storeBit != 0 {
			q.stores--
		}
		u.LSQSlot = -1
		q.size--
	}
}

// ForEach visits occupied entries oldest-first (invariant checks).
//
//smt:trusted-id — ring identity: every visited slot lies in [head, head+size), occupied by construction
func (q *LSQ) ForEach(fn func(*uop.UOp)) {
	for i := 0; i < q.size; i++ {
		slot := q.head + i
		if slot >= len(q.id) {
			slot -= len(q.id)
		}
		fn(q.bank.Get(q.id[slot]))
	}
}

// DrainAll empties the queue (watchdog flush path).
//
//smt:trusted-id — ring identity: q.id[head] is occupied whenever size > 0
func (q *LSQ) DrainAll() {
	for q.size > 0 {
		q.bank.Get(q.id[q.head]).LSQSlot = -1
		q.head++
		if q.head == len(q.id) {
			q.head = 0
		}
		q.size--
	}
	q.stores = 0
}

// line8 collapses an address to its naturally aligned 8-byte granule, the
// granularity of conflict detection.
//
//smt:hotpath
func line8(addr uint64) uint64 { return addr &^ 7 }

// LoadDisposition is the verdict of the disambiguation check for a load
// that is a candidate for issue.
type LoadDisposition uint8

const (
	// LoadGoesToCache means no older same-address store is in flight;
	// the load accesses the data cache.
	LoadGoesToCache LoadDisposition = iota
	// LoadForwards means the youngest older same-address store has its
	// data ready; the value is forwarded at L1-hit latency.
	LoadForwards
	// LoadBlocked means an older same-address store's data is not yet
	// produced; the load cannot issue this cycle.
	LoadBlocked
)

// CheckLoad classifies a load (which must occupy an entry) against the
// older stores in the queue. Scans youngest-to-oldest among the entries
// ahead of the load's own slot so the nearest matching store wins
// (correct forwarding source).
//
//smt:hotpath
//smt:trusted-id — ring identity: the scan stays below the load's own occupied slot, so every id read is resident
func (q *LSQ) CheckLoad(ld *uop.UOp) LoadDisposition {
	if q.stores == 0 {
		return LoadGoesToCache
	}
	target := line8(ld.Inst.Addr) | storeBit
	depth := int(ld.LSQSlot) - q.head
	if depth < 0 {
		depth += len(q.id)
	}
	for i := depth - 1; i >= 0; i-- {
		slot := q.head + i
		if slot >= len(q.id) {
			slot -= len(q.id)
		}
		if q.tag[slot] != target {
			continue
		}
		if q.bank.Get(q.id[slot]).Completed {
			return LoadForwards
		}
		return LoadBlocked
	}
	return LoadGoesToCache
}

// OldestPendingStoreAge returns the global sequence number of the oldest
// store that has not completed, and whether one exists (for tests and
// invariant checks).
func (q *LSQ) OldestPendingStoreAge() (uint64, bool) {
	for i := 0; i < q.size; i++ {
		slot := q.head + i
		if slot >= len(q.id) {
			slot -= len(q.id)
		}
		if q.tag[slot]&storeBit == 0 {
			continue
		}
		if u := q.bank.Get(q.id[slot]); !u.Completed {
			return u.GSeq, true
		}
	}
	return 0, false
}
