package lsq

import (
	"testing"

	"smtsim/internal/isa"
	"smtsim/internal/uop"
)

// fixture hands out bank-backed memory uops, standing in for the rename
// stage's ROB allocation.
type fixture struct {
	bank *uop.Bank
	next int32
}

func newFixture(n int) *fixture { return &fixture{bank: uop.NewBank(n)} }

func (f *fixture) memOp(class isa.OpClass, seq uint64, addr uint64) *uop.UOp {
	u := f.bank.Get(f.next)
	f.next++
	u.Inst = isa.Inst{Class: class, Addr: addr}
	u.GSeq = seq
	return u
}

func TestAllocReleaseDiscipline(t *testing.T) {
	f := newFixture(8)
	q := New(f.bank, 4)
	a := f.memOp(isa.Store, 1, 0x100)
	b := f.memOp(isa.Load, 2, 0x200)
	q.Alloc(a)
	q.Alloc(b)
	if q.Len() != 2 || !q.CanAlloc(2) || q.CanAlloc(3) {
		t.Fatalf("occupancy accounting wrong: len=%d", q.Len())
	}
	if a.LSQSlot < 0 || b.LSQSlot < 0 {
		t.Error("Alloc did not record LSQ slots")
	}
	q.Release(a)
	q.Release(b)
	if q.Len() != 0 {
		t.Error("queue not empty")
	}
	if a.LSQSlot != -1 || b.LSQSlot != -1 {
		t.Error("Release did not clear LSQ slots")
	}
}

func TestReleaseOutOfOrderPanics(t *testing.T) {
	f := newFixture(8)
	q := New(f.bank, 4)
	a := f.memOp(isa.Store, 1, 0x100)
	b := f.memOp(isa.Load, 2, 0x200)
	q.Alloc(a)
	q.Alloc(b)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order release did not panic")
		}
	}()
	q.Release(b)
}

func TestLoadBlockedByPendingStore(t *testing.T) {
	f := newFixture(8)
	q := New(f.bank, 8)
	st := f.memOp(isa.Store, 1, 0x1000)
	ld := f.memOp(isa.Load, 2, 0x1000)
	q.Alloc(st)
	q.Alloc(ld)
	if got := q.CheckLoad(ld); got != LoadBlocked {
		t.Errorf("load vs pending same-address store = %v, want LoadBlocked", got)
	}
	st.Completed = true
	if got := q.CheckLoad(ld); got != LoadForwards {
		t.Errorf("load vs completed same-address store = %v, want LoadForwards", got)
	}
}

func TestLoadBypassesDifferentAddress(t *testing.T) {
	f := newFixture(8)
	q := New(f.bank, 8)
	st := f.memOp(isa.Store, 1, 0x1000)
	ld := f.memOp(isa.Load, 2, 0x2000)
	q.Alloc(st)
	q.Alloc(ld)
	if got := q.CheckLoad(ld); got != LoadGoesToCache {
		t.Errorf("different-address load = %v, want LoadGoesToCache", got)
	}
}

func TestSameGranuleConflicts(t *testing.T) {
	f := newFixture(8)
	q := New(f.bank, 8)
	st := f.memOp(isa.Store, 1, 0x1000)
	ld := f.memOp(isa.Load, 2, 0x1004) // same 8-byte granule
	q.Alloc(st)
	q.Alloc(ld)
	if got := q.CheckLoad(ld); got != LoadBlocked {
		t.Errorf("same-granule load = %v, want LoadBlocked", got)
	}
}

func TestYoungestMatchingStoreWins(t *testing.T) {
	f := newFixture(8)
	q := New(f.bank, 8)
	s1 := f.memOp(isa.Store, 1, 0x1000)
	s2 := f.memOp(isa.Store, 2, 0x1000)
	ld := f.memOp(isa.Load, 3, 0x1000)
	q.Alloc(s1)
	q.Alloc(s2)
	q.Alloc(ld)
	s1.Completed = true
	// The nearest older store (s2) is pending, so the load must wait
	// even though a still older store has its data.
	if got := q.CheckLoad(ld); got != LoadBlocked {
		t.Errorf("nearest-store rule broken: %v", got)
	}
	s2.Completed = true
	if got := q.CheckLoad(ld); got != LoadForwards {
		t.Errorf("forwarding after both complete: %v", got)
	}
}

func TestYoungerStoresIgnored(t *testing.T) {
	f := newFixture(8)
	q := New(f.bank, 8)
	ld := f.memOp(isa.Load, 1, 0x1000)
	st := f.memOp(isa.Store, 2, 0x1000)
	q.Alloc(ld)
	q.Alloc(st)
	if got := q.CheckLoad(ld); got != LoadGoesToCache {
		t.Errorf("younger store affected older load: %v", got)
	}
}

func TestOldestPendingStoreAge(t *testing.T) {
	f := newFixture(8)
	q := New(f.bank, 8)
	if _, ok := q.OldestPendingStoreAge(); ok {
		t.Error("empty queue reported a pending store")
	}
	s1 := f.memOp(isa.Store, 5, 0x1000)
	s2 := f.memOp(isa.Store, 9, 0x2000)
	q.Alloc(s1)
	q.Alloc(s2)
	if age, ok := q.OldestPendingStoreAge(); !ok || age != 5 {
		t.Errorf("oldest pending = %d,%v", age, ok)
	}
	s1.Completed = true
	if age, ok := q.OldestPendingStoreAge(); !ok || age != 9 {
		t.Errorf("oldest pending after completion = %d,%v", age, ok)
	}
}

func TestDrainAll(t *testing.T) {
	f := newFixture(8)
	q := New(f.bank, 4)
	q.Alloc(f.memOp(isa.Store, 1, 0x100))
	q.Alloc(f.memOp(isa.Load, 2, 0x200))
	q.DrainAll()
	if q.Len() != 0 {
		t.Error("DrainAll left entries")
	}
	// Queue must be reusable after a drain.
	q.Alloc(f.memOp(isa.Load, 3, 0x300))
	if q.Len() != 1 {
		t.Error("queue unusable after drain")
	}
}

func TestWrapAroundRing(t *testing.T) {
	f := newFixture(8)
	q := New(f.bank, 3)
	ops := []*uop.UOp{
		f.memOp(isa.Store, 1, 0x100), f.memOp(isa.Store, 2, 0x200),
		f.memOp(isa.Store, 3, 0x300), f.memOp(isa.Store, 4, 0x400),
	}
	q.Alloc(ops[0])
	q.Alloc(ops[1])
	q.Release(ops[0])
	q.Alloc(ops[2])
	q.Release(ops[1])
	q.Alloc(ops[3]) // wraps
	ld := f.memOp(isa.Load, 6, 0x400)
	q.Alloc(ld)
	if got := q.CheckLoad(ld); got != LoadBlocked {
		t.Errorf("wrapped store not seen by disambiguation: %v", got)
	}
}
