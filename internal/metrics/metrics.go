// Package metrics defines the result records produced by a simulation and
// the aggregate statistics the paper reports: throughput IPC, the
// harmonic-mean-of-weighted-IPCs fairness metric (Luo et al. [8]),
// dispatch-stall fractions, and issue-queue residency.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// ThreadResult summarizes one hardware thread of a run.
type ThreadResult struct {
	// Benchmark is the workload name bound to the thread.
	Benchmark string
	// Committed is the number of instructions the thread committed.
	Committed uint64
	// IPC is the thread's committed instructions per total machine cycle.
	IPC float64
	// MispredictRate is the thread's branch misprediction rate.
	MispredictRate float64
	// NDIBlockCycles counts cycles the thread's oldest undispatched
	// instruction was a two-non-ready-source NDI.
	NDIBlockCycles uint64
}

// Results summarizes one simulation run.
type Results struct {
	// Cycles is the simulated cycle count.
	Cycles int64
	// Committed is the total instructions committed across threads.
	Committed uint64
	// IPC is the overall throughput (Committed / Cycles).
	IPC float64
	// Threads holds the per-thread breakdowns.
	Threads []ThreadResult

	// DispatchStallAllNDI is the fraction of work cycles in which every
	// thread with buffered instructions was blocked by the 2OP condition
	// and nothing dispatched (the paper's Section 3 statistic).
	DispatchStallAllNDI float64
	// DispatchStallNDIWeak is the looser variant: zero-dispatch cycles
	// where every thread that had work was NDI-blocked (upstream-starved
	// threads ignored).
	DispatchStallNDIWeak float64
	// DispatchStallAllAny is the fraction of work cycles with zero
	// dispatches for any reason.
	DispatchStallAllAny float64

	// IQResidency is the mean number of cycles an instruction spent in
	// the issue queue between dispatch and issue (paper: 21 cycles for
	// the traditional 64-entry scheduler vs 15 under OOOD, 2 threads).
	IQResidency float64
	// IQOccupancy is the mean number of occupied IQ entries per cycle.
	IQOccupancy float64

	// HDIPiledFrac is the fraction of instructions sampled behind a
	// blocking NDI that were themselves dispatchable (paper: ~90%).
	HDIPiledFrac float64
	// HDIDepOnNDIFrac is the fraction of out-of-order-dispatched HDIs
	// that depended, directly or transitively, on a blocked NDI
	// (paper: ~10%).
	HDIDepOnNDIFrac float64
	// HDIDispatched counts instructions dispatched out of program order.
	HDIDispatched uint64

	// DABInserts counts deadlock-avoidance-buffer captures.
	DABInserts uint64
	// WatchdogFlushes counts watchdog-timer pipeline flushes.
	WatchdogFlushes uint64
	// GateFlushes counts FLUSH fetch-gate partial squashes.
	GateFlushes uint64
	// MSHRStallEvents counts load-issue attempts rejected because all
	// miss-status registers were busy (0 with unlimited MSHRs).
	MSHRStallEvents uint64

	// SchedulerEnergyPerInst is the analytical scheduling-logic energy
	// per committed instruction (units of one tag comparison; package
	// power), SchedulerEDP its energy-delay product, and Comparators the
	// queue's total tag comparators — the paper's hardware-cost axis.
	SchedulerEnergyPerInst float64
	SchedulerEDP           float64
	Comparators            int

	// L1DMissRate, L2MissRate and L1IMissRate summarize the cache
	// hierarchy behaviour of the run.
	L1DMissRate float64
	L2MissRate  float64
	L1IMissRate float64
}

// String renders a compact multi-line report.
func (r Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d committed=%d IPC=%.3f\n", r.Cycles, r.Committed, r.IPC)
	for i, t := range r.Threads {
		fmt.Fprintf(&b, "  T%d %-10s committed=%-10d IPC=%.3f mispred=%.2f%%\n",
			i, t.Benchmark, t.Committed, t.IPC, 100*t.MispredictRate)
	}
	fmt.Fprintf(&b, "  stall-all(NDI)=%.1f%% stall-all(any)=%.1f%% IQ-residency=%.1f IQ-occupancy=%.1f\n",
		100*r.DispatchStallAllNDI, 100*r.DispatchStallAllAny, r.IQResidency, r.IQOccupancy)
	fmt.Fprintf(&b, "  hdi-piled=%.1f%% hdi-dep-ndi=%.1f%% dab=%d flushes=%d l1d-miss=%.1f%% l2-miss=%.1f%%",
		100*r.HDIPiledFrac, 100*r.HDIDepOnNDIFrac, r.DABInserts, r.WatchdogFlushes,
		100*r.L1DMissRate, 100*r.L2MissRate)
	return b.String()
}

// PerThreadIPCs returns the thread IPC vector.
func (r Results) PerThreadIPCs() []float64 {
	out := make([]float64, len(r.Threads))
	for i, t := range r.Threads {
		out[i] = t.IPC
	}
	return out
}

// HarmonicMean returns the harmonic mean of xs. It returns 0 if xs is
// empty or any element is non-positive (the mean is undefined there, and
// 0 is the conservative sentinel for "no speedup measurable").
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// GeometricMean returns the geometric mean of xs (0 on empty or
// non-positive input).
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// WeightedIPCs divides each thread's SMT IPC by its single-threaded
// ("alone") IPC, yielding the per-thread weighted IPCs of Luo et al.
func WeightedIPCs(smt, alone []float64) ([]float64, error) {
	if len(smt) != len(alone) {
		return nil, fmt.Errorf("metrics: %d SMT IPCs vs %d alone IPCs", len(smt), len(alone))
	}
	out := make([]float64, len(smt))
	for i := range smt {
		if alone[i] <= 0 {
			return nil, fmt.Errorf("metrics: thread %d alone IPC %v not positive", i, alone[i])
		}
		out[i] = smt[i] / alone[i]
	}
	return out, nil
}

// HarmonicWeightedIPC computes the paper's fairness metric: the harmonic
// mean of the per-thread weighted IPCs. It rewards configurations that
// raise throughput without starving any single thread.
func HarmonicWeightedIPC(smt, alone []float64) (float64, error) {
	w, err := WeightedIPCs(smt, alone)
	if err != nil {
		return 0, err
	}
	return HarmonicMean(w), nil
}
