package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestHarmonicMean(t *testing.T) {
	if !approx(HarmonicMean([]float64{1, 1, 1}), 1) {
		t.Error("hmean of ones != 1")
	}
	if !approx(HarmonicMean([]float64{2, 2}), 2) {
		t.Error("hmean of twos != 2")
	}
	// hmean(1, 1/3) = 2 / (1 + 3) = 0.5
	if !approx(HarmonicMean([]float64{1, 1.0 / 3}), 0.5) {
		t.Errorf("hmean(1, 1/3) = %v", HarmonicMean([]float64{1, 1.0 / 3}))
	}
	if HarmonicMean(nil) != 0 || HarmonicMean([]float64{1, 0}) != 0 || HarmonicMean([]float64{-1}) != 0 {
		t.Error("degenerate inputs not mapped to 0")
	}
}

func TestGeometricMean(t *testing.T) {
	if !approx(GeometricMean([]float64{2, 8}), 4) {
		t.Errorf("gmean(2,8) = %v", GeometricMean([]float64{2, 8}))
	}
	if GeometricMean(nil) != 0 || GeometricMean([]float64{0}) != 0 {
		t.Error("degenerate inputs not mapped to 0")
	}
}

// Property: harmonic mean <= geometric mean <= arithmetic mean for any
// positive vector (AM-GM-HM inequality), and all means lie within
// [min, max].
func TestMeanInequalities(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r%1000)/100+0.01)
		}
		if len(xs) == 0 {
			return true
		}
		h, g := HarmonicMean(xs), GeometricMean(xs)
		var sum, min, max float64
		min, max = xs[0], xs[0]
		for _, x := range xs {
			sum += x
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		a := sum / float64(len(xs))
		const eps = 1e-9
		return h <= g+eps && g <= a+eps && h >= min-eps && a <= max+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedIPCs(t *testing.T) {
	w, err := WeightedIPCs([]float64{1, 2}, []float64{2, 2})
	if err != nil || !approx(w[0], 0.5) || !approx(w[1], 1) {
		t.Errorf("weighted = %v, %v", w, err)
	}
	if _, err := WeightedIPCs([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedIPCs([]float64{1}, []float64{0}); err == nil {
		t.Error("zero alone IPC accepted")
	}
}

func TestHarmonicWeightedIPC(t *testing.T) {
	// Perfectly fair halving: each thread at half its alone speed.
	f, err := HarmonicWeightedIPC([]float64{1, 1}, []float64{2, 2})
	if err != nil || !approx(f, 0.5) {
		t.Errorf("fairness = %v, %v", f, err)
	}
	// Starving one thread tanks the metric even if the other flies:
	// hmean(0.01, 1.0) << hmean(0.5, 0.5).
	starved, _ := HarmonicWeightedIPC([]float64{0.02, 2}, []float64{2, 2})
	fair, _ := HarmonicWeightedIPC([]float64{1, 1}, []float64{2, 2})
	if starved >= fair {
		t.Errorf("fairness metric did not penalize starvation: %v >= %v", starved, fair)
	}
}

func TestResultsString(t *testing.T) {
	r := Results{
		Cycles: 100, Committed: 250, IPC: 2.5,
		Threads: []ThreadResult{{Benchmark: "gzip", Committed: 250, IPC: 2.5}},
	}
	s := r.String()
	for _, want := range []string{"cycles=100", "gzip", "IPC=2.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestPerThreadIPCs(t *testing.T) {
	r := Results{Threads: []ThreadResult{{IPC: 1}, {IPC: 2}}}
	got := r.PerThreadIPCs()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("PerThreadIPCs = %v", got)
	}
}
