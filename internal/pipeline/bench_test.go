package pipeline

import (
	"testing"

	icore "smtsim/internal/core"
	"smtsim/internal/workload"
)

func benchCore(b *testing.B, policy icore.Policy, names ...string) *Core {
	b.Helper()
	cfg := DefaultConfig()
	cfg.Policy = policy
	var specs []ThreadSpec
	for i, n := range names {
		prog, err := workload.CompileBenchmark(n)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, ThreadSpec{Name: n, Reader: prog.NewStream(uint64(i + 1))})
	}
	c, err := New(cfg, specs)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkStep measures the raw per-cycle cost of the pipeline model
// under each dispatch policy on a 4-thread Table 1 machine.
func BenchmarkStep(b *testing.B) {
	for _, policy := range []icore.Policy{icore.InOrder, icore.TwoOpBlock, icore.TwoOpOOOD} {
		b.Run(policy.String(), func(b *testing.B) {
			c := benchCore(b, policy, "equake", "twolf", "gcc", "gzip")
			// Warm caches and predictors out of the timed region.
			for i := 0; i < 5000; i++ {
				c.Step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Step()
			}
		})
	}
}
