package pipeline

import (
	"testing"

	icore "smtsim/internal/core"
	"smtsim/internal/workload"
)

func benchCore(b testing.TB, policy icore.Policy, names ...string) *Core {
	b.Helper()
	cfg := DefaultConfig()
	cfg.Policy = policy
	var specs []ThreadSpec
	for i, n := range names {
		prog, err := workload.CompileBenchmark(n)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, ThreadSpec{Name: n, Reader: prog.NewStream(uint64(i + 1))})
	}
	c, err := New(cfg, specs)
	if err != nil {
		b.Fatal(err)
	}
	// The benchmarks and the zero-alloc test characterize the production
	// cycle path, so the test-wide sanitizer (sanitize_test.go) stays out.
	c.disableSanitizer()
	return c
}

// BenchmarkStep measures the raw per-cycle cost of the pipeline model
// under each dispatch policy on a 4-thread Table 1 machine.
func BenchmarkStep(b *testing.B) {
	for _, policy := range []icore.Policy{icore.InOrder, icore.TwoOpBlock, icore.TwoOpOOOD} {
		b.Run(policy.String(), func(b *testing.B) {
			c := benchCore(b, policy, "equake", "twolf", "gcc", "gzip")
			// Warm caches and predictors out of the timed region.
			for i := 0; i < 5000; i++ {
				c.Step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Step()
			}
		})
	}
}

// BenchmarkStepAllocs measures the steady-state per-cycle cost after a
// long warmup, so every pool and scratch buffer has reached its working
// size. The allocs/op column is the acceptance criterion: it must be 0.
func BenchmarkStepAllocs(b *testing.B) {
	c := benchCore(b, icore.TwoOpOOOD, "equake", "twolf", "gcc", "gzip")
	for i := 0; i < 20_000; i++ {
		c.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// TestStepSteadyStateZeroAllocs asserts the cycle path allocates nothing
// once warm, for each dispatch policy: renamed UOps come from the pool,
// completion events live in a value heap, and every per-cycle scratch
// structure is reused.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not short")
	}
	for _, policy := range []icore.Policy{icore.InOrder, icore.TwoOpBlock, icore.TwoOpOOOD} {
		t.Run(policy.String(), func(t *testing.T) {
			c := benchCore(t, policy, "equake", "twolf", "gcc", "gzip")
			for i := 0; i < 20_000; i++ {
				c.Step()
			}
			if avg := testing.AllocsPerRun(5_000, c.Step); avg != 0 {
				t.Errorf("steady-state Step allocates %v objects/cycle, want 0", avg)
			}
		})
	}
}
