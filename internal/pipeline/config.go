// Package pipeline assembles the full SMT processor model: an 8-wide
// machine with the Table 1 configuration, ticked one cycle at a time in
// reverse pipeline order (commit, writeback, issue, dispatch, rename,
// fetch). The dispatch stage is pluggable (package core), which is where
// the paper's three designs differ; everything else is held identical
// across comparisons, as in the paper's methodology.
package pipeline

import (
	"fmt"

	"smtsim/internal/cache"
	"smtsim/internal/core"
	"smtsim/internal/fetch"
	"smtsim/internal/iq"
)

// DeadlockMechanism selects how out-of-order dispatch guards against the
// Section 4 deadlock scenario.
type DeadlockMechanism uint8

const (
	// DeadlockDAB uses the deadlock-avoidance buffer (the paper's
	// evaluated mechanism): the ROB-oldest instruction bypasses a full
	// IQ into a small RAM buffer and issues from there with precedence.
	DeadlockDAB DeadlockMechanism = iota
	// DeadlockWatchdog uses the watchdog-timer alternative: on dispatch
	// starvation, flush all in-flight instructions and refetch from the
	// ROB-oldest PCs.
	DeadlockWatchdog
	// DeadlockNone disables both mechanisms; the simulator's safety net
	// then reports a detected deadlock as an error. Used by tests that
	// demonstrate the hazard is real.
	DeadlockNone
)

// String names the mechanism.
func (m DeadlockMechanism) String() string {
	switch m {
	case DeadlockDAB:
		return "dab"
	case DeadlockWatchdog:
		return "watchdog"
	case DeadlockNone:
		return "none"
	}
	return fmt.Sprintf("deadlock(%d)", uint8(m))
}

// Config is the machine configuration. DefaultConfig returns Table 1;
// sweeps vary IQSize, Policy, and the thread count implied by the
// workload.
type Config struct {
	// Width is the machine width: fetch, rename/dispatch, issue, and
	// commit bandwidth per cycle (Table 1: 8).
	Width int
	// FetchThreads bounds how many threads supply instructions in one
	// cycle (the baseline fetches from two threads per cycle).
	FetchThreads int
	// FetchPolicy selects the fetch thread-selection policy.
	FetchPolicy fetch.Policy
	// FetchGate layers a miss-driven gating policy over the selector
	// (GateNone in the paper's baseline; see gating.go).
	FetchGate FetchGate

	// IQSize is the shared issue-queue capacity (the paper sweeps
	// 32..128).
	IQSize int
	// IQPartition optionally fixes the entry-type mix (entries with 0,
	// 1, and 2 tag comparators). When zero, the policy chooses: a
	// uniform queue of IQSize entries for the paper's designs, or
	// DefaultPartition(IQSize) for the tag-elimination policies.
	IQPartition iq.Partition
	// Select orders ready instructions at issue (default oldest-first,
	// the paper's policy).
	Select iq.SelectPolicy
	// PerThreadIQCap statically partitions the queue: each thread may
	// hold at most this many entries (0 = fully shared, the paper's
	// configuration; Raasch & Reinhardt-style partitioning otherwise).
	PerThreadIQCap int
	// Policy is the dispatch policy under study.
	Policy core.Policy
	// Deadlock selects the OOOD deadlock mechanism.
	Deadlock DeadlockMechanism
	// WatchdogLimit is the watchdog countdown in cycles; the paper
	// suggests 2-3x the memory latency. Used when Deadlock ==
	// DeadlockWatchdog.
	WatchdogLimit int64

	// ROBPerThread and LSQPerThread size the per-thread windows
	// (Table 1: 96 and 48).
	ROBPerThread int
	LSQPerThread int
	// IntRegs and FpRegs size the shared physical register files
	// (Table 1: 256 each).
	IntRegs int
	FpRegs  int

	// DispatchBufCap is the per-thread renamed-instruction (dispatch)
	// buffer capacity — the window out-of-order dispatch scans for HDIs.
	DispatchBufCap int
	// FetchQueueCap is the per-thread fetch/decode queue capacity.
	FetchQueueCap int

	// FrontEndDelay is the number of cycles between fetch and rename
	// eligibility, modeling the 5-stage front end.
	FrontEndDelay int64
	// RedirectPenalty is the additional fetch-resume delay after a
	// mispredicted branch resolves (register read depth + redirect).
	RedirectPenalty int64
	// FlushRefill is the fetch-resume delay after a watchdog flush.
	FlushRefill int64

	// MSHRs bounds the core's outstanding L1 data-cache misses (miss
	// status holding registers): a load that would miss while all MSHRs
	// are busy cannot issue and retries. Zero models unlimited MSHRs
	// (the paper-era trace-driven simplification, and the default).
	MSHRs int

	// Hierarchy, when non-nil, supplies the memory hierarchy instead of
	// a private cache.DefaultHierarchy — the hook the CMP composition
	// uses to share an L2 between cores.
	Hierarchy *cache.Hierarchy

	// PollingWakeup selects the legacy per-cycle polling wakeup: issue
	// re-scans every IQ entry against the register file each cycle, and
	// NDI/HDI classification re-polls operand readiness. The default
	// (false) is event-driven wakeup — register writeback broadcasts to
	// per-register consumer lists, which is O(width) per cycle instead of
	// O(IQ·sources). The two produce bit-identical simulations (see
	// DESIGN.md §5); the flag exists for the differential cross-check.
	PollingWakeup bool

	// MaxCycles caps the simulation as a safety net (0 = default cap).
	MaxCycles int64
	// StallLimit is the no-commit cycle count treated as a deadlock by
	// the safety net (0 = default).
	StallLimit int64

	// Sanitize enables the cycle-granular invariant sanitizer (package
	// internal/simsan): after every Step, the machine's structural
	// contracts — ROB program order, wakeup-counter/consumer-list
	// agreement, physical-register conservation, the DAB's oldest-and-
	// ready property, NDI classification — are re-derived from scratch
	// and any divergence surfaces as a structured error from Run. The
	// checker is read-only, so a clean sanitized run is bit-identical to
	// an unsanitized one; it costs roughly an order of magnitude in
	// simulation speed and is off by default (and always on in the
	// pipeline package's tests).
	Sanitize bool
}

// DefaultConfig returns the Table 1 machine with a 64-entry IQ and the
// traditional scheduler.
func DefaultConfig() Config {
	return Config{
		Width:           8,
		FetchThreads:    2,
		FetchPolicy:     fetch.ICount,
		IQSize:          64,
		Policy:          core.InOrder,
		Deadlock:        DeadlockDAB,
		WatchdogLimit:   450, // 3x the 150-cycle memory latency
		ROBPerThread:    96,
		LSQPerThread:    48,
		IntRegs:         256,
		FpRegs:          256,
		DispatchBufCap:  16,
		FetchQueueCap:   8,
		FrontEndDelay:   3,
		RedirectPenalty: 3,
		FlushRefill:     5,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c *Config) Validate(threads int) error {
	switch {
	case threads < 1:
		return fmt.Errorf("pipeline: need at least one thread, got %d", threads)
	case c.Width < 1:
		return fmt.Errorf("pipeline: width %d < 1", c.Width)
	case c.FetchThreads < 1:
		return fmt.Errorf("pipeline: fetch threads %d < 1", c.FetchThreads)
	case c.IQSize < c.Width:
		return fmt.Errorf("pipeline: IQ size %d below machine width %d", c.IQSize, c.Width)
	case c.ROBPerThread < 1 || c.LSQPerThread < 1:
		return fmt.Errorf("pipeline: ROB/LSQ capacities must be positive")
	case c.IntRegs < isaRegsNeeded(threads) || c.FpRegs < isaRegsNeeded(threads):
		return fmt.Errorf("pipeline: %d threads need more than %d/%d physical registers",
			threads, c.IntRegs, c.FpRegs)
	case c.DispatchBufCap < 1 || c.FetchQueueCap < 1:
		return fmt.Errorf("pipeline: front-end buffer capacities must be positive")
	case c.Deadlock == DeadlockWatchdog && c.WatchdogLimit < 1:
		return fmt.Errorf("pipeline: watchdog limit %d < 1", c.WatchdogLimit)
	}
	return nil
}

// DefaultPartition splits a tag-elimination queue the way Ernst &
// Austin's measurements suggest: half the entries keep one comparator,
// a quarter keep two, and a quarter need none (instructions dispatched
// with all operands ready).
func DefaultPartition(size int) iq.Partition {
	p := iq.Partition{size / 4, size / 2, 0}
	p[2] = size - p[0] - p[1]
	return p
}

// queuePartition resolves the partition the configuration implies.
func (c *Config) queuePartition() iq.Partition {
	if c.IQPartition.Total() > 0 {
		return c.IQPartition
	}
	if c.Policy.Partitioned() {
		return DefaultPartition(c.IQSize)
	}
	return iq.Uniform(c.IQSize, c.Policy.MaxNonReady())
}

// isaRegsNeeded is the minimum physical registers per class for the
// initial architectural mappings plus one renameable register.
func isaRegsNeeded(threads int) int { return threads*32 + 1 }
