package pipeline

import (
	"testing"

	icore "smtsim/internal/core"
	"smtsim/internal/iq"
)

func TestDefaultPartitionSplits(t *testing.T) {
	for _, size := range []int{32, 48, 64, 96, 128} {
		p := DefaultPartition(size)
		if p.Total() != size {
			t.Errorf("partition of %d sums to %d", size, p.Total())
		}
		if p[1] != size/2 || p[0] != size/4 {
			t.Errorf("partition of %d = %v, want quarter/half/quarter", size, p)
		}
	}
}

func TestQueuePartitionResolution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IQSize = 64

	// Traditional: uniform two-comparator entries.
	cfg.Policy = icore.InOrder
	if p := cfg.queuePartition(); p != iq.Uniform(64, 2) {
		t.Errorf("traditional partition = %v", p)
	}
	// 2OP designs: uniform one-comparator entries.
	cfg.Policy = icore.TwoOpBlock
	if p := cfg.queuePartition(); p != iq.Uniform(64, 1) {
		t.Errorf("2OP partition = %v", p)
	}
	// Tag elimination: the default split.
	cfg.Policy = icore.TagElim
	if p := cfg.queuePartition(); p != DefaultPartition(64) {
		t.Errorf("tag-elim partition = %v", p)
	}
	// Explicit partition wins.
	cfg.IQPartition = iq.Partition{1, 2, 3}
	if p := cfg.queuePartition(); p != (iq.Partition{1, 2, 3}) {
		t.Errorf("explicit partition ignored: %v", p)
	}
}

func TestMaxCommitted(t *testing.T) {
	c, err := New(DefaultConfig(), []ThreadSpec{
		{Name: "equake", Reader: benchStream(t, "equake", 1)},
		{Name: "gzip", Reader: benchStream(t, "gzip", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxCommitted() != 0 {
		t.Error("fresh core has committed work")
	}
	if _, err := c.Run(3_000); err != nil {
		t.Fatal(err)
	}
	if c.MaxCommitted() < 3_000 {
		t.Errorf("MaxCommitted = %d after a 3000-budget run", c.MaxCommitted())
	}
	// After a warmup reset the post-warmup count starts over.
	if err := c.Warmup(1_000); err != nil {
		t.Fatal(err)
	}
	if c.MaxCommitted() != 0 {
		t.Errorf("MaxCommitted = %d after warmup reset, want 0", c.MaxCommitted())
	}
}

func TestDeadlockMechanismNames(t *testing.T) {
	if DeadlockDAB.String() != "dab" || DeadlockWatchdog.String() != "watchdog" || DeadlockNone.String() != "none" {
		t.Error("mechanism names wrong")
	}
}
