package pipeline

import (
	"fmt"
	"math"

	"smtsim/internal/bpred"
	"smtsim/internal/cache"
	"smtsim/internal/core"
	"smtsim/internal/fetch"
	"smtsim/internal/fu"
	"smtsim/internal/iq"
	"smtsim/internal/isa"
	"smtsim/internal/lsq"
	"smtsim/internal/metrics"
	"smtsim/internal/power"
	"smtsim/internal/regfile"
	"smtsim/internal/rename"
	"smtsim/internal/rob"
	"smtsim/internal/simsan"
	"smtsim/internal/uop"
)

// TraceReader supplies one thread's dynamic instruction stream. Streams
// are infinite; the run is bounded by the commit budget.
type TraceReader interface {
	Next() isa.Inst
}

// ThreadSpec binds a benchmark name to its trace for one hardware thread.
type ThreadSpec struct {
	Name   string
	Reader TraceReader
}

// farFuture blocks a thread's fetch until an event (branch resolution)
// re-enables it.
const farFuture = math.MaxInt64 / 2

// fetchEntry is one fetched instruction traversing the front end.
type fetchEntry struct {
	inst       isa.Inst
	readyAt    int64 // cycle at which rename may consume it
	predTaken  bool
	predTarget uint64
	mispred    bool
}

// threadState is the per-thread front-end and bookkeeping state.
type threadState struct {
	name   string
	stream TraceReader

	// replay holds instructions to refetch after a watchdog flush, in
	// program order, ahead of the stream.
	replay []isa.Inst
	// pendingInst is an instruction whose I-cache block is in flight;
	// pendingValid reports its presence. A value plus flag rather than a
	// pointer keeps the per-miss bookkeeping off the heap.
	pendingInst  isa.Inst
	pendingValid bool

	// fetchQ is a ring: qHead + qLen index into it. The backing array is
	// sized to a power of two so the ring arithmetic is a mask, not a
	// division; qCap is the configured (logical) capacity.
	fetchQ  []fetchEntry
	qHead   int
	qLen    int
	qCap    int
	qMask   int
	blocked int64 // cycle at which fetch may resume

	lastBlock      uint64
	lastBlockValid bool

	// Fetch-gating state (see gating.go).
	outstandingL1D int
	outstandingMem int
	gateLoad       *uop.UOp

	committed uint64
}

//smt:hotpath
func (ts *threadState) fetchQFull() bool { return ts.qLen == ts.qCap }

// fetchQPushSlot claims the next tail slot and returns it for in-place
// filling: the caller must set every field (slots are not zeroed between
// uses). Filling in place keeps the ~10-word fetchEntry from being
// copied twice per fetched instruction.
//
//smt:hotpath
func (ts *threadState) fetchQPushSlot() *fetchEntry {
	if ts.fetchQFull() {
		panic("pipeline: fetch queue overflow")
	}
	e := &ts.fetchQ[(ts.qHead+ts.qLen)&ts.qMask]
	ts.qLen++
	return e
}

// fetchQPeek returns the head entry in place (nil when empty); the
// pointer is valid until the next fetchQPop.
//
//smt:hotpath
func (ts *threadState) fetchQPeek() *fetchEntry {
	if ts.qLen == 0 {
		return nil
	}
	return &ts.fetchQ[ts.qHead]
}

//smt:hotpath
func (ts *threadState) fetchQPop() {
	// The vacated slot is left as-is (no pointers to release; the next
	// push overwrites every field).
	ts.qHead = (ts.qHead + 1) & ts.qMask
	ts.qLen--
}

// nextInst supplies the next instruction to fetch: a block-miss leftover
// first, then the flush-replay queue, then the live trace. The bool
// reports whether it came from pendingInst (its I-cache access already
// happened).
//
//smt:hotpath
func (ts *threadState) nextInst() (isa.Inst, bool) {
	if ts.pendingValid {
		ts.pendingValid = false
		return ts.pendingInst, true
	}
	if len(ts.replay) > 0 {
		in := ts.replay[0]
		ts.replay = ts.replay[1:]
		return in, false
	}
	return ts.stream.Next(), false
}

// Core is the simulated SMT processor.
type Core struct {
	cfg      Config
	nthreads int
	cycle    int64
	gseq     uint64

	// bank owns every in-flight uop record (structure-of-arrays, one
	// slot per ROB entry); the per-thread ROBs are windows into it and
	// every cycle-path structure below refers to records by dense id.
	bank *uop.Bank

	rf    *regfile.File
	rats  []*rename.Table
	robs  []*rob.ROB
	lsqs  []*lsq.LSQ
	q     *iq.Queue
	disp  *core.Dispatcher
	fus   *fu.Pools
	hier  *cache.Hierarchy
	btb   *bpred.BTB
	preds []*bpred.Predictor
	sel   *fetch.Selector
	wdog  *core.Watchdog

	threads []threadState
	events  eventWheel
	scratch []int32

	// san, when non-nil, re-validates the machine's structural
	// invariants after every cycle (Config.Sanitize, or any run inside
	// this package's tests). sanErr latches the first violation so Run
	// can surface it; sanPanic makes violations fail-stop (test mode).
	san      *simsan.Checker
	sanErr   error
	sanPanic bool

	// eventWakeup mirrors !cfg.PollingWakeup: writeback broadcasts to
	// per-register consumer bitmaps instead of the scheduler re-polling.
	eventWakeup bool
	// runnableFn/icountFn are the fetch-policy callbacks, built once so
	// fetch() does not allocate two closures every cycle.
	runnableFn func(int) bool
	icountFn   func(int) int

	commitRR, renameRR int
	lastCommitCycle    int64
	onCommit           func(*uop.UOp)

	// l1iLineMask caches ^(L1I line size - 1) so fetch does not re-read
	// the cache configuration every cycle.
	l1iLineMask uint64

	// dispFrozen records that the dispatcher's last Run dispatched
	// nothing and none of its inputs (buffers, readiness counters, IQ
	// and DAB occupancy, ROB heads) changed since: the next dispatch
	// cycle would rescan identical state to the identical outcome, so
	// stepCycle replays its accounting instead (event-wakeup mode only;
	// the polling path stays a plain per-cycle loop as the differential
	// reference). It is the dispatch stage's activity horizon.
	dispFrozen bool

	// Per-stage activity horizons (event-wakeup mode): the earliest cycle
	// at which rename/fetch can possibly do work. A stage whose horizon
	// lies in the future is skipped by the gated step, with only its
	// round-robin rotation replayed. Horizons are conservative lower
	// bounds — a stage may run and find nothing, never the reverse:
	// rename recomputes its own on every run and every fetch-queue push
	// lowers it; fetch recomputes its own on every run and the gate/
	// redirect/flush/rename events that can re-enable an idle thread
	// lower it. The remaining stages' horizons are intrinsic: writeback's
	// is the event wheel's occupancy bit, commit's the commitable mask,
	// issue's the ready-list and DAB occupancy, dispatch's dispFrozen.
	renameHorizon int64
	fetchHorizon  int64

	// forcePlain routes stepCycle through the ungated stage walk even in
	// event-wakeup mode; the horizon differential tests set it to produce
	// the reference run.
	forcePlain bool

	// lastDue records the due-stage bitmask of the most recent gated (or
	// verified) cycle, for tests and diagnostics.
	lastDue stageMask

	// commitable is a per-thread bitmask meaning "this thread's ROB head
	// may be completed": writeback sets a thread's bit when it completes
	// the head, commit clears it when its in-order scan stops on an
	// absent or incomplete head (a budget-bounded stop keeps it set).
	// When commitSkip is enabled (event mode, ≤64 threads) commit skips
	// clear threads without touching their ROB; polling mode always
	// scans, so the mask is maintained but never consulted.
	commitable uint64
	commitSkip bool

	// Statistics baselines, set by Warmup so measurement excludes the
	// initialization period (the paper skips initialization with
	// SimPoints and measures the following 100M instructions).
	statsCycleBase int64
	commitBase     []uint64

	iqResidencySum  uint64
	iqIssued        uint64
	gateFlushes     uint64
	broadcasts      uint64
	inFlightMisses  int
	mshrStallEvents uint64
	dabIssues       uint64
	insertsBase     uint64
	dabBase         uint64
}

// New builds a core over the given configuration and thread workloads.
func New(cfg Config, specs []ThreadSpec) (*Core, error) {
	n := len(specs)
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	// One bank slot per ROB entry across all threads: ROB slot = uop id.
	bank := uop.NewBank(n * cfg.ROBPerThread)
	c := &Core{
		cfg:      cfg,
		nthreads: n,
		// Rename sequence numbers start at one so a reset UOp's zero GSeq
		// never matches a live token (see uop.Reset).
		gseq:    1,
		bank:    bank,
		rf:      regfile.New(cfg.IntRegs, cfg.FpRegs),
		q:       iq.NewPartitioned(bank, cfg.queuePartition(), n),
		disp:    core.NewDispatcher(bank, cfg.Policy, cfg.Width, cfg.DispatchBufCap, n),
		fus:     fu.MustNew(fu.DefaultConfig()),
		hier:    cfg.Hierarchy,
		btb:     bpred.NewBTB(2048, 2),
		sel:     fetch.NewSelector(cfg.FetchPolicy, n),
		scratch: make([]int32, 0, cfg.IQSize),
		events:  newEventWheel(defaultEventHorizon),
	}
	if c.hier == nil {
		c.hier = cache.DefaultHierarchy()
	}
	c.l1iLineMask = ^uint64(c.hier.L1I.Config().LineSize - 1)
	// Both wakeup modes integrate IQ occupancy incrementally against the
	// cycle counter (bit-identical to per-cycle sampling, so the
	// event/polling differential holds), which removes the end-of-cycle
	// Sample call from the cycle path.
	c.q.BindCycleCounter(&c.cycle)
	c.eventWakeup = !cfg.PollingWakeup
	c.commitSkip = c.eventWakeup && n <= 64
	if c.eventWakeup {
		c.q.SetEventWakeup(true)
		c.disp.SetEventWakeup(true)
		// Wire the tag-broadcast sink: SetReady decrements the bank's
		// not-ready counters through the consumer bitmaps and notifies
		// the scheduler when an operand count reaches zero.
		c.rf.AttachWakeup(bank.Cap(), bank.NotReady, func(id int32) {
			//smt:trusted-id — SetReady fires only for ids on a consumer watch list, pruned on squash/commit before the slot recycles
			c.q.UOpReady(bank.Get(id))
		})
	}
	c.runnableFn = func(t int) bool {
		ts := &c.threads[t]
		return ts.blocked <= c.cycle && !ts.fetchQFull() && c.gateAllows(t)
	}
	c.icountFn = func(t int) int {
		return c.threads[t].qLen + c.disp.Buffer(t).Len() + c.q.ThreadCount(t)
	}
	switch cfg.Deadlock {
	case DeadlockWatchdog:
		c.wdog = core.NewWatchdog(cfg.WatchdogLimit)
		c.disp.SetDABEnabled(false)
	case DeadlockNone:
		c.disp.SetDABEnabled(false)
	}
	if cfg.PerThreadIQCap > 0 {
		c.disp.SetPerThreadCap(cfg.PerThreadIQCap)
	}
	for _, s := range specs {
		if s.Reader == nil {
			return nil, fmt.Errorf("pipeline: thread %q has nil trace", s.Name)
		}
		c.rats = append(c.rats, rename.New(c.rf))
		c.robs = append(c.robs, rob.New(bank, int32(len(c.robs)*cfg.ROBPerThread), cfg.ROBPerThread))
		c.lsqs = append(c.lsqs, lsq.New(bank, cfg.LSQPerThread))
		c.preds = append(c.preds, bpred.New(c.btb))
		// Ring backing sized to the next power of two so the index math
		// is a mask; the logical capacity stays exactly as configured.
		ringCap := 1
		for ringCap < cfg.FetchQueueCap {
			ringCap <<= 1
		}
		c.threads = append(c.threads, threadState{
			name:   s.Name,
			stream: s.Reader,
			fetchQ: make([]fetchEntry, ringCap),
			qCap:   cfg.FetchQueueCap,
			qMask:  ringCap - 1,
		})
	}
	c.commitBase = make([]uint64, n)
	if cfg.Sanitize || testSanitize {
		c.san = simsan.New(simsan.Machine{
			EventWakeup: c.eventWakeup,
			Bank:        c.bank,
			RF:          c.rf,
			IQ:          c.q,
			Disp:        c.disp,
			ROBs:        c.robs,
			RATs:        c.rats,
			LSQs:        c.lsqs,
		})
		// Violations inside the test suite fail-stop at the offending
		// cycle; explicitly requested sanitizing reports through Run.
		c.sanPanic = !cfg.Sanitize
	}
	return c, nil
}

// testSanitize force-enables the sanitizer for every core built by this
// package's test binary (set by an init in sanitize_test.go); it is
// always false in production builds.
var testSanitize bool

// Sanitizer returns the invariant checker, or nil when sanitizing is
// disabled.
func (c *Core) Sanitizer() *simsan.Checker { return c.san }

// SanitizerError returns the first invariant violation detected so far
// (nil when clean or when sanitizing is disabled). Run surfaces the same
// error; this accessor serves callers that drive Step directly.
func (c *Core) SanitizerError() error { return c.sanErr }

// sanitize runs the end-of-cycle invariant sweep.
//
//smt:coldpath — diagnostic sweep: runs only with a sanitizer attached, never in measured configurations
func (c *Core) sanitize() {
	err := c.san.CheckCycle(c.cycle)
	if err == nil && c.commitSkip {
		// The commit-skip mask must never hide a committable head: a
		// clear bit asserts the thread's ROB head is absent or
		// incomplete.
		for t := range c.robs {
			if u := c.robs[t].Head(); u != nil && u.Completed && c.commitable&(1<<uint(t)) == 0 {
				err = fmt.Errorf("pipeline: cycle %d: thread %d has a completed ROB head but a clear commit-skip bit", c.cycle, t)
				break
			}
		}
	}
	if err == nil {
		return
	}
	if c.sanErr == nil {
		c.sanErr = err
	}
	if c.sanPanic {
		panic(err)
	}
}

// Cycle returns the current cycle number.
func (c *Core) Cycle() int64 { return c.cycle }

// Committed returns thread t's committed instruction count.
func (c *Core) Committed(t int) uint64 { return c.threads[t].committed }

// MaxCommitted returns the largest post-warmup commit count across the
// core's threads — the quantity the paper's stopping rule tests.
func (c *Core) MaxCommitted() uint64 {
	var max uint64
	for t := range c.threads {
		if n := c.threads[t].committed - c.commitBase[t]; n > max {
			max = n
		}
	}
	return max
}

// Dispatcher exposes the dispatch stage (tests and examples inspect its
// statistics and DAB).
func (c *Core) Dispatcher() *core.Dispatcher { return c.disp }

// RegFile exposes the physical register file for invariant checks.
func (c *Core) RegFile() *regfile.File { return c.rf }

// RenameTable exposes thread t's rename table for invariant checks.
func (c *Core) RenameTable(t int) *rename.Table { return c.rats[t] }

// IQ exposes the issue queue for tests.
func (c *Core) IQ() *iq.Queue { return c.q }

// ROB exposes thread t's reorder buffer for invariant checks.
func (c *Core) ROB(t int) *rob.ROB { return c.robs[t] }

// SetCommitHook installs fn to observe every committed instruction in
// commit order. Intended for instrumentation and tests; fn must not
// mutate the UOp, and must not retain it — the record's bank slot is
// recycled by a later rename.
func (c *Core) SetCommitHook(fn func(*uop.UOp)) { c.onCommit = fn }

// ErrDeadlock is returned (wrapped) when the safety net detects that no
// instruction committed for the configured stall limit.
var ErrDeadlock = fmt.Errorf("pipeline: deadlock detected")

// Warmup advances the machine until any thread commits n instructions,
// then resets every statistic while keeping all microarchitectural state
// (caches, predictors, in-flight instructions) warm. It mirrors the
// paper's methodology of skipping each benchmark's initialization before
// measuring. Warmup may be called at most once, before Run.
func (c *Core) Warmup(n uint64) error {
	if n == 0 {
		return nil
	}
	if _, err := c.Run(n); err != nil {
		return fmt.Errorf("pipeline: warmup: %w", err)
	}
	c.disp.ResetStats()
	c.q.ResetStats()
	for _, cc := range []interface{ ResetStats() }{c.hier.L1I, c.hier.L1D, c.hier.L2} {
		cc.ResetStats()
	}
	for _, p := range c.preds {
		p.ResetStats()
	}
	if c.wdog != nil {
		c.wdog.ResetStats()
	}
	c.iqResidencySum, c.iqIssued = 0, 0
	c.gateFlushes = 0
	c.mshrStallEvents = 0
	c.broadcasts, c.dabIssues = 0, 0
	c.insertsBase = c.q.Inserts
	c.dabBase = c.disp.DAB().Inserts
	c.statsCycleBase = c.cycle
	for t := range c.threads {
		c.commitBase[t] = c.threads[t].committed
	}
	return nil
}

// Run advances the machine until any thread commits maxCommit
// instructions (the paper's stopping rule) and returns the collected
// results. Errors indicate a detected deadlock or the cycle-cap safety
// net; partial results accompany them.
func (c *Core) Run(maxCommit uint64) (metrics.Results, error) {
	if maxCommit == 0 {
		return c.Results(), fmt.Errorf("pipeline: zero commit budget")
	}
	maxCycles := c.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = int64(maxCommit)*400 + 10_000_000
	}
	stallLimit := c.cfg.StallLimit
	if stallLimit == 0 {
		stallLimit = 100_000
	}
	for {
		quiet := c.stepCycle()
		if c.sanErr != nil {
			return c.Results(), fmt.Errorf("pipeline: invariant violation: %w", c.sanErr)
		}
		for t := range c.threads {
			if c.threads[t].committed-c.commitBase[t] >= maxCommit {
				return c.Results(), nil
			}
		}
		if c.cycle-c.lastCommitCycle > stallLimit {
			return c.Results(), fmt.Errorf("%w: no commit for %d cycles (policy %s, deadlock mech %s)",
				ErrDeadlock, stallLimit, c.cfg.Policy, c.cfg.Deadlock)
		}
		if c.cycle >= maxCycles {
			return c.Results(), fmt.Errorf("pipeline: cycle cap %d reached with %d committed",
				maxCycles, c.totalCommitted())
		}
		if quiet && c.eventWakeup {
			// Bound the jump so the deadlock and cycle-cap checks above
			// still fire at exactly the cycle a plain loop reaches them.
			limit := c.lastCommitCycle + stallLimit + 1
			if maxCycles < limit {
				limit = maxCycles
			}
			c.fastForward(limit)
		}
	}
}

// Step advances the machine one cycle, in reverse pipeline order so each
// stage observes the previous cycle's state of its upstream neighbor.
//
//smt:hotpath
func (c *Core) Step() { c.stepCycle() }

// stageMask is the due-stage bitmask the gated step builds as it walks
// the pipeline: bit set = the stage's activity horizon has arrived and
// the stage runs this cycle.
type stageMask uint8

const (
	stageWriteback stageMask = 1 << iota
	stageCommit
	stageIssue
	stageDispatch
	stageRename
	stageFetch
)

// stepCycle is Step, additionally reporting whether the cycle was
// quiescent: no completion drained, nothing committed, issued,
// dispatched or renamed, no watchdog flush, and no thread eligible to
// fetch. Run uses a quiescent cycle as the fast-forward trigger (see
// fastForward).
//
// Three bodies implement it. Event-wakeup mode steps through stepGated,
// which consults the per-stage activity horizons and runs only the due
// stages. The polling mode (and a forcePlain event core) steps through
// stepPlain, the ungated reference walk. Any core with a sanitizer
// attached steps through stepVerify, which is the plain walk plus a
// cycle-for-cycle cross-check of every horizon predicate — so the whole
// sanitized test suite differentially validates the gating, and a stale
// horizon is caught within one cycle.
//
//smt:hotpath
func (c *Core) stepCycle() bool {
	if c.san != nil {
		return c.stepVerify()
	}
	if c.eventWakeup && !c.forcePlain {
		return c.stepGated()
	}
	return c.stepPlain()
}

// stepGated runs one cycle consulting the due-stage bitmask. Each
// stage's due bit is evaluated immediately before the stage would run —
// never earlier — because upstream stages feed the predicates within the
// cycle: writeback sets commitable bits commit consumes, its broadcasts
// grow the ready list issue consumes, and a watchdog flush rewrites the
// front-end state rename and fetch consult. A skipped stage's only
// replayed state is its round-robin rotation (commit, rename) or
// selector tick (fetch); everything else it would have touched is
// provably untouched by the horizon's contract.
//
//smt:hotpath
func (c *Core) stepGated() bool {
	c.cycle++
	var due stageMask
	popped := 0
	if c.events.hasDue(c.cycle) {
		due |= stageWriteback
		popped = c.writeback()
	}
	committed := 0
	if !c.commitSkip || c.commitable != 0 {
		due |= stageCommit
		committed = c.commit()
	} else {
		c.commitRR++
		if c.commitRR == c.nthreads {
			c.commitRR = 0
		}
	}
	issued := 0
	if c.disp.DAB().Len() != 0 || c.q.ReadyLen() != 0 {
		due |= stageIssue
		issued = c.issue()
	}
	dispatched := 0
	if c.dispFrozen && popped == 0 && committed == 0 && issued == 0 {
		c.disp.ReplayIdle(1)
	} else {
		due |= stageDispatch
		dispatched = c.disp.Run(c.cycle, c.q, c.rf, c.robs)
	}
	fired := false
	if c.wdog != nil && c.wdog.Tick(dispatched > 0) {
		c.flushAll()
		fired = true
	}
	renamed := 0
	if c.renameHorizon <= c.cycle {
		due |= stageRename
		renamed = c.rename()
	} else {
		c.renameRR++
		if c.renameRR == c.nthreads {
			c.renameRR = 0
		}
	}
	// The stages that feed dispatch and ran after it this cycle (flush,
	// rename) unfreeze it; writeback/commit/issue run before dispatch
	// next cycle and are checked there.
	c.dispFrozen = dispatched == 0 && !fired && renamed == 0
	fetchable := false
	if c.fetchHorizon <= c.cycle {
		due |= stageFetch
		fetchable = c.fetch()
	} else {
		c.sel.SkipIdle(1)
	}
	c.lastDue = due
	return popped == 0 && committed == 0 && issued == 0 && dispatched == 0 &&
		!fired && renamed == 0 && !fetchable
}

// stepPlain is the ungated reference walk: every stage runs every cycle.
// It is the polling mode's step and the horizon differential tests'
// reference (forcePlain).
//
//smt:hotpath
func (c *Core) stepPlain() bool {
	c.cycle++
	popped := c.writeback()
	committed := c.commit()
	issued := c.issue()
	dispatched := 0
	if c.dispFrozen && popped == 0 && committed == 0 && issued == 0 {
		c.disp.ReplayIdle(1)
	} else {
		dispatched = c.disp.Run(c.cycle, c.q, c.rf, c.robs)
	}
	fired := false
	if c.wdog != nil && c.wdog.Tick(dispatched > 0) {
		c.flushAll()
		fired = true
	}
	renamed := c.rename()
	c.dispFrozen = c.eventWakeup && dispatched == 0 && !fired && renamed == 0
	fetchable := c.fetch()
	return popped == 0 && committed == 0 && issued == 0 && dispatched == 0 &&
		!fired && renamed == 0 && !fetchable
}

// stepVerify is the sanitizer's step: the plain walk, with every horizon
// predicate evaluated at exactly the point stepGated would consult it
// and cross-checked against the stage's actual behavior. A predicate
// that says "idle" while the stage performs work is a stale horizon —
// the gated step would have skipped real work — and is reported through
// the sanitizer error channel the same cycle. State evolution is
// bit-identical to both stepGated and stepPlain (skipped-stage rotation
// replays match what the stages do when idle), so sanitized runs remain
// valid differential references.
//
//smt:coldpath — diagnostic walk: runs only with a sanitizer attached, never in measured configurations
func (c *Core) stepVerify() bool {
	c.cycle++
	gated := c.eventWakeup && !c.forcePlain
	var due stageMask
	dueWB := !gated || c.events.hasDue(c.cycle)
	popped := c.writeback()
	if !dueWB && popped != 0 {
		c.horizonFail("writeback", popped)
	}
	dueCm := !gated || !c.commitSkip || c.commitable != 0
	committed := c.commit()
	if !dueCm && committed != 0 {
		c.horizonFail("commit", committed)
	}
	dueIs := !gated || c.disp.DAB().Len() != 0 || c.q.ReadyLen() != 0
	issued := c.issue()
	if !dueIs && issued != 0 {
		c.horizonFail("issue", issued)
	}
	if dueWB {
		due |= stageWriteback
	}
	if dueCm {
		due |= stageCommit
	}
	if dueIs {
		due |= stageIssue
	}
	dispatched := 0
	if c.dispFrozen && popped == 0 && committed == 0 && issued == 0 {
		c.disp.ReplayIdle(1)
	} else {
		dispatched = c.disp.Run(c.cycle, c.q, c.rf, c.robs)
	}
	fired := false
	if c.wdog != nil && c.wdog.Tick(dispatched > 0) {
		c.flushAll()
		fired = true
	}
	dueRn := !gated || c.renameHorizon <= c.cycle
	renamed := c.rename()
	if !dueRn && renamed != 0 {
		c.horizonFail("rename", renamed)
	}
	c.dispFrozen = c.eventWakeup && dispatched == 0 && !fired && renamed == 0
	dueFt := !gated || c.fetchHorizon <= c.cycle
	fetchable := c.fetch()
	if !dueFt && fetchable {
		c.horizonFail("fetch", 1)
	}
	if dispatched > 0 || !c.dispFrozen {
		due |= stageDispatch
	}
	if dueRn {
		due |= stageRename
	}
	if dueFt {
		due |= stageFetch
	}
	c.lastDue = due
	c.sanitize()
	return popped == 0 && committed == 0 && issued == 0 && dispatched == 0 &&
		!fired && renamed == 0 && !fetchable
}

// horizonFail reports a stale stage horizon: the gated step would have
// skipped a stage that had real work.
//
//smt:coldpath — fires only on a detected horizon violation under the sanitizer
func (c *Core) horizonFail(stage string, work int) {
	err := fmt.Errorf("pipeline: cycle %d: stale %s horizon: stage gated idle but performed %d units of work",
		c.cycle, stage, work)
	if c.sanErr == nil {
		c.sanErr = err
	}
	if c.sanPanic {
		panic(err)
	}
}

// fastForward runs after a quiescent cycle: with no due completions, an
// empty ready list and DAB, no completed ROB head, and no thread able to
// fetch or rename, every following cycle is an exact replay of the one
// just executed until some stimulus arrives — the next completion event,
// a fetch-block or redirect expiry, a fetch-queue head reaching its
// rename-ready cycle, or the watchdog expiry. The machine therefore
// jumps to the cycle before the earliest stimulus (also bounded by
// `limit`, the caller's deadlock/cycle-cap deadline) and replays the
// skipped cycles' only state: the occupancy sample, the dispatcher's
// stall accounting, the watchdog countdown, and the four round-robin
// rotations. Event-wakeup mode only — the polling path stays a plain
// cycle loop so the differential tests compare against an independent
// reference.
//
//smt:hotpath
func (c *Core) fastForward(limit int64) {
	if c.disp.DAB().Len() != 0 || c.q.ReadyLen() != 0 {
		// A waiting instruction retries issue every cycle against
		// time-dependent conditions (FU frees, LSQ stores, MSHRs).
		return
	}
	for _, r := range c.robs {
		if u := r.Head(); u != nil && u.Completed {
			return // commit stopped on budget, not on completion
		}
	}
	next := limit
	if due, ok := c.events.nextDue(c.cycle); ok && due < next {
		next = due
	}
	if c.wdog != nil {
		if fire := c.cycle + c.wdog.Remaining(); fire < next {
			next = fire
		}
	}
	for t := range c.threads {
		ts := &c.threads[t]
		if ts.blocked > c.cycle && ts.blocked < next {
			next = ts.blocked
		}
		if ts.qLen > 0 {
			if ra := ts.fetchQ[ts.qHead].readyAt; ra > c.cycle && ra < next {
				next = ra
			}
		}
	}
	k := next - 1 - c.cycle
	if k <= 0 {
		return
	}
	c.cycle += k
	c.disp.ReplayIdle(k)
	if c.wdog != nil {
		c.wdog.SkipIdle(k)
	}
	kt := int(k % int64(c.nthreads))
	c.commitRR = (c.commitRR + kt) % c.nthreads
	c.renameRR = (c.renameRR + kt) % c.nthreads
	c.sel.SkipIdle(k)
}

// writeback drains due completion events: results become visible to the
// scheduler and the instructions commit-eligible. Returns the number of
// events drained (stale ones included — they mutate the wheel).
//
//smt:hotpath
func (c *Core) writeback() int {
	popped := 0
	for {
		id, seq, ok := c.events.popDue(c.cycle)
		if !ok {
			break
		}
		popped++
		u := c.bank.Get(id)
		if u.Squashed || u.GSeq != seq {
			continue // annulled by a flush, or the slot was recycled
		}
		u.Completed = true
		u.CompletedAt = c.cycle
		if c.robs[u.Thread].Head() == u {
			c.commitable |= 1 << uint(u.Thread)
		}
		c.rf.SetReady(u.Dest)
		if u.Dest.Valid() {
			c.broadcasts++ // one wakeup-bus tag broadcast
		}
		c.disp.OnComplete(u)
		if u.IsLoad() {
			c.noteLoadDone(u)
		}
		if u.IsBranch() && u.Mispred {
			// Resolution: the front end may refetch down the correct
			// path after the redirect penalty.
			b := c.cycle + c.cfg.RedirectPenalty
			c.threads[u.Thread].blocked = b
			if b < c.fetchHorizon {
				c.fetchHorizon = b
			}
		}
	}
	return popped
}

// commit retires completed instructions in program order per thread, up
// to the machine width across threads; the scan origin rotates for
// fairness.
//
//smt:hotpath
func (c *Core) commit() int {
	committed := 0
	budget := c.cfg.Width
	t := c.commitRR
	c.commitRR++
	if c.commitRR == c.nthreads {
		c.commitRR = 0
	}
	for i := 0; i < c.nthreads && budget > 0; i, t = i+1, t+1 {
		if t >= c.nthreads {
			t = 0
		}
		if c.commitSkip && c.commitable&(1<<uint(t)) == 0 {
			continue
		}
		for budget > 0 {
			u := c.robs[t].Head()
			if u == nil || !u.Completed {
				c.commitable &^= 1 << uint(t)
				break
			}
			c.robs[t].PopHead()
			if u.Inst.Class.IsMem() {
				c.lsqs[t].Release(u)
			}
			if u.IsStore() {
				c.hier.StoreCommit(u.Inst.Addr)
			}
			c.rats[t].Commit(u)
			c.threads[t].committed++
			c.lastCommitCycle = c.cycle
			if c.onCommit != nil {
				c.onCommit(u)
			}
			budget--
			committed++
		}
	}
	return committed
}

// issue selects up to width ready instructions. Instructions in the
// deadlock-avoidance buffer take precedence; while the DAB is occupied,
// IQ selection is disabled (the paper's evaluated arbitration).
//
//smt:hotpath
func (c *Core) issue() int {
	issued := 0
	budget := c.cfg.Width
	dab := c.disp.DAB()
	if dab.Len() > 0 {
		c.scratch = append(c.scratch[:0], dab.Entries()...)
		for _, id := range c.scratch {
			if budget == 0 {
				break
			}
			//smt:trusted-id — dab.Entries() lists only current occupants; Remove below keeps the set exact within this loop
			u := c.bank.Get(id)
			if !c.fus.TryIssue(u.Inst.Class, c.cycle) {
				continue
			}
			dab.Remove(u)
			ld := lsq.LoadGoesToCache
			if u.IsLoad() {
				ld = c.lsqs[u.Thread].CheckLoad(u)
			}
			c.issueUOp(u, false, ld)
			budget--
			issued++
		}
		return issued
	}
	for _, id := range c.q.ReadyOrdered(c.rf, c.scratch, c.cfg.Select, c.cycle) {
		if budget == 0 {
			break
		}
		u := c.bank.Get(id)
		if !u.InIQ || u.Squashed {
			// A gate flush triggered by an earlier issue this cycle
			// removed this instruction from the queue.
			continue
		}
		ld := lsq.LoadGoesToCache
		if u.IsLoad() {
			if ld = c.lsqs[u.Thread].CheckLoad(u); ld == lsq.LoadBlocked {
				continue // older same-address store data not yet produced
			}
			if c.cfg.MSHRs > 0 && c.inFlightMisses >= c.cfg.MSHRs &&
				!c.hier.L1D.Contains(u.Inst.Addr) {
				c.mshrStallEvents++
				continue // no miss-status register free; retry next cycle
			}
		}
		if !c.fus.TryIssue(u.Inst.Class, c.cycle) {
			continue
		}
		c.q.Remove(u)
		c.issueUOp(u, true, ld)
		budget--
		issued++
	}
	return issued
}

// issueUOp starts execution: the result (and wakeup of dependents) is
// scheduled at issue + latency, which lets single-cycle dependents issue
// back to back; loads add the cache hierarchy's miss penalty unless they
// forward from an older store. ld is the caller's already-computed LSQ
// disposition for loads (callers check it anyway, so recomputing the
// store scan here would double the per-issue LSQ cost); it is ignored
// for non-loads.
//
//smt:hotpath
func (c *Core) issueUOp(u *uop.UOp, fromIQ bool, ld lsq.LoadDisposition) {
	u.Issued = true
	u.IssuedAt = c.cycle
	if fromIQ {
		c.iqResidencySum += uint64(c.cycle - u.DispatchedAt)
		c.iqIssued++
	} else {
		c.dabIssues++
	}
	lat := int64(isa.Latency[u.Inst.Class])
	if u.IsLoad() && ld != lsq.LoadForwards {
		extra := c.hier.LoadLatencyExtra(u.Inst.Addr)
		lat += int64(extra)
		c.noteLoadIssue(u, extra)
	}
	if lat < 1 {
		lat = 1
	}
	c.events.schedule(c.cycle, c.cycle+lat, u.GSeq, u.ID)
}

// rename consumes front-end entries in program order per thread: operands
// are renamed and ROB/LSQ entries allocated (always in order — the
// invariant out-of-order dispatch relies on), then the instruction joins
// its thread's dispatch buffer.
//
//smt:hotpath
func (c *Core) rename() int {
	renamed := 0
	budget := c.cfg.Width
	// nextH re-derives the stage's activity horizon as the scan goes: the
	// earliest head readyAt among waiting threads, or "next cycle" as
	// soon as any thread is consumable-but-blocked (downstream space can
	// free at any cycle) or the budget runs out. A thread with an empty
	// fetch queue contributes nothing — the push that refills it lowers
	// the horizon (see fetchThread).
	nextH := int64(farFuture)
	t := c.renameRR
	c.renameRR++
	if c.renameRR == c.nthreads {
		c.renameRR = 0
	}
	for i := 0; i < c.nthreads; i, t = i+1, t+1 {
		if budget == 0 {
			nextH = c.cycle + 1
			break
		}
		if t >= c.nthreads {
			t = 0
		}
		ts := &c.threads[t]
		for {
			e := ts.fetchQPeek()
			if e == nil {
				break
			}
			if e.readyAt > c.cycle {
				if e.readyAt < nextH {
					nextH = e.readyAt
				}
				break
			}
			if budget == 0 {
				nextH = c.cycle + 1
				break
			}
			if !c.disp.Buffer(t).CanPush() || !c.robs[t].CanAlloc(1) {
				nextH = c.cycle + 1
				break
			}
			isMem := e.inst.Class.IsMem()
			if isMem && !c.lsqs[t].CanAlloc(1) {
				nextH = c.cycle + 1
				break
			}
			if e.inst.HasDest() && !c.rf.CanAlloc(e.inst.Dest.Class, 1) {
				nextH = c.cycle + 1
				break
			}
			// The ROB slot is the uop's identity: allocating the entry
			// hands back the freshly reset record to fill. Inst is copied
			// straight from the fetch-queue slot — exactly once.
			u := c.robs[t].Alloc()
			u.Inst = e.inst
			u.Thread = t
			u.GSeq = c.gseq
			u.RenamedAt = c.cycle
			u.PredTaken = e.predTaken
			u.PredTarget = e.predTarget
			u.Mispred = e.mispred
			ts.fetchQPop()
			c.gseq++
			c.rats[t].Rename(u)
			if c.eventWakeup {
				// Subscribe to each pending source's consumer bitmap; the
				// counter equals NumSrcNotReady at this instant and every
				// later tag broadcast keeps it in sync.
				nr := int8(0)
				for _, s := range u.Srcs {
					if c.rf.Watch(s, u.ID) {
						nr++
					}
				}
				c.bank.NotReady[u.ID] = nr
			}
			if isMem {
				c.lsqs[t].Alloc(u)
			}
			c.disp.Buffer(t).Push(u)
			budget--
			renamed++
		}
	}
	c.renameHorizon = nextH
	if renamed > 0 {
		// Freed fetch-queue slots may re-enable a queue-full thread's
		// fetch this very cycle (fetch runs after rename).
		c.fetchHorizon = c.cycle
	}
	return renamed
}

// fetch pulls instructions from up to FetchThreads thread traces chosen
// by the fetch policy, up to the machine width in total. Fetch for a
// thread breaks on a taken branch, a mispredicted branch (until
// resolution), an I-cache miss (until the block arrives), or a full
// fetch queue. It reports whether any thread was eligible at all — an
// eligible thread always mutates state (it either fetches or starts an
// I-cache block fill), so eligibility is the fast-forward's "fetch is
// active" signal.
//
//smt:hotpath
func (c *Core) fetch() bool {
	budget := c.cfg.Width
	threadsUsed := 0
	active := false
	for _, t := range c.sel.Order(c.runnableFn, c.icountFn) {
		if budget == 0 || threadsUsed == c.cfg.FetchThreads {
			break
		}
		active = true
		budget -= c.fetchThread(t, budget)
		threadsUsed++
	}
	c.recomputeFetchHorizon(active)
	return active
}

// recomputeFetchHorizon re-derives the fetch stage's activity horizon
// after a fetch pass. An active pass always mutates state, so the stage
// must run again next cycle. An idle pass means every thread was
// blocked, queue-full, or fetch-gated: the blocked expiries bound the
// horizon directly; queue-full and gate-blocked threads contribute
// nothing because the events that release them lower fetchHorizon at
// the source (rename pops a slot; noteLoadDone relaxes the gate;
// mispredict resolution and flush recovery reset blocked).
//
//smt:hotpath
func (c *Core) recomputeFetchHorizon(active bool) {
	if active {
		c.fetchHorizon = c.cycle + 1
		return
	}
	nextH := int64(farFuture)
	for t := range c.threads {
		if b := c.threads[t].blocked; b > c.cycle && b < nextH {
			nextH = b
		}
	}
	c.fetchHorizon = nextH
}

//smt:hotpath
func (c *Core) fetchThread(t, budget int) int {
	ts := &c.threads[t]
	lineMask := c.l1iLineMask
	n := 0
	for n < budget {
		if ts.fetchQFull() {
			break
		}
		in, prefetched := ts.nextInst()
		if !prefetched {
			blk := in.PC & lineMask
			if !ts.lastBlockValid || blk != ts.lastBlock {
				ts.lastBlock = blk
				ts.lastBlockValid = true
				if extra := c.hier.FetchLatencyExtra(in.PC); extra > 0 {
					// The block is being filled; hold the instruction
					// and resume when it arrives.
					ts.pendingInst = in
					ts.pendingValid = true
					ts.blocked = c.cycle + int64(extra)
					break
				}
			}
		}
		e := ts.fetchQPushSlot()
		e.inst = in
		e.readyAt = c.cycle + c.cfg.FrontEndDelay
		if e.readyAt < c.renameHorizon {
			// A refilled fetch queue re-arms the rename stage once the
			// front-end delay elapses.
			c.renameHorizon = e.readyAt
		}
		e.predTaken, e.predTarget, e.mispred = false, 0, false
		if in.Class == isa.Branch {
			pt, ptg := c.preds[t].Predict(in.PC)
			correct := c.preds[t].Resolve(in.PC, pt, ptg, in.Taken, in.Target)
			e.predTaken, e.predTarget, e.mispred = pt, ptg, !correct
			n++
			if !correct {
				// Fetch stalls until the branch resolves in execution.
				ts.blocked = farFuture
				ts.lastBlockValid = false
				break
			}
			if in.Taken {
				ts.lastBlockValid = false // next fetch starts a new block
				break
			}
			continue
		}
		n++
	}
	return n
}

// flushAll implements the watchdog recovery: every thread's in-flight
// instructions (renamed and fetched-but-unrenamed alike) are squashed,
// rename state rewinds to the committed architectural map, and the
// squashed instructions are queued for refetch in program order.
//
//smt:coldpath — watchdog recovery: fires on detected deadlock, orders of magnitude off the cycle cadence
func (c *Core) flushAll() {
	for t := 0; t < c.nthreads; t++ {
		ts := &c.threads[t]
		c.disp.DrainThread(t)
		c.q.DrainThread(t)
		robUops := c.robs[t].DrainAll()
		c.lsqs[t].DrainAll()
		c.rats[t].SquashAll()

		insts := make([]isa.Inst, 0, len(robUops)+ts.qLen+1+len(ts.replay))
		for _, u := range robUops {
			u.Squashed = true
			c.unwatchSquashed(u)
			if u.Dest.Valid() {
				c.rf.Free(u.Dest)
			}
			c.forgetLoad(u)
			insts = append(insts, u.Inst)
		}
		for ts.qLen > 0 {
			insts = append(insts, ts.fetchQPeek().inst)
			ts.fetchQPop()
		}
		if ts.pendingValid {
			insts = append(insts, ts.pendingInst)
			ts.pendingValid = false
		}
		ts.replay = append(insts, ts.replay...)
		ts.blocked = c.cycle + c.cfg.FlushRefill
		ts.lastBlockValid = false
	}
	if b := c.cycle + c.cfg.FlushRefill; b < c.fetchHorizon {
		c.fetchHorizon = b
	}
}

// unwatchSquashed drops a squashed uop's pending wakeup registrations
// from the consumer bitmaps so its bank slot can be recycled without a
// later broadcast decrementing the new occupant's counter. Idempotent;
// no-op under polling wakeup (nothing ever watches).
func (c *Core) unwatchSquashed(u *uop.UOp) {
	if !c.eventWakeup {
		return
	}
	for _, s := range u.Srcs {
		c.rf.Unwatch(s, u.ID)
	}
}

func (c *Core) totalCommitted() uint64 {
	var sum uint64
	for t := range c.threads {
		sum += c.threads[t].committed - c.commitBase[t]
	}
	return sum
}

// Results assembles the metrics of the run so far.
//
// The power accumulator (power.Events) is filled here too, but as a
// one-shot composite literal, which statescope permits without a grant:
// only incremental field writes need a declared stage.
//
//smt:stage metrics — results assembly is the single writer that fills the accumulator it returns
func (c *Core) Results() metrics.Results {
	cycles := c.cycle - c.statsCycleBase
	r := metrics.Results{
		Cycles:    cycles,
		Committed: c.totalCommitted(),
	}
	if cycles > 0 {
		r.IPC = float64(r.Committed) / float64(cycles)
	}
	ds := c.disp.Stats()
	for t := range c.threads {
		ts := &c.threads[t]
		tr := metrics.ThreadResult{
			Benchmark:      ts.name,
			Committed:      ts.committed - c.commitBase[t],
			MispredictRate: c.preds[t].MispredictRate(),
			NDIBlockCycles: ds.NDIBlockCycles[t],
		}
		if cycles > 0 {
			tr.IPC = float64(ts.committed-c.commitBase[t]) / float64(cycles)
		}
		r.Threads = append(r.Threads, tr)
	}
	if ds.Cycles > 0 {
		r.DispatchStallAllNDI = float64(ds.StallAllNDI) / float64(ds.Cycles)
		r.DispatchStallNDIWeak = float64(ds.StallNDIWeak) / float64(ds.Cycles)
		r.DispatchStallAllAny = float64(ds.StallAllAny) / float64(ds.Cycles)
	}
	if c.iqIssued > 0 {
		r.IQResidency = float64(c.iqResidencySum) / float64(c.iqIssued)
	}
	r.IQOccupancy = c.q.MeanOccupancy()
	if ds.PiledSampled > 0 {
		r.HDIPiledFrac = float64(ds.PiledHDI) / float64(ds.PiledSampled)
	}
	if ds.HDIDispatched > 0 {
		r.HDIDepOnNDIFrac = float64(ds.HDIDepOnNDI) / float64(ds.HDIDispatched)
	}
	r.HDIDispatched = ds.HDIDispatched
	r.DABInserts = c.disp.DAB().Inserts
	r.GateFlushes = c.gateFlushes
	r.MSHRStallEvents = c.mshrStallEvents
	if c.wdog != nil {
		r.WatchdogFlushes = c.wdog.Expiries
	}
	// Analytical scheduler energy (package power), using the measured
	// event counts and the queue's comparator inventory.
	part := c.q.Partition()
	ev := power.Events{
		Cycles:        cycles,
		Committed:     r.Committed,
		TagBroadcasts: c.broadcasts,
		DispatchesIQ:  c.q.Inserts - c.insertsBase,
		IssuedIQ:      c.iqIssued,
		DABAccesses:   (c.disp.DAB().Inserts - c.dabBase) + c.dabIssues,
		MeanOccupancy: r.IQOccupancy,
	}
	bd := power.Estimate(part, power.DefaultWeights(), ev)
	r.SchedulerEnergyPerInst = bd.PerInstruction(r.Committed)
	r.SchedulerEDP = power.EDP(bd, ev)
	r.Comparators = power.Comparators(part)

	r.L1DMissRate = c.hier.L1D.Stats().MissRate()
	r.L2MissRate = c.hier.L2.Stats().MissRate()
	r.L1IMissRate = c.hier.L1I.Stats().MissRate()
	return r
}
