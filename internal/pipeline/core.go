package pipeline

import (
	"fmt"
	"math"

	"smtsim/internal/bpred"
	"smtsim/internal/cache"
	"smtsim/internal/core"
	"smtsim/internal/fetch"
	"smtsim/internal/fu"
	"smtsim/internal/iq"
	"smtsim/internal/isa"
	"smtsim/internal/lsq"
	"smtsim/internal/metrics"
	"smtsim/internal/power"
	"smtsim/internal/regfile"
	"smtsim/internal/rename"
	"smtsim/internal/rob"
	"smtsim/internal/simsan"
	"smtsim/internal/uop"
)

// TraceReader supplies one thread's dynamic instruction stream. Streams
// are infinite; the run is bounded by the commit budget.
type TraceReader interface {
	Next() isa.Inst
}

// ThreadSpec binds a benchmark name to its trace for one hardware thread.
type ThreadSpec struct {
	Name   string
	Reader TraceReader
}

// farFuture blocks a thread's fetch until an event (branch resolution)
// re-enables it.
const farFuture = math.MaxInt64 / 2

// fetchEntry is one fetched instruction traversing the front end.
type fetchEntry struct {
	inst       isa.Inst
	readyAt    int64 // cycle at which rename may consume it
	predTaken  bool
	predTarget uint64
	mispred    bool
}

// threadState is the per-thread front-end and bookkeeping state.
type threadState struct {
	name   string
	stream TraceReader

	// replay holds instructions to refetch after a watchdog flush, in
	// program order, ahead of the stream.
	replay []isa.Inst
	// pendingInst is an instruction whose I-cache block is in flight;
	// pendingValid reports its presence. A value plus flag rather than a
	// pointer keeps the per-miss bookkeeping off the heap.
	pendingInst  isa.Inst
	pendingValid bool

	fetchQ  []fetchEntry
	qHead   int // fetchQ is a ring: qHead + qLen index into it
	qLen    int
	blocked int64 // cycle at which fetch may resume

	lastBlock      uint64
	lastBlockValid bool

	// Fetch-gating state (see gating.go).
	outstandingL1D int
	outstandingMem int
	gateLoad       *uop.UOp

	committed uint64
}

//smt:hotpath
func (ts *threadState) fetchQFull() bool { return ts.qLen == len(ts.fetchQ) }

//smt:hotpath
func (ts *threadState) fetchQPush(e fetchEntry) {
	if ts.fetchQFull() {
		panic("pipeline: fetch queue overflow")
	}
	ts.fetchQ[(ts.qHead+ts.qLen)%len(ts.fetchQ)] = e
	ts.qLen++
}

//smt:hotpath
func (ts *threadState) fetchQPeek() (fetchEntry, bool) {
	if ts.qLen == 0 {
		return fetchEntry{}, false
	}
	return ts.fetchQ[ts.qHead], true
}

//smt:hotpath
func (ts *threadState) fetchQPop() fetchEntry {
	e := ts.fetchQ[ts.qHead]
	ts.fetchQ[ts.qHead] = fetchEntry{}
	ts.qHead = (ts.qHead + 1) % len(ts.fetchQ)
	ts.qLen--
	return e
}

// nextInst supplies the next instruction to fetch: a block-miss leftover
// first, then the flush-replay queue, then the live trace. The bool
// reports whether it came from pendingInst (its I-cache access already
// happened).
//
//smt:hotpath
func (ts *threadState) nextInst() (isa.Inst, bool) {
	if ts.pendingValid {
		ts.pendingValid = false
		return ts.pendingInst, true
	}
	if len(ts.replay) > 0 {
		in := ts.replay[0]
		ts.replay = ts.replay[1:]
		return in, false
	}
	return ts.stream.Next(), false
}

// Core is the simulated SMT processor.
type Core struct {
	cfg      Config
	nthreads int
	cycle    int64
	gseq     uint64

	rf    *regfile.File
	rats  []*rename.Table
	robs  []*rob.ROB
	lsqs  []*lsq.LSQ
	q     *iq.Queue
	disp  *core.Dispatcher
	fus   *fu.Pools
	hier  *cache.Hierarchy
	btb   *bpred.BTB
	preds []*bpred.Predictor
	sel   *fetch.Selector
	wdog  *core.Watchdog

	threads []*threadState
	events  eventQueue
	scratch []*uop.UOp

	// san, when non-nil, re-validates the machine's structural
	// invariants after every cycle (Config.Sanitize, or any run inside
	// this package's tests). sanErr latches the first violation so Run
	// can surface it; sanPanic makes violations fail-stop (test mode).
	san      *simsan.Checker
	sanErr   error
	sanPanic bool

	// eventWakeup mirrors !cfg.PollingWakeup: writeback broadcasts to
	// per-register consumer lists instead of the scheduler re-polling.
	eventWakeup bool
	// pool recycles UOp records: commit and the flush paths return
	// retired/squashed UOps here and rename reuses them, eliminating the
	// one-allocation-per-instruction cost on the hot path. Stale
	// references to a recycled UOp (completion events, consumer-list
	// entries) identify themselves by GSeq mismatch.
	pool []*uop.UOp
	// runnableFn/icountFn are the fetch-policy callbacks, built once so
	// fetch() does not allocate two closures every cycle.
	runnableFn func(int) bool
	icountFn   func(int) int

	commitRR, renameRR int
	lastCommitCycle    int64
	onCommit           func(*uop.UOp)

	// Statistics baselines, set by Warmup so measurement excludes the
	// initialization period (the paper skips initialization with
	// SimPoints and measures the following 100M instructions).
	statsCycleBase int64
	commitBase     []uint64

	iqResidencySum  uint64
	iqIssued        uint64
	gateFlushes     uint64
	broadcasts      uint64
	inFlightMisses  int
	mshrStallEvents uint64
	dabIssues       uint64
	insertsBase     uint64
	dabBase         uint64
}

// New builds a core over the given configuration and thread workloads.
func New(cfg Config, specs []ThreadSpec) (*Core, error) {
	n := len(specs)
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:      cfg,
		nthreads: n,
		// Rename sequence numbers start at one so a reset UOp's zero GSeq
		// never matches a live token (see uop.Reset).
		gseq:    1,
		rf:      regfile.New(cfg.IntRegs, cfg.FpRegs),
		q:       iq.NewPartitioned(cfg.queuePartition(), n),
		disp:    core.NewDispatcher(cfg.Policy, cfg.Width, cfg.DispatchBufCap, n),
		fus:     fu.MustNew(fu.DefaultConfig()),
		hier:    cfg.Hierarchy,
		btb:     bpred.NewBTB(2048, 2),
		sel:     fetch.NewSelector(cfg.FetchPolicy, n),
		scratch: make([]*uop.UOp, 0, cfg.IQSize),
	}
	if c.hier == nil {
		c.hier = cache.DefaultHierarchy()
	}
	c.eventWakeup = !cfg.PollingWakeup
	if c.eventWakeup {
		c.q.SetEventWakeup(true)
		c.disp.SetEventWakeup(true)
	}
	c.runnableFn = func(t int) bool {
		ts := c.threads[t]
		return ts.blocked <= c.cycle && !ts.fetchQFull() && c.gateAllows(t)
	}
	c.icountFn = func(t int) int {
		return c.threads[t].qLen + c.disp.Buffer(t).Len() + c.q.ThreadCount(t)
	}
	switch cfg.Deadlock {
	case DeadlockWatchdog:
		c.wdog = core.NewWatchdog(cfg.WatchdogLimit)
		c.disp.SetDABEnabled(false)
	case DeadlockNone:
		c.disp.SetDABEnabled(false)
	}
	if cfg.PerThreadIQCap > 0 {
		c.disp.SetPerThreadCap(cfg.PerThreadIQCap)
	}
	for _, s := range specs {
		if s.Reader == nil {
			return nil, fmt.Errorf("pipeline: thread %q has nil trace", s.Name)
		}
		c.rats = append(c.rats, rename.New(c.rf))
		c.robs = append(c.robs, rob.New(cfg.ROBPerThread))
		c.lsqs = append(c.lsqs, lsq.New(cfg.LSQPerThread))
		c.preds = append(c.preds, bpred.New(c.btb))
		c.threads = append(c.threads, &threadState{
			name:   s.Name,
			stream: s.Reader,
			fetchQ: make([]fetchEntry, cfg.FetchQueueCap),
		})
	}
	c.commitBase = make([]uint64, n)
	if cfg.Sanitize || testSanitize {
		c.san = simsan.New(simsan.Machine{
			EventWakeup: c.eventWakeup,
			RF:          c.rf,
			IQ:          c.q,
			Disp:        c.disp,
			ROBs:        c.robs,
			RATs:        c.rats,
			LSQs:        c.lsqs,
		})
		// Violations inside the test suite fail-stop at the offending
		// cycle; explicitly requested sanitizing reports through Run.
		c.sanPanic = !cfg.Sanitize
	}
	return c, nil
}

// testSanitize force-enables the sanitizer for every core built by this
// package's test binary (set by an init in sanitize_test.go); it is
// always false in production builds.
var testSanitize bool

// Sanitizer returns the invariant checker, or nil when sanitizing is
// disabled.
func (c *Core) Sanitizer() *simsan.Checker { return c.san }

// SanitizerError returns the first invariant violation detected so far
// (nil when clean or when sanitizing is disabled). Run surfaces the same
// error; this accessor serves callers that drive Step directly.
func (c *Core) SanitizerError() error { return c.sanErr }

// sanitize runs the end-of-cycle invariant sweep.
func (c *Core) sanitize() {
	err := c.san.CheckCycle(c.cycle)
	if err == nil {
		return
	}
	if c.sanErr == nil {
		c.sanErr = err
	}
	if c.sanPanic {
		panic(err)
	}
}

// Cycle returns the current cycle number.
func (c *Core) Cycle() int64 { return c.cycle }

// Committed returns thread t's committed instruction count.
func (c *Core) Committed(t int) uint64 { return c.threads[t].committed }

// MaxCommitted returns the largest post-warmup commit count across the
// core's threads — the quantity the paper's stopping rule tests.
func (c *Core) MaxCommitted() uint64 {
	var max uint64
	for t, ts := range c.threads {
		if n := ts.committed - c.commitBase[t]; n > max {
			max = n
		}
	}
	return max
}

// Dispatcher exposes the dispatch stage (tests and examples inspect its
// statistics and DAB).
func (c *Core) Dispatcher() *core.Dispatcher { return c.disp }

// RegFile exposes the physical register file for invariant checks.
func (c *Core) RegFile() *regfile.File { return c.rf }

// RenameTable exposes thread t's rename table for invariant checks.
func (c *Core) RenameTable(t int) *rename.Table { return c.rats[t] }

// IQ exposes the issue queue for tests.
func (c *Core) IQ() *iq.Queue { return c.q }

// ROB exposes thread t's reorder buffer for invariant checks.
func (c *Core) ROB(t int) *rob.ROB { return c.robs[t] }

// SetCommitHook installs fn to observe every committed instruction in
// commit order. Intended for instrumentation and tests; fn must not
// mutate the UOp, and must not retain it — the record is recycled into
// the rename pool the moment fn returns.
func (c *Core) SetCommitHook(fn func(*uop.UOp)) { c.onCommit = fn }

// ErrDeadlock is returned (wrapped) when the safety net detects that no
// instruction committed for the configured stall limit.
var ErrDeadlock = fmt.Errorf("pipeline: deadlock detected")

// Warmup advances the machine until any thread commits n instructions,
// then resets every statistic while keeping all microarchitectural state
// (caches, predictors, in-flight instructions) warm. It mirrors the
// paper's methodology of skipping each benchmark's initialization before
// measuring. Warmup may be called at most once, before Run.
func (c *Core) Warmup(n uint64) error {
	if n == 0 {
		return nil
	}
	if _, err := c.Run(n); err != nil {
		return fmt.Errorf("pipeline: warmup: %w", err)
	}
	c.disp.ResetStats()
	c.q.ResetStats()
	for _, cc := range []interface{ ResetStats() }{c.hier.L1I, c.hier.L1D, c.hier.L2} {
		cc.ResetStats()
	}
	for _, p := range c.preds {
		p.ResetStats()
	}
	if c.wdog != nil {
		c.wdog.ResetStats()
	}
	c.iqResidencySum, c.iqIssued = 0, 0
	c.gateFlushes = 0
	c.mshrStallEvents = 0
	c.broadcasts, c.dabIssues = 0, 0
	c.insertsBase = c.q.Inserts
	c.dabBase = c.disp.DAB().Inserts
	c.statsCycleBase = c.cycle
	for t, ts := range c.threads {
		c.commitBase[t] = ts.committed
	}
	return nil
}

// Run advances the machine until any thread commits maxCommit
// instructions (the paper's stopping rule) and returns the collected
// results. Errors indicate a detected deadlock or the cycle-cap safety
// net; partial results accompany them.
func (c *Core) Run(maxCommit uint64) (metrics.Results, error) {
	if maxCommit == 0 {
		return c.Results(), fmt.Errorf("pipeline: zero commit budget")
	}
	maxCycles := c.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = int64(maxCommit)*400 + 10_000_000
	}
	stallLimit := c.cfg.StallLimit
	if stallLimit == 0 {
		stallLimit = 100_000
	}
	for {
		c.Step()
		if c.sanErr != nil {
			return c.Results(), fmt.Errorf("pipeline: invariant violation: %w", c.sanErr)
		}
		for t, ts := range c.threads {
			if ts.committed-c.commitBase[t] >= maxCommit {
				return c.Results(), nil
			}
		}
		if c.cycle-c.lastCommitCycle > stallLimit {
			return c.Results(), fmt.Errorf("%w: no commit for %d cycles (policy %s, deadlock mech %s)",
				ErrDeadlock, stallLimit, c.cfg.Policy, c.cfg.Deadlock)
		}
		if c.cycle >= maxCycles {
			return c.Results(), fmt.Errorf("pipeline: cycle cap %d reached with %d committed",
				maxCycles, c.totalCommitted())
		}
	}
}

// Step advances the machine one cycle, in reverse pipeline order so each
// stage observes the previous cycle's state of its upstream neighbor.
//
//smt:hotpath
func (c *Core) Step() {
	c.cycle++
	c.writeback()
	c.commit()
	c.issue()
	dispatched := c.disp.Run(c.cycle, c.q, c.rf, c.robs)
	if c.wdog != nil && c.wdog.Tick(dispatched > 0) {
		c.flushAll()
	}
	c.rename()
	c.fetch()
	c.q.Sample()
	if c.san != nil {
		c.sanitize()
	}
}

// writeback drains due completion events: results become visible to the
// scheduler and the instructions commit-eligible.
//
//smt:hotpath
func (c *Core) writeback() {
	for u := c.events.popDue(c.cycle); u != nil; u = c.events.popDue(c.cycle) {
		u.Completed = true
		u.CompletedAt = c.cycle
		c.rf.SetReady(u.Dest)
		if u.Dest.Valid() {
			c.broadcasts++ // one wakeup-bus tag broadcast
		}
		c.disp.OnComplete(u)
		if u.IsLoad() {
			c.noteLoadDone(u)
		}
		if u.IsBranch() && u.Mispred {
			// Resolution: the front end may refetch down the correct
			// path after the redirect penalty.
			c.threads[u.Thread].blocked = c.cycle + c.cfg.RedirectPenalty
		}
	}
}

// commit retires completed instructions in program order per thread, up
// to the machine width across threads; the scan origin rotates for
// fairness.
//
//smt:hotpath
func (c *Core) commit() {
	budget := c.cfg.Width
	start := c.commitRR
	c.commitRR = (c.commitRR + 1) % c.nthreads
	for i := 0; i < c.nthreads && budget > 0; i++ {
		t := (start + i) % c.nthreads
		for budget > 0 {
			u := c.robs[t].Head()
			if u == nil || !u.Completed {
				break
			}
			c.robs[t].PopHead()
			if u.Inst.Class.IsMem() {
				c.lsqs[t].Release(u)
			}
			if u.IsStore() {
				c.hier.StoreCommit(u.Inst.Addr)
			}
			c.rats[t].Commit(u)
			c.threads[t].committed++
			c.lastCommitCycle = c.cycle
			if c.onCommit != nil {
				c.onCommit(u)
			}
			c.freeUOp(u)
			budget--
		}
	}
}

// issue selects up to width ready instructions. Instructions in the
// deadlock-avoidance buffer take precedence; while the DAB is occupied,
// IQ selection is disabled (the paper's evaluated arbitration).
//
//smt:hotpath
func (c *Core) issue() {
	budget := c.cfg.Width
	dab := c.disp.DAB()
	if dab.Len() > 0 {
		c.scratch = append(c.scratch[:0], dab.Entries()...)
		for _, u := range c.scratch {
			if budget == 0 {
				break
			}
			if !c.fus.TryIssue(u.Inst.Class, c.cycle) {
				continue
			}
			dab.Remove(u)
			c.issueUOp(u, false)
			budget--
		}
		return
	}
	for _, u := range c.q.ReadyOrdered(c.rf, c.scratch, c.cfg.Select, c.cycle) {
		if budget == 0 {
			break
		}
		if !u.InIQ || u.Squashed {
			// A gate flush triggered by an earlier issue this cycle
			// removed this instruction from the queue.
			continue
		}
		if u.IsLoad() {
			if c.lsqs[u.Thread].CheckLoad(u) == lsq.LoadBlocked {
				continue // older same-address store data not yet produced
			}
			if c.cfg.MSHRs > 0 && c.inFlightMisses >= c.cfg.MSHRs &&
				!c.hier.L1D.Contains(u.Inst.Addr) {
				c.mshrStallEvents++
				continue // no miss-status register free; retry next cycle
			}
		}
		if !c.fus.TryIssue(u.Inst.Class, c.cycle) {
			continue
		}
		c.q.Remove(u)
		c.issueUOp(u, true)
		budget--
	}
}

// issueUOp starts execution: the result (and wakeup of dependents) is
// scheduled at issue + latency, which lets single-cycle dependents issue
// back to back; loads add the cache hierarchy's miss penalty unless they
// forward from an older store.
//
//smt:hotpath
func (c *Core) issueUOp(u *uop.UOp, fromIQ bool) {
	u.Issued = true
	u.IssuedAt = c.cycle
	if fromIQ {
		c.iqResidencySum += uint64(c.cycle - u.DispatchedAt)
		c.iqIssued++
	} else {
		c.dabIssues++
	}
	lat := int64(isa.Latency[u.Inst.Class])
	if u.IsLoad() && c.lsqs[u.Thread].CheckLoad(u) != lsq.LoadForwards {
		extra := c.hier.LoadLatencyExtra(u.Inst.Addr)
		lat += int64(extra)
		c.noteLoadIssue(u, extra)
	}
	if lat < 1 {
		lat = 1
	}
	c.events.schedule(c.cycle+lat, u)
}

// rename consumes front-end entries in program order per thread: operands
// are renamed and ROB/LSQ entries allocated (always in order — the
// invariant out-of-order dispatch relies on), then the instruction joins
// its thread's dispatch buffer.
//
//smt:hotpath
func (c *Core) rename() {
	budget := c.cfg.Width
	start := c.renameRR
	c.renameRR = (c.renameRR + 1) % c.nthreads
	for i := 0; i < c.nthreads && budget > 0; i++ {
		t := (start + i) % c.nthreads
		ts := c.threads[t]
		for budget > 0 {
			e, ok := ts.fetchQPeek()
			if !ok || e.readyAt > c.cycle {
				break
			}
			if !c.disp.Buffer(t).CanPush() || !c.robs[t].CanAlloc(1) {
				break
			}
			in := e.inst
			if in.Class.IsMem() && !c.lsqs[t].CanAlloc(1) {
				break
			}
			if in.HasDest() && !c.rf.CanAlloc(in.Dest.Class, 1) {
				break
			}
			ts.fetchQPop()
			u := c.newUOp()
			u.Inst = in
			u.Thread = t
			u.GSeq = c.gseq
			u.RenamedAt = c.cycle
			u.PredTaken = e.predTaken
			u.PredTarget = e.predTarget
			u.Mispred = e.mispred
			c.gseq++
			c.rats[t].Rename(u)
			if c.eventWakeup {
				// Subscribe to each pending source's consumer list; the
				// counter equals NumSrcNotReady at this instant and every
				// later tag broadcast keeps it in sync.
				nr := int8(0)
				for _, s := range u.Srcs {
					if c.rf.Watch(s, u, u.GSeq) {
						nr++
					}
				}
				u.NotReady = nr
			}
			c.robs[t].Alloc(u)
			if in.Class.IsMem() {
				c.lsqs[t].Alloc(u)
			}
			c.disp.Buffer(t).Push(u)
			budget--
		}
	}
}

// fetch pulls instructions from up to FetchThreads thread traces chosen
// by the fetch policy, up to the machine width in total. Fetch for a
// thread breaks on a taken branch, a mispredicted branch (until
// resolution), an I-cache miss (until the block arrives), or a full
// fetch queue.
//
//smt:hotpath
func (c *Core) fetch() {
	budget := c.cfg.Width
	threadsUsed := 0
	for _, t := range c.sel.Order(c.runnableFn, c.icountFn) {
		if budget == 0 || threadsUsed == c.cfg.FetchThreads {
			break
		}
		budget -= c.fetchThread(t, budget)
		threadsUsed++
	}
}

//smt:hotpath
func (c *Core) fetchThread(t, budget int) int {
	ts := c.threads[t]
	lineMask := ^uint64(c.hier.L1I.Config().LineSize - 1)
	n := 0
	for n < budget {
		if ts.fetchQFull() {
			break
		}
		in, prefetched := ts.nextInst()
		if !prefetched {
			blk := in.PC & lineMask
			if !ts.lastBlockValid || blk != ts.lastBlock {
				ts.lastBlock = blk
				ts.lastBlockValid = true
				if extra := c.hier.FetchLatencyExtra(in.PC); extra > 0 {
					// The block is being filled; hold the instruction
					// and resume when it arrives.
					ts.pendingInst = in
					ts.pendingValid = true
					ts.blocked = c.cycle + int64(extra)
					break
				}
			}
		}
		e := fetchEntry{inst: in, readyAt: c.cycle + c.cfg.FrontEndDelay}
		if in.Class == isa.Branch {
			pt, ptg := c.preds[t].Predict(in.PC)
			correct := c.preds[t].Resolve(in.PC, pt, ptg, in.Taken, in.Target)
			e.predTaken, e.predTarget, e.mispred = pt, ptg, !correct
			ts.fetchQPush(e)
			n++
			if !correct {
				// Fetch stalls until the branch resolves in execution.
				ts.blocked = farFuture
				ts.lastBlockValid = false
				break
			}
			if in.Taken {
				ts.lastBlockValid = false // next fetch starts a new block
				break
			}
			continue
		}
		ts.fetchQPush(e)
		n++
	}
	return n
}

// flushAll implements the watchdog recovery: every thread's in-flight
// instructions (renamed and fetched-but-unrenamed alike) are squashed,
// rename state rewinds to the committed architectural map, and the
// squashed instructions are queued for refetch in program order.
func (c *Core) flushAll() {
	for t := 0; t < c.nthreads; t++ {
		ts := c.threads[t]
		c.disp.DrainThread(t)
		c.q.DrainThread(t)
		robUops := c.robs[t].DrainAll()
		c.lsqs[t].DrainAll()
		c.rats[t].SquashAll()

		insts := make([]isa.Inst, 0, len(robUops)+ts.qLen+1+len(ts.replay))
		for _, u := range robUops {
			u.Squashed = true
			if u.Dest.Valid() {
				c.rf.Free(u.Dest)
			}
			c.forgetLoad(u)
			insts = append(insts, u.Inst)
			c.freeUOp(u)
		}
		for ts.qLen > 0 {
			insts = append(insts, ts.fetchQPop().inst)
		}
		if ts.pendingValid {
			insts = append(insts, ts.pendingInst)
			ts.pendingValid = false
		}
		ts.replay = append(insts, ts.replay...)
		ts.blocked = c.cycle + c.cfg.FlushRefill
		ts.lastBlockValid = false
	}
}

// newUOp takes a reset record from the pool, or allocates one.
//
//smt:hotpath
func (c *Core) newUOp() *uop.UOp {
	if n := len(c.pool); n > 0 {
		u := c.pool[n-1]
		c.pool[n-1] = nil
		c.pool = c.pool[:n-1]
		return u
	}
	u := new(uop.UOp) //smt:allow-alloc — pool growth; amortized to zero in steady state
	u.Reset()
	return u
}

// freeUOp resets a retired or squashed UOp and returns it to the pool.
// The ROB drain lists are the authoritative free sites for squashes
// (every renamed in-flight UOp appears there exactly once); the IQ,
// dispatch-buffer, DAB, and LSQ drains overlap them and must not free.
//
//smt:hotpath
func (c *Core) freeUOp(u *uop.UOp) {
	u.Reset()
	c.pool = append(c.pool, u)
}

func (c *Core) totalCommitted() uint64 {
	var sum uint64
	for t, ts := range c.threads {
		sum += ts.committed - c.commitBase[t]
	}
	return sum
}

// Results assembles the metrics of the run so far.
func (c *Core) Results() metrics.Results {
	cycles := c.cycle - c.statsCycleBase
	r := metrics.Results{
		Cycles:    cycles,
		Committed: c.totalCommitted(),
	}
	if cycles > 0 {
		r.IPC = float64(r.Committed) / float64(cycles)
	}
	ds := c.disp.Stats()
	for t, ts := range c.threads {
		tr := metrics.ThreadResult{
			Benchmark:      ts.name,
			Committed:      ts.committed - c.commitBase[t],
			MispredictRate: c.preds[t].MispredictRate(),
			NDIBlockCycles: ds.NDIBlockCycles[t],
		}
		if cycles > 0 {
			tr.IPC = float64(ts.committed-c.commitBase[t]) / float64(cycles)
		}
		r.Threads = append(r.Threads, tr)
	}
	if ds.Cycles > 0 {
		r.DispatchStallAllNDI = float64(ds.StallAllNDI) / float64(ds.Cycles)
		r.DispatchStallNDIWeak = float64(ds.StallNDIWeak) / float64(ds.Cycles)
		r.DispatchStallAllAny = float64(ds.StallAllAny) / float64(ds.Cycles)
	}
	if c.iqIssued > 0 {
		r.IQResidency = float64(c.iqResidencySum) / float64(c.iqIssued)
	}
	r.IQOccupancy = c.q.MeanOccupancy()
	if ds.PiledSampled > 0 {
		r.HDIPiledFrac = float64(ds.PiledHDI) / float64(ds.PiledSampled)
	}
	if ds.HDIDispatched > 0 {
		r.HDIDepOnNDIFrac = float64(ds.HDIDepOnNDI) / float64(ds.HDIDispatched)
	}
	r.HDIDispatched = ds.HDIDispatched
	r.DABInserts = c.disp.DAB().Inserts
	r.GateFlushes = c.gateFlushes
	r.MSHRStallEvents = c.mshrStallEvents
	if c.wdog != nil {
		r.WatchdogFlushes = c.wdog.Expiries
	}
	// Analytical scheduler energy (package power), using the measured
	// event counts and the queue's comparator inventory.
	part := c.q.Partition()
	ev := power.Events{
		Cycles:        cycles,
		Committed:     r.Committed,
		TagBroadcasts: c.broadcasts,
		DispatchesIQ:  c.q.Inserts - c.insertsBase,
		IssuedIQ:      c.iqIssued,
		DABAccesses:   (c.disp.DAB().Inserts - c.dabBase) + c.dabIssues,
		MeanOccupancy: r.IQOccupancy,
	}
	bd := power.Estimate(part, power.DefaultWeights(), ev)
	r.SchedulerEnergyPerInst = bd.PerInstruction(r.Committed)
	r.SchedulerEDP = power.EDP(bd, ev)
	r.Comparators = power.Comparators(part)

	r.L1DMissRate = c.hier.L1D.Stats().MissRate()
	r.L2MissRate = c.hier.L2.Stats().MissRate()
	r.L1IMissRate = c.hier.L1I.Stats().MissRate()
	return r
}
