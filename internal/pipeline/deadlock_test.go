package pipeline

import (
	"testing"

	icore "smtsim/internal/core"
	"smtsim/internal/synth"
	"smtsim/internal/uop"
)

// synthSpecs builds thread specs from synthetic profiles with fixed
// seeds, so both cores of a comparison read identical traces.
func synthSpecs(t *testing.T, profiles ...synth.Profile) []ThreadSpec {
	t.Helper()
	specs := make([]ThreadSpec, len(profiles))
	for i, p := range profiles {
		prog, err := synth.Compile(p, 42)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = ThreadSpec{Name: p.Name, Reader: prog.NewStream(uint64(100 + i))}
	}
	return specs
}

// recordStreams attaches a commit hook collecting each thread's
// committed (seq, pc) stream.
func recordStreams(c *Core, n int) [][]commitRec {
	streams := make([][]commitRec, n)
	c.SetCommitHook(func(u *uop.UOp) {
		streams[u.Thread] = append(streams[u.Thread], commitRec{seq: u.Inst.Seq, pc: u.Inst.PC})
	})
	return streams
}

// TestWatchdogFlushRefetch forces whole-pipeline flushes at several
// points of a run and checks the recovery contract from Section 4: the
// squashed instructions are refetched and recommitted in program order,
// so the committed stream is indistinguishable from an undisturbed
// run's — the flush costs cycles, never correctness. The run executes
// under the invariant sanitizer, which additionally checks that every
// flush conserves physical registers and leaves no stale IQ or
// consumer-list state.
func TestWatchdogFlushRefetch(t *testing.T) {
	cases := []struct {
		name        string
		policy      icore.Policy
		flushCycles []int64
	}{
		{"traditional-single-flush", icore.InOrder, []int64{500}},
		{"oood-single-flush", icore.TwoOpOOOD, []int64{500}},
		{"oood-repeated-flush", icore.TwoOpOOOD, []int64{300, 600, 900}},
		{"oood-back-to-back-flush", icore.TwoOpOOOD, []int64{500, 501, 502}},
		{"2op-block-flush", icore.TwoOpBlock, []int64{400, 800}},
	}
	profiles := []synth.Profile{
		synth.MedILPProfile("synth0"),
		synth.LowILPProfile("synth1"),
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func() *Core {
				cfg := DefaultConfig()
				cfg.Policy = tc.policy
				c, err := New(cfg, synthSpecs(t, profiles...))
				if err != nil {
					t.Fatal(err)
				}
				return c
			}

			undisturbed := build()
			wantStreams := recordStreams(undisturbed, len(profiles))
			if _, err := undisturbed.Run(4_000); err != nil {
				t.Fatal(err)
			}

			flushed := build()
			gotStreams := recordStreams(flushed, len(profiles))
			next := 0
			for flushed.MaxCommitted() < 4_000 {
				flushed.Step()
				if next < len(tc.flushCycles) && flushed.Cycle() >= tc.flushCycles[next] {
					flushed.flushAll()
					next++
				}
			}
			if next != len(tc.flushCycles) {
				t.Fatalf("only %d of %d flushes happened", next, len(tc.flushCycles))
			}

			for tid := range gotStreams {
				got, want := gotStreams[tid], wantStreams[tid]
				for i, r := range got {
					if r.seq != uint64(i) {
						t.Fatalf("thread %d: commit %d has trace seq %d after flush (skip or duplicate)",
							tid, i, r.seq)
					}
					if i < len(want) && r != want[i] {
						t.Fatalf("thread %d: commit %d diverges from undisturbed run: %+v vs %+v",
							tid, i, r, want[i])
					}
				}
			}
		})
	}
}

// TestWatchdogExpiresUnderPressure checks the full mechanism end to
// end: a memory-bound workload on a watchdog-guarded machine with a
// tight limit actually trips the watchdog, recovers, and still commits
// an exact replay of the trace.
func TestWatchdogExpiresUnderPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = icore.TwoOpOOOD
	cfg.Deadlock = DeadlockWatchdog
	cfg.WatchdogLimit = 10
	cfg.IQSize = 8
	c, err := New(cfg, synthSpecs(t,
		synth.LowILPProfile("chase0"), synth.LowILPProfile("chase1")))
	if err != nil {
		t.Fatal(err)
	}
	streams := recordStreams(c, 2)
	if _, err := c.Run(4_000); err != nil {
		t.Fatal(err)
	}
	if c.wdog.Expiries == 0 {
		t.Fatal("watchdog never expired; the test lost its subject")
	}
	for tid, s := range streams {
		for i, r := range s {
			if r.seq != uint64(i) {
				t.Fatalf("thread %d: commit %d has trace seq %d (skip or duplicate across %d flushes)",
					tid, i, r.seq, c.wdog.Expiries)
			}
		}
	}
}

// TestDABPriorityOverIQ fabricates the Section 4 arbitration scenario
// directly: one instruction in the deadlock-avoidance buffer and ready
// instructions in the IQ. Issue must take the DAB instruction and
// suppress IQ selection entirely that cycle (the paper's simpler
// arbitration); once the DAB drains, IQ issue resumes.
func TestDABPriorityOverIQ(t *testing.T) {
	for _, policy := range []icore.Policy{icore.TwoOpBlock, icore.TwoOpOOOD} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Policy = policy
			c, err := New(cfg, synthSpecs(t,
				synth.MedILPProfile("synth0"), synth.MedILPProfile("synth1")))
			if err != nil {
				t.Fatal(err)
			}

			// Advance until some thread's ROB-oldest instruction is
			// waiting in the IQ — the candidate the DAB exists for —
			// while the IQ also holds another (non-load) instruction to
			// serve as the suppressed rival.
			var victim, rival *uop.UOp
			for cycle := 0; cycle < 50_000 && victim == nil; cycle++ {
				c.Step()
				for tid := 0; tid < 2 && victim == nil; tid++ {
					u := c.robs[tid].Head()
					if u == nil || !u.InIQ || u.Issued {
						continue
					}
					rival = nil
					c.q.ForEach(func(v *uop.UOp) {
						if rival == nil && v != u && !v.IsLoad() {
							rival = v
						}
					})
					if rival != nil {
						victim = u
					}
				}
			}
			if victim == nil {
				t.Fatal("no ROB-oldest-in-IQ plus rival combination within 50k cycles")
			}

			// Make its sources ready (as if their producers completed),
			// then move it from the IQ to the DAB — exactly the transfer
			// dispatch performs when the IQ is full.
			for _, s := range victim.Srcs {
				if s.Valid() {
					c.rf.SetReady(s)
				}
			}
			c.q.Remove(victim)
			c.disp.DAB().Insert(victim)

			// Give the rival ready sources too, so IQ selection has a
			// genuine candidate to suppress.
			for _, s := range rival.Srcs {
				if s.Valid() {
					c.rf.SetReady(s)
				}
			}

			// Fresh cycle so functional units are free, then one issue
			// pass: the DAB instruction must go, the ready IQ rival must
			// not.
			c.cycle++
			iqBefore, dabBefore := c.iqIssued, c.dabIssues
			c.issue()
			if !victim.Issued {
				t.Error("DAB instruction did not issue")
			}
			if c.dabIssues != dabBefore+1 {
				t.Errorf("dabIssues = %d, want %d", c.dabIssues, dabBefore+1)
			}
			if c.iqIssued != iqBefore {
				t.Errorf("IQ issued %d instructions in a DAB cycle, want 0 (DAB precedence)",
					c.iqIssued-iqBefore)
			}
			if rival.Issued {
				t.Error("ready IQ instruction issued despite occupied DAB")
			}

			// The DAB is now empty: the next issue pass resumes IQ
			// selection and the rival goes.
			c.cycle++
			c.issue()
			if c.iqIssued == iqBefore {
				t.Error("IQ issue did not resume after the DAB drained")
			}
			if !rival.Issued {
				t.Error("ready IQ instruction still not issued after the DAB drained")
			}
		})
	}
}
