package pipeline

import "smtsim/internal/uop"

// completion is a scheduled writeback event: at cycle `at`, u's result is
// produced (destination becomes ready, u becomes commit-eligible). seq
// snapshots u.GSeq at schedule time; the pipeline recycles UOp records,
// so a completion whose seq no longer matches its UOp belongs to a dead
// incarnation and is dropped.
type completion struct {
	at  int64
	seq uint64
	u   *uop.UOp
}

// eventQueue is a min-heap of completions ordered by cycle. It is a
// hand-rolled value-slice heap rather than container/heap: the interface
// indirection there boxes every pushed completion, which costs one heap
// allocation per simulated instruction on the hot path.
type eventQueue []completion

// schedule enqueues a completion (sift-up).
//
//smt:hotpath
func (q *eventQueue) schedule(at int64, u *uop.UOp) {
	h := append(*q, completion{at: at, seq: u.GSeq, u: u})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].at <= h[i].at {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	*q = h
}

// popDue removes and returns the next completion due at or before cycle,
// or nil if none. Stale events — the UOp was squashed, or recycled into
// a new incarnation (seq mismatch) — are discarded.
//
//smt:hotpath
func (q *eventQueue) popDue(cycle int64) *uop.UOp {
	h := *q
	for len(h) > 0 {
		if h[0].at > cycle {
			*q = h
			return nil
		}
		c := h[0]
		// Pop: move the last element to the root and sift down.
		n := len(h) - 1
		h[0] = h[n]
		h[n] = completion{}
		h = h[:n]
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			min := l
			if r := l + 1; r < n && h[r].at < h[l].at {
				min = r
			}
			if h[i].at <= h[min].at {
				break
			}
			h[i], h[min] = h[min], h[i]
			i = min
		}
		if c.u.Squashed || c.u.GSeq != c.seq {
			continue // annulled by a flush, or the UOp was recycled
		}
		*q = h
		return c.u
	}
	*q = h
	return nil
}

// Len returns the number of pending completions.
func (q eventQueue) Len() int { return len(q) }
