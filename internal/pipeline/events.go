package pipeline

import "math/bits"

// completion is a scheduled writeback event: at cycle `at`, the uop in
// bank slot `id` produces its result (destination becomes ready, the
// instruction commit-eligible). seq snapshots the uop's GSeq at schedule
// time; the pipeline recycles bank slots, so a completion whose seq no
// longer matches its slot's occupant belongs to a dead incarnation and
// is dropped by the writeback stage.
type completion struct {
	at  int64
	seq uint64
	id  int32
}

// eventWheel is a timing wheel of completions: slot `at & mask` holds
// the events due at cycle `at`. Execution latencies are bounded (the
// longest is a memory-miss load), so with the wheel sized past that
// bound each slot only ever holds events for one cycle at a time —
// schedule and popDue are O(1) appends and pops with no heap sifting.
// An out-of-bound latency (exotic hierarchy configuration) grows the
// wheel instead of corrupting it.
type eventWheel struct {
	slots [][]completion
	// occ is a slot-occupancy bitmap (bit s set iff slots[s] is
	// non-empty); nextDue scans it so the quiescent-cycle fast-forward
	// can find the next stimulus without walking empty slots.
	occ     []uint64
	mask    int64
	pending int
}

// defaultEventHorizon covers the default latency bound: the longest ISA
// op latency plus a full L2-miss memory access, with margin. Larger
// configured latencies are handled by growth on first use.
const defaultEventHorizon = 256

// slotCap is each wheel slot's pre-sized capacity: enough for the
// completions an 8-wide machine typically lands on one cycle, with
// headroom so steady-state bursts stay within the carve.
const slotCap = 8

// newEventWheel builds a wheel of at least `horizon` slots (rounded up
// to a power of two).
func newEventWheel(horizon int) eventWheel {
	n := 1
	for n < horizon {
		n <<= 1
	}
	slots := make([][]completion, n)
	// Pre-size each slot for a typical cycle's completions so the steady
	// state rarely grows a slot's backing array, carving all slots from
	// one flat allocation. A slot that does outgrow its carve appends
	// into a fresh array (the three-index cap prevents aliasing).
	backing := make([]completion, n*slotCap)
	for i := range slots {
		j := i * slotCap
		slots[i] = backing[j:j : j+slotCap]
	}
	return eventWheel{
		slots: slots,
		occ:   make([]uint64, (n+63)/64),
		mask:  int64(n - 1),
	}
}

// schedule enqueues a completion due at cycle `at` (now is the current
// cycle, needed to detect an out-of-horizon latency).
//
//smt:hotpath
func (w *eventWheel) schedule(now, at int64, seq uint64, id int32) {
	if at-now >= int64(len(w.slots)) {
		w.grow(at - now + 1) //smt:allow-alloc — one-time horizon growth for exotic latency configs
	}
	s := at & w.mask
	w.slots[s] = append(w.slots[s], completion{at: at, seq: seq, id: id})
	w.occ[s>>6] |= 1 << (uint(s) & 63)
	w.pending++
}

// grow re-buckets every pending completion into a wheel of at least
// `need` slots. Cold: it runs at most a handful of times per simulation,
// only when a configured latency exceeds the current horizon.
func (w *eventWheel) grow(need int64) {
	n := len(w.slots)
	for int64(n) <= need {
		n <<= 1
	}
	slots := make([][]completion, n)
	occ := make([]uint64, (n+63)/64)
	mask := int64(n - 1)
	backing := make([]completion, n*slotCap)
	for i := range slots {
		j := i * slotCap
		slots[i] = backing[j:j : j+slotCap]
	}
	for _, b := range w.slots {
		for _, c := range b {
			s := c.at & mask
			slots[s] = append(slots[s], c)
			occ[s>>6] |= 1 << (uint(s) & 63)
		}
	}
	w.slots = slots
	w.occ = occ
	w.mask = mask
}

// popDue removes and returns one completion due at `cycle`, or ok=false
// when that cycle's slot is empty. Events within a cycle pop in reverse
// schedule order; end-of-writeback machine state does not depend on it
// (see DESIGN.md §8). Staleness (squash/recycle) is the caller's check —
// it owns the bank.
//
//smt:hotpath
func (w *eventWheel) popDue(cycle int64) (id int32, seq uint64, ok bool) {
	s := cycle & w.mask
	b := w.slots[s]
	n := len(b)
	if n == 0 {
		return 0, 0, false
	}
	c := b[n-1]
	w.slots[s] = b[:n-1]
	if n == 1 {
		w.occ[s>>6] &^= 1 << (uint(s) & 63)
	}
	w.pending--
	if c.at != cycle {
		panic("pipeline: event wheel slot collision (latency exceeds horizon)")
	}
	return c.id, c.seq, true
}

// hasDue reports in O(1) whether any completion is due at exactly
// `cycle` — the writeback stage's activity horizon: pending completions
// are never in the past (writeback drains each cycle's slot when that
// cycle executes), so the slot's occupancy bit is the answer.
//
//smt:hotpath
func (w *eventWheel) hasDue(cycle int64) bool {
	s := cycle & w.mask
	return w.occ[s>>6]>>(uint(s)&63)&1 != 0
}

// nextDue returns the due cycle of the earliest pending completion
// strictly after `cycle`, scanning the occupancy bitmap circularly from
// the next slot. Every pending completion is due within (cycle,
// cycle+len(slots)] — slots strictly in the past are impossible because
// the writeback stage drains each cycle's slot when that cycle executes
// (the fast-forward never skips past a due event for the same reason) —
// so the slot distance is the cycle distance.
//
//smt:hotpath
func (w *eventWheel) nextDue(cycle int64) (int64, bool) {
	if w.pending == 0 {
		return 0, false
	}
	start := (cycle + 1) & w.mask
	wi := int(start >> 6)
	off := uint(start) & 63
	if m := w.occ[wi] &^ ((1 << off) - 1); m != 0 {
		s := int64(wi<<6 + bits.TrailingZeros64(m))
		return cycle + 1 + ((s - start) & w.mask), true
	}
	nw := len(w.occ)
	for j := 1; j <= nw; j++ {
		i := wi + j
		if i >= nw {
			i -= nw
		}
		m := w.occ[i]
		if i == wi {
			m &= (1 << off) - 1 // wrapped: only slots before start remain
		}
		if m != 0 {
			s := int64(i<<6 + bits.TrailingZeros64(m))
			return cycle + 1 + ((s - start) & w.mask), true
		}
	}
	return 0, false // unreachable: pending > 0 implies an occupied slot
}

// Len returns the number of pending completions.
func (w *eventWheel) Len() int { return w.pending }
