package pipeline

import (
	"container/heap"

	"smtsim/internal/uop"
)

// completion is a scheduled writeback event: at cycle `at`, u's result is
// produced (destination becomes ready, u becomes commit-eligible).
type completion struct {
	at int64
	u  *uop.UOp
}

// eventQueue is a min-heap of completions ordered by cycle.
type eventQueue []completion

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(completion)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	old[n-1] = completion{}
	*q = old[:n-1]
	return x
}

// schedule enqueues a completion.
func (q *eventQueue) schedule(at int64, u *uop.UOp) {
	heap.Push(q, completion{at: at, u: u})
}

// popDue removes and returns the next completion due at or before cycle,
// or nil if none.
func (q *eventQueue) popDue(cycle int64) *uop.UOp {
	for q.Len() > 0 {
		if (*q)[0].at > cycle {
			return nil
		}
		c := heap.Pop(q).(completion)
		if c.u.Squashed {
			continue // annulled by a watchdog flush
		}
		return c.u
	}
	return nil
}
