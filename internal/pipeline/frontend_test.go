package pipeline

import (
	"testing"

	icore "smtsim/internal/core"
	"smtsim/internal/isa"
	"smtsim/internal/uop"
)

// TestICacheMissStallsFetch drives a trace whose instructions are spread
// across many I-cache blocks and checks the pending-instruction path: an
// instruction whose block misses is held and fetched after the fill,
// never lost or duplicated.
func TestICacheMissStallsFetch(t *testing.T) {
	// Instructions 16KB apart: every fetch opens a new 128-byte block
	// and the blocks conflict in the 64KB 2-way L1I, so misses recur.
	insts := make([]isa.Inst, 64)
	for i := range insts {
		insts[i] = isa.Inst{
			PC:    0x120000000 + uint64(i)*16<<10,
			Class: isa.IntAlu,
			Dest:  isa.Int(5),
			Src:   [isa.MaxSources]isa.Reg{isa.Int(0), isa.NoReg},
		}
	}
	c, err := New(DefaultConfig(), []ThreadSpec{
		{Name: "strider", Reader: &sliceReader{prologue: insts, filler: fillerALU}},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	c.SetCommitHook(func(u *uop.UOp) { seen[u.Inst.Seq]++ })
	res, err := c.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	for seq, n := range seen {
		if n != 1 {
			t.Errorf("instruction %d committed %d times", seq, n)
		}
	}
	if res.L1IMissRate == 0 {
		t.Error("trace designed to miss the I-cache did not")
	}
	// 64 cold block misses at 160 cycles dominate: the run must be slow.
	if res.Cycles < 64*100 {
		t.Errorf("only %d cycles; I-cache misses not charged", res.Cycles)
	}
}

// TestStoreToLoadForwardingPath drives a store followed closely by a
// load of the same address and verifies the load does not pay the cache
// miss (it forwards from the LSQ).
func TestStoreToLoadForwardingPath(t *testing.T) {
	addr := uint64(0x200000000)
	prologue := []isa.Inst{
		// r1 produced late (divide), so the store's data arrives late too.
		{PC: 0x1000, Class: isa.IntDiv, Dest: isa.Int(1),
			Src: [isa.MaxSources]isa.Reg{isa.Int(0), isa.NoReg}},
		{PC: 0x1004, Class: isa.Store, Addr: addr,
			Src: [isa.MaxSources]isa.Reg{isa.Int(1), isa.Int(0)}},
		{PC: 0x1008, Class: isa.Load, Addr: addr, Dest: isa.Int(2),
			Src: [isa.MaxSources]isa.Reg{isa.Int(0), isa.NoReg}},
	}
	c, err := New(DefaultConfig(), []ThreadSpec{
		{Name: "fwd", Reader: &sliceReader{prologue: prologue, filler: fillerALU}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var loadLatency int64
	c.SetCommitHook(func(u *uop.UOp) {
		if u.IsLoad() && u.Inst.Seq == 2 {
			loadLatency = u.CompletedAt - u.IssuedAt
		}
	})
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if loadLatency == 0 {
		t.Fatal("forwarded load never committed")
	}
	// A cold cache access would cost 2+160; forwarding costs the L1
	// pipeline latency (2).
	if loadLatency > 5 {
		t.Errorf("load latency %d cycles; store-to-load forwarding not applied", loadLatency)
	}
}

// TestLoadWaitsForPendingStoreData: a load to the address of an older
// store whose data is not ready must not issue before the store.
func TestLoadWaitsForPendingStoreData(t *testing.T) {
	addr := uint64(0x200000000)
	prologue := []isa.Inst{
		{PC: 0x1000, Class: isa.IntDiv, Dest: isa.Int(1),
			Src: [isa.MaxSources]isa.Reg{isa.Int(0), isa.NoReg}},
		{PC: 0x1004, Class: isa.Store, Addr: addr,
			Src: [isa.MaxSources]isa.Reg{isa.Int(1), isa.Int(0)}},
		{PC: 0x1008, Class: isa.Load, Addr: addr, Dest: isa.Int(2),
			Src: [isa.MaxSources]isa.Reg{isa.Int(0), isa.NoReg}},
	}
	c, err := New(DefaultConfig(), []ThreadSpec{
		{Name: "order", Reader: &sliceReader{prologue: prologue, filler: fillerALU}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var storeIssued, loadIssued int64
	c.SetCommitHook(func(u *uop.UOp) {
		switch u.Inst.Seq {
		case 1:
			storeIssued = u.IssuedAt
		case 2:
			loadIssued = u.IssuedAt
		}
	})
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if loadIssued <= storeIssued {
		t.Errorf("load issued at %d, before/with its blocking store at %d", loadIssued, storeIssued)
	}
}

// TestWarmupExcludesInitialization verifies statistics reset: a run with
// warmup must report only post-warmup commits and cycles.
func TestWarmupExcludesInitialization(t *testing.T) {
	mk := func() *Core {
		cfg := DefaultConfig()
		c, err := New(cfg, []ThreadSpec{{Name: "gcc", Reader: benchStream(t, "gcc", 1)}})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := mk()
	if err := c.Warmup(10_000); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads[0].Committed < 5_000 || res.Threads[0].Committed > 6_000 {
		t.Errorf("post-warmup committed = %d, want ~5000", res.Threads[0].Committed)
	}
	// Warm run must have a higher IPC than a cold run of the same
	// budget (caches and predictors already trained).
	cold := mk()
	coldRes, err := cold.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= coldRes.IPC {
		t.Errorf("warm IPC %.3f not above cold IPC %.3f", res.IPC, coldRes.IPC)
	}
}

// TestFetchQueuePressure runs with a tiny fetch queue to exercise ring
// wraparound and full-queue stalls.
func TestFetchQueuePressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchQueueCap = 2
	cfg.DispatchBufCap = 2
	cfg.Policy = icore.TwoOpOOOD
	c, err := New(cfg, []ThreadSpec{
		{Name: "gcc", Reader: benchStream(t, "gcc", 1)},
		{Name: "gzip", Reader: benchStream(t, "gzip", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	next := make([]uint64, 2)
	bad := false
	c.SetCommitHook(func(u *uop.UOp) {
		if u.Inst.Seq != next[u.Thread] {
			bad = true
		}
		next[u.Thread]++
	})
	if _, err := c.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("tiny front-end buffers corrupted instruction order")
	}
}

// TestMispredictPenaltyVisible compares a predictable against an
// unpredictable branch workload: the unpredictable one must be slower.
func TestMispredictPenaltyVisible(t *testing.T) {
	mk := func(noisy bool) TraceReader {
		insts := make([]isa.Inst, 32)
		for i := range insts {
			pc := 0x120000000 + uint64(i)*4
			if i%4 == 3 {
				insts[i] = isa.Inst{
					PC: pc, Class: isa.Branch, Taken: true, Target: pc + 4,
					Src: [isa.MaxSources]isa.Reg{isa.Int(0), isa.NoReg},
				}
			} else {
				insts[i] = isa.Inst{
					PC: pc, Class: isa.IntAlu, Dest: isa.Int(5),
					Src: [isa.MaxSources]isa.Reg{isa.Int(0), isa.NoReg},
				}
			}
		}
		return &loopReader{body: insts, noisy: noisy}
	}
	run := func(r TraceReader) (float64, float64) {
		c, err := New(DefaultConfig(), []ThreadSpec{{Name: "b", Reader: r}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(20_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC, res.Threads[0].MispredictRate
	}
	steadyIPC, steadyMR := run(mk(false))
	// Pseudo-random per-execution outcomes defeat gshare.
	noisyIPC, noisyMR := run(mk(true))
	if steadyMR > 0.05 {
		t.Errorf("steady branch mispredict rate %.2f too high", steadyMR)
	}
	if noisyMR < 0.2 {
		t.Errorf("noisy branch mispredict rate %.2f too low", noisyMR)
	}
	if noisyIPC >= steadyIPC {
		t.Errorf("mispredictions cost nothing: %.3f vs %.3f IPC", noisyIPC, steadyIPC)
	}
}

// loopReader repeats a body forever with stable PCs (so predictors can
// learn) and fresh sequence numbers. With noisy set, branch outcomes are
// re-randomized on every dynamic execution (targets equal fall-through,
// so control flow stays linear while directions stay unlearnable).
type loopReader struct {
	body  []isa.Inst
	noisy bool
	pos   int
	seq   uint64
	x     uint64
}

func (r *loopReader) Next() isa.Inst {
	in := r.body[r.pos%len(r.body)]
	r.pos++
	in.Seq = r.seq
	r.seq++
	if r.noisy && in.Class == isa.Branch {
		if r.x == 0 {
			r.x = 0x9E3779B97F4A7C15
		}
		r.x ^= r.x << 13
		r.x ^= r.x >> 7
		r.x ^= r.x << 17
		in.Taken = r.x&1 == 0
	}
	return in
}
