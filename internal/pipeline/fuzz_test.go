package pipeline

import (
	"fmt"
	"testing"

	icore "smtsim/internal/core"
	"smtsim/internal/synth"
	"smtsim/internal/uop"
)

// commitRec identifies one committed instruction: its per-thread trace
// sequence number and fetch PC.
type commitRec struct {
	seq uint64
	pc  uint64
}

// fuzzProfile maps a 2-bit selector to one of the paper's three ILP
// classes.
func fuzzProfile(kind uint8, name string) synth.Profile {
	switch kind % 3 {
	case 0:
		return synth.LowILPProfile(name)
	case 1:
		return synth.MedILPProfile(name)
	default:
		return synth.HighILPProfile(name)
	}
}

// runFuzzConfig runs one (scheduler, wakeup) point of a fuzz case and
// returns the cycle count, per-thread committed streams, and per-thread
// committed counts. Every core runs under the invariant sanitizer
// (test-wide testSanitize), so structural violations fail-stop here
// before the metamorphic comparison even happens.
func runFuzzConfig(t *testing.T, cfg Config, profiles []synth.Profile, seed uint64,
	budget uint64) (cycles int64, streams [][]commitRec) {
	t.Helper()
	specs := make([]ThreadSpec, len(profiles))
	for i, p := range profiles {
		prog, err := synth.Compile(p, seed)
		if err != nil {
			t.Fatalf("compile %s: %v", p.Name, err)
		}
		specs[i] = ThreadSpec{Name: p.Name, Reader: prog.NewStream(seed + uint64(i))}
	}
	c, err := New(cfg, specs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	streams = make([][]commitRec, len(profiles))
	c.SetCommitHook(func(u *uop.UOp) {
		streams[u.Thread] = append(streams[u.Thread], commitRec{seq: u.Inst.Seq, pc: u.Inst.PC})
	})
	if _, err := c.Run(budget); err != nil {
		t.Fatalf("%s polling=%t: %v", cfg.Policy, cfg.PollingWakeup, err)
	}
	return c.Cycle(), streams
}

// FuzzPipeline is the metamorphic fuzz harness for the whole SMT
// pipeline. Each fuzz case draws a machine configuration (thread count,
// IQ size, deadlock mechanism, buffer sizes) and a synthetic workload
// mix, then runs it under all three dispatch policies and both wakeup
// disciplines, asserting the properties that hold regardless of
// schedule:
//
//  1. Event-driven wakeup is bit-identical to polling wakeup: same
//     cycle count and same per-thread committed instruction streams
//     (DESIGN.md §5).
//  2. All three schedulers commit the same per-thread instruction
//     streams — dispatch order may differ, commit order may not. The
//     runs stop at different points, so the comparison is
//     prefix-equality.
//  3. Committed streams are exact replays of the trace: sequence
//     numbers count 0,1,2,... with no skip or duplicate, even across
//     watchdog flushes and misprediction squashes.
//
// Every run also executes under the cycle-level invariant sanitizer
// (internal/simsan), which fail-stops on structural corruption.
func FuzzPipeline(f *testing.F) {
	// Seeds span 1-4 threads, both deadlock mechanisms, the IQ-size
	// range the paper sweeps, and all three ILP classes. All three
	// schedulers run inside every case.
	f.Add(uint8(1), uint8(0b00), uint8(0), uint8(16), uint16(64), uint16(450), uint64(1), uint16(800))
	f.Add(uint8(2), uint8(0b0001), uint8(0), uint8(16), uint16(32), uint16(450), uint64(2), uint16(800))
	f.Add(uint8(3), uint8(0b100100), uint8(0), uint8(8), uint16(48), uint16(300), uint64(3), uint16(600))
	f.Add(uint8(4), uint8(0b11100100), uint8(0), uint8(16), uint16(128), uint16(450), uint64(4), uint16(800))
	f.Add(uint8(4), uint8(0b01010101), uint8(1), uint8(4), uint16(32), uint16(600), uint64(5), uint16(600))
	f.Add(uint8(2), uint8(0b1010), uint8(1), uint8(8), uint16(16), uint16(240), uint64(6), uint16(500))
	f.Add(uint8(3), uint8(0b010010), uint8(0), uint8(32), uint16(96), uint16(450), uint64(7), uint16(700))
	f.Add(uint8(1), uint8(0b10), uint8(1), uint8(2), uint16(8), uint16(900), uint64(8), uint16(400))

	f.Fuzz(func(t *testing.T, nThreads, mixBits, deadlock, dabCap uint8,
		iqSize, wdLimit uint16, seed uint64, budget uint16) {
		threads := 1 + int(nThreads)%4
		profiles := make([]synth.Profile, threads)
		for i := range profiles {
			kind := mixBits >> (2 * i)
			profiles[i] = fuzzProfile(kind, fmt.Sprintf("synth%d", i))
		}

		cfg := DefaultConfig()
		cfg.IQSize = 8 + int(iqSize)%121 // [8,128]; never below machine width
		cfg.DispatchBufCap = 1 + int(dabCap)%32
		if deadlock%2 == 0 {
			cfg.Deadlock = DeadlockDAB
		} else {
			cfg.Deadlock = DeadlockWatchdog
			// Stay in the paper's suggested range (2-3x memory latency);
			// pathological limits turn into livelock, not bugs.
			cfg.WatchdogLimit = 200 + int64(wdLimit)%800
		}
		commits := 300 + uint64(budget)%1200

		type run struct {
			policy  icore.Policy
			cycles  int64
			streams [][]commitRec
		}
		var runs []run
		for _, policy := range []icore.Policy{icore.InOrder, icore.TwoOpBlock, icore.TwoOpOOOD} {
			cfg.Policy = policy

			cfg.PollingWakeup = false
			evCycles, evStreams := runFuzzConfig(t, cfg, profiles, seed, commits)
			cfg.PollingWakeup = true
			poCycles, poStreams := runFuzzConfig(t, cfg, profiles, seed, commits)

			// Property 1: wakeup disciplines are bit-identical.
			if evCycles != poCycles {
				t.Errorf("%s: cycles diverge: event %d, polling %d", policy, evCycles, poCycles)
			}
			for tid := range evStreams {
				if len(evStreams[tid]) != len(poStreams[tid]) {
					t.Fatalf("%s thread %d: commit counts diverge: event %d, polling %d",
						policy, tid, len(evStreams[tid]), len(poStreams[tid]))
				}
				for i, r := range evStreams[tid] {
					if r != poStreams[tid][i] {
						t.Fatalf("%s thread %d: commit %d diverges: event %+v, polling %+v",
							policy, tid, i, r, poStreams[tid][i])
					}
				}
			}

			// Property 3: the committed stream replays the trace exactly.
			for tid, s := range evStreams {
				for i, r := range s {
					if r.seq != uint64(i) {
						t.Fatalf("%s thread %d: commit %d has trace seq %d (skip or duplicate)",
							policy, tid, i, r.seq)
					}
				}
			}

			runs = append(runs, run{policy: policy, cycles: evCycles, streams: evStreams})
		}

		// Property 2: schedulers agree on every per-thread committed
		// stream, up to the shorter run (the stopping rule fires at
		// different cycles under different schedules).
		base := runs[0]
		for _, r := range runs[1:] {
			for tid := range base.streams {
				n := min(len(base.streams[tid]), len(r.streams[tid]))
				for i := 0; i < n; i++ {
					if base.streams[tid][i] != r.streams[tid][i] {
						t.Fatalf("schedulers %s and %s diverge at thread %d commit %d: %+v vs %+v",
							base.policy, r.policy, tid, i, base.streams[tid][i], r.streams[tid][i])
					}
				}
			}
		}
	})
}
