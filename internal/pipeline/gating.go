package pipeline

import (
	"fmt"

	"smtsim/internal/isa"
	"smtsim/internal/uop"
)

// FetchGate selects a fetch-gating policy layered on top of the ICOUNT
// thread selector. These are the related-work mechanisms of Section 6:
// fetch gating reacts to cache misses that ICOUNT's instruction counts
// see only indirectly.
type FetchGate uint8

const (
	// GateNone applies no gating (the paper's baseline).
	GateNone FetchGate = iota
	// GateStall (Tullsen & Brown, STALL) stops fetching for a thread
	// while it has a load outstanding to main memory.
	GateStall
	// GateFlush (FLUSH) extends STALL by also squashing the thread's
	// instructions younger than the missing load, freeing the shared
	// issue-queue entries they hold until the load returns.
	GateFlush
	// GateDataMiss (El-Moursy & Albonesi, Data Gating) stops fetching
	// for a thread while it has any L1 data-cache miss outstanding.
	GateDataMiss
)

// String names the gate.
func (g FetchGate) String() string {
	switch g {
	case GateNone:
		return "none"
	case GateStall:
		return "stall"
	case GateFlush:
		return "flush"
	case GateDataMiss:
		return "data-gate"
	}
	return fmt.Sprintf("gate(%d)", uint8(g))
}

// ParseFetchGate converts a gate name back to a FetchGate.
func ParseFetchGate(s string) (FetchGate, error) {
	for _, g := range []FetchGate{GateNone, GateStall, GateFlush, GateDataMiss} {
		if g.String() == s {
			return g, nil
		}
	}
	return 0, fmt.Errorf("pipeline: unknown fetch gate %q", s)
}

// gateAllows reports whether the fetch gate permits thread t to fetch
// this cycle.
//
//smt:hotpath
func (c *Core) gateAllows(t int) bool {
	ts := &c.threads[t]
	switch c.cfg.FetchGate {
	case GateStall:
		return ts.outstandingMem == 0
	case GateFlush:
		return ts.gateLoad == nil
	case GateDataMiss:
		return ts.outstandingL1D == 0
	}
	return true
}

// noteLoadIssue records how deep a load's access went, for the gating
// policies; for GateFlush a memory miss triggers the selective squash of
// the thread's younger instructions.
//
//smt:hotpath
func (c *Core) noteLoadIssue(u *uop.UOp, extra int) {
	if extra <= 0 {
		return
	}
	ts := &c.threads[u.Thread]
	u.L1DMiss = true
	ts.outstandingL1D++
	c.inFlightMisses++
	if extra > c.hier.L2.Config().HitCycles {
		u.MemMiss = true
		ts.outstandingMem++
		if c.cfg.FetchGate == GateFlush && ts.gateLoad == nil {
			ts.gateLoad = u
			c.flushThreadAfter(u)
			c.gateFlushes++
		}
	}
}

// noteLoadDone unwinds noteLoadIssue's bookkeeping at completion.
//
//smt:hotpath
func (c *Core) noteLoadDone(u *uop.UOp) {
	if !u.L1DMiss {
		return
	}
	ts := &c.threads[u.Thread]
	ts.outstandingL1D--
	c.inFlightMisses--
	if u.MemMiss {
		ts.outstandingMem--
	}
	if ts.gateLoad == u {
		ts.gateLoad = nil
	}
	if c.cfg.FetchGate != GateNone {
		// A completed miss may relax the fetch gate; writeback runs
		// ahead of fetch in the cycle, so the stage is due immediately.
		c.fetchHorizon = c.cycle
	}
}

// forgetLoad is noteLoadDone for squashed loads that will never complete
// (watchdog flush paths): the counters must not leak or the gates would
// block their thread forever.
func (c *Core) forgetLoad(u *uop.UOp) {
	if u.Issued && !u.Completed {
		c.noteLoadDone(u)
	}
}

// flushThreadAfter squashes every instruction of pivot's thread that is
// younger than pivot — renamed or merely fetched — rewinding the rename
// table by undoing mappings youngest-first, and queues the squashed
// instructions for refetch. This is the FLUSH mechanism's partial squash;
// the watchdog's flushAll is the degenerate whole-thread case.
//
//smt:coldpath — squash recovery: runs per flush event, not per cycle; the refetch list is the event's cost
func (c *Core) flushThreadAfter(pivot *uop.UOp) {
	t := pivot.Thread
	ts := &c.threads[t]

	c.disp.SquashYoungerThan(t, pivot.GSeq)
	young := c.robs[t].DrainYoungerThan(pivot.GSeq) // youngest-first
	c.lsqs[t].DrainYoungerThan(pivot.GSeq)

	releaseBranchBlock := false
	insts := make([]isa.Inst, len(young))
	for i, u := range young {
		u.Squashed = true
		c.unwatchSquashed(u)
		if u.InIQ {
			c.q.Remove(u)
		}
		if u.InDAB {
			c.disp.DAB().Remove(u)
		}
		c.rats[t].Undo(u)
		if u.Dest.Valid() {
			c.rf.Free(u.Dest)
		}
		c.forgetLoad(u)
		if u.Mispred && !u.Completed {
			// The unresolved mispredicted branch fetch was waiting on
			// is gone; the refetched copy will re-predict.
			releaseBranchBlock = true
		}
		insts[len(young)-1-i] = u.Inst
	}
	for ts.qLen > 0 {
		e := ts.fetchQPeek()
		if e.mispred {
			releaseBranchBlock = true
		}
		insts = append(insts, e.inst)
		ts.fetchQPop()
	}
	if ts.pendingValid {
		insts = append(insts, ts.pendingInst)
		ts.pendingValid = false
	}
	ts.replay = append(insts, ts.replay...)
	ts.lastBlockValid = false
	if releaseBranchBlock {
		ts.blocked = c.cycle + c.cfg.FlushRefill
		if ts.blocked < c.fetchHorizon {
			c.fetchHorizon = ts.blocked
		}
	}
}
