package pipeline

import (
	"testing"

	icore "smtsim/internal/core"
	"smtsim/internal/isa"
	"smtsim/internal/uop"
)

func TestParseFetchGate(t *testing.T) {
	for _, g := range []FetchGate{GateNone, GateStall, GateFlush, GateDataMiss} {
		back, err := ParseFetchGate(g.String())
		if err != nil || back != g {
			t.Errorf("round trip of %v failed: %v, %v", g, back, err)
		}
	}
	if _, err := ParseFetchGate("bogus"); err == nil {
		t.Error("garbage gate accepted")
	}
}

// gateConfig builds a machine with the given gate over memory-bound
// threads that miss to memory constantly.
func gateConfig(gate FetchGate) Config {
	cfg := DefaultConfig()
	cfg.FetchGate = gate
	return cfg
}

func runGate(t *testing.T, gate FetchGate, policy icore.Policy) (res interface {
	PerThreadIPCs() []float64
}, flushes uint64) {
	t.Helper()
	cfg := gateConfig(gate)
	cfg.Policy = policy
	c, err := New(cfg, []ThreadSpec{
		{Name: "equake", Reader: benchStream(t, "equake", 1)},
		{Name: "gzip", Reader: benchStream(t, "gzip", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Run(15_000)
	if err != nil {
		t.Fatal(err)
	}
	return m, m.GateFlushes
}

func TestGatesRunToCompletion(t *testing.T) {
	for _, gate := range []FetchGate{GateStall, GateFlush, GateDataMiss} {
		for _, policy := range []icore.Policy{icore.InOrder, icore.TwoOpOOOD} {
			if _, _ = runGate(t, gate, policy); t.Failed() {
				t.Fatalf("gate %v policy %v failed", gate, policy)
			}
		}
	}
}

func TestFlushGateActuallyFlushes(t *testing.T) {
	_, flushes := runGate(t, GateFlush, icore.InOrder)
	if flushes == 0 {
		t.Error("FLUSH gate never fired on a memory-bound thread")
	}
	_, noFlushes := runGate(t, GateStall, icore.InOrder)
	if noFlushes != 0 {
		t.Error("STALL gate recorded flushes")
	}
}

func TestFlushGatePreservesCommitOrder(t *testing.T) {
	cfg := gateConfig(GateFlush)
	cfg.Policy = icore.TwoOpOOOD
	c, err := New(cfg, []ThreadSpec{
		{Name: "equake", Reader: benchStream(t, "equake", 7)},
		{Name: "swim", Reader: benchStream(t, "swim", 8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	next := make([]uint64, 2)
	bad := false
	c.SetCommitHook(func(u *uop.UOp) {
		if u.Inst.Seq != next[u.Thread] {
			bad = true
		}
		next[u.Thread]++
	})
	m, err := c.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.GateFlushes == 0 {
		t.Skip("no flush occurred; scenario did not exercise the squash path")
	}
	if bad {
		t.Error("partial squash corrupted commit order")
	}
}

func TestFlushGateConservesRegisters(t *testing.T) {
	cfg := gateConfig(GateFlush)
	cfg.Policy = icore.TwoOpOOOD
	specs := []ThreadSpec{
		{Name: "equake", Reader: benchStream(t, "equake", 3)},
		{Name: "twolf", Reader: benchStream(t, "twolf", 4)},
	}
	c, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Run(8_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.GateFlushes == 0 {
		t.Skip("no flush occurred")
	}
	inFlight := 0
	for tid := range specs {
		if err := c.RenameTable(tid).CheckConsistency(); err != nil {
			t.Fatal(err)
		}
		c.ROB(tid).ForEach(func(u *uop.UOp) {
			if u.Dest.Valid() {
				inFlight++
			}
		})
	}
	rf := c.RegFile()
	total := 0
	for _, class := range []isa.RegClass{isa.IntReg, isa.FpReg} {
		total += rf.Size(class) - rf.FreeCount(class)
	}
	want := len(specs)*isa.NumArchRegs*isa.NumRegClasses + inFlight
	if total != want {
		t.Errorf("allocated %d registers after flushes, want %d", total, want)
	}
}

// TestStallGateBlocksFetch verifies the gate predicate directly: a
// thread with an outstanding memory miss must not be runnable under
// GateStall, and must be under GateNone.
func TestStallGateBlocksFetch(t *testing.T) {
	cfg := gateConfig(GateStall)
	c, err := New(cfg, []ThreadSpec{
		{Name: "equake", Reader: benchStream(t, "equake", 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.threads[0].outstandingMem = 1
	if c.gateAllows(0) {
		t.Error("STALL gate allowed fetch with an outstanding memory miss")
	}
	c.threads[0].outstandingMem = 0
	if !c.gateAllows(0) {
		t.Error("STALL gate blocked fetch with no outstanding miss")
	}
}

func TestDataGateBlocksOnL1Miss(t *testing.T) {
	cfg := gateConfig(GateDataMiss)
	c, err := New(cfg, []ThreadSpec{
		{Name: "equake", Reader: benchStream(t, "equake", 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.threads[0].outstandingL1D = 1
	if c.gateAllows(0) {
		t.Error("data gate allowed fetch with an outstanding L1D miss")
	}
}

func TestRenameUndoRoundTrip(t *testing.T) {
	// Undo must restore the exact pre-rename mapping; exercised here via
	// the public flush path plus directly through a tiny scenario in the
	// rename package's own tests. Here: squash everything after warming
	// a machine and check consistency.
	cfg := gateConfig(GateFlush)
	cfg.Policy = icore.TwoOpOOOD
	c, err := New(cfg, []ThreadSpec{
		{Name: "art", Reader: benchStream(t, "art", 5)},
		{Name: "lucas", Reader: benchStream(t, "lucas", 6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(5_000); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 2; tid++ {
		if err := c.RenameTable(tid).CheckConsistency(); err != nil {
			t.Errorf("thread %d: %v", tid, err)
		}
	}
}
