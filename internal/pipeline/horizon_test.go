package pipeline

import (
	"strings"
	"testing"

	icore "smtsim/internal/core"
	"smtsim/internal/uop"
)

// commitRecord is one committed instruction's identity and timing — the
// tuple that must match for two runs to count as bit-identical.
type commitRecord struct {
	thread int
	pc     uint64
	gseq   uint64
	cycle  int64
}

// runCommitStream drives a 4-thread Table 1 mix to maxCommit commits on
// a production (unsanitized) core and returns the full commit stream
// plus the final results. forcePlain selects the ungated reference walk
// over the horizon-gated step.
func runCommitStream(t *testing.T, policy icore.Policy, forcePlain bool, maxCommit uint64) ([]commitRecord, map[string]float64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = policy
	c, err := New(cfg, []ThreadSpec{
		{Name: "equake", Reader: benchStream(t, "equake", 11)},
		{Name: "twolf", Reader: benchStream(t, "twolf", 12)},
		{Name: "gcc", Reader: benchStream(t, "gcc", 13)},
		{Name: "gzip", Reader: benchStream(t, "gzip", 14)},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.disableSanitizer() // exercise stepGated/stepPlain, not stepVerify
	c.forcePlain = forcePlain
	var stream []commitRecord
	c.SetCommitHook(func(u *uop.UOp) {
		stream = append(stream, commitRecord{thread: u.Thread, pc: u.Inst.PC, gseq: u.GSeq, cycle: c.cycle})
	})
	res, err := c.Run(maxCommit)
	if err != nil {
		t.Fatal(err)
	}
	return stream, map[string]float64{
		"cycles":       float64(res.Cycles),
		"committed":    float64(res.Committed),
		"ipc":          res.IPC,
		"iq-occupancy": res.IQOccupancy,
	}
}

// TestHorizonGatingMatchesPlainWalk runs a long mixed workload twice —
// once through the horizon-gated step, once through the plain every-
// stage walk — and requires bit-identical commit streams (thread, PC,
// sequence number, and commit cycle of every instruction) and identical
// occupancy statistics. This is the end-to-end differential proof that
// stage gating never skips work: any stale horizon would shift at least
// one commit cycle.
func TestHorizonGatingMatchesPlainWalk(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential run")
	}
	for _, policy := range []icore.Policy{icore.TwoOpOOOD, icore.TwoOpBlock} {
		t.Run(policy.String(), func(t *testing.T) {
			const budget = 30_000
			gated, gatedStats := runCommitStream(t, policy, false, budget)
			plain, plainStats := runCommitStream(t, policy, true, budget)
			if len(gated) != len(plain) {
				t.Fatalf("commit stream lengths diverge: gated %d, plain %d", len(gated), len(plain))
			}
			for i := range gated {
				if gated[i] != plain[i] {
					t.Fatalf("commit %d diverges: gated %+v, plain %+v", i, gated[i], plain[i])
				}
			}
			for k, g := range gatedStats {
				if p := plainStats[k]; g != p {
					t.Errorf("%s diverges: gated %v, plain %v", k, g, p)
				}
			}
		})
	}
}

// TestStaleWritebackHorizonCaught corrupts the event wheel's occupancy
// bitmap — the writeback stage's activity horizon — exactly one cycle
// before a completion is due, and requires the sanitizer to report the
// stale horizon on that very cycle. This pins the detection latency the
// horizon contract promises: a predicate that hides real work is caught
// within one cycle, not whenever results later diverge.
func TestStaleWritebackHorizonCaught(t *testing.T) {
	c, _ := sanitizedCore(t)
	// Find the next pending completion and stop the cycle before it.
	due, ok := c.events.nextDue(c.cycle)
	for i := 0; !ok && i < 10_000; i++ {
		c.Step()
		due, ok = c.events.nextDue(c.cycle)
	}
	if !ok {
		t.Fatal("no pending completion events after warmup")
	}
	for c.cycle < due-1 {
		c.Step()
	}
	if d, _ := c.events.nextDue(c.cycle); d != due {
		t.Fatalf("completion at %d drained while advancing to %d", due, c.cycle)
	}
	s := due & c.events.mask
	c.events.occ[s>>6] &^= 1 << (uint(s) & 63)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sanitizer did not catch the corrupted writeback horizon")
		}
		err, isErr := r.(error)
		if !isErr || !strings.Contains(err.Error(), "stale writeback horizon") {
			t.Fatalf("unexpected panic: %v", r)
		}
		if c.cycle != due {
			t.Errorf("violation reported at cycle %d, corrupted event due at %d", c.cycle, due)
		}
	}()
	c.Step()
}

// TestStaleRenameHorizonCaught pushes the rename horizon into the far
// future while the front end keeps delivering instructions, and requires
// the sanitizer to flag the first cycle rename performs work the stale
// horizon claimed could not exist.
func TestStaleRenameHorizonCaught(t *testing.T) {
	c, _ := sanitizedCore(t)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sanitizer did not catch the corrupted rename horizon")
		}
		err, isErr := r.(error)
		if !isErr || !strings.Contains(err.Error(), "stale rename horizon") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	for i := 0; i < 1_000; i++ {
		// Re-corrupt each cycle: rename itself recomputes the horizon
		// whenever it runs, so the corruption must be standing to prove
		// the verifier catches the first cycle with real rename work.
		c.renameHorizon = c.cycle + farFuture/2
		c.Step()
	}
	t.Fatal("rename performed no work in 1000 corrupted cycles")
}

// TestStaleFetchHorizonCaught is the fetch-stage analogue.
func TestStaleFetchHorizonCaught(t *testing.T) {
	c, _ := sanitizedCore(t)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sanitizer did not catch the corrupted fetch horizon")
		}
		err, isErr := r.(error)
		if !isErr || !strings.Contains(err.Error(), "stale fetch horizon") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	for i := 0; i < 1_000; i++ {
		c.fetchHorizon = c.cycle + farFuture/2
		c.Step()
	}
	t.Fatal("fetch performed no work in 1000 corrupted cycles")
}
