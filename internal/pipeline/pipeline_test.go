package pipeline

import (
	"errors"
	"testing"

	icore "smtsim/internal/core"
	"smtsim/internal/fetch"
	"smtsim/internal/isa"
	"smtsim/internal/uop"
	"smtsim/internal/workload"
)

// sliceReader replays a fixed prologue and then loops over a filler body
// forever, assigning per-thread sequence numbers.
type sliceReader struct {
	prologue []isa.Inst
	filler   []isa.Inst
	pos      int
	seq      uint64
}

func (r *sliceReader) Next() isa.Inst {
	var in isa.Inst
	if r.pos < len(r.prologue) {
		in = r.prologue[r.pos]
	} else {
		in = r.filler[(r.pos-len(r.prologue))%len(r.filler)]
		in.PC += uint64(r.pos) * 4 // unique PCs to keep fetch sane
	}
	r.pos++
	in.Seq = r.seq
	r.seq++
	return in
}

// alu builds r<dest> = r<s0> op r<s1>.
func alu(pc uint64, dest, s0, s1 int) isa.Inst {
	return isa.Inst{
		PC: pc, Class: isa.IntAlu,
		Dest: isa.Int(dest),
		Src:  [isa.MaxSources]isa.Reg{isa.Int(s0), isa.Int(s1)},
	}
}

func div(pc uint64, dest, s0 int) isa.Inst {
	return isa.Inst{
		PC: pc, Class: isa.IntDiv,
		Dest: isa.Int(dest),
		Src:  [isa.MaxSources]isa.Reg{isa.Int(s0), isa.NoReg},
	}
}

// fillerALU is an endless supply of independent single-source ALU ops.
var fillerALU = []isa.Inst{{
	PC: 0x1000_0000, Class: isa.IntAlu,
	Dest: isa.Int(9),
	Src:  [isa.MaxSources]isa.Reg{isa.Int(0), isa.NoReg},
}}

func benchStream(t *testing.T, name string, seed uint64) TraceReader {
	t.Helper()
	prog, err := workload.CompileBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return prog.NewStream(seed)
}

func TestSingleThreadRuns(t *testing.T) {
	cfg := DefaultConfig()
	c, err := New(cfg, []ThreadSpec{{Name: "gzip", Reader: benchStream(t, "gzip", 1)}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed < 20_000 || res.IPC <= 0 {
		t.Errorf("run too small: %+v", res)
	}
	if res.Threads[0].Benchmark != "gzip" {
		t.Error("benchmark name lost")
	}
}

func TestStopsWhenAnyThreadReachesBudget(t *testing.T) {
	cfg := DefaultConfig()
	c, err := New(cfg, []ThreadSpec{
		{Name: "equake", Reader: benchStream(t, "equake", 1)},
		{Name: "gzip", Reader: benchStream(t, "gzip", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	fast := res.Threads[1].Committed
	if fast < 10_000 {
		t.Errorf("no thread reached the budget: %+v", res.Threads)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, uint64) {
		cfg := DefaultConfig()
		cfg.Policy = icore.TwoOpOOOD
		c, err := New(cfg, []ThreadSpec{
			{Name: "equake", Reader: benchStream(t, "equake", 5)},
			{Name: "gcc", Reader: benchStream(t, "gcc", 6)},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(15_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, res.Committed
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", c1, n1, c2, n2)
	}
}

func TestCommitOrderIsProgramOrderPerThread(t *testing.T) {
	for _, policy := range []icore.Policy{icore.InOrder, icore.TwoOpBlock, icore.TwoOpOOOD} {
		cfg := DefaultConfig()
		cfg.Policy = policy
		c, err := New(cfg, []ThreadSpec{
			{Name: "equake", Reader: benchStream(t, "equake", 3)},
			{Name: "gzip", Reader: benchStream(t, "gzip", 4)},
		})
		if err != nil {
			t.Fatal(err)
		}
		next := make([]uint64, 2)
		bad := false
		c.SetCommitHook(func(u *uop.UOp) {
			if u.Inst.Seq != next[u.Thread] {
				bad = true
			}
			next[u.Thread]++
		})
		if _, err := c.Run(10_000); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if bad {
			t.Errorf("%s: commit order violated program order", policy)
		}
	}
}

// TestPhysicalRegisterConservation: after any run, every physical
// register is either free, an architectural mapping, or the destination
// of an in-flight instruction — no leaks, no double bookings.
func TestPhysicalRegisterConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = icore.TwoOpOOOD
	specs := []ThreadSpec{
		{Name: "equake", Reader: benchStream(t, "equake", 9)},
		{Name: "twolf", Reader: benchStream(t, "twolf", 10)},
	}
	c, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(8_000); err != nil {
		t.Fatal(err)
	}
	inFlightDests := 0
	for tid := range specs {
		if err := c.RenameTable(tid).CheckConsistency(); err != nil {
			t.Fatal(err)
		}
		c.ROB(tid).ForEach(func(u *uop.UOp) {
			if u.Dest.Valid() {
				inFlightDests++
			}
		})
	}
	rf := c.RegFile()
	for _, class := range []isa.RegClass{isa.IntReg, isa.FpReg} {
		allocated := rf.Size(class) - rf.FreeCount(class)
		// Architectural mappings: 32 per thread per class. In-flight
		// destinations of this class are included in inFlightDests
		// (summed across classes), so check the combined identity.
		_ = allocated
	}
	totalAllocated := 0
	for _, class := range []isa.RegClass{isa.IntReg, isa.FpReg} {
		totalAllocated += rf.Size(class) - rf.FreeCount(class)
	}
	wantArch := len(specs) * isa.NumArchRegs * isa.NumRegClasses
	if totalAllocated != wantArch+inFlightDests {
		t.Errorf("allocated %d registers, want %d arch + %d in-flight",
			totalAllocated, wantArch, inFlightDests)
	}
}

// deadlockPrologue builds the Section 4 deadlock scenario: two long
// divides feed an instruction N with two non-ready sources; dispatchable
// dependents of N fill the small IQ out of order; once the divides
// commit, N is ROB-oldest with no free IQ entry, and every IQ resident
// waits on N.
func deadlockPrologue() []isa.Inst {
	var insts []isa.Inst
	pc := uint64(0x2000_0000)
	emit := func(in isa.Inst) {
		in.PC = pc
		pc += 4
		insts = append(insts, in)
	}
	emit(div(0, 1, 0))    // r1 <- div (20 cycles)
	emit(div(0, 2, 0))    // r2 <- div (20 cycles)
	emit(alu(0, 3, 1, 2)) // N: r3 <- r1 + r2 (NDI while divides run)
	for i := 0; i < 12; i++ {
		emit(alu(0, 10+i, 3, 0)) // dependents of N, each 1 non-ready
	}
	return insts
}

func deadlockConfig(mech DeadlockMechanism) Config {
	cfg := DefaultConfig()
	cfg.Policy = icore.TwoOpOOOD
	cfg.IQSize = 8
	cfg.Deadlock = mech
	cfg.WatchdogLimit = 200
	cfg.StallLimit = 3_000
	cfg.MaxCycles = 400_000
	return cfg
}

func TestDeadlockWithoutMechanism(t *testing.T) {
	c, err := New(deadlockConfig(DeadlockNone), []ThreadSpec{
		{Name: "adversary", Reader: &sliceReader{prologue: deadlockPrologue(), filler: fillerALU}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(50_000)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestDABPreventsDeadlock(t *testing.T) {
	c, err := New(deadlockConfig(DeadlockDAB), []ThreadSpec{
		{Name: "adversary", Reader: &sliceReader{prologue: deadlockPrologue(), filler: fillerALU}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.DABInserts == 0 {
		t.Error("DAB never engaged on the adversarial workload")
	}
	if res.WatchdogFlushes != 0 {
		t.Error("watchdog fired under DAB configuration")
	}
}

func TestWatchdogRecoversFromDeadlock(t *testing.T) {
	c, err := New(deadlockConfig(DeadlockWatchdog), []ThreadSpec{
		{Name: "adversary", Reader: &sliceReader{prologue: deadlockPrologue(), filler: fillerALU}},
	})
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(0)
	bad := false
	c.SetCommitHook(func(u *uop.UOp) {
		if u.Inst.Seq != next {
			bad = true
		}
		next++
	})
	res, err := c.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.WatchdogFlushes == 0 {
		t.Error("watchdog never fired on the adversarial workload")
	}
	if bad {
		t.Error("flush/replay corrupted commit order")
	}
}

func TestInOrderPoliciesNeverNeedDeadlockMechanism(t *testing.T) {
	for _, policy := range []icore.Policy{icore.InOrder, icore.TwoOpBlock} {
		cfg := deadlockConfig(DeadlockNone)
		cfg.Policy = policy
		c, err := New(cfg, []ThreadSpec{
			{Name: "adversary", Reader: &sliceReader{prologue: deadlockPrologue(), filler: fillerALU}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(20_000); err != nil {
			t.Errorf("%s deadlocked on the adversarial workload: %v", policy, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(2); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.FetchThreads = 0 },
		func(c *Config) { c.IQSize = 4 },
		func(c *Config) { c.ROBPerThread = 0 },
		func(c *Config) { c.IntRegs = 32 },
		func(c *Config) { c.DispatchBufCap = 0 },
		func(c *Config) { c.Deadlock = DeadlockWatchdog; c.WatchdogLimit = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(2); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := good.Validate(0); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestTable1Defaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Width != 8 {
		t.Error("machine width must be 8 (Table 1)")
	}
	if cfg.ROBPerThread != 96 || cfg.LSQPerThread != 48 {
		t.Error("ROB/LSQ sizes must be 96/48 (Table 1)")
	}
	if cfg.IntRegs != 256 || cfg.FpRegs != 256 {
		t.Error("register files must be 256+256 (Table 1)")
	}
	if cfg.FetchThreads != 2 {
		t.Error("fetch limited to two threads per cycle (Section 2)")
	}
}

func TestMispredictionsAreModeled(t *testing.T) {
	cfg := DefaultConfig()
	c, err := New(cfg, []ThreadSpec{{Name: "twolf", Reader: benchStream(t, "twolf", 1)}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	mr := res.Threads[0].MispredictRate
	if mr <= 0 || mr >= 1 {
		t.Errorf("misprediction rate %.3f implausible", mr)
	}
}

func TestRoundRobinFetchRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchPolicy = fetch.RoundRobin
	c, err := New(cfg, []ThreadSpec{
		{Name: "gcc", Reader: benchStream(t, "gcc", 1)},
		{Name: "gzip", Reader: benchStream(t, "gzip", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(10_000); err != nil {
		t.Fatal(err)
	}
}

func TestNilReaderRejected(t *testing.T) {
	if _, err := New(DefaultConfig(), []ThreadSpec{{Name: "x"}}); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestZeroBudgetRejected(t *testing.T) {
	c, err := New(DefaultConfig(), []ThreadSpec{{Name: "gzip", Reader: benchStream(t, "gzip", 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(0); err == nil {
		t.Error("zero budget accepted")
	}
}
