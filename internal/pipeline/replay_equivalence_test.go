package pipeline

import (
	"bytes"
	"testing"

	"smtsim/internal/tracefile"
	"smtsim/internal/workload"
)

// TestTraceReplayIsCycleExact records a benchmark's instruction stream,
// replays it through the pipeline, and requires bit-identical timing
// against the live generator: the trace format and cursor must be
// completely transparent to the machine model.
func TestTraceReplayIsCycleExact(t *testing.T) {
	prog, err := workload.CompileBenchmark("gcc")
	if err != nil {
		t.Fatal(err)
	}

	// Record enough instructions to cover the run (fetches outpace the
	// 10k commit budget by mispredicted-but-refetched... no wrong path
	// here, but fetch runs ahead of commit; 4x margin is plenty).
	var buf bytes.Buffer
	w, err := tracefile.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := prog.NewStream(7)
	for i := 0; i < 40_000; i++ {
		if err := w.Write(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := tracefile.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}

	run := func(r TraceReader) (int64, uint64) {
		c, err := New(DefaultConfig(), []ThreadSpec{{Name: "gcc", Reader: r}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(10_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, res.Committed
	}

	liveCycles, liveCommitted := run(prog.NewStream(7))
	replayCycles, replayCommitted := run(tr.Stream(false))
	if liveCycles != replayCycles || liveCommitted != replayCommitted {
		t.Errorf("replay diverged from live stream: (%d,%d) vs (%d,%d)",
			replayCycles, replayCommitted, liveCycles, liveCommitted)
	}
}
