package pipeline

import (
	"strings"
	"testing"

	icore "smtsim/internal/core"
	"smtsim/internal/isa"
	"smtsim/internal/uop"
)

// init force-enables the invariant sanitizer for every core this test
// binary builds: all existing pipeline tests double as sanitizer runs
// and fail-stop at the first violated cycle.
func init() { testSanitize = true }

// disableSanitizer opts a core out of the test-wide sanitizer (the
// benchmarks and zero-alloc tests measure the production cycle path).
func (c *Core) disableSanitizer() {
	c.san = nil
	c.sanPanic = false
}

// sanitizedCore builds a 2-thread OOOD core and advances it until the
// issue queue holds an instruction with pending source operands,
// returning the core and that entry — a convenient victim for the
// deliberate-corruption tests.
func sanitizedCore(t *testing.T) (*Core, *uop.UOp) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = icore.TwoOpOOOD
	c, err := New(cfg, []ThreadSpec{
		{Name: "equake", Reader: benchStream(t, "equake", 3)},
		{Name: "gcc", Reader: benchStream(t, "gcc", 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 50_000; cycle++ {
		c.Step()
		var victim *uop.UOp
		c.q.ForEach(func(u *uop.UOp) {
			if victim == nil && c.bank.NotReady[u.ID] > 0 {
				victim = u
			}
		})
		if victim != nil {
			return c, victim
		}
	}
	t.Fatal("no IQ entry with pending sources appeared in 50k cycles")
	return nil, nil
}

// TestSanitizerCleanRun is the explicit form of what every test in this
// package now checks implicitly: a correct machine sustains thousands of
// sanitized cycles with zero violations, on both wakeup disciplines.
func TestSanitizerCleanRun(t *testing.T) {
	for _, polling := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Policy = icore.TwoOpOOOD
		cfg.Sanitize = true
		cfg.PollingWakeup = polling
		c, err := New(cfg, []ThreadSpec{
			{Name: "equake", Reader: benchStream(t, "equake", 1)},
			{Name: "gzip", Reader: benchStream(t, "gzip", 2)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(10_000); err != nil {
			t.Errorf("polling=%t: sanitized run failed: %v", polling, err)
		}
		if got := len(c.Sanitizer().Violations()); got != 0 {
			t.Errorf("polling=%t: %d violations on a correct machine", polling, got)
		}
	}
}

// TestSanitizerCatchesCorruption plants one targeted corruption per
// sanitizer invariant and requires the very next check to flag it — the
// "race detector" property: a broken wakeup or a register accounting
// slip is caught within one cycle, not ten thousand cycles later as a
// wrong IPC.
func TestSanitizerCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(c *Core, victim *uop.UOp)
		want   []string // any of these substrings in the violation report
	}{
		{
			// A tag broadcast that never reached this consumer: the
			// counter stays high while the register file says ready.
			name:   "missed-broadcast",
			mutate: func(c *Core, victim *uop.UOp) { c.bank.NotReady[victim.ID]++ },
			want:   []string{"counter"},
		},
		{
			// A spurious wakeup: the counter reaches zero while a source
			// operand is still outstanding.
			name:   "spurious-wakeup",
			mutate: func(c *Core, victim *uop.UOp) { c.bank.NotReady[victim.ID]-- },
			want:   []string{"counter"},
		},
		{
			// A double free on the flush path: a live destination goes
			// back to the free list while its instruction is in flight.
			// Depending on whether that destination is still the thread's
			// speculative mapping, either the rename-consistency check or
			// the conservation check reports it.
			name: "double-free",
			mutate: func(c *Core, victim *uop.UOp) {
				u := findLiveDest(c)
				c.rf.Free(u.Dest)
			},
			want: []string{"reachable but freed", "not allocated"},
		},
		{
			// A leak: an allocation nothing in the machine accounts for.
			name:   "leak",
			mutate: func(c *Core, victim *uop.UOp) { c.rf.Alloc(isa.IntReg) },
			want:   []string{"leaked"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, victim := sanitizedCore(t)
			tc.mutate(c, victim)
			err := c.Sanitizer().CheckCycle(c.Cycle())
			if err == nil {
				t.Fatal("sanitizer accepted a corrupted machine")
			}
			matched := false
			for _, w := range tc.want {
				matched = matched || strings.Contains(err.Error(), w)
			}
			if !matched {
				t.Errorf("violation %q does not mention any of %q", err, tc.want)
			}
		})
	}
}

// findLiveDest returns an in-flight instruction with a valid destination
// register.
func findLiveDest(c *Core) *uop.UOp {
	for _, r := range c.robs {
		var found *uop.UOp
		r.ForEach(func(u *uop.UOp) {
			if found == nil && u.Dest.Valid() {
				found = u
			}
		})
		if found != nil {
			return found
		}
	}
	panic("no in-flight instruction with a destination")
}

// TestSanitizerFailStopWithinOneCycle verifies the test-mode fail-stop:
// after a corruption, the next Step panics with the structured violation
// rather than letting the simulation drift.
func TestSanitizerFailStopWithinOneCycle(t *testing.T) {
	c, victim := sanitizedCore(t)
	c.bank.NotReady[victim.ID]++
	cycleBefore := c.Cycle()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Step on a corrupted machine did not fail-stop")
		}
		if c.Cycle() != cycleBefore+1 {
			t.Errorf("violation surfaced at cycle %d, want %d (within one cycle)", c.Cycle(), cycleBefore+1)
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "simsan") {
			t.Errorf("panic value %v is not a structured simsan violation", r)
		}
	}()
	c.Step()
}

// TestSanitizerErrorSurfacesThroughRun verifies the production path:
// with Config.Sanitize (no fail-stop), Run returns the violation as an
// error with partial results.
func TestSanitizerErrorSurfacesThroughRun(t *testing.T) {
	c, victim := sanitizedCore(t)
	c.sanPanic = false // production reporting mode
	c.bank.NotReady[victim.ID]++
	_, err := c.Run(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "invariant violation") {
		t.Fatalf("Run returned %v, want a wrapped invariant violation", err)
	}
	if c.SanitizerError() == nil {
		t.Error("SanitizerError lost the violation")
	}
}

// TestSanitizerCatchesCommitSkipCorruption targets the commit-skip mask
// (Core.commitable): a clear bit asserts the thread's ROB head is
// absent or incomplete, and commit trusts it without touching the ROB.
// A machine width of one keeps completed heads queued across cycle
// boundaries, so the test can catch a thread with a committable head,
// forge its bit clear, and verify the per-cycle cross-check reports the
// hidden head rather than letting commit stall silently forever.
func TestSanitizerCatchesCommitSkipCorruption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = icore.TwoOpOOOD
	cfg.Width = 1
	c, err := New(cfg, []ThreadSpec{
		{Name: "equake", Reader: benchStream(t, "equake", 3)},
		{Name: "gcc", Reader: benchStream(t, "gcc", 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.commitSkip {
		t.Fatal("commit-skip mask is not enabled on an event-wakeup core")
	}
	for cycle := 0; cycle < 50_000; cycle++ {
		c.Step()
		for th := range c.robs {
			u := c.robs[th].Head()
			if u == nil || !u.Completed || c.commitable&(1<<uint(th)) == 0 {
				continue
			}
			c.commitable &^= 1 << uint(th) // forge: head hidden from commit
			c.sanPanic = false
			c.sanitize()
			serr := c.SanitizerError()
			if serr == nil || !strings.Contains(serr.Error(), "commit-skip") {
				t.Fatalf("sanitizer returned %v, want a commit-skip mask violation", serr)
			}
			return
		}
	}
	t.Fatal("no completed ROB head survived a cycle boundary in 50k cycles")
}
