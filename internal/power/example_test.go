package power_test

import (
	"fmt"

	"smtsim/internal/iq"
	"smtsim/internal/power"
)

// Example compares the wakeup-bus hardware of the paper's queue designs:
// the 2OP designs halve the comparators of a same-capacity traditional
// queue, which is the paper's complexity argument in one number.
func Example() {
	traditional := iq.Uniform(64, 2)
	twoOp := iq.Uniform(64, 1)
	tagElim := iq.Partition{16, 32, 16}

	fmt.Println("traditional:", power.Comparators(traditional))
	fmt.Println("2op:        ", power.Comparators(twoOp))
	fmt.Println("tag-elim:   ", power.Comparators(tagElim))
	// Output:
	// traditional: 128
	// 2op:         64
	// tag-elim:    64
}

// ExampleEstimate shows how identical event streams cost different
// energy on different queue organizations.
func ExampleEstimate() {
	ev := power.Events{
		Cycles: 1_000, Committed: 2_500, TagBroadcasts: 2_000,
		DispatchesIQ: 2_500, IssuedIQ: 2_500, MeanOccupancy: 40,
	}
	w := power.DefaultWeights()
	trad := power.Estimate(iq.Uniform(64, 2), w, ev)
	twoOp := power.Estimate(iq.Uniform(64, 1), w, ev)
	fmt.Printf("wakeup energy ratio: %.2f\n", twoOp.Wakeup/trad.Wakeup)
	// Output:
	// wakeup energy ratio: 0.50
}
