// Package power provides an analytical, technology-independent energy
// model of the dynamic scheduling logic, in the spirit of the
// Wattch-style models the paper's companion work uses for its circuit
// analysis. The paper's pitch is that the 2OP designs "significantly
// reduce the complexity, access delay and power consumption of the
// dynamic scheduling logic ... while achieving the same and in many
// cases significantly better throughput"; this package turns simulator
// event counts into relative energy numbers so that claim is measurable
// here too.
//
// The model is deliberately unit-free: it reports energy in units of
// "one tag comparison". Event weights are exposed so studies can plug in
// technology numbers, but the defaults capture the structural ratios
// that matter for comparing queue designs:
//
//   - Wakeup: every result broadcast drives the tag bus past every
//     comparator in the queue (CAM precharge + compare), so its cost is
//     proportional to the queue's total comparator count — the quantity
//     the 2OP designs halve and tag elimination reduces further.
//   - Select: arbitration touches every occupied entry.
//   - Dispatch/Issue: RAM payload writes and reads per instruction.
package power

import "smtsim/internal/iq"

// Weights are the relative energies of the scheduler's event types,
// in units of one tag comparison.
type Weights struct {
	// Compare is the energy of one comparator observing one broadcast.
	Compare float64
	// SelectPerEntry is the per-occupied-entry arbitration energy per
	// cycle.
	SelectPerEntry float64
	// EntryWrite is the payload RAM write energy of one dispatch.
	EntryWrite float64
	// EntryRead is the payload RAM read energy of one issue.
	EntryRead float64
	// DABAccess is the RAM energy of one deadlock-avoidance-buffer
	// insert or issue (a small RAM, no CAM).
	DABAccess float64
}

// DefaultWeights reflects typical CAM/RAM energy ratios: a payload
// read/write costs on the order of a few tag comparisons, selection is
// cheap per entry.
func DefaultWeights() Weights {
	return Weights{
		Compare:        1.0,
		SelectPerEntry: 0.2,
		EntryWrite:     4.0,
		EntryRead:      4.0,
		DABAccess:      2.0,
	}
}

// Events are the scheduler event counts of one simulation run, as
// reported in metrics.Results.
type Events struct {
	// Cycles is the measured cycle count.
	Cycles int64
	// Committed is the number of instructions retired (the energy-per-
	// instruction denominator).
	Committed uint64
	// TagBroadcasts counts completed instructions with a register
	// destination (each drives the wakeup bus once).
	TagBroadcasts uint64
	// DispatchesIQ counts issue-queue entry writes.
	DispatchesIQ uint64
	// IssuedIQ counts issues from the queue (payload reads).
	IssuedIQ uint64
	// DABAccesses counts deadlock-avoidance-buffer inserts plus issues.
	DABAccesses uint64
	// MeanOccupancy is the average number of occupied entries per cycle.
	MeanOccupancy float64
}

// Breakdown is the model's output.
type Breakdown struct {
	Wakeup   float64
	Select   float64
	Dispatch float64
	Issue    float64
	DAB      float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.Wakeup + b.Select + b.Dispatch + b.Issue + b.DAB
}

// PerInstruction divides the total by n retired instructions.
func (b Breakdown) PerInstruction(n uint64) float64 {
	if n == 0 {
		return 0
	}
	return b.Total() / float64(n)
}

// Comparators returns the total tag comparators a partition wires to
// each wakeup bus — the static hardware cost the designs trade against.
func Comparators(p iq.Partition) int {
	return p[1] + 2*p[2]
}

// Estimate computes the scheduler energy of a run on a queue with the
// given entry partition.
func Estimate(p iq.Partition, w Weights, ev Events) Breakdown {
	comparators := float64(Comparators(p))
	return Breakdown{
		Wakeup:   w.Compare * comparators * float64(ev.TagBroadcasts),
		Select:   w.SelectPerEntry * ev.MeanOccupancy * float64(ev.Cycles),
		Dispatch: w.EntryWrite * float64(ev.DispatchesIQ),
		Issue:    w.EntryRead * float64(ev.IssuedIQ),
		DAB:      w.DABAccess * float64(ev.DABAccesses),
	}
}

// EDP returns the energy-delay product per instruction: (energy per
// instruction) x (cycles per instruction). Lower is better; it rewards
// designs that save energy without giving back performance — the paper's
// combined claim.
func EDP(b Breakdown, ev Events) float64 {
	if ev.Committed == 0 || ev.Cycles == 0 {
		return 0
	}
	cpi := float64(ev.Cycles) / float64(ev.Committed)
	return b.PerInstruction(ev.Committed) * cpi
}
