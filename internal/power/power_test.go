package power

import (
	"testing"

	"smtsim/internal/iq"
)

func TestComparators(t *testing.T) {
	cases := []struct {
		p    iq.Partition
		want int
	}{
		{iq.Uniform(64, 2), 128}, // traditional: 2 per entry
		{iq.Uniform(64, 1), 64},  // 2OP: 1 per entry — the halving
		{iq.Uniform(64, 0), 0},
		{iq.Partition{16, 32, 16}, 64}, // tag elimination
	}
	for _, c := range cases {
		if got := Comparators(c.p); got != c.want {
			t.Errorf("Comparators(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestEstimateStructure(t *testing.T) {
	ev := Events{
		Cycles: 1000, Committed: 2000, TagBroadcasts: 1500,
		DispatchesIQ: 2000, IssuedIQ: 2000, DABAccesses: 10,
		MeanOccupancy: 30,
	}
	w := DefaultWeights()
	trad := Estimate(iq.Uniform(64, 2), w, ev)
	twoOp := Estimate(iq.Uniform(64, 1), w, ev)

	// Identical event counts: only the wakeup term differs, and by
	// exactly the comparator ratio.
	if trad.Wakeup != 2*twoOp.Wakeup {
		t.Errorf("wakeup energies %v vs %v: not the 2x comparator ratio", trad.Wakeup, twoOp.Wakeup)
	}
	if trad.Select != twoOp.Select || trad.Dispatch != twoOp.Dispatch || trad.Issue != twoOp.Issue {
		t.Error("non-wakeup terms depend on partition")
	}
	if trad.Total() <= twoOp.Total() {
		t.Error("traditional queue not more expensive")
	}
	if trad.PerInstruction(ev.Committed) != trad.Total()/2000 {
		t.Error("per-instruction division wrong")
	}
}

func TestEstimateZeroSafe(t *testing.T) {
	var b Breakdown
	if b.PerInstruction(0) != 0 {
		t.Error("zero instructions not handled")
	}
	if EDP(b, Events{}) != 0 {
		t.Error("empty EDP not zero")
	}
}

func TestEDPBalancesEnergyAndDelay(t *testing.T) {
	w := DefaultWeights()
	ev := Events{Cycles: 1000, Committed: 2000, TagBroadcasts: 1500,
		DispatchesIQ: 2000, IssuedIQ: 2000, MeanOccupancy: 30}
	slow := ev
	slow.Cycles = 2000 // same energy, half the speed
	b := Estimate(iq.Uniform(64, 1), w, ev)
	bs := Estimate(iq.Uniform(64, 1), w, slow)
	if EDP(bs, slow) <= EDP(b, ev) {
		t.Error("EDP did not penalize the slower run")
	}
}

func TestWakeupScalesWithBroadcasts(t *testing.T) {
	w := DefaultWeights()
	p := iq.Uniform(32, 1)
	a := Estimate(p, w, Events{TagBroadcasts: 100})
	b := Estimate(p, w, Events{TagBroadcasts: 200})
	if b.Wakeup != 2*a.Wakeup {
		t.Error("wakeup not linear in broadcasts")
	}
}
