package regfile

import (
	"testing"

	"smtsim/internal/isa"
)

// TestBroadcastZeroAllocs is the runtime counterpart of the
// //smt:hotpath annotations on the bitmap-wakeup path (Watch, SetReady,
// Free): registering consumers, broadcasting a tag to them, and
// reclaiming the register must not allocate. The consumer bitmaps and
// their watch-word ranges are sized once at AttachWakeup; a steady-state
// allocation here would put a GC write barrier on every broadcast.
func TestBroadcastZeroAllocs(t *testing.T) {
	f := New(64, 64)
	notReady := make([]int8, 256)
	woken := 0
	f.AttachWakeup(256, notReady, func(id int32) { woken++ })

	if avg := testing.AllocsPerRun(10_000, func() {
		p := f.Alloc(isa.IntReg)
		for id := int32(0); id < 8; id++ {
			notReady[id] = 1
			f.Watch(p, id)
		}
		f.SetReady(p)
		f.Free(p)
	}); avg != 0 {
		t.Errorf("watch/broadcast/free cycle allocates %.1f times per run, want 0", avg)
	}
	if woken == 0 {
		t.Fatal("broadcast never fired the wakeup callback")
	}
}
