// Package regfile models the shared physical register files of the SMT
// machine: 256 integer and 256 floating-point registers (Table 1), each
// with a free list and a per-register ready bit. All threads allocate from
// the same pools, which is one of the SMT resource-sharing points the
// paper's dispatch policies interact with.
//
// The wakeup CAM is a per-register consumer *bitmap* over dense uop ids
// (ROB-slot identities): Watch sets a bit, SetReady walks the set bits
// with bits.TrailingZeros64 and decrements the bank's not-ready counters
// directly. Compared to the per-register []watcher lists this replaces,
// a broadcast touches a handful of words, allocates nothing, and carries
// no interface dispatch or GC write barriers.
package regfile

import (
	"fmt"
	"math/bits"

	"smtsim/internal/isa"
)

// PhysRef names one physical register: a class and an index within that
// class's file. The zero value is not valid; use NoPhys for "absent".
type PhysRef struct {
	Class isa.RegClass
	Index int16
}

// NoPhys is the absent-register sentinel.
var NoPhys = PhysRef{Index: -1}

// Valid reports whether the reference names a real physical register.
func (p PhysRef) Valid() bool { return p.Index >= 0 }

// String formats as "p17i" or "p3f", or "-" if absent.
func (p PhysRef) String() string {
	if !p.Valid() {
		return "-"
	}
	suffix := "i"
	if p.Class == isa.FpReg {
		suffix = "f"
	}
	return fmt.Sprintf("p%d%s", p.Index, suffix)
}

// file is one class's physical register file.
type file struct {
	ready     []bool
	free      []int16 // stack of free indices
	allocated []bool
	// cons and dup are the wakeup CAM: per register, `words` uint64s of
	// consumer-id bits, stored flat (register r owns cons[r*words :
	// (r+1)*words]). A set cons bit means that uop id has one pending
	// source on this register; the matching dup bit means it has two
	// (both renamed sources mapped to the same physical register), so a
	// broadcast owes it two decrements. Nil until AttachWakeup.
	cons []uint64
	dup  []uint64
	// watchLo/watchHi bound, per register, the word range of cons that can
	// hold set bits: Watch widens the range, SetReady and Free walk only
	// [lo, hi] and reset it to empty (lo = words, hi = -1). Unwatch leaves
	// the range stale-wide, which is safe — the walk just revisits zero
	// words. A register's watchers are the still-renamed consumers of one
	// thread, whose dense ids live in a contiguous ROB-slot window, so the
	// bounded walk touches a few words where the full walk touches words
	// (bankCap/64) of mostly zeroes.
	watchLo []int16
	watchHi []int16
}

// File is the pair of physical register files with free lists and ready
// bits. It is not safe for concurrent use; the simulator is single-
// threaded per core by design (cycle-accurate state machines do not shard).
type File struct {
	files [isa.NumRegClasses]file

	// Wakeup sink, installed by AttachWakeup: SetReady decrements
	// notReady[id] per pending watch and calls onZero when the counter
	// hits zero. words is the per-register bitmap width in uint64s.
	notReady []int8
	onZero   func(id int32)
	words    int
}

// New builds register files with the given number of registers per class.
func New(intRegs, fpRegs int) *File {
	f := &File{}
	sizes := [isa.NumRegClasses]int{intRegs, fpRegs}
	for c := range f.files {
		n := sizes[c]
		f.files[c] = file{
			ready:     make([]bool, n),
			free:      make([]int16, 0, n),
			allocated: make([]bool, n),
		}
		// Free list as a stack, highest index first so low indices serve
		// the initial architectural mappings.
		for i := n - 1; i >= 0; i-- {
			f.files[c].free = append(f.files[c].free, int16(i))
		}
	}
	return f
}

// AttachWakeup sizes the consumer bitmaps for uop ids 0..bankCap-1 and
// installs the broadcast sink: notReady is the uop bank's not-ready
// counter column, and onZero fires (from inside SetReady) for each
// watched id whose counter reaches zero. Must be called before Watch;
// event-driven pipelines call it once at construction. Polling pipelines
// never watch, so they may skip it.
func (f *File) AttachWakeup(bankCap int, notReady []int8, onZero func(id int32)) {
	if bankCap <= 0 {
		panic("regfile: wakeup bank size must be positive")
	}
	f.words = (bankCap + 63) / 64
	f.notReady = notReady
	f.onZero = onZero
	for c := range f.files {
		fl := &f.files[c]
		fl.cons = make([]uint64, len(fl.ready)*f.words)
		fl.dup = make([]uint64, len(fl.ready)*f.words)
		fl.watchLo = make([]int16, len(fl.ready))
		fl.watchHi = make([]int16, len(fl.ready))
		for i := range fl.watchLo {
			fl.watchLo[i] = int16(f.words)
			fl.watchHi[i] = -1
		}
	}
}

// Size returns the number of physical registers in a class.
func (f *File) Size(c isa.RegClass) int { return len(f.files[c].ready) }

// FreeCount returns the number of unallocated registers in a class.
func (f *File) FreeCount(c isa.RegClass) int { return len(f.files[c].free) }

// CanAlloc reports whether at least n registers of class c are free.
//
//smt:hotpath
func (f *File) CanAlloc(c isa.RegClass, n int) bool { return len(f.files[c].free) >= n }

// Alloc takes a register from the free list. The register starts
// not-ready. It panics if the pool is exhausted — callers must gate
// renaming on CanAlloc, so exhaustion here is a simulator bug.
//
//smt:hotpath
func (f *File) Alloc(c isa.RegClass) PhysRef {
	fl := &f.files[c]
	if len(fl.free) == 0 {
		panic(fmt.Sprintf("regfile: %s pool exhausted", c))
	}
	idx := fl.free[len(fl.free)-1]
	fl.free = fl.free[:len(fl.free)-1]
	fl.ready[idx] = false
	fl.allocated[idx] = true
	return PhysRef{Class: c, Index: idx}
}

// AllocReady allocates a register already in the ready state, used for
// the initial architectural mappings.
func (f *File) AllocReady(c isa.RegClass) PhysRef {
	p := f.Alloc(c)
	f.files[c].ready[p.Index] = true
	return p
}

// Free returns a register to its pool. Double frees panic: free-list
// conservation is a core simulator invariant (tested by property tests).
//
//smt:hotpath
func (f *File) Free(p PhysRef) {
	if !p.Valid() {
		return
	}
	fl := &f.files[p.Class]
	if !fl.allocated[p.Index] {
		panic(fmt.Sprintf("regfile: double free of %s", p))
	}
	fl.allocated[p.Index] = false
	fl.ready[p.Index] = false
	fl.free = append(fl.free, p.Index)
	// Drop pending watches without notifying: a freed register's value
	// will never be produced, and its watchers have been squashed along
	// with the in-flight instructions that registered them.
	if f.words != 0 {
		base := int(p.Index) * f.words
		if lo, hi := int(fl.watchLo[p.Index]), int(fl.watchHi[p.Index]); hi >= lo {
			cons := fl.cons[base+lo : base+hi+1]
			dup := fl.dup[base+lo : base+hi+1]
			dup = dup[:len(cons)]
			for w := range cons {
				cons[w] = 0
				dup[w] = 0
			}
			fl.watchLo[p.Index] = int16(f.words)
			fl.watchHi[p.Index] = -1
		}
	}
}

// Watch registers uop id for a wakeup decrement when p becomes ready,
// and reports whether a registration was made: an absent or already-
// ready register registers nothing (the caller observes its readiness
// directly). A second Watch of the same (p, id) pair — a uop whose two
// sources renamed to the same physical register — records a duplicate
// bit, so the broadcast still owes that uop two decrements, matching
// what per-source polling counts.
//
//smt:hotpath
func (f *File) Watch(p PhysRef, id int32) bool {
	if !p.Valid() {
		return false
	}
	fl := &f.files[p.Class]
	if fl.ready[p.Index] {
		return false
	}
	wo := int16(id >> 6)
	w := int(p.Index)*f.words + int(wo)
	bit := uint64(1) << (uint(id) & 63)
	if fl.cons[w]&bit != 0 {
		fl.dup[w] |= bit
	} else {
		fl.cons[w] |= bit
	}
	if wo < fl.watchLo[p.Index] {
		fl.watchLo[p.Index] = wo
	}
	if wo > fl.watchHi[p.Index] {
		fl.watchHi[p.Index] = wo
	}
	return true
}

// Unwatch drops any pending registrations of id on p (both the primary
// and the duplicate bit). Squash paths call it for each still-pending
// source of an annulled uop so the id's bank slot can be recycled
// without a later broadcast decrementing the new occupant.
func (f *File) Unwatch(p PhysRef, id int32) {
	if !p.Valid() || f.words == 0 {
		return
	}
	fl := &f.files[p.Class]
	w := int(p.Index)*f.words + int(id>>6)
	bit := uint64(1) << (uint(id) & 63)
	fl.cons[w] &^= bit
	fl.dup[w] &^= bit
}

// Watchers returns the number of pending wakeup registrations on p (for
// tests and invariant checks). Duplicate registrations count twice,
// matching the decrements a broadcast will perform.
func (f *File) Watchers(p PhysRef) int {
	if !p.Valid() || f.words == 0 {
		return 0
	}
	fl := &f.files[p.Class]
	base := int(p.Index) * f.words
	n := 0
	for w := base; w < base+f.words; w++ {
		n += bits.OnesCount64(fl.cons[w]) + bits.OnesCount64(fl.dup[w])
	}
	return n
}

// Ready reports whether the register's value has been produced.
//
//smt:hotpath
func (f *File) Ready(p PhysRef) bool {
	if !p.Valid() {
		return true // absent operands are trivially ready
	}
	return f.files[p.Class].ready[p.Index]
}

// SetReady marks the register's value as produced (writeback/wakeup) and
// broadcasts to the register's consumer bitmap: every watched uop id has
// its not-ready counter decremented (twice for duplicate registrations),
// onZero fires for each id whose counter reaches zero, and the bitmap is
// cleared. This is the event-driven tag broadcast — consumers are told
// the operand exists instead of polling Ready every cycle. Wakeup order
// within a broadcast is ascending id; end-of-broadcast state does not
// depend on it (counters are sums and the issue queue's ready list is
// kept age-sorted on insert).
//
//smt:hotpath
func (f *File) SetReady(p PhysRef) {
	if !p.Valid() {
		return
	}
	fl := &f.files[p.Class]
	fl.ready[p.Index] = true
	if f.words == 0 {
		return
	}
	base := int(p.Index) * f.words
	lo, hi := int(fl.watchLo[p.Index]), int(fl.watchHi[p.Index])
	if hi < lo {
		return // empty watch range; lo/hi are already the reset state
	}
	fl.watchLo[p.Index] = int16(f.words)
	fl.watchHi[p.Index] = -1
	// One subslice per bitmap bounds the walk so the word loop indexes
	// check-free (dup re-sliced to cons's length for the same reason).
	cons := fl.cons[base+lo : base+hi+1]
	dup := fl.dup[base+lo : base+hi+1]
	dup = dup[:len(cons)]
	nr := f.notReady
	for w, m := range cons {
		if m == 0 {
			continue
		}
		d := dup[w]
		cons[w] = 0
		dup[w] = 0
		idBase := int32(lo+w) << 6
		for m != 0 {
			b := uint(bits.TrailingZeros64(m))
			m &^= 1 << b
			id := idBase + int32(b)
			dec := int8(1) + int8((d>>b)&1)
			nr[id] -= dec
			if nr[id] == 0 {
				f.onZero(id)
			}
		}
	}
}

// ClearReady marks the register not-ready again (used only by rollback
// paths in tests; normal execution sets ready exactly once per
// allocation). The consumer bitmap is empty at this point — SetReady
// cleared it — so consumers that still need the value must re-register
// with Watch, which is how a rollback re-arms the wakeup.
func (f *File) ClearReady(p PhysRef) {
	if !p.Valid() {
		return
	}
	f.files[p.Class].ready[p.Index] = false
}

// Allocated reports whether the register is currently allocated.
//
//smt:hotpath
func (f *File) Allocated(p PhysRef) bool {
	if !p.Valid() {
		return false
	}
	return f.files[p.Class].allocated[p.Index]
}

// VisitWatchers calls fn for every pending wakeup registration across
// both register classes, once per registration (so a duplicate-bit id is
// visited twice). Invariant checkers use it to cross-check the consumer
// bitmaps against the bank's not-ready counters; fn must not call Watch,
// Free, or SetReady.
func (f *File) VisitWatchers(fn func(p PhysRef, id int32)) {
	if f.words == 0 {
		return
	}
	for cls := range f.files {
		fl := &f.files[cls]
		for idx := 0; idx < len(fl.ready); idx++ {
			p := PhysRef{Class: isa.RegClass(cls), Index: int16(idx)}
			base := idx * f.words
			for w := 0; w < f.words; w++ {
				m := fl.cons[base+w]
				d := fl.dup[base+w]
				idBase := int32(w) << 6
				for m != 0 {
					b := uint(bits.TrailingZeros64(m))
					m &^= 1 << b
					id := idBase + int32(b)
					fn(p, id)
					if (d>>b)&1 != 0 {
						fn(p, id)
					}
				}
			}
		}
	}
}

// CheckInvariants verifies the register file's internal contracts: the
// free list holds each unallocated register exactly once and no
// allocated one; free registers are not marked ready; no consumer bit
// survives on a register whose value already exists (SetReady clears the
// bitmap, Watch declines ready registers, Free clears); and every
// duplicate bit shadows a primary bit. It returns an error describing
// the first violation.
func (f *File) CheckInvariants() error {
	for cls := range f.files {
		fl := &f.files[cls]
		onFree := make([]bool, len(fl.ready))
		for _, idx := range fl.free {
			if int(idx) < 0 || int(idx) >= len(fl.ready) {
				return fmt.Errorf("regfile: free list holds out-of-range index %d (%s)", idx, isa.RegClass(cls))
			}
			if onFree[idx] {
				return fmt.Errorf("regfile: p%d%s appears twice on the free list", idx, isa.RegClass(cls))
			}
			onFree[idx] = true
			if fl.allocated[idx] {
				return fmt.Errorf("regfile: p%d%s is on the free list while allocated", idx, isa.RegClass(cls))
			}
		}
		for idx := range fl.ready {
			if !fl.allocated[idx] && !onFree[idx] {
				return fmt.Errorf("regfile: p%d%s leaked: neither allocated nor free", idx, isa.RegClass(cls))
			}
			if !fl.allocated[idx] && fl.ready[idx] {
				return fmt.Errorf("regfile: free register p%d%s marked ready", idx, isa.RegClass(cls))
			}
			p := PhysRef{Class: isa.RegClass(cls), Index: int16(idx)}
			if fl.ready[idx] && f.Watchers(p) > 0 {
				return fmt.Errorf("regfile: ready register p%d%s still has %d watchers", idx, isa.RegClass(cls), f.Watchers(p))
			}
			if f.words != 0 {
				base := idx * f.words
				for w := 0; w < f.words; w++ {
					if orphan := fl.dup[base+w] &^ fl.cons[base+w]; orphan != 0 {
						return fmt.Errorf("regfile: p%d%s has duplicate watch bit without primary (word %d, bits %#x)",
							idx, isa.RegClass(cls), w, orphan)
					}
				}
			}
		}
	}
	return nil
}
