// Package regfile models the shared physical register files of the SMT
// machine: 256 integer and 256 floating-point registers (Table 1), each
// with a free list and a per-register ready bit. All threads allocate from
// the same pools, which is one of the SMT resource-sharing points the
// paper's dispatch policies interact with.
package regfile

import (
	"fmt"

	"smtsim/internal/isa"
)

// PhysRef names one physical register: a class and an index within that
// class's file. The zero value is not valid; use NoPhys for "absent".
type PhysRef struct {
	Class isa.RegClass
	Index int16
}

// NoPhys is the absent-register sentinel.
var NoPhys = PhysRef{Index: -1}

// Valid reports whether the reference names a real physical register.
func (p PhysRef) Valid() bool { return p.Index >= 0 }

// String formats as "p17i" or "p3f", or "-" if absent.
func (p PhysRef) String() string {
	if !p.Valid() {
		return "-"
	}
	suffix := "i"
	if p.Class == isa.FpReg {
		suffix = "f"
	}
	return fmt.Sprintf("p%d%s", p.Index, suffix)
}

// Consumer receives a one-shot wakeup notification when a watched
// register becomes ready — the software analogue of a tag-broadcast CAM
// match. token echoes the value passed to Watch, letting a consumer
// reject notifications registered by an earlier life of the same object
// (the pipeline recycles UOps; a stale token identifies a dead watch).
type Consumer interface {
	OperandReady(p PhysRef, token uint64)
}

// watcher is one pending wakeup registration.
type watcher struct {
	c     Consumer
	token uint64
}

// file is one class's physical register file.
type file struct {
	ready     []bool
	free      []int16 // stack of free indices
	allocated []bool
	watchers  [][]watcher // per-register consumer lists (wakeup CAM)
}

// File is the pair of physical register files with free lists and ready
// bits. It is not safe for concurrent use; the simulator is single-
// threaded per core by design (cycle-accurate state machines do not shard).
type File struct {
	files [isa.NumRegClasses]file
}

// New builds register files with the given number of registers per class.
func New(intRegs, fpRegs int) *File {
	f := &File{}
	sizes := [isa.NumRegClasses]int{intRegs, fpRegs}
	for c := range f.files {
		n := sizes[c]
		f.files[c] = file{
			ready:     make([]bool, n),
			free:      make([]int16, 0, n),
			allocated: make([]bool, n),
			watchers:  make([][]watcher, n),
		}
		// Free list as a stack, highest index first so low indices serve
		// the initial architectural mappings.
		for i := n - 1; i >= 0; i-- {
			f.files[c].free = append(f.files[c].free, int16(i))
		}
	}
	return f
}

// Size returns the number of physical registers in a class.
func (f *File) Size(c isa.RegClass) int { return len(f.files[c].ready) }

// FreeCount returns the number of unallocated registers in a class.
func (f *File) FreeCount(c isa.RegClass) int { return len(f.files[c].free) }

// CanAlloc reports whether at least n registers of class c are free.
//
//smt:hotpath
func (f *File) CanAlloc(c isa.RegClass, n int) bool { return len(f.files[c].free) >= n }

// Alloc takes a register from the free list. The register starts
// not-ready. It panics if the pool is exhausted — callers must gate
// renaming on CanAlloc, so exhaustion here is a simulator bug.
//
//smt:hotpath
func (f *File) Alloc(c isa.RegClass) PhysRef {
	fl := &f.files[c]
	if len(fl.free) == 0 {
		panic(fmt.Sprintf("regfile: %s pool exhausted", c))
	}
	idx := fl.free[len(fl.free)-1]
	fl.free = fl.free[:len(fl.free)-1]
	fl.ready[idx] = false
	fl.allocated[idx] = true
	return PhysRef{Class: c, Index: idx}
}

// AllocReady allocates a register already in the ready state, used for
// the initial architectural mappings.
func (f *File) AllocReady(c isa.RegClass) PhysRef {
	p := f.Alloc(c)
	f.files[c].ready[p.Index] = true
	return p
}

// Free returns a register to its pool. Double frees panic: free-list
// conservation is a core simulator invariant (tested by property tests).
//
//smt:hotpath
func (f *File) Free(p PhysRef) {
	if !p.Valid() {
		return
	}
	fl := &f.files[p.Class]
	if !fl.allocated[p.Index] {
		panic(fmt.Sprintf("regfile: double free of %s", p))
	}
	fl.allocated[p.Index] = false
	fl.ready[p.Index] = false
	fl.free = append(fl.free, p.Index)
	// Drop pending watches without notifying: a freed register's value
	// will never be produced, and its watchers have been squashed along
	// with the in-flight instructions that registered them.
	clearWatchers(&fl.watchers[p.Index])
}

// clearWatchers empties a consumer list, dropping the references while
// keeping the backing array for reuse.
//
//smt:hotpath
func clearWatchers(ws *[]watcher) {
	for i := range *ws {
		(*ws)[i] = watcher{}
	}
	*ws = (*ws)[:0]
}

// Watch registers c for a one-shot OperandReady notification when p
// becomes ready, and reports whether a registration was made: an absent
// or already-ready register notifies nobody (the caller observes its
// readiness directly). Notifications fire inside SetReady, in
// registration order.
//
//smt:hotpath
func (f *File) Watch(p PhysRef, c Consumer, token uint64) bool {
	if !p.Valid() {
		return false
	}
	fl := &f.files[p.Class]
	if fl.ready[p.Index] {
		return false
	}
	fl.watchers[p.Index] = append(fl.watchers[p.Index], watcher{c: c, token: token})
	return true
}

// Watchers returns the number of pending wakeup registrations on p (for
// tests and invariant checks).
func (f *File) Watchers(p PhysRef) int {
	if !p.Valid() {
		return 0
	}
	return len(f.files[p.Class].watchers[p.Index])
}

// Ready reports whether the register's value has been produced.
//
//smt:hotpath
func (f *File) Ready(p PhysRef) bool {
	if !p.Valid() {
		return true // absent operands are trivially ready
	}
	return f.files[p.Class].ready[p.Index]
}

// SetReady marks the register's value as produced (writeback/wakeup) and
// broadcasts to the register's consumer list: every watcher registered
// via Watch is notified exactly once, in registration order, and the
// list is cleared. This is the event-driven tag broadcast — consumers
// are told the operand exists instead of polling Ready every cycle.
//
//smt:hotpath
func (f *File) SetReady(p PhysRef) {
	if !p.Valid() {
		return
	}
	fl := &f.files[p.Class]
	fl.ready[p.Index] = true
	ws := fl.watchers[p.Index]
	if len(ws) == 0 {
		return
	}
	// Reset the list before notifying. Callbacks cannot re-register on
	// this register (it is ready now, so Watch declines), which makes
	// draining the captured slice safe.
	fl.watchers[p.Index] = ws[:0]
	for i := range ws {
		w := ws[i]
		ws[i] = watcher{}
		w.c.OperandReady(p, w.token)
	}
}

// ClearReady marks the register not-ready again (used only by rollback
// paths in tests; normal execution sets ready exactly once per
// allocation). The consumer list is empty at this point — SetReady
// drained it — so consumers that still need the value must re-enqueue
// themselves with Watch, which is how a rollback re-arms the wakeup.
func (f *File) ClearReady(p PhysRef) {
	if !p.Valid() {
		return
	}
	f.files[p.Class].ready[p.Index] = false
}

// Allocated reports whether the register is currently allocated.
//
//smt:hotpath
func (f *File) Allocated(p PhysRef) bool {
	if !p.Valid() {
		return false
	}
	return f.files[p.Class].allocated[p.Index]
}

// VisitWatchers calls fn for every pending wakeup registration across
// both register classes. Invariant checkers use it to cross-check the
// consumer lists against the event-maintained not-ready counters; fn
// must not call Watch, Free, or SetReady.
func (f *File) VisitWatchers(fn func(p PhysRef, c Consumer, token uint64)) {
	for cls := range f.files {
		fl := &f.files[cls]
		for idx := range fl.watchers {
			p := PhysRef{Class: isa.RegClass(cls), Index: int16(idx)}
			for _, w := range fl.watchers[idx] {
				fn(p, w.c, w.token)
			}
		}
	}
}

// CheckInvariants verifies the register file's internal contracts: the
// free list holds each unallocated register exactly once and no
// allocated one; free registers are not marked ready; and no consumer
// list survives on a register whose value already exists (SetReady
// drains lists, Watch declines ready registers, Free clears). It
// returns an error describing the first violation.
func (f *File) CheckInvariants() error {
	for cls := range f.files {
		fl := &f.files[cls]
		onFree := make([]bool, len(fl.ready))
		for _, idx := range fl.free {
			if int(idx) < 0 || int(idx) >= len(fl.ready) {
				return fmt.Errorf("regfile: free list holds out-of-range index %d (%s)", idx, isa.RegClass(cls))
			}
			if onFree[idx] {
				return fmt.Errorf("regfile: p%d%s appears twice on the free list", idx, isa.RegClass(cls))
			}
			onFree[idx] = true
			if fl.allocated[idx] {
				return fmt.Errorf("regfile: p%d%s is on the free list while allocated", idx, isa.RegClass(cls))
			}
		}
		for idx := range fl.ready {
			if !fl.allocated[idx] && !onFree[idx] {
				return fmt.Errorf("regfile: p%d%s leaked: neither allocated nor free", idx, isa.RegClass(cls))
			}
			if !fl.allocated[idx] && fl.ready[idx] {
				return fmt.Errorf("regfile: free register p%d%s marked ready", idx, isa.RegClass(cls))
			}
			if fl.ready[idx] && len(fl.watchers[idx]) > 0 {
				return fmt.Errorf("regfile: ready register p%d%s still has %d watchers", idx, isa.RegClass(cls), len(fl.watchers[idx]))
			}
		}
	}
	return nil
}
