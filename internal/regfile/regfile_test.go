package regfile

import (
	"testing"
	"testing/quick"

	"smtsim/internal/isa"
)

func TestAllocFreeRoundTrip(t *testing.T) {
	f := New(8, 4)
	if f.Size(isa.IntReg) != 8 || f.Size(isa.FpReg) != 4 {
		t.Fatalf("sizes %d/%d", f.Size(isa.IntReg), f.Size(isa.FpReg))
	}
	p := f.Alloc(isa.IntReg)
	if !p.Valid() || f.Ready(p) {
		t.Errorf("fresh register %v should be valid and not ready", p)
	}
	if f.FreeCount(isa.IntReg) != 7 {
		t.Errorf("free count %d, want 7", f.FreeCount(isa.IntReg))
	}
	f.SetReady(p)
	if !f.Ready(p) {
		t.Error("SetReady not visible")
	}
	f.Free(p)
	if f.FreeCount(isa.IntReg) != 8 {
		t.Errorf("free count %d after free, want 8", f.FreeCount(isa.IntReg))
	}
	if f.Allocated(p) {
		t.Error("freed register still allocated")
	}
}

func TestAllocReadyStartsReady(t *testing.T) {
	f := New(4, 4)
	p := f.AllocReady(isa.FpReg)
	if !f.Ready(p) {
		t.Error("AllocReady register not ready")
	}
}

func TestExhaustionPanics(t *testing.T) {
	f := New(2, 2)
	f.Alloc(isa.IntReg)
	f.Alloc(isa.IntReg)
	if f.CanAlloc(isa.IntReg, 1) {
		t.Error("CanAlloc true on exhausted pool")
	}
	defer func() {
		if recover() == nil {
			t.Error("exhausted Alloc did not panic")
		}
	}()
	f.Alloc(isa.IntReg)
}

func TestDoubleFreePanics(t *testing.T) {
	f := New(4, 4)
	p := f.Alloc(isa.IntReg)
	f.Free(p)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	f.Free(p)
}

func TestInvalidRefsAreInert(t *testing.T) {
	f := New(4, 4)
	if !f.Ready(NoPhys) {
		t.Error("absent operand must be trivially ready")
	}
	f.SetReady(NoPhys) // must not panic
	f.Free(NoPhys)     // must not panic
	if f.Allocated(NoPhys) {
		t.Error("NoPhys reported allocated")
	}
}

func TestFreeClearsReady(t *testing.T) {
	f := New(4, 4)
	p := f.Alloc(isa.IntReg)
	f.SetReady(p)
	f.Free(p)
	q := f.Alloc(isa.IntReg)
	// Depending on free-list order we may get the same index back; a
	// fresh allocation must never inherit a stale ready bit.
	for q.Index != p.Index {
		if !f.CanAlloc(isa.IntReg, 1) {
			t.Skip("could not re-draw the same register")
		}
		q = f.Alloc(isa.IntReg)
	}
	if f.Ready(q) {
		t.Error("recycled register inherited ready bit")
	}
}

// TestConservationProperty: under arbitrary alloc/free sequences, the
// number of free plus live registers equals the pool size, and no
// register is ever handed out twice concurrently.
func TestConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		const n = 16
		rf := New(n, n)
		var live []PhysRef
		for _, op := range ops {
			if op%2 == 0 && rf.CanAlloc(isa.IntReg, 1) {
				p := rf.Alloc(isa.IntReg)
				for _, q := range live {
					if q == p {
						return false // double allocation
					}
				}
				live = append(live, p)
			} else if len(live) > 0 {
				p := live[len(live)-1]
				live = live[:len(live)-1]
				rf.Free(p)
			}
			if rf.FreeCount(isa.IntReg)+len(live) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPhysRefString(t *testing.T) {
	if NoPhys.String() != "-" {
		t.Errorf("NoPhys.String() = %q", NoPhys.String())
	}
	p := PhysRef{Class: isa.IntReg, Index: 17}
	if p.String() != "p17i" {
		t.Errorf("int ref = %q", p.String())
	}
	q := PhysRef{Class: isa.FpReg, Index: 3}
	if q.String() != "p3f" {
		t.Errorf("fp ref = %q", q.String())
	}
}
