// Package rename implements per-thread register renaming: a speculative
// front-end rename table (RAT) updated at rename, and an architectural
// table updated at commit. Each SMT thread owns one Table; all tables
// allocate from the shared physical register file.
//
// Renaming always proceeds in program order within a thread — that is the
// invariant the paper's out-of-order *dispatch* relies on to keep true
// dependences correct (Section 4): dispatch reorders instructions that
// are already renamed.
package rename

import (
	"fmt"

	"smtsim/internal/isa"
	"smtsim/internal/regfile"
	"smtsim/internal/uop"
)

// Table is one thread's pair of rename tables.
type Table struct {
	rf   *regfile.File
	spec [isa.NumRegClasses][isa.NumArchRegs]regfile.PhysRef
	arch [isa.NumRegClasses][isa.NumArchRegs]regfile.PhysRef
}

// New builds a table whose architectural registers are bound to fresh,
// ready physical registers (the thread's initial architectural state).
func New(rf *regfile.File) *Table {
	t := &Table{rf: rf}
	for c := 0; c < isa.NumRegClasses; c++ {
		for i := 0; i < isa.NumArchRegs; i++ {
			p := rf.AllocReady(isa.RegClass(c))
			t.spec[c][i] = p
			t.arch[c][i] = p
		}
	}
	return t
}

// CanRename reports whether the physical register file can supply the
// destination of u (instructions without a destination always rename).
func (t *Table) CanRename(u *uop.UOp) bool {
	if !u.Inst.HasDest() {
		return true
	}
	return t.rf.CanAlloc(u.Inst.Dest.Class, 1)
}

// Rename maps u's architectural operands to physical registers, allocates
// a destination register, and updates the speculative table. It must be
// called in program order per thread and only after CanRename.
func (t *Table) Rename(u *uop.UOp) {
	for i, s := range u.Inst.Src {
		if s.Valid() {
			u.Srcs[i] = t.spec[s.Class][s.Index]
		} else {
			u.Srcs[i] = regfile.NoPhys
		}
	}
	if d := u.Inst.Dest; d.Valid() {
		u.PrevDest = t.spec[d.Class][d.Index]
		u.Dest = t.rf.Alloc(d.Class)
		t.spec[d.Class][d.Index] = u.Dest
	} else {
		u.Dest = regfile.NoPhys
		u.PrevDest = regfile.NoPhys
	}
}

// Commit retires u: the architectural table adopts u's destination
// mapping and the previous mapping's physical register is reclaimed.
// Must be called in program order per thread.
func (t *Table) Commit(u *uop.UOp) {
	if d := u.Inst.Dest; d.Valid() {
		t.arch[d.Class][d.Index] = u.Dest
		t.rf.Free(u.PrevDest)
	}
}

// SquashAll rewinds the speculative table to the committed architectural
// state. The caller is responsible for freeing the destination registers
// of the squashed in-flight instructions (it owns their UOps).
func (t *Table) SquashAll() {
	t.spec = t.arch
}

// Undo reverses one rename: the destination architectural register's
// mapping reverts to u.PrevDest. Because renaming is in program order,
// undoing the youngest in-flight instructions first restores any earlier
// point exactly; Undo panics if called out of order (the speculative
// mapping no longer names u's destination), as that indicates a squash-
// path bug. The caller frees u.Dest.
func (t *Table) Undo(u *uop.UOp) {
	d := u.Inst.Dest
	if !d.Valid() {
		return
	}
	if t.spec[d.Class][d.Index] != u.Dest {
		panic(fmt.Sprintf("rename: out-of-order undo: %s maps to %s, undoing %s",
			d, t.spec[d.Class][d.Index], u.Dest))
	}
	t.spec[d.Class][d.Index] = u.PrevDest
}

// Lookup returns the current speculative mapping of an architectural
// register (primarily for tests and invariant checks).
func (t *Table) Lookup(r isa.Reg) regfile.PhysRef {
	if !r.Valid() {
		return regfile.NoPhys
	}
	return t.spec[r.Class][r.Index]
}

// ArchLookup returns the committed mapping of an architectural register.
func (t *Table) ArchLookup(r isa.Reg) regfile.PhysRef {
	if !r.Valid() {
		return regfile.NoPhys
	}
	return t.arch[r.Class][r.Index]
}

// CheckConsistency verifies that every table entry names an allocated
// physical register; it returns an error describing the first violation.
// Used by property tests.
func (t *Table) CheckConsistency() error {
	for c := 0; c < isa.NumRegClasses; c++ {
		for i := 0; i < isa.NumArchRegs; i++ {
			// Ordered pairs, not a map literal: iteration order decides
			// which violation is reported first, and error determinism is
			// part of the replay contract (detlint enforces this).
			pairs := [2]struct {
				name string
				m    regfile.PhysRef
			}{{"spec", t.spec[c][i]}, {"arch", t.arch[c][i]}}
			for _, p := range pairs {
				name, m := p.name, p.m
				if !m.Valid() {
					return fmt.Errorf("rename: %s[%s%d] unmapped", name, isa.RegClass(c), i)
				}
				if !t.rf.Allocated(m) {
					return fmt.Errorf("rename: %s[%s%d] -> %s not allocated", name, isa.RegClass(c), i, m)
				}
			}
		}
	}
	return nil
}
