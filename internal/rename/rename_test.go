package rename

import (
	"testing"

	"smtsim/internal/isa"
	"smtsim/internal/regfile"
	"smtsim/internal/uop"
)

func newUOp(class isa.OpClass, dest isa.Reg, srcs ...isa.Reg) *uop.UOp {
	u := &uop.UOp{Inst: isa.Inst{Class: class, Dest: dest}}
	u.Inst.Src[0], u.Inst.Src[1] = isa.NoReg, isa.NoReg
	for i, s := range srcs {
		u.Inst.Src[i] = s
	}
	return u
}

func TestInitialMappingsReady(t *testing.T) {
	rf := regfile.New(128, 128)
	tab := New(rf)
	for i := 0; i < isa.NumArchRegs; i++ {
		p := tab.Lookup(isa.Int(i))
		if !p.Valid() || !rf.Ready(p) {
			t.Fatalf("r%d initial mapping %v not ready", i, p)
		}
	}
	if err := tab.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRenameTracksDataflow(t *testing.T) {
	rf := regfile.New(128, 128)
	tab := New(rf)

	// I1: r3 <- r1 + r2 ; I2: r4 <- r3 + r1 ; I3: r3 <- r3 + r4
	u1 := newUOp(isa.IntAlu, isa.Int(3), isa.Int(1), isa.Int(2))
	tab.Rename(u1)
	u2 := newUOp(isa.IntAlu, isa.Int(4), isa.Int(3), isa.Int(1))
	tab.Rename(u2)
	u3 := newUOp(isa.IntAlu, isa.Int(3), isa.Int(3), isa.Int(4))
	tab.Rename(u3)

	if u2.Srcs[0] != u1.Dest {
		t.Error("consumer not mapped to most recent producer")
	}
	if u3.Srcs[0] != u1.Dest || u3.Srcs[1] != u2.Dest {
		t.Error("second consumer mis-renamed")
	}
	if u3.PrevDest != u1.Dest {
		t.Error("PrevDest chain broken")
	}
	if u1.Dest == u3.Dest {
		t.Error("same physical register allocated twice while live")
	}
}

func TestCommitReclaimsPrevMapping(t *testing.T) {
	rf := regfile.New(70, 70) // 64 for arch state + 6 spare
	tab := New(rf)
	free0 := rf.FreeCount(isa.IntReg)

	u1 := newUOp(isa.IntAlu, isa.Int(3), isa.Int(1), isa.Int(2))
	tab.Rename(u1)
	u2 := newUOp(isa.IntAlu, isa.Int(3), isa.Int(3), isa.NoReg)
	tab.Rename(u2)
	if rf.FreeCount(isa.IntReg) != free0-2 {
		t.Fatalf("free count %d after two renames", rf.FreeCount(isa.IntReg))
	}
	tab.Commit(u1) // frees r3's original mapping
	tab.Commit(u2) // frees u1.Dest
	if rf.FreeCount(isa.IntReg) != free0 {
		// Net zero: exactly one live mapping per architectural register.
		t.Fatalf("free count %d after commits, want %d", rf.FreeCount(isa.IntReg), free0)
	}
	if tab.ArchLookup(isa.Int(3)) != u2.Dest {
		t.Error("architectural map not updated at commit")
	}
	if err := tab.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCanRename(t *testing.T) {
	rf := regfile.New(isa.NumArchRegs+1, isa.NumArchRegs+1) // one spare per class
	tab := New(rf)
	u1 := newUOp(isa.IntAlu, isa.Int(3), isa.Int(1), isa.NoReg)
	if !tab.CanRename(u1) {
		t.Fatal("CanRename false with a spare register")
	}
	tab.Rename(u1)
	u2 := newUOp(isa.IntAlu, isa.Int(4), isa.Int(1), isa.NoReg)
	if tab.CanRename(u2) {
		t.Error("CanRename true with exhausted pool")
	}
	// Destination-less instructions always rename.
	br := newUOp(isa.Branch, isa.NoReg, isa.Int(1))
	if !tab.CanRename(br) {
		t.Error("branch blocked by register exhaustion")
	}
	tab.Rename(br)
	if br.Dest.Valid() || br.PrevDest.Valid() {
		t.Error("branch allocated a destination")
	}
}

func TestSquashAllRestoresCommittedState(t *testing.T) {
	rf := regfile.New(128, 128)
	tab := New(rf)

	u1 := newUOp(isa.IntAlu, isa.Int(3), isa.Int(1), isa.Int(2))
	tab.Rename(u1)
	tab.Commit(u1)
	committed := tab.Lookup(isa.Int(3))

	// Two speculative writers of r3, then a flush.
	u2 := newUOp(isa.IntAlu, isa.Int(3), isa.Int(3), isa.NoReg)
	tab.Rename(u2)
	u3 := newUOp(isa.IntAlu, isa.Int(3), isa.Int(3), isa.NoReg)
	tab.Rename(u3)
	tab.SquashAll()
	rf.Free(u2.Dest)
	rf.Free(u3.Dest)

	if tab.Lookup(isa.Int(3)) != committed {
		t.Error("speculative map not rewound to committed state")
	}
	if err := tab.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	// Renaming must work normally after the flush.
	u4 := newUOp(isa.IntAlu, isa.Int(3), isa.Int(3), isa.NoReg)
	tab.Rename(u4)
	if u4.Srcs[0] != committed {
		t.Error("post-flush rename read stale mapping")
	}
}

func TestMultipleThreadsShareFreeList(t *testing.T) {
	rf := regfile.New(70, 70)
	a := New(rf)
	b := New(rf)
	// 64+6 int registers, 64 consumed by the two threads' arch state...
	// wait: each table allocates 32 per class. 70 - 64 = 6 spare.
	ua := newUOp(isa.IntAlu, isa.Int(1), isa.NoReg, isa.NoReg)
	a.Rename(ua)
	ub := newUOp(isa.IntAlu, isa.Int(1), isa.NoReg, isa.NoReg)
	b.Rename(ub)
	if ua.Dest == ub.Dest {
		t.Error("two threads received the same physical register")
	}
	if rf.FreeCount(isa.IntReg) != 70-64-2 {
		t.Errorf("free count %d", rf.FreeCount(isa.IntReg))
	}
}
