// Package report assembles the paper's full evaluation — every figure
// and statistic plus this repository's extensions — and verifies the
// paper's qualitative claims ("shape targets" in DESIGN.md §4) against
// the measured tables. The shape targets are encoded as data, so the
// reproduction's health is machine-checkable:
//
//	go run ./cmd/smtreport -budget 120000 -check
package report

import (
	"fmt"
	"strings"

	"smtsim/internal/sweep"
)

// Section is one generated artifact.
type Section struct {
	Name  string
	Table sweep.Table
}

// Report is the complete evaluation output.
type Report struct {
	Sections []Section
}

// Table returns a section's table by name (empty table if absent).
func (r *Report) Table(name string) (sweep.Table, bool) {
	for _, s := range r.Sections {
		if s.Name == name {
			return s.Table, true
		}
	}
	return sweep.Table{}, false
}

// Render formats the whole report.
func (r *Report) Render() string {
	var b strings.Builder
	for _, s := range r.Sections {
		fmt.Fprintf(&b, "## %s\n\n%s\n", s.Name, s.Table.Render())
	}
	return b.String()
}

// Generate runs the full evaluation. The section names are stable
// identifiers the shape checks key on.
func Generate(o sweep.Options) (*Report, error) {
	gens := []struct {
		name string
		run  func() (sweep.Table, error)
	}{
		{"classification", func() (sweep.Table, error) { return sweep.ClassifyBenchmarks(o) }},
		{"fig1", func() (sweep.Table, error) { return sweep.Figure1(o) }},
		{"fig3", func() (sweep.Table, error) { return sweep.FigureSpeedup(2, o) }},
		{"fig4", func() (sweep.Table, error) { return sweep.FigureFairness(2, o) }},
		{"fig5", func() (sweep.Table, error) { return sweep.FigureSpeedup(3, o) }},
		{"fig6", func() (sweep.Table, error) { return sweep.FigureFairness(3, o) }},
		{"fig7", func() (sweep.Table, error) { return sweep.FigureSpeedup(4, o) }},
		{"fig8", func() (sweep.Table, error) { return sweep.FigureFairness(4, o) }},
		{"stalls", func() (sweep.Table, error) { return sweep.StallStats(64, o) }},
		{"residency", func() (sweep.Table, error) { return sweep.ResidencyStats(2, 64, o) }},
		{"hdi", func() (sweep.Table, error) { return sweep.HDIStats(64, o) }},
		{"filter", func() (sweep.Table, error) { return sweep.FilterAblation(64, o) }},
		{"zoo", func() (sweep.Table, error) { return sweep.SchedulerZoo(64, o) }},
		{"gates", func() (sweep.Table, error) { return sweep.FetchGates(64, o) }},
		{"energy", func() (sweep.Table, error) { return sweep.EnergyComparison(4, 64, o) }},
	}
	r := &Report{}
	for _, g := range gens {
		t, err := g.run()
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", g.name, err)
		}
		r.Sections = append(r.Sections, Section{Name: g.name, Table: t})
	}
	return r, nil
}

// CheckResult is one shape target's verdict.
type CheckResult struct {
	ID     string
	Claim  string
	OK     bool
	Detail string
}

// Check evaluates every encoded shape target against the report.
func (r *Report) Check() []CheckResult {
	var out []CheckResult
	add := func(id, claim string, ok bool, detail string) {
		out = append(out, CheckResult{ID: id, Claim: claim, OK: ok, Detail: detail})
	}

	if t, found := r.Table("fig1"); found {
		ok, d := rowsMonotoneNonincreasing(t, 0.02)
		add("F1a", "2OP_BLOCK vs traditional degrades (weakly) with IQ size at every thread count", ok, d)
		ok, d = rowAllBelow(t, 0, 1.0)
		add("F1b", "2-thread 2OP_BLOCK loses at every IQ size", ok, d)
		ok, d = columnsOrdered(t, 0.02)
		add("F1c", "more threads help 2OP_BLOCK at every IQ size (2T <= 3T <= 4T)", ok, d)
	}
	for _, fig := range []struct {
		id, name string
		threads  int
	}{{"F3", "fig3", 2}, {"F5", "fig5", 3}, {"F7", "fig7", 4}} {
		t, found := r.Table(fig.name)
		if !found {
			continue
		}
		ok, d := rowDominates(t, 2, 1, -0.005)
		add(fig.id+"a", fmt.Sprintf("%d threads: OOO dispatch beats 2OP_BLOCK at every IQ size", fig.threads), ok, d)
		ok, d = cellAtLeast(t, 2, 0, 0.99)
		add(fig.id+"b", fmt.Sprintf("%d threads: OOO dispatch at least matches traditional at the smallest IQ", fig.threads), ok, d)
	}
	for _, fig := range []struct {
		id, name string
	}{{"F4", "fig4"}, {"F6", "fig6"}, {"F8", "fig8"}} {
		if t, found := r.Table(fig.name); found {
			ok, d := rowDominates(t, 2, 1, -0.005)
			add(fig.id, "fairness ordering matches throughput ordering (OOOD over 2OP everywhere)", ok, d)
		}
	}
	if t, found := r.Table("stalls"); found {
		strict := 0 // column: 2op strict
		add("S1a", "2OP stall-all cycles decrease with thread count (paper: 43/17/7%)",
			t.Values[0][strict] > t.Values[1][strict] && t.Values[1][strict] > t.Values[2][strict],
			fmt.Sprintf("%.1f / %.1f / %.1f%%", t.Values[0][strict], t.Values[1][strict], t.Values[2][strict]))
		add("S1b", "OOO dispatch collapses the stall-all cycles at every thread count",
			t.Values[0][2] < t.Values[0][0]/2 && t.Values[1][2] < t.Values[1][0]/2 && t.Values[2][2] < t.Values[2][0]/2,
			fmt.Sprintf("2T: %.1f%% -> %.1f%%", t.Values[0][strict], t.Values[0][2]))
	}
	if t, found := r.Table("residency"); found {
		add("S2", "OOO dispatch shortens IQ residency vs traditional (paper: 21 -> 15 cycles)",
			t.Values[2][0] < t.Values[0][0],
			fmt.Sprintf("%.1f -> %.1f cycles", t.Values[0][0], t.Values[2][0]))
	}
	if t, found := r.Table("hdi"); found {
		ok := true
		for _, row := range t.Values {
			if row[1] < 5 || row[1] > 20 {
				ok = false
			}
		}
		add("S3", "~10% of out-of-order dispatches depend on the bypassed NDI",
			ok, fmt.Sprintf("%.1f / %.1f / %.1f%%", t.Values[0][1], t.Values[1][1], t.Values[2][1]))
	}
	if t, found := r.Table("filter"); found {
		ok := true
		for _, row := range t.Values {
			if row[0] < 0.98 || row[0] > 1.05 {
				ok = false
			}
		}
		add("S4", "idealized NDI filtering is worth at most a few percent (paper: ~1.2%)",
			ok, fmt.Sprintf("%.3f / %.3f / %.3f", t.Values[0][0], t.Values[1][0], t.Values[2][0]))
	}
	if t, found := r.Table("energy"); found {
		add("X3", "2OP designs roughly halve scheduling energy-delay product at ~equal IPC",
			t.Values[2][3] < 0.7 && t.Values[2][2] > 0.9,
			fmt.Sprintf("OOOD: EDP ratio %.2f at speedup %.3f", t.Values[2][3], t.Values[2][2]))
	}
	return out
}

// RenderChecks formats verdicts, one line each, and reports the tally.
func RenderChecks(cs []CheckResult) string {
	var b strings.Builder
	pass := 0
	for _, c := range cs {
		mark := "FAIL"
		if c.OK {
			mark = "ok  "
			pass++
		}
		fmt.Fprintf(&b, "%s %-4s %s", mark, c.ID, c.Claim)
		if c.Detail != "" {
			fmt.Fprintf(&b, " [%s]", c.Detail)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d/%d shape targets hold\n", pass, len(cs))
	return b.String()
}

// --- table predicates -------------------------------------------------

func rowsMonotoneNonincreasing(t sweep.Table, slack float64) (bool, string) {
	for i, row := range t.Values {
		for j := 1; j < len(row); j++ {
			if row[j] > row[j-1]+slack {
				return false, fmt.Sprintf("row %q rises at %s", t.Rows[i], t.Cols[j])
			}
		}
	}
	return true, ""
}

func rowAllBelow(t sweep.Table, row int, limit float64) (bool, string) {
	for j, v := range t.Values[row] {
		if v >= limit {
			return false, fmt.Sprintf("%s = %.3f", t.Cols[j], v)
		}
	}
	return true, ""
}

func columnsOrdered(t sweep.Table, slack float64) (bool, string) {
	for j := range t.Cols {
		for i := 1; i < len(t.Rows); i++ {
			if t.Values[i][j] < t.Values[i-1][j]-slack {
				return false, fmt.Sprintf("%s: row %q below row %q", t.Cols[j], t.Rows[i], t.Rows[i-1])
			}
		}
	}
	return true, ""
}

func rowDominates(t sweep.Table, hi, lo int, slack float64) (bool, string) {
	for j := range t.Cols {
		if t.Values[hi][j] < t.Values[lo][j]+slack {
			return false, fmt.Sprintf("%s: %.3f !> %.3f", t.Cols[j], t.Values[hi][j], t.Values[lo][j])
		}
	}
	return true, ""
}

func cellAtLeast(t sweep.Table, row, col int, limit float64) (bool, string) {
	if t.Values[row][col] < limit {
		return false, fmt.Sprintf("%s = %.3f < %.3f", t.Cols[col], t.Values[row][col], limit)
	}
	return true, ""
}
