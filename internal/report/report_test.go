package report

import (
	"strings"
	"testing"

	"smtsim/internal/sweep"
)

func table(rows, cols []string, vals [][]float64) sweep.Table {
	return sweep.Table{Rows: rows, Cols: cols, Values: vals}
}

func TestPredicates(t *testing.T) {
	tab := table([]string{"a", "b"}, []string{"x", "y"},
		[][]float64{{1.0, 0.9}, {1.1, 1.0}})
	if ok, _ := rowsMonotoneNonincreasing(tab, 0.01); !ok {
		t.Error("nonincreasing rows rejected")
	}
	rising := table([]string{"a"}, []string{"x", "y"}, [][]float64{{0.9, 1.0}})
	if ok, _ := rowsMonotoneNonincreasing(rising, 0.01); ok {
		t.Error("rising row accepted")
	}
	if ok, _ := rowAllBelow(tab, 0, 1.01); !ok {
		t.Error("below-limit row rejected")
	}
	if ok, _ := rowAllBelow(tab, 1, 1.0); ok {
		t.Error("above-limit row accepted")
	}
	if ok, _ := columnsOrdered(tab, 0.01); !ok {
		t.Error("ordered columns rejected")
	}
	if ok, _ := rowDominates(tab, 1, 0, -0.005); !ok {
		t.Error("dominating row rejected")
	}
	if ok, _ := rowDominates(tab, 0, 1, -0.005); ok {
		t.Error("dominated row accepted")
	}
	if ok, _ := cellAtLeast(tab, 0, 0, 0.99); !ok {
		t.Error("sufficient cell rejected")
	}
	if ok, _ := cellAtLeast(tab, 0, 1, 0.99); ok {
		t.Error("insufficient cell accepted")
	}
}

func TestCheckOnSyntheticReport(t *testing.T) {
	// A fabricated report in which every paper claim holds.
	iqCols := []string{"IQ=32", "IQ=64"}
	r := &Report{Sections: []Section{
		{"fig1", table([]string{"2 threads", "3 threads", "4 threads"}, iqCols,
			[][]float64{{0.9, 0.8}, {0.95, 0.85}, {1.05, 0.9}})},
		{"fig3", table([]string{"trad", "2op", "ooo"}, iqCols,
			[][]float64{{1, 1}, {0.85, 0.8}, {1.05, 1.0}})},
		{"fig4", table([]string{"trad", "2op", "ooo"}, iqCols,
			[][]float64{{1, 1}, {0.85, 0.8}, {1.05, 1.0}})},
		{"stalls", table([]string{"2 threads", "3 threads", "4 threads"},
			[]string{"2op strict", "2op weak", "ooo strict", "ooo weak"},
			[][]float64{{40, 50, 1, 10}, {17, 40, 0.5, 9}, {7, 30, 0.2, 8}})},
		{"residency", table([]string{"trad", "2op", "ooo"}, []string{"residency", "occupancy"},
			[][]float64{{21, 50}, {10, 12}, {15, 40}})},
		{"hdi", table([]string{"2", "3", "4"}, []string{"piled", "dep"},
			[][]float64{{90, 10}, {88, 11}, {85, 9}})},
		{"filter", table([]string{"2", "3", "4"}, []string{"speedup"},
			[][]float64{{1.01}, {1.012}, {1.0}})},
		{"energy", table([]string{"trad", "2op", "ooo", "te"},
			[]string{"comparators", "energy/inst", "IPC speedup", "EDP ratio"},
			[][]float64{{128, 100, 1, 1}, {64, 55, 0.95, 0.6}, {64, 56, 1.0, 0.55}, {64, 57, 1.0, 0.56}})},
	}}
	checks := r.Check()
	if len(checks) == 0 {
		t.Fatal("no checks ran")
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("%s failed on the all-good synthetic report: %s [%s]", c.ID, c.Claim, c.Detail)
		}
	}
	out := RenderChecks(checks)
	if !strings.Contains(out, "shape targets hold") {
		t.Error("render missing tally")
	}
}

func TestCheckCatchesViolations(t *testing.T) {
	// 2OP beating OOOD must fail the dominance check.
	r := &Report{Sections: []Section{
		{"fig3", table([]string{"trad", "2op", "ooo"}, []string{"IQ=32"},
			[][]float64{{1}, {1.1}, {0.9}})},
	}}
	bad := 0
	for _, c := range r.Check() {
		if !c.OK {
			bad++
		}
	}
	if bad == 0 {
		t.Error("inverted ordering passed the checks")
	}
}

func TestGenerateSmallBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full report generation")
	}
	r, err := Generate(sweep.Options{Budget: 1_500, Seed: 1, IQSizes: []int{32, 64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sections) != 15 {
		t.Fatalf("sections = %d", len(r.Sections))
	}
	if _, found := r.Table("fig7"); !found {
		t.Error("fig7 missing")
	}
	if s := r.Render(); !strings.Contains(s, "## fig1") {
		t.Error("render missing sections")
	}
	// At this tiny budget shapes may not hold; just exercise Check.
	_ = RenderChecks(r.Check())
}
