// Package rob implements the per-thread reorder buffer: a bounded FIFO of
// in-flight micro-operations allocated in program order at rename and
// drained in program order at commit (Table 1: 96 entries per thread).
//
// The ROB does not store pointers: each thread's buffer is a window of
// `capacity` consecutive slots in the core's shared uop bank, and the
// ring index *is* the uop's dense id (id = base + slot). Allocating a
// ROB entry and allocating the uop record are the same act, which gives
// ids the exact lifetime of a hardware ROB entry — live from rename to
// commit or squash, recycled immediately after.
package rob

import (
	"fmt"

	"smtsim/internal/uop"
)

// ROB is one thread's reorder buffer: a ring of uop-bank slots.
type ROB struct {
	bank *uop.Bank
	base int32 // first bank id owned by this thread
	cap  int
	head int // oldest slot (ring index, not id)
	size int
}

// New builds a reorder buffer over bank slots [base, base+capacity).
func New(bank *uop.Bank, base int32, capacity int) *ROB {
	if capacity <= 0 {
		panic("rob: capacity must be positive")
	}
	if int(base)+capacity > bank.Cap() {
		panic("rob: window exceeds bank capacity")
	}
	return &ROB{bank: bank, base: base, cap: capacity}
}

// Cap returns the capacity.
func (r *ROB) Cap() int { return r.cap }

// Len returns the number of in-flight entries.
func (r *ROB) Len() int { return r.size }

// CanAlloc reports whether n more entries fit.
//
//smt:hotpath
func (r *ROB) CanAlloc(n int) bool { return r.size+n <= r.cap }

// Alloc takes the next tail slot and returns its freshly reset record
// for the caller to fill. Callers gate on CanAlloc; overflow panics.
// Resetting lazily here — not when the slot drains — lets commit and
// squash paths keep reading the record after releasing it.
//
//smt:hotpath
//smt:trusted-id — fresh slot: id = base+slot is being (re)initialized by Reset, not dereferenced stale
func (r *ROB) Alloc() *uop.UOp {
	if r.size == r.cap {
		panic("rob: overflow")
	}
	slot := r.head + r.size
	if slot >= r.cap {
		slot -= r.cap
	}
	r.size++
	u := r.bank.Get(r.base + int32(slot))
	u.Reset()
	return u
}

// Head returns the oldest in-flight UOp, or nil if empty.
//
//smt:hotpath
//smt:trusted-id — ring identity: base+head indexes an occupied slot whenever size > 0
func (r *ROB) Head() *uop.UOp {
	if r.size == 0 {
		return nil
	}
	return r.bank.Get(r.base + int32(r.head))
}

// PopHead releases the oldest slot and returns its record; nil if empty.
// The record stays readable until the slot is next allocated.
//
//smt:hotpath
//smt:trusted-id — ring identity: base+head indexes an occupied slot whenever size > 0
func (r *ROB) PopHead() *uop.UOp {
	if r.size == 0 {
		return nil
	}
	u := r.bank.Get(r.base + int32(r.head))
	r.head++
	if r.head == r.cap {
		r.head = 0
	}
	r.size--
	return u
}

// IsHead reports whether u is the oldest in-flight instruction — the
// condition under which the deadlock-avoidance buffer may capture it
// (Section 4: the ROB-oldest instruction has all sources ready by
// definition).
//
//smt:hotpath
func (r *ROB) IsHead(u *uop.UOp) bool {
	return r.size > 0 && u.ID == r.base+int32(r.head)
}

// PopTail releases the youngest slot and returns its record; nil if
// empty. Used by selective-squash paths, which unwind from the tail.
//
//smt:trusted-id — ring identity: base+head+size-1 indexes an occupied slot whenever size > 0
func (r *ROB) PopTail() *uop.UOp {
	if r.size == 0 {
		return nil
	}
	slot := r.head + r.size - 1
	if slot >= r.cap {
		slot -= r.cap
	}
	r.size--
	return r.bank.Get(r.base + int32(slot))
}

// Tail returns the youngest entry without removing it; nil if empty.
//
//smt:trusted-id — ring identity: base+head+size-1 indexes an occupied slot whenever size > 0
func (r *ROB) Tail() *uop.UOp {
	if r.size == 0 {
		return nil
	}
	slot := r.head + r.size - 1
	if slot >= r.cap {
		slot -= r.cap
	}
	return r.bank.Get(r.base + int32(slot))
}

// DrainYoungerThan removes every entry younger than gseq and returns
// them youngest-first (the order selective rollback must process them
// in). Entries at or below gseq stay.
func (r *ROB) DrainYoungerThan(gseq uint64) []*uop.UOp {
	var out []*uop.UOp
	for r.size > 0 && r.Tail().GSeq > gseq {
		out = append(out, r.PopTail())
	}
	return out
}

// DrainAll removes every entry oldest-first and returns them in program
// order; used by the watchdog flush path.
func (r *ROB) DrainAll() []*uop.UOp {
	out := make([]*uop.UOp, 0, r.size)
	for r.size > 0 {
		out = append(out, r.PopHead())
	}
	return out
}

// ForEach visits in-flight entries oldest-first.
//
//smt:trusted-id — ring identity: every visited slot lies in [head, head+size), occupied by construction
func (r *ROB) ForEach(fn func(*uop.UOp)) {
	for i := 0; i < r.size; i++ {
		slot := r.head + i
		if slot >= r.cap {
			slot -= r.cap
		}
		fn(r.bank.Get(r.base + int32(slot)))
	}
}

// CheckInvariants verifies the buffer's structural contracts: every
// occupied slot holds a renamed, unsquashed UOp of thread `thread` whose
// id matches its slot, and allocation order equals program order
// (strictly ascending rename sequence from head to tail). It returns an
// error describing the first violation.
//
//smt:trusted-id — invariant sweep over occupied ring slots; slot/id agreement is what it verifies
func (r *ROB) CheckInvariants(thread int) error {
	var prev uint64
	for i := 0; i < r.size; i++ {
		slot := r.head + i
		if slot >= r.cap {
			slot -= r.cap
		}
		u := r.bank.Get(r.base + int32(slot))
		switch {
		case u.ID != r.base+int32(slot):
			return fmt.Errorf("rob: slot %d holds id %d, want %d", slot, u.ID, r.base+int32(slot))
		case u.Thread != thread:
			return fmt.Errorf("rob: thread-%d buffer holds gseq=%d of thread %d", thread, u.GSeq, u.Thread)
		case u.Squashed:
			return fmt.Errorf("rob: squashed gseq=%d still in flight at depth %d", u.GSeq, i)
		case u.RenamedAt == uop.NoCycle:
			return fmt.Errorf("rob: unrenamed gseq=%d in flight at depth %d", u.GSeq, i)
		case i > 0 && u.GSeq <= prev:
			return fmt.Errorf("rob: program order broken at depth %d: gseq %d after %d", i, u.GSeq, prev)
		}
		prev = u.GSeq
	}
	return nil
}
