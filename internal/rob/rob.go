// Package rob implements the per-thread reorder buffer: a bounded FIFO of
// in-flight micro-operations allocated in program order at rename and
// drained in program order at commit (Table 1: 96 entries per thread).
package rob

import (
	"fmt"

	"smtsim/internal/uop"
)

// ROB is one thread's reorder buffer, a ring buffer of UOp pointers.
type ROB struct {
	buf  []*uop.UOp
	head int // oldest
	size int
}

// New builds a reorder buffer with the given capacity.
func New(capacity int) *ROB {
	if capacity <= 0 {
		panic("rob: capacity must be positive")
	}
	return &ROB{buf: make([]*uop.UOp, capacity)}
}

// Cap returns the capacity.
func (r *ROB) Cap() int { return len(r.buf) }

// Len returns the number of in-flight entries.
func (r *ROB) Len() int { return r.size }

// CanAlloc reports whether n more entries fit.
//
//smt:hotpath
func (r *ROB) CanAlloc(n int) bool { return r.size+n <= len(r.buf) }

// Alloc appends u at the tail. Callers gate on CanAlloc; overflow panics.
//
//smt:hotpath
func (r *ROB) Alloc(u *uop.UOp) {
	if r.size == len(r.buf) {
		panic("rob: overflow")
	}
	r.buf[(r.head+r.size)%len(r.buf)] = u
	r.size++
}

// Head returns the oldest in-flight UOp, or nil if empty.
//
//smt:hotpath
func (r *ROB) Head() *uop.UOp {
	if r.size == 0 {
		return nil
	}
	return r.buf[r.head]
}

// PopHead removes and returns the oldest entry; nil if empty.
//
//smt:hotpath
func (r *ROB) PopHead() *uop.UOp {
	if r.size == 0 {
		return nil
	}
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return u
}

// IsHead reports whether u is the oldest in-flight instruction — the
// condition under which the deadlock-avoidance buffer may capture it
// (Section 4: the ROB-oldest instruction has all sources ready by
// definition).
//
//smt:hotpath
func (r *ROB) IsHead(u *uop.UOp) bool {
	return r.size > 0 && r.buf[r.head] == u
}

// PopTail removes and returns the youngest entry; nil if empty. Used by
// selective-squash paths, which unwind from the tail.
func (r *ROB) PopTail() *uop.UOp {
	if r.size == 0 {
		return nil
	}
	i := (r.head + r.size - 1) % len(r.buf)
	u := r.buf[i]
	r.buf[i] = nil
	r.size--
	return u
}

// Tail returns the youngest entry without removing it; nil if empty.
func (r *ROB) Tail() *uop.UOp {
	if r.size == 0 {
		return nil
	}
	return r.buf[(r.head+r.size-1)%len(r.buf)]
}

// DrainYoungerThan removes every entry younger than gseq and returns
// them youngest-first (the order selective rollback must process them
// in). Entries at or below gseq stay.
func (r *ROB) DrainYoungerThan(gseq uint64) []*uop.UOp {
	var out []*uop.UOp
	for r.size > 0 && r.Tail().GSeq > gseq {
		out = append(out, r.PopTail())
	}
	return out
}

// DrainAll removes every entry oldest-first and returns them in program
// order; used by the watchdog flush path.
func (r *ROB) DrainAll() []*uop.UOp {
	out := make([]*uop.UOp, 0, r.size)
	for r.size > 0 {
		out = append(out, r.PopHead())
	}
	return out
}

// ForEach visits in-flight entries oldest-first.
func (r *ROB) ForEach(fn func(*uop.UOp)) {
	for i := 0; i < r.size; i++ {
		fn(r.buf[(r.head+i)%len(r.buf)])
	}
}

// CheckInvariants verifies the buffer's structural contracts: every
// occupied slot holds a renamed, unsquashed UOp of thread `thread`, and
// allocation order equals program order (strictly ascending rename
// sequence from head to tail). It returns an error describing the first
// violation.
func (r *ROB) CheckInvariants(thread int) error {
	var prev uint64
	for i := 0; i < r.size; i++ {
		u := r.buf[(r.head+i)%len(r.buf)]
		switch {
		case u == nil:
			return fmt.Errorf("rob: nil entry at depth %d", i)
		case u.Thread != thread:
			return fmt.Errorf("rob: thread-%d buffer holds gseq=%d of thread %d", thread, u.GSeq, u.Thread)
		case u.Squashed:
			return fmt.Errorf("rob: squashed gseq=%d still in flight at depth %d", u.GSeq, i)
		case u.RenamedAt == uop.NoCycle:
			return fmt.Errorf("rob: unrenamed gseq=%d in flight at depth %d", u.GSeq, i)
		case i > 0 && u.GSeq <= prev:
			return fmt.Errorf("rob: program order broken at depth %d: gseq %d after %d", i, u.GSeq, prev)
		}
		prev = u.GSeq
	}
	return nil
}
