package rob

import (
	"testing"
	"testing/quick"

	"smtsim/internal/uop"
)

// alloc grabs the next ROB record and stamps it, mirroring the rename
// stage's fill-after-Alloc discipline.
func alloc(r *ROB, gseq uint64) *uop.UOp {
	u := r.Alloc()
	u.GSeq = gseq
	return u
}

func TestFIFOOrder(t *testing.T) {
	r := New(uop.NewBank(4), 0, 4)
	var us []*uop.UOp
	for i := 1; i <= 3; i++ {
		us = append(us, alloc(r, uint64(i)))
	}
	if r.Len() != 3 || r.Cap() != 4 {
		t.Fatalf("len=%d cap=%d", r.Len(), r.Cap())
	}
	for i, want := range us {
		if h := r.Head(); h != want {
			t.Fatalf("head %d = %v, want %v", i, h, want)
		}
		if got := r.PopHead(); got != want {
			t.Fatalf("pop %d = %v, want %v", i, got, want)
		}
	}
	if r.Head() != nil || r.PopHead() != nil {
		t.Error("empty ROB returned an entry")
	}
}

func TestCanAllocAndOverflow(t *testing.T) {
	r := New(uop.NewBank(2), 0, 2)
	if !r.CanAlloc(2) || r.CanAlloc(3) {
		t.Error("CanAlloc wrong on empty ROB")
	}
	r.Alloc()
	r.Alloc()
	if r.CanAlloc(1) {
		t.Error("CanAlloc true on full ROB")
	}
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	r.Alloc()
}

func TestIsHead(t *testing.T) {
	r := New(uop.NewBank(4), 0, 4)
	a := alloc(r, 1)
	b := alloc(r, 2)
	if !r.IsHead(a) || r.IsHead(b) {
		t.Error("IsHead wrong")
	}
	r.PopHead()
	if !r.IsHead(b) {
		t.Error("IsHead after pop wrong")
	}
}

// TestBankBaseOffsets: a ROB carved from the middle of a shared bank
// hands out records whose ids live in its own window.
func TestBankBaseOffsets(t *testing.T) {
	bank := uop.NewBank(8)
	r := New(bank, 4, 4)
	u := r.Alloc()
	if u.ID < 4 || u.ID >= 8 {
		t.Fatalf("id %d outside bank window [4,8)", u.ID)
	}
	if bank.Get(u.ID) != u {
		t.Error("bank.Get does not round-trip the allocated record")
	}
}

func TestWrapAround(t *testing.T) {
	r := New(uop.NewBank(3), 0, 3)
	seq := uint64(0)
	push := func() *uop.UOp {
		seq++
		return alloc(r, seq)
	}
	push()
	push()
	r.PopHead()
	c := push()
	d := push() // wraps
	r.PopHead()
	if r.Head() != c {
		t.Error("wrap-around broke ordering")
	}
	r.PopHead()
	if r.Head() != d {
		t.Error("wrap-around lost tail entry")
	}
}

func TestDrainAllProgramOrder(t *testing.T) {
	r := New(uop.NewBank(8), 0, 8)
	var want []*uop.UOp
	for i := 0; i < 5; i++ {
		want = append(want, alloc(r, uint64(i+1)))
	}
	got := r.DrainAll()
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order broken at %d", i)
		}
	}
	if r.Len() != 0 {
		t.Error("ROB not empty after drain")
	}
}

func TestForEachVisitsOldestFirst(t *testing.T) {
	r := New(uop.NewBank(4), 0, 4)
	for i := 0; i < 3; i++ {
		alloc(r, uint64(i+1))
	}
	var seen []uint64
	r.ForEach(func(u *uop.UOp) { seen = append(seen, u.GSeq) })
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("ForEach order %v not ascending", seen)
		}
	}
}

// TestFIFOProperty: arbitrary interleavings of alloc and pop preserve
// queue discipline (pops return entries in allocation order).
func TestFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		r := New(uop.NewBank(16), 0, 16)
		var expect []uint64
		seq := uint64(0)
		for _, doAlloc := range ops {
			if doAlloc && r.CanAlloc(1) {
				seq++
				alloc(r, seq)
				expect = append(expect, seq)
			} else if r.Len() > 0 {
				got := r.PopHead()
				if got.GSeq != expect[0] {
					return false
				}
				expect = expect[1:]
			}
			if r.Len() != len(expect) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
