package rob

import (
	"testing"
	"testing/quick"

	"smtsim/internal/uop"
)

func TestFIFOOrder(t *testing.T) {
	r := New(4)
	us := []*uop.UOp{{GSeq: 1}, {GSeq: 2}, {GSeq: 3}}
	for _, u := range us {
		r.Alloc(u)
	}
	if r.Len() != 3 || r.Cap() != 4 {
		t.Fatalf("len=%d cap=%d", r.Len(), r.Cap())
	}
	for i, want := range us {
		if h := r.Head(); h != want {
			t.Fatalf("head %d = %v, want %v", i, h, want)
		}
		if got := r.PopHead(); got != want {
			t.Fatalf("pop %d = %v, want %v", i, got, want)
		}
	}
	if r.Head() != nil || r.PopHead() != nil {
		t.Error("empty ROB returned an entry")
	}
}

func TestCanAllocAndOverflow(t *testing.T) {
	r := New(2)
	if !r.CanAlloc(2) || r.CanAlloc(3) {
		t.Error("CanAlloc wrong on empty ROB")
	}
	r.Alloc(&uop.UOp{})
	r.Alloc(&uop.UOp{})
	if r.CanAlloc(1) {
		t.Error("CanAlloc true on full ROB")
	}
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	r.Alloc(&uop.UOp{})
}

func TestIsHead(t *testing.T) {
	r := New(4)
	a, b := &uop.UOp{GSeq: 1}, &uop.UOp{GSeq: 2}
	r.Alloc(a)
	r.Alloc(b)
	if !r.IsHead(a) || r.IsHead(b) {
		t.Error("IsHead wrong")
	}
	r.PopHead()
	if !r.IsHead(b) {
		t.Error("IsHead after pop wrong")
	}
}

func TestWrapAround(t *testing.T) {
	r := New(3)
	seq := uint64(0)
	push := func() *uop.UOp {
		seq++
		u := &uop.UOp{GSeq: seq}
		r.Alloc(u)
		return u
	}
	push()
	push()
	r.PopHead()
	c := push()
	d := push() // wraps
	r.PopHead()
	if r.Head() != c {
		t.Error("wrap-around broke ordering")
	}
	r.PopHead()
	if r.Head() != d {
		t.Error("wrap-around lost tail entry")
	}
}

func TestDrainAllProgramOrder(t *testing.T) {
	r := New(8)
	var want []*uop.UOp
	for i := 0; i < 5; i++ {
		u := &uop.UOp{GSeq: uint64(i)}
		r.Alloc(u)
		want = append(want, u)
	}
	got := r.DrainAll()
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order broken at %d", i)
		}
	}
	if r.Len() != 0 {
		t.Error("ROB not empty after drain")
	}
}

func TestForEachVisitsOldestFirst(t *testing.T) {
	r := New(4)
	for i := 0; i < 3; i++ {
		r.Alloc(&uop.UOp{GSeq: uint64(i)})
	}
	var seen []uint64
	r.ForEach(func(u *uop.UOp) { seen = append(seen, u.GSeq) })
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("ForEach order %v not ascending", seen)
		}
	}
}

// TestFIFOProperty: arbitrary interleavings of alloc and pop preserve
// queue discipline (pops return entries in allocation order).
func TestFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		r := New(16)
		var expect []uint64
		seq := uint64(0)
		for _, alloc := range ops {
			if alloc && r.CanAlloc(1) {
				seq++
				r.Alloc(&uop.UOp{GSeq: seq})
				expect = append(expect, seq)
			} else if r.Len() > 0 {
				got := r.PopHead()
				if got.GSeq != expect[0] {
					return false
				}
				expect = expect[1:]
			}
			if r.Len() != len(expect) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
