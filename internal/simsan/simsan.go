// Package simsan is a cycle-granular invariant sanitizer for the SMT
// pipeline — the simulator's analogue of a race detector. Enabled via
// pipeline.Config.Sanitize (and always-on in the pipeline package's
// tests), it re-derives the machine's structural contracts from scratch
// every simulated cycle and reports any divergence as a structured
// Violation naming the cycle, thread, and micro-operation.
//
// The invariants protect the mechanisms the paper's claims rest on:
//
//   - ROB allocation/commit stays program-ordered per thread (the
//     in-order rename/allocation contract out-of-order dispatch relies
//     on, Section 4).
//   - Issue-queue residents' event-maintained not-ready counters match
//     the register file's ready bits, and the per-register consumer
//     bitmaps hold exactly one watch bit per non-ready source operand —
//     no stale bit on a recycled bank slot, none surviving issue or
//     squash (the wakeup-CAM model over structure-of-arrays state).
//   - Physical-register conservation: every register is reachable from
//     an architectural mapping or a live destination, exactly when it is
//     allocated — no leak, no double-free — across commit, watchdog
//     flush, fetch-gate squash, and DAB paths.
//   - The deadlock-avoidance buffer only ever holds a thread's
//     ROB-oldest instruction with all sources ready (the property that
//     makes the DAB a deadlock guard at all, Section 4).
//   - NDI/HDI classification from the event counters agrees with a
//     from-scratch register-file recomputation (the Figure 2 taxonomy).
//
// The checker is read-only: it never mutates machine state, so a clean
// run with the sanitizer enabled is bit-identical to one without.
package simsan

import (
	"fmt"

	"smtsim/internal/core"
	"smtsim/internal/iq"
	"smtsim/internal/isa"
	"smtsim/internal/lsq"
	"smtsim/internal/regfile"
	"smtsim/internal/rename"
	"smtsim/internal/rob"
	"smtsim/internal/uop"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Cycle is the simulated cycle at which the check ran.
	Cycle int64
	// Invariant names the broken contract (stable identifier).
	Invariant string
	// Thread is the implicated hardware thread, or -1 when machine-wide.
	Thread int
	// GSeq and PC identify the implicated micro-operation, when one is
	// implicated (GSeq 0 otherwise).
	GSeq uint64
	PC   uint64
	// Detail is the human-readable explanation.
	Detail string
}

// Error formats the violation as "simsan[<invariant>]: cycle N thread T
// uop gseq=G pc=0x...: detail".
func (v Violation) Error() string {
	s := fmt.Sprintf("simsan[%s]: cycle %d", v.Invariant, v.Cycle)
	if v.Thread >= 0 {
		s += fmt.Sprintf(" thread %d", v.Thread)
	}
	if v.GSeq != 0 {
		s += fmt.Sprintf(" uop gseq=%d pc=%#x", v.GSeq, v.PC)
	}
	return s + ": " + v.Detail
}

// Machine is the sanitizer's read-only view over one core's components.
// The pipeline wires it up at construction; every slice is indexed by
// hardware thread.
type Machine struct {
	// EventWakeup mirrors the core's wakeup discipline; counter and
	// consumer-bitmap invariants only apply in event mode.
	EventWakeup bool

	Bank *uop.Bank
	RF   *regfile.File
	IQ   *iq.Queue
	Disp *core.Dispatcher
	ROBs []*rob.ROB
	RATs []*rename.Table
	LSQs []*lsq.LSQ
}

// maxViolations bounds the retained history so a systematically broken
// machine does not turn the sanitizer into a memory leak.
const maxViolations = 64

// Checker validates a Machine's invariants. It is not safe for
// concurrent use; build one per core.
type Checker struct {
	m          Machine
	violations []Violation
	dropped    int

	// Per-cycle scratch, reused across calls.
	live     map[*uop.UOp]int
	buffered map[*uop.UOp]bool
	watches  map[*uop.UOp]int
	dests    map[regfile.PhysRef]*uop.UOp
	expected map[regfile.PhysRef]bool
}

// New builds a checker over the given machine view.
func New(m Machine) *Checker {
	return &Checker{
		m:        m,
		live:     make(map[*uop.UOp]int),
		buffered: make(map[*uop.UOp]bool),
		watches:  make(map[*uop.UOp]int),
		dests:    make(map[regfile.PhysRef]*uop.UOp),
		expected: make(map[regfile.PhysRef]bool),
	}
}

// Violations returns the retained violation history (capped).
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns the first retained violation as an error, or nil.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return c.violations[0]
}

// record appends a violation, respecting the retention cap.
func (c *Checker) record(v Violation) {
	if len(c.violations) >= maxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, v)
}

// addf records a violation implicating u (which may be nil).
func (c *Checker) addf(cycle int64, invariant string, thread int, u *uop.UOp, format string, args ...any) {
	v := Violation{Cycle: cycle, Invariant: invariant, Thread: thread, Detail: fmt.Sprintf(format, args...)}
	if u != nil {
		v.GSeq, v.PC = u.GSeq, u.Inst.PC
	}
	c.record(v)
}

// CheckCycle runs every invariant against the machine's current state
// and returns an error summarizing any violation found this call (nil on
// a clean cycle). All violations are also retained (up to a cap) and
// available via Violations.
func (c *Checker) CheckCycle(cycle int64) error {
	before := len(c.violations) + c.dropped

	c.checkComponents(cycle)
	c.collectLive(cycle)
	c.checkLocations(cycle)
	c.checkDAB(cycle)
	if c.m.EventWakeup {
		c.checkWakeup(cycle)
	}
	c.checkRegisterConservation(cycle)
	c.checkLSQs(cycle)

	found := len(c.violations) + c.dropped - before
	if found == 0 {
		return nil
	}
	first := c.violations[min(before, len(c.violations)-1)]
	if found == 1 {
		return first
	}
	return fmt.Errorf("%w (+%d more violations this cycle)", first, found-1)
}

// checkComponents runs each component's self-check.
func (c *Checker) checkComponents(cycle int64) {
	if err := c.m.RF.CheckInvariants(); err != nil {
		c.addf(cycle, "regfile-integrity", -1, nil, "%v", err)
	}
	if err := c.m.IQ.CheckInvariants(c.m.RF); err != nil {
		c.addf(cycle, "iq-structure", -1, nil, "%v", err)
	}
	if err := c.m.Disp.CheckInvariants(c.m.IQ, c.m.RF); err != nil {
		c.addf(cycle, "dispatch-classification", -1, nil, "%v", err)
	}
	for t, r := range c.m.ROBs {
		if err := r.CheckInvariants(t); err != nil {
			c.addf(cycle, "rob-order", t, nil, "%v", err)
		}
	}
	for t, rat := range c.m.RATs {
		if err := rat.CheckConsistency(); err != nil {
			c.addf(cycle, "rename-consistency", t, nil, "%v", err)
		}
	}
}

// collectLive rebuilds the in-flight set: every renamed, uncommitted,
// unsquashed UOp appears in exactly one thread's ROB.
func (c *Checker) collectLive(cycle int64) {
	clear(c.live)
	for t, r := range c.m.ROBs {
		r.ForEach(func(u *uop.UOp) {
			if prev, dup := c.live[u]; dup {
				c.addf(cycle, "rob-order", t, u, "UOp also in flight for thread %d", prev)
				return
			}
			c.live[u] = t
			if u.Completed && !u.Issued {
				c.addf(cycle, "uop-lifecycle", t, u, "completed without issuing")
			}
			if u.Completed && u.Dest.Valid() && !c.m.RF.Ready(u.Dest) {
				c.addf(cycle, "uop-lifecycle", t, u, "completed but destination %s not ready", u.Dest)
			}
		})
	}
}

// checkLocations verifies each live instruction occupies exactly the
// pipeline structure its lifecycle stage implies, and that every
// structure holds only live instructions.
func (c *Checker) checkLocations(cycle int64) {
	clear(c.buffered)
	for t := range c.m.ROBs {
		buf := c.m.Disp.Buffer(t)
		for j := 0; j < buf.Len(); j++ {
			u := buf.At(j)
			c.buffered[u] = true
			if lt, ok := c.live[u]; !ok || lt != t {
				c.addf(cycle, "location", t, u, "buffered for dispatch but not in thread %d's ROB", t)
			}
		}
	}
	c.m.IQ.ForEach(func(u *uop.UOp) {
		if _, ok := c.live[u]; !ok {
			c.addf(cycle, "location", u.Thread, u, "IQ resident not in any ROB")
		}
	})
	for _, id := range c.m.Disp.DAB().Entries() {
		u := c.m.Bank.Get(id)
		if _, ok := c.live[u]; !ok {
			c.addf(cycle, "location", u.Thread, u, "DAB occupant not in any ROB")
		}
	}
	for u, t := range c.live {
		places := 0
		for _, in := range []bool{c.buffered[u], u.InIQ, u.InDAB} {
			if in {
				places++
			}
		}
		switch {
		case u.Issued && places != 0:
			c.addf(cycle, "location", t, u, "issued but still resident (buffer=%t iq=%t dab=%t)",
				c.buffered[u], u.InIQ, u.InDAB)
		case !u.Issued && places != 1:
			c.addf(cycle, "location", t, u, "in %d pipeline structures, want exactly 1 (buffer=%t iq=%t dab=%t)",
				places, c.buffered[u], u.InIQ, u.InDAB)
		}
	}
}

// checkDAB verifies the deadlock-avoidance contract: an occupant is its
// thread's ROB-oldest instruction and every source operand is ready —
// the Section 4 property that lets the DAB issue from a plain RAM with
// no wakeup CAM.
func (c *Checker) checkDAB(cycle int64) {
	for _, id := range c.m.Disp.DAB().Entries() {
		u := c.m.Bank.Get(id)
		t := u.Thread
		if !u.InDAB {
			c.addf(cycle, "dab-oldest-ready", t, u, "occupant has InDAB unset")
		}
		if t < 0 || t >= len(c.m.ROBs) {
			continue // location check already reported it
		}
		if !c.m.ROBs[t].IsHead(u) {
			c.addf(cycle, "dab-oldest-ready", t, u, "occupant is not the ROB-oldest instruction of its thread")
		}
		if n := u.NumSrcNotReady(c.m.RF); n != 0 {
			c.addf(cycle, "dab-oldest-ready", t, u, "occupant has %d non-ready sources", n)
		}
		if c.m.EventWakeup && c.m.Bank.NotReady[u.ID] != 0 {
			c.addf(cycle, "dab-oldest-ready", t, u, "occupant's not-ready counter is %d", c.m.Bank.NotReady[u.ID])
		}
	}
}

// checkWakeup verifies the event-driven wakeup bookkeeping: every live,
// unissued instruction's not-ready counter equals both a register-file
// poll and its watch-bit registrations in the consumer bitmaps; watch
// bits never outnumber an instruction's matching source operands and
// never survive issue or squash. With bank slots recycled by later
// renames, a stale bit is not harmless — a broadcast would decrement the
// new occupant's counter — so any watch whose slot does not hold a live,
// watching incarnation is a violation in its own right.
func (c *Checker) checkWakeup(cycle int64) {
	clear(c.watches)
	c.m.RF.VisitWatchers(func(p regfile.PhysRef, id int32) {
		u := c.m.Bank.Get(id)
		t, live := c.live[u]
		if !live || u.Squashed {
			c.addf(cycle, "wakeup-counter", u.Thread, u, "watch on %s for bank slot %d, whose occupant is not in flight", p, id)
			return
		}
		if u.Issued {
			c.addf(cycle, "wakeup-counter", t, u, "watch on %s survived issue", p)
		}
		matches := 0
		for _, s := range u.Srcs {
			if s == p {
				matches++
			}
		}
		if matches == 0 {
			c.addf(cycle, "wakeup-counter", t, u, "watch on %s, which is not a source operand", p)
			return
		}
		c.watches[u]++
		if c.watches[u] > int(c.m.Bank.NotReady[id]) {
			c.addf(cycle, "wakeup-counter", t, u, "live watch bits exceed not-ready counter %d", c.m.Bank.NotReady[id])
		}
	})
	for u, t := range c.live {
		nr := c.m.Bank.NotReady[u.ID]
		if nr < 0 {
			c.addf(cycle, "wakeup-counter", t, u, "not-ready counter underflow: %d", nr)
			continue
		}
		if u.Issued {
			continue // counters are dead after issue; watches checked above
		}
		if polled := u.NumSrcNotReady(c.m.RF); int(nr) != polled {
			c.addf(cycle, "wakeup-counter", t, u, "counter says %d non-ready, register file says %d", nr, polled)
		}
		if got := c.watches[u]; got != int(nr) {
			c.addf(cycle, "wakeup-counter", t, u, "%d live watch bits for counter %d", got, nr)
		}
	}
}

// checkRegisterConservation rebuilds the set of reachable physical
// registers — the architectural mappings of every thread plus the
// destinations of every live instruction — and requires it to coincide
// exactly with the allocated set: a register allocated but unreachable
// has leaked; a reachable register on the free list was double-freed.
func (c *Checker) checkRegisterConservation(cycle int64) {
	clear(c.dests)
	clear(c.expected)
	for t, rat := range c.m.RATs {
		for cls := 0; cls < isa.NumRegClasses; cls++ {
			for i := 0; i < isa.NumArchRegs; i++ {
				r := isa.Reg{Class: isa.RegClass(cls), Index: int8(i)}
				if p := rat.ArchLookup(r); p.Valid() {
					c.expected[p] = true
				} else {
					c.addf(cycle, "register-conservation", t, nil, "architectural %v unmapped", r)
				}
			}
		}
	}
	for u, t := range c.live {
		if !u.Dest.Valid() {
			continue
		}
		if prev, dup := c.dests[u.Dest]; dup {
			c.addf(cycle, "register-conservation", t, u, "destination %s double-allocated (also gseq=%d)", u.Dest, prev.GSeq)
		}
		c.dests[u.Dest] = u
		c.expected[u.Dest] = true
		if u.PrevDest.Valid() && !c.m.RF.Allocated(u.PrevDest) {
			c.addf(cycle, "register-conservation", t, u, "previous mapping %s freed before commit", u.PrevDest)
		}
	}
	for cls := 0; cls < isa.NumRegClasses; cls++ {
		rc := isa.RegClass(cls)
		for i := 0; i < c.m.RF.Size(rc); i++ {
			p := regfile.PhysRef{Class: rc, Index: int16(i)}
			alloc, want := c.m.RF.Allocated(p), c.expected[p]
			switch {
			case alloc && !want:
				c.addf(cycle, "register-conservation", -1, nil, "%s leaked: allocated but unreachable", p)
			case !alloc && want:
				c.addf(cycle, "register-conservation", -1, c.dests[p], "%s reachable but freed", p)
			}
		}
	}
}

// checkLSQs verifies each thread's load/store queue holds live memory
// operations in program order.
func (c *Checker) checkLSQs(cycle int64) {
	for t, q := range c.m.LSQs {
		var prev uint64
		first := true
		q.ForEach(func(u *uop.UOp) {
			if lt, ok := c.live[u]; !ok || lt != t {
				c.addf(cycle, "lsq-order", t, u, "LSQ entry not in thread %d's ROB", t)
			}
			if !u.Inst.Class.IsMem() {
				c.addf(cycle, "lsq-order", t, u, "non-memory class %v in LSQ", u.Inst.Class)
			}
			if !first && u.GSeq <= prev {
				c.addf(cycle, "lsq-order", t, u, "program order broken: gseq %d after %d", u.GSeq, prev)
			}
			prev, first = u.GSeq, false
		})
	}
}
