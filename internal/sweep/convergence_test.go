package sweep

import (
	"math"
	"testing"

	"smtsim"
)

// TestBudgetConvergence backs DESIGN.md's claim that the synthetic
// workloads are stationary: doubling the instruction budget must not
// materially move a mix's IPC. This is what licenses running the
// harness at reduced budgets.
func TestBudgetConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence test")
	}
	cfg := smtsim.Config{
		Benchmarks:         []string{"equake", "gzip"},
		IQSize:             64,
		Scheduler:          smtsim.TwoOpOOOD,
		Seed:               3,
		WarmupInstructions: 50_000,
	}
	ipcAt := func(budget uint64) float64 {
		c := cfg
		c.MaxInstructions = budget
		res, err := smtsim.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	a := ipcAt(60_000)
	b := ipcAt(120_000)
	if rel := math.Abs(a-b) / b; rel > 0.15 {
		t.Errorf("IPC moved %.1f%% when doubling the budget (%.3f -> %.3f): workload not stationary",
			100*rel, a, b)
	}
}

// TestSchedulerOrderingStableAcrossSeeds checks that the paper's core
// qualitative ordering at 2 threads / 64 entries (traditional >
// 2OP_BLOCK, OOOD > 2OP_BLOCK) is a property of the design, not of one
// lucky seed.
func TestSchedulerOrderingStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		ipc := map[smtsim.Scheduler]float64{}
		for _, s := range smtsim.Schedulers {
			res, err := smtsim.Run(smtsim.Config{
				Benchmarks:      []string{"twolf", "vortex"},
				IQSize:          64,
				Scheduler:       s,
				MaxInstructions: 30_000,
				Seed:            seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			ipc[s] = res.IPC
		}
		if !(ipc[smtsim.TwoOpBlock] < ipc[smtsim.Traditional]) {
			t.Errorf("seed %d: 2OP_BLOCK (%.3f) >= traditional (%.3f)",
				seed, ipc[smtsim.TwoOpBlock], ipc[smtsim.Traditional])
		}
		if !(ipc[smtsim.TwoOpOOOD] > ipc[smtsim.TwoOpBlock]) {
			t.Errorf("seed %d: OOOD (%.3f) <= 2OP_BLOCK (%.3f)",
				seed, ipc[smtsim.TwoOpOOOD], ipc[smtsim.TwoOpBlock])
		}
	}
}
