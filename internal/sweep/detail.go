package sweep

import (
	"fmt"

	"smtsim"
	"smtsim/internal/core"
	"smtsim/internal/isa"
	"smtsim/internal/regfile"
	"smtsim/internal/uop"
	"smtsim/internal/workload"
)

// PerMixSpeedup breaks one figure cell open: the per-mix IPC speedups of
// a scheduler over the traditional scheduler at one IQ size, for every
// mix of the thread count. The harmonic means in the figures hide which
// mixes drive a result; this is the drill-down view.
func PerMixSpeedup(threads, iqSize int, sched smtsim.Scheduler, o Options) (Table, error) {
	mixes, err := workload.MixesFor(threads)
	if err != nil {
		return Table{}, err
	}
	var cells []cell
	for _, s := range []smtsim.Scheduler{smtsim.Traditional, sched} {
		for _, m := range mixes {
			cells = append(cells, cell{mix: m, sched: s, iq: iqSize})
		}
	}
	flat, err := runCells(cells, o)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title: fmt.Sprintf("Per-mix speedup of %s vs traditional, %d threads, IQ=%d", sched, threads, iqSize),
		Cols:  []string{"trad IPC", "IPC", "speedup"},
	}
	for m, mix := range mixes {
		base := flat[m].IPC
		got := flat[len(mixes)+m].IPC
		ratio := 0.0
		if base > 0 {
			ratio = got / base
		}
		t.Rows = append(t.Rows, mix.String())
		t.Values = append(t.Values, []float64{base, got, ratio})
	}
	return t, nil
}

// Figure2 renders the paper's Figure 2 walkthrough — the DI/NDI/HDI
// classification of a four-instruction dispatch window under a
// one-comparator scheduler — as a table (1 = yes). It runs no
// simulation; the classification logic itself is the artifact.
func Figure2() Table {
	rf := regfile.New(16, 16)
	ready := func() regfile.PhysRef {
		p := rf.Alloc(isa.IntReg)
		rf.SetReady(p)
		return p
	}
	pending := func() regfile.PhysRef { return rf.Alloc(isa.IntReg) }
	i1 := &uop.UOp{GSeq: 1, Srcs: [2]regfile.PhysRef{ready(), ready()}, Dest: pending()}
	i2 := &uop.UOp{GSeq: 2, Srcs: [2]regfile.PhysRef{pending(), pending()}, Dest: pending()}
	i3 := &uop.UOp{GSeq: 3, Srcs: [2]regfile.PhysRef{ready(), regfile.NoPhys}, Dest: pending()}
	i4 := &uop.UOp{GSeq: 4, Srcs: [2]regfile.PhysRef{i2.Dest, ready()}, Dest: pending()}
	window := []*uop.UOp{i1, i2, i3, i4}
	kinds := core.Classify(window, rf, 1)

	t := Table{
		Title: "Figure 2: DI/NDI/HDI classification of the example window (1 = yes)",
		Cols:  []string{"DI", "NDI", "HDI", "non-ready"},
		Note:  "I2 waits on two in-flight loads; I4 depends on I2 yet is still an HDI",
	}
	for i, k := range kinds {
		row := []float64{0, 0, 0, float64(window[i].NumSrcNotReady(rf))}
		row[int(k)] = 1
		t.Rows = append(t.Rows, fmt.Sprintf("I%d", i+1))
		t.Values = append(t.Values, row)
	}
	return t
}

// MemoryLatencySweep checks the robustness of the paper's headline
// ordering against the memory latency (Table 1 fixes 150 cycles; real
// machines of the era ranged from ~100 to ~400). Values are the OOOD-
// over-2OP_BLOCK speedup at the given IQ size, harmonically averaged
// over the thread count's mixes.
func MemoryLatencySweep(threads, iqSize int, latencies []int, o Options) (Table, error) {
	if len(latencies) == 0 {
		latencies = []int{100, 150, 300}
	}
	mixes, err := workload.MixesFor(threads)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title: fmt.Sprintf("OOO dispatch over 2OP_BLOCK vs memory latency, %d threads, IQ=%d", threads, iqSize),
		Note:  "harmonic mean of per-mix IPC ratios over the 12 paper mixes",
	}
	var cells []cell
	for _, lat := range latencies {
		t.Cols = append(t.Cols, fmt.Sprintf("%d cyc", lat))
		for _, sched := range []smtsim.Scheduler{smtsim.TwoOpBlock, smtsim.TwoOpOOOD} {
			for _, mix := range mixes {
				cells = append(cells, cell{mix: mix, sched: sched, iq: iqSize, memLat: lat})
			}
		}
	}
	flat, err := runCells(cells, o)
	if err != nil {
		return Table{}, err
	}
	row := make([]float64, len(latencies))
	for j := range latencies {
		base := make([]float64, len(mixes))
		ooo := make([]float64, len(mixes))
		off := j * 2 * len(mixes)
		for m := range mixes {
			base[m] = flat[off+m].IPC
			ooo[m] = flat[off+len(mixes)+m].IPC
		}
		row[j] = speedupRow(ooo, base)
	}
	t.Rows = []string{"ooo/2op"}
	t.Values = [][]float64{row}
	return t, nil
}
