package sweep

import (
	"fmt"

	"smtsim"
	"smtsim/internal/metrics"
	"smtsim/internal/workload"
)

// EnergyComparison quantifies the paper's combined claim — "reduces the
// complexity ... and power consumption of the dynamic scheduling logic
// while achieving the same and in many cases significantly better
// throughput" — as a table of scheduler designs at one IQ size:
// comparator count, relative scheduling energy per instruction, IPC
// speedup, and energy-delay product, harmonically averaged over the
// thread count's twelve mixes.
func EnergyComparison(threads, iqSize int, o Options) (Table, error) {
	mixes, err := workload.MixesFor(threads)
	if err != nil {
		return Table{}, err
	}
	scheds := []smtsim.Scheduler{
		smtsim.Traditional, smtsim.TwoOpBlock, smtsim.TwoOpOOOD, smtsim.TagElimination,
	}
	var cells []cell
	for _, s := range scheds {
		for _, m := range mixes {
			cells = append(cells, cell{mix: m, sched: s, iq: iqSize})
		}
	}
	flat, err := runCells(cells, o)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		Title: fmt.Sprintf("Scheduling-logic cost vs performance, %d threads, IQ=%d", threads, iqSize),
		Note:  "energy in units of one tag comparison; harmonic means over the 12 paper mixes",
		Cols:  []string{"comparators", "energy/inst", "IPC speedup", "EDP ratio"},
	}
	baseIPC := make([]float64, len(mixes))
	baseEDP := make([]float64, len(mixes))
	for m := range mixes {
		baseIPC[m] = flat[m].IPC
		baseEDP[m] = flat[m].SchedulerEDP
	}
	for i, s := range scheds {
		ipc := make([]float64, len(mixes))
		edp := make([]float64, len(mixes))
		var energy float64
		for m := range mixes {
			r := flat[i*len(mixes)+m]
			ipc[m] = r.IPC
			edp[m] = r.SchedulerEDP
			energy += r.SchedulerEnergyPerInst / float64(len(mixes))
		}
		edpRatio := make([]float64, len(mixes))
		for m := range mixes {
			if baseEDP[m] > 0 {
				edpRatio[m] = edp[m] / baseEDP[m]
			}
		}
		t.Rows = append(t.Rows, s.String())
		t.Values = append(t.Values, []float64{
			float64(flat[i*len(mixes)].Comparators),
			energy,
			speedupRow(ipc, baseIPC),
			metrics.HarmonicMean(edpRatio),
		})
	}
	return t, nil
}
