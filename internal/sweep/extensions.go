package sweep

import (
	"fmt"

	"smtsim"
	"smtsim/internal/workload"
)

// SchedulerZoo compares every implemented scheduler design — the paper's
// three plus the tag-elimination partitions of the related work — at one
// IQ size across the three thread counts. Values are speedups over the
// traditional scheduler, harmonically averaged over the mixes.
func SchedulerZoo(iqSize int, o Options) (Table, error) {
	scheds := []smtsim.Scheduler{
		smtsim.Traditional, smtsim.TwoOpBlock, smtsim.TwoOpOOOD,
		smtsim.TagElimination, smtsim.TagEliminationOOOD,
	}
	t := Table{
		Title: fmt.Sprintf("All scheduler designs vs traditional, IQ=%d", iqSize),
		Note:  "harmonic mean of per-mix IPC ratios over the 12 paper mixes",
	}
	for _, s := range scheds {
		t.Cols = append(t.Cols, s.String())
	}
	for _, threads := range []int{2, 3, 4} {
		mixes, err := workload.MixesFor(threads)
		if err != nil {
			return Table{}, err
		}
		var cells []cell
		for _, s := range scheds {
			for _, m := range mixes {
				cells = append(cells, cell{mix: m, sched: s, iq: iqSize})
			}
		}
		flat, err := runCells(cells, o)
		if err != nil {
			return Table{}, err
		}
		base := make([]float64, len(mixes))
		for m := range mixes {
			base[m] = flat[m].IPC
		}
		row := make([]float64, len(scheds))
		for i := range scheds {
			ipc := make([]float64, len(mixes))
			for m := range mixes {
				ipc[m] = flat[i*len(mixes)+m].IPC
			}
			row[i] = speedupRow(ipc, base)
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%d threads", threads))
		t.Values = append(t.Values, row)
	}
	return t, nil
}

// FetchGates compares the related-work fetch-gating policies (Section 6:
// STALL, FLUSH, Data Gating) layered under each headline scheduler at
// one IQ size on the 4-threaded mixes. Values are speedups over the same
// scheduler without gating.
func FetchGates(iqSize int, o Options) (Table, error) {
	gates := []string{"none", "stall", "flush", "data-gate"}
	scheds := []smtsim.Scheduler{smtsim.Traditional, smtsim.TwoOpOOOD}
	mixes, err := workload.MixesFor(4)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title: fmt.Sprintf("Fetch-gating policies, 4-threaded workloads, IQ=%d", iqSize),
		Note:  "speedup vs the same scheduler without gating; harmonic mean over the 12 mixes",
	}
	for _, g := range gates {
		t.Cols = append(t.Cols, g)
	}
	for _, s := range scheds {
		var cells []cell
		for _, g := range gates {
			gg := g
			if gg == "none" {
				gg = ""
			}
			for m := range mixes {
				cells = append(cells, cell{mix: mixes[m], sched: s, iq: iqSize, gate: gg})
			}
		}
		flat, err := runCells(cells, o)
		if err != nil {
			return Table{}, err
		}
		results := make([][]float64, len(gates))
		for g := range gates {
			results[g] = make([]float64, len(mixes))
			for m := range mixes {
				results[g][m] = flat[g*len(mixes)+m].IPC
			}
		}
		row := make([]float64, len(gates))
		for g := range gates {
			row[g] = speedupRow(results[g], results[0])
		}
		t.Rows = append(t.Rows, s.String())
		t.Values = append(t.Values, row)
	}
	return t, nil
}
