package sweep

import (
	"strings"
	"testing"

	"smtsim"
)

func TestSchedulerZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	tab, err := SchedulerZoo(48, Options{Budget: 3_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Cols) != 5 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	for _, row := range tab.Values {
		if row[0] != 1.0 {
			t.Errorf("baseline column = %v, want 1", row[0])
		}
	}
}

func TestFetchGates(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	tab, err := FetchGates(48, Options{Budget: 3_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Cols) != 4 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	for _, row := range tab.Values {
		if row[0] != 1.0 {
			t.Errorf("ungated column = %v, want 1", row[0])
		}
		for _, v := range row {
			if v <= 0 || v > 5 {
				t.Errorf("implausible gate speedup %v", v)
			}
		}
	}
}

func TestRenderBars(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Rows:   []string{"r"},
		Cols:   []string{"a", "b"},
		Values: [][]float64{{1, 2}},
	}
	s := tab.RenderBars()
	if !strings.Contains(s, "#") || !strings.Contains(s, "demo") {
		t.Errorf("bars missing: %s", s)
	}
	// Larger value gets the longer bar.
	lines := strings.Split(s, "\n")
	var la, lb int
	for _, l := range lines {
		if strings.Contains(l, "a ") && strings.Contains(l, "|") {
			la = strings.Count(l, "#")
		}
		if strings.Contains(l, "b ") && strings.Contains(l, "|") {
			lb = strings.Count(l, "#")
		}
	}
	if lb <= la {
		t.Errorf("bar lengths %d/%d not proportional", la, lb)
	}
}

func TestPerMixSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	tab, err := PerMixSpeedup(2, 64, smtsim.TwoOpBlock, Options{Budget: 2_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 || len(tab.Cols) != 3 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	for i, row := range tab.Values {
		if row[0] <= 0 || row[1] <= 0 || row[2] <= 0 {
			t.Errorf("mix %d degenerate: %v", i, row)
		}
	}
}

func TestMemoryLatencySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	tab, err := MemoryLatencySweep(2, 64, []int{80, 300}, Options{Budget: 2_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cols) != 2 || len(tab.Values[0]) != 2 {
		t.Fatalf("table shape wrong: %v", tab.Cols)
	}
	for _, v := range tab.Values[0] {
		// The OOOD advantage over 2OP_BLOCK must persist at any latency.
		if v < 1.0 {
			t.Errorf("OOOD/2OP speedup %v below 1", v)
		}
	}
}

func TestFigure2Table(t *testing.T) {
	tab := Figure2()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	want := [][2]int{{0, 0}, {1, 0}, {2, 0}, {2, 0}} // {kind column, _}
	kinds := []int{0, 1, 2, 2}                       // DI, NDI, HDI, HDI
	_ = want
	for i, k := range kinds {
		if tab.Values[i][k] != 1 {
			t.Errorf("I%d kind column %d not set: %v", i+1, k, tab.Values[i])
		}
	}
	if tab.Values[1][3] != 2 {
		t.Errorf("I2 non-ready count %v, want 2", tab.Values[1][3])
	}
}
