package sweep

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smtsim/internal/cellstore"
)

var updateHashes = flag.Bool("update", false, "rewrite the cell hash golden file")

// TestTable1HashGolden pins the content hash of every cell in the
// paper's headline sweep against a checked-in golden file. The hashes
// cover the whole input surface — Config canonicalization, the spec's
// JSON schema, the seed derivation, the schema version — so ANY drift
// in how cells are described shows up here before it can reach a
// store.
//
// If this test fails and the schema version in the golden header
// matches cellstore.SchemaVersion, cell canonicalization drifted
// silently: old caches would have served results for inputs that no
// longer mean the same thing. Bump cellstore.SchemaVersion (old stores
// then refuse to open instead of serving stale cells), THEN re-bless
// with -update.
func TestTable1HashGolden(t *testing.T) {
	specs, err := Table1Specs(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "schema %d\n", cellstore.SchemaVersion)
	for _, s := range specs {
		fmt.Fprintf(&b, "%s %s iq=%d %s\n", s.Key(), s.Scheduler, s.IQSize, strings.Join(s.Benchmarks, ","))
	}
	got := b.String()

	golden := filepath.Join("testdata", "table1_hashes.golden")
	if *updateHashes {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d cells)", golden, len(specs))
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}

	wantSchema := ""
	if i := strings.IndexByte(want, '\n'); i > 0 {
		wantSchema = want[:i]
	}
	gotSchema := fmt.Sprintf("schema %d", cellstore.SchemaVersion)
	if wantSchema != gotSchema {
		t.Fatalf("cell schema moved from %q to %q: hashes are expected to change — re-bless with -update", wantSchema, gotSchema)
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("cell hash drifted at line %d without a schema bump:\n got: %q\nwant: %q\n\nold caches could silently serve stale results for these cells.\nBump cellstore.SchemaVersion first, then re-bless with -update.", i+1, g, w)
		}
	}
	t.Fatal("hash golden differs in length only — bump cellstore.SchemaVersion and re-bless with -update")
}
