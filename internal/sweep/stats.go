package sweep

import (
	"fmt"

	"smtsim"
	"smtsim/internal/metrics"
	"smtsim/internal/workload"
)

// StallStats reproduces the Section 3 statistic: the percentage of cycles
// in which the dispatch of all threads stalls under the 2OP condition,
// per thread count, at the given IQ size (the paper quotes 43%/17%/7% for
// 2/3/4 threads at 64 entries under 2OP_BLOCK, dropping to 0.2% for
// 2 threads under out-of-order dispatch). Both the strict reading (all
// threads simultaneously hold NDI-blocked work) and the weak reading
// (threads starved upstream of dispatch ignored) are reported.
func StallStats(iqSize int, o Options) (Table, error) {
	scheds := []smtsim.Scheduler{smtsim.TwoOpBlock, smtsim.TwoOpOOOD}
	t := Table{
		Title: fmt.Sprintf("Dispatch stall-all cycles (%% of cycles), IQ=%d", iqSize),
		Note:  "arithmetic mean over the 12 paper mixes; strict/weak per DESIGN.md",
		Cols: []string{
			"2op strict", "2op weak", "ooo strict", "ooo weak",
		},
	}
	for _, threads := range []int{2, 3, 4} {
		mixes, err := workload.MixesFor(threads)
		if err != nil {
			return Table{}, err
		}
		var cells []cell
		for _, s := range scheds {
			for _, m := range mixes {
				cells = append(cells, cell{mix: m, sched: s, iq: iqSize})
			}
		}
		flat, err := runCells(cells, o)
		if err != nil {
			return Table{}, err
		}
		row := make([]float64, 4)
		n := float64(len(mixes))
		for i := range scheds {
			for m := 0; m < len(mixes); m++ {
				r := flat[i*len(mixes)+m]
				row[2*i] += 100 * r.DispatchStallAllNDI / n
				row[2*i+1] += 100 * r.DispatchStallNDIWeak / n
			}
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%d threads", threads))
		t.Values = append(t.Values, row)
	}
	return t, nil
}

// ResidencyStats reproduces the Section 5 statistic: the mean number of
// cycles an instruction spends in the issue queue, for the traditional
// scheduler and for 2OP_BLOCK with out-of-order dispatch (the paper
// quotes 21 vs 15 cycles for 64-entry schedulers on 2-threaded
// workloads).
func ResidencyStats(threads, iqSize int, o Options) (Table, error) {
	mixes, err := workload.MixesFor(threads)
	if err != nil {
		return Table{}, err
	}
	scheds := []smtsim.Scheduler{smtsim.Traditional, smtsim.TwoOpBlock, smtsim.TwoOpOOOD}
	var cells []cell
	for _, s := range scheds {
		for _, m := range mixes {
			cells = append(cells, cell{mix: m, sched: s, iq: iqSize})
		}
	}
	flat, err := runCells(cells, o)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title: fmt.Sprintf("Mean IQ residency (cycles) and occupancy (entries), %d threads, IQ=%d", threads, iqSize),
		Note:  "arithmetic mean over the 12 paper mixes",
		Cols:  []string{"residency", "occupancy"},
	}
	n := float64(len(mixes))
	for i, s := range scheds {
		var resid, occ float64
		for m := 0; m < len(mixes); m++ {
			r := flat[i*len(mixes)+m]
			resid += r.IQResidency / n
			occ += r.IQOccupancy / n
		}
		t.Rows = append(t.Rows, s.String())
		t.Values = append(t.Values, []float64{resid, occ})
	}
	return t, nil
}

// HDIStats reproduces the Section 4 observations: the fraction of
// instructions piled up behind NDIs that are themselves dispatchable
// (paper: ~90%) and the fraction of out-of-order-dispatched HDIs that
// depend on a prior NDI (paper: ~10%).
func HDIStats(iqSize int, o Options) (Table, error) {
	t := Table{
		Title: fmt.Sprintf("HDI statistics under out-of-order dispatch, IQ=%d", iqSize),
		Note:  "arithmetic mean over the 12 paper mixes",
		Cols:  []string{"%piled=HDI", "%HDI dep NDI"},
	}
	for _, threads := range []int{2, 3, 4} {
		mixes, err := workload.MixesFor(threads)
		if err != nil {
			return Table{}, err
		}
		var cells []cell
		for _, m := range mixes {
			cells = append(cells, cell{mix: m, sched: smtsim.TwoOpOOOD, iq: iqSize})
		}
		flat, err := runCells(cells, o)
		if err != nil {
			return Table{}, err
		}
		var piled, dep float64
		n := float64(len(mixes))
		for _, r := range flat {
			piled += 100 * r.HDIPiledFrac / n
			dep += 100 * r.HDIDepOnNDIFrac / n
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%d threads", threads))
		t.Values = append(t.Values, []float64{piled, dep})
	}
	return t, nil
}

// FilterAblation reproduces the Section 4 idealized-filtering result: the
// IPC of out-of-order dispatch with perfect zero-overhead NDI-dependence
// filtering relative to unfiltered out-of-order dispatch (the paper
// measures only ~1.2% improvement, justifying the simpler design).
func FilterAblation(iqSize int, o Options) (Table, error) {
	t := Table{
		Title: fmt.Sprintf("Idealized NDI-dependence filtering vs plain OOO dispatch, IQ=%d", iqSize),
		Note:  "harmonic mean of per-mix IPC ratios (filtered/unfiltered) over the 12 paper mixes",
		Cols:  []string{"speedup"},
	}
	for _, threads := range []int{2, 3, 4} {
		mixes, err := workload.MixesFor(threads)
		if err != nil {
			return Table{}, err
		}
		var cells []cell
		for _, s := range []smtsim.Scheduler{smtsim.TwoOpOOOD, smtsim.TwoOpOOODFiltered} {
			for _, m := range mixes {
				cells = append(cells, cell{mix: m, sched: s, iq: iqSize})
			}
		}
		flat, err := runCells(cells, o)
		if err != nil {
			return Table{}, err
		}
		base := make([]float64, len(mixes))
		filt := make([]float64, len(mixes))
		for m := range mixes {
			base[m] = flat[m].IPC
			filt[m] = flat[len(mixes)+m].IPC
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%d threads", threads))
		t.Values = append(t.Values, []float64{speedupRow(filt, base)})
	}
	return t, nil
}

// ClassifyBenchmarks reruns the paper's Section 2 methodology: simulate
// every modeled benchmark single-threaded on the baseline machine and
// report its IPC next to its assigned ILP class.
func ClassifyBenchmarks(o Options) (Table, error) {
	names := workload.Names()
	var cells []cell
	for _, b := range names {
		cells = append(cells, cell{
			mix:   workload.Mix{Name: "alone", Benchmarks: []string{b}},
			sched: smtsim.Traditional,
			iq:    64,
		})
	}
	flat, err := runCells(cells, o)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title: "Single-threaded baseline IPCs (benchmark classification), IQ=64",
		Cols:  []string{"IPC"},
	}
	for i, b := range names {
		class, _ := workload.Class(b)
		t.Rows = append(t.Rows, fmt.Sprintf("%s (%s ILP)", b, class))
		t.Values = append(t.Values, []float64{flat[i].IPC})
	}
	return t, nil
}

// MeanOf is a convenience for tests: the harmonic mean of a table row.
func MeanOf(t Table, row int) float64 { return metrics.HarmonicMean(t.Values[row]) }
