package sweep

import (
	"testing"

	"smtsim"
)

func tinyOpts() Options { return Options{Budget: 3_000, Seed: 1} }

func TestResidencyStatsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	tab, err := ResidencyStats(2, 64, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Cols) != 2 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	for i, row := range tab.Values {
		if row[0] < 0 || row[1] < 0 {
			t.Errorf("row %d negative stats: %v", i, row)
		}
	}
}

func TestHDIStatsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	tab, err := HDIStats(64, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Values {
		for _, v := range row {
			if v < 0 || v > 100 {
				t.Errorf("percentage %v out of range", v)
			}
		}
	}
}

func TestFilterAblationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	tab, err := FilterAblation(64, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Values {
		// The paper: idealized filtering is worth ~1%; anything outside
		// (0.8, 1.3) would mean the ablation machinery is broken.
		if row[0] < 0.8 || row[0] > 1.3 {
			t.Errorf("filter speedup %v implausible", row[0])
		}
	}
}

func TestEnergyComparisonTable(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	tab, err := EnergyComparison(2, 64, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is the traditional scheduler: 64x2 comparators, EDP ratio 1.
	if tab.Values[0][0] != 128 || tab.Values[0][3] != 1.0 {
		t.Errorf("baseline row wrong: %v", tab.Values[0])
	}
	// The 2OP rows halve the comparators and must cut the EDP.
	for i := 1; i < 3; i++ {
		if tab.Values[i][0] != 64 {
			t.Errorf("row %d comparators = %v, want 64", i, tab.Values[i][0])
		}
		if tab.Values[i][3] >= 1.0 {
			t.Errorf("row %d EDP ratio %v not below baseline", i, tab.Values[i][3])
		}
	}
}

// TestClassificationOrdering reruns the Section 2 methodology at tiny
// budget and checks the classes separate: every high-ILP benchmark out-
// runs every low-ILP benchmark single-threaded.
func TestClassificationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	get := func(b string) float64 {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:         []string{b},
			IQSize:             64,
			MaxInstructions:    8_000,
			WarmupInstructions: 8_000,
			Seed:               1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	lows := []string{"equake", "twolf", "art"}
	highs := []string{"gzip", "vortex", "crafty"}
	for _, lo := range lows {
		for _, hi := range highs {
			l, h := get(lo), get(hi)
			if l >= h {
				t.Errorf("%s (low, %.3f) not below %s (high, %.3f)", lo, l, hi, h)
			}
		}
	}
}
