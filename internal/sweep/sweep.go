// Package sweep is the experiment harness: it regenerates every figure
// and statistic of the paper's evaluation by sweeping scheduler designs
// and issue-queue sizes over the workload mix tables, aggregating with
// the paper's harmonic means.
//
// Simulation cells are independent, so the harness fans them out over a
// bounded worker pool; results are deterministic regardless of worker
// scheduling because every cell is seeded independently.
package sweep

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"smtsim"
	"smtsim/internal/cellstore"
	"smtsim/internal/metrics"
	"smtsim/internal/workload"
)

// DefaultIQSizes is the paper's scheduler-size sweep.
var DefaultIQSizes = []int{32, 48, 64, 96, 128}

// Options configures a sweep.
type Options struct {
	// Budget is the per-run instruction budget (the run stops when any
	// thread commits this many). Zero selects 200k, enough for the
	// synthetic workloads' statistics to converge (see the convergence
	// test in internal/sweep).
	Budget uint64
	// Seed perturbs workload data and branch outcomes.
	Seed uint64
	// Warmup is the pre-measurement instruction budget (warm caches and
	// predictors, then reset statistics). Zero selects half the
	// measurement budget, mirroring the paper's initialization skipping.
	Warmup uint64
	// IQSizes overrides DefaultIQSizes.
	IQSizes []int
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, receives a line per completed cell.
	Progress func(string)
	// Runner, when non-nil, replaces the in-process cell executor:
	// every figure and statistic routes its simulation cells through it
	// as content-addressed specs, in cell order. This is how
	// `smtsweep -server` turns a sweep into sweepd requests — the specs
	// are identical to the ones the local path simulates, so results
	// are bit-identical by construction.
	Runner CellRunner
}

// CellRunner executes a batch of simulation cells and returns their
// results in spec order. Implementations must be deterministic in the
// specs alone (the local runner and the sweepd client both are).
type CellRunner func(specs []cellstore.Spec) ([]smtsim.Result, error)

func (o Options) budget() uint64 {
	if o.Budget == 0 {
		return 200_000
	}
	return o.Budget
}

func (o Options) warmup() uint64 {
	if o.Warmup == 0 {
		return o.budget() / 2
	}
	return o.Warmup
}

func (o Options) iqSizes() []int {
	if len(o.IQSizes) == 0 {
		return DefaultIQSizes
	}
	return o.IQSizes
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// cell is one simulation in a sweep.
type cell struct {
	mix    workload.Mix
	sched  smtsim.Scheduler
	iq     int
	gate   string // fetch gate ("" = none)
	memLat int    // memory latency override (0 = Table 1's)
}

// spec renders the cell as its content-addressed description. This is
// the single place sweep cells become simulator inputs: the local
// runner, the sweepd client, and the hash golden test all go through
// it, so a drift here moves every cell hash and trips the golden.
func (c cell) spec(o Options) cellstore.Spec {
	return cellstore.Spec{
		Benchmarks:    c.mix.Benchmarks,
		Scheduler:     c.sched.String(),
		IQSize:        c.iq,
		FetchGate:     c.gate,
		MemoryLatency: c.memLat,
		Budget:        o.budget(),
		Warmup:        o.warmup(),
		Seed:          o.Seed + 1,
	}.Canonical()
}

// SimulateSpec runs one content-addressed cell in process. sweepd's
// workers and the local sweep path share this entry point, which is
// what makes a cached cell bit-identical to a fresh one.
func SimulateSpec(s cellstore.Spec) (smtsim.Result, error) {
	cfg, err := s.Config()
	if err != nil {
		return smtsim.Result{}, err
	}
	return smtsim.Run(cfg)
}

// runCells executes the cells concurrently and returns results in cell
// order, delegating to Options.Runner when one is installed. The
// Progress callback is serialized (callers pass closures that write to
// shared state) and skipped for failed cells, whose results are not
// meaningful.
func runCells(cells []cell, o Options) ([]smtsim.Result, error) {
	specs := make([]cellstore.Spec, len(cells))
	for i := range cells {
		specs[i] = cells[i].spec(o)
	}
	if o.Runner != nil {
		results, err := o.Runner(specs)
		if err != nil {
			return nil, fmt.Errorf("sweep: remote runner: %w", err)
		}
		if len(results) != len(cells) {
			return nil, fmt.Errorf("sweep: remote runner returned %d results for %d cells", len(results), len(cells))
		}
		return results, nil
	}
	results := make([]smtsim.Result, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	sem := make(chan struct{}, o.workers())
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cells[i]
			res, err := SimulateSpec(specs[i])
			results[i], errs[i] = res, err
			if o.Progress != nil && err == nil {
				progressMu.Lock()
				o.Progress(fmt.Sprintf("%s iq=%d %s: IPC=%.3f", c.sched, c.iq, c.mix, res.IPC))
				progressMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: %s iq=%d %s: %w", cells[i].sched, cells[i].iq, cells[i].mix, err)
		}
	}
	return results, nil
}

// Table1Specs enumerates the content-addressed cells of the paper's
// headline sweep — the Figures 3/5/7 grid: every scheduler × IQ size ×
// mix at thread counts 2, 3, and 4 — in deterministic order. The hash
// golden test pins these cells' keys; the sweep service's end-to-end
// test replays them twice to prove a warm rerun simulates nothing.
func Table1Specs(o Options) ([]cellstore.Spec, error) {
	var specs []cellstore.Spec
	for _, threads := range []int{2, 3, 4} {
		mixes, err := workload.MixesFor(threads)
		if err != nil {
			return nil, err
		}
		for _, s := range smtsim.Schedulers {
			for _, q := range o.iqSizes() {
				for _, m := range mixes {
					specs = append(specs, cell{mix: m, sched: s, iq: q}.spec(o))
				}
			}
		}
	}
	return specs, nil
}

// Table is a labeled 2-D result grid.
type Table struct {
	Title  string
	Rows   []string
	Cols   []string
	Values [][]float64
	// Note carries the aggregation description printed under the table.
	Note string
}

// RenderBars formats the table as horizontal ASCII bars, one block per
// row/column pair, scaled to the table's maximum value — a terminal
// rendition of the paper's bar charts.
func (t Table) RenderBars() string {
	max := 0.0
	for _, row := range t.Values {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		return t.Render()
	}
	const width = 40
	out := t.Title + "\n"
	for i, r := range t.Rows {
		out += r + "\n"
		for j, c := range t.Cols {
			n := int(t.Values[i][j] / max * width)
			if n < 0 {
				n = 0
			}
			out += fmt.Sprintf("  %-10s %7.3f |%s\n", c, t.Values[i][j], strings.Repeat("#", n))
		}
	}
	if t.Note != "" {
		out += t.Note + "\n"
	}
	return out
}

// CSV formats the table as comma-separated values for external plotting.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString("row")
	for _, c := range t.Cols {
		b.WriteString("," + c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		b.WriteString(r)
		for j := range t.Cols {
			fmt.Fprintf(&b, ",%.6f", t.Values[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render formats the table as aligned text; column widths adapt to the
// longest label.
func (t Table) Render() string {
	rowW := 12
	for _, r := range t.Rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := 9
	for _, c := range t.Cols {
		if len(c)+2 > colW {
			colW = len(c) + 2
		}
	}
	out := t.Title + "\n"
	out += fmt.Sprintf("%-*s", rowW+2, "")
	for _, c := range t.Cols {
		out += fmt.Sprintf("%*s", colW, c)
	}
	out += "\n"
	for i, r := range t.Rows {
		out += fmt.Sprintf("%-*s", rowW+2, r)
		for j := range t.Cols {
			out += fmt.Sprintf("%*.3f", colW, t.Values[i][j])
		}
		out += "\n"
	}
	if t.Note != "" {
		out += t.Note + "\n"
	}
	return out
}

// mixIPCGrid runs sched×iq×mix and returns IPC[schedIdx][iqIdx][mixIdx].
func mixIPCGrid(threads int, scheds []smtsim.Scheduler, o Options) ([][][]float64, [][][]smtsim.Result, error) {
	mixes, err := workload.MixesFor(threads)
	if err != nil {
		return nil, nil, err
	}
	iqs := o.iqSizes()
	var cells []cell
	for _, s := range scheds {
		for _, q := range iqs {
			for _, m := range mixes {
				cells = append(cells, cell{mix: m, sched: s, iq: q})
			}
		}
	}
	flat, err := runCells(cells, o)
	if err != nil {
		return nil, nil, err
	}
	ipc := make([][][]float64, len(scheds))
	res := make([][][]smtsim.Result, len(scheds))
	k := 0
	for i := range scheds {
		ipc[i] = make([][]float64, len(iqs))
		res[i] = make([][]smtsim.Result, len(iqs))
		for j := range iqs {
			ipc[i][j] = make([]float64, len(mixes))
			res[i][j] = make([]smtsim.Result, len(mixes))
			for m := range mixes {
				ipc[i][j][m] = flat[k].IPC
				res[i][j][m] = flat[k]
				k++
			}
		}
	}
	return ipc, res, nil
}

// speedupRow aggregates per-mix speedups of num over den with the
// harmonic mean, the paper's cross-mix aggregation.
func speedupRow(num, den []float64) float64 {
	ratios := make([]float64, len(num))
	for i := range num {
		if den[i] <= 0 {
			return 0
		}
		ratios[i] = num[i] / den[i]
	}
	return metrics.HarmonicMean(ratios)
}

// FigureSpeedup reproduces Figures 3, 5, and 7: the throughput-IPC
// speedup of each scheduler over the traditional scheduler of the same
// capacity, per IQ size, harmonically averaged over the thread-count's
// twelve mixes. threads selects 2 (Figure 3), 3 (Figure 5), or 4
// (Figure 7).
func FigureSpeedup(threads int, o Options) (Table, error) {
	scheds := []smtsim.Scheduler{smtsim.Traditional, smtsim.TwoOpBlock, smtsim.TwoOpOOOD}
	ipc, _, err := mixIPCGrid(threads, scheds, o)
	if err != nil {
		return Table{}, err
	}
	return speedupTable(
		fmt.Sprintf("Throughput IPC speedup vs traditional, %d-threaded workloads", threads),
		scheds, ipc, o), nil
}

func speedupTable(title string, scheds []smtsim.Scheduler, ipc [][][]float64, o Options) Table {
	iqs := o.iqSizes()
	t := Table{
		Title: title,
		Note:  "harmonic mean of per-mix ratios over the 12 paper mixes",
	}
	for _, q := range iqs {
		t.Cols = append(t.Cols, fmt.Sprintf("IQ=%d", q))
	}
	for i, s := range scheds {
		t.Rows = append(t.Rows, s.String())
		row := make([]float64, len(iqs))
		for j := range iqs {
			row[j] = speedupRow(ipc[i][j], ipc[0][j])
		}
		t.Values = append(t.Values, row)
	}
	return t
}

// Figure1 reproduces Figure 1: the 2OP_BLOCK scheduler's IPC speedup over
// the traditional scheduler of the same capacity, for 2-, 3-, and
// 4-threaded workloads across IQ sizes.
func Figure1(o Options) (Table, error) {
	iqs := o.iqSizes()
	t := Table{
		Title: "Figure 1: 2OP_BLOCK IPC speedup vs traditional IQ of same capacity",
		Note:  "harmonic mean of per-mix ratios over the 12 paper mixes per thread count",
	}
	for _, q := range iqs {
		t.Cols = append(t.Cols, fmt.Sprintf("IQ=%d", q))
	}
	for _, threads := range []int{2, 3, 4} {
		ipc, _, err := mixIPCGrid(threads, []smtsim.Scheduler{smtsim.Traditional, smtsim.TwoOpBlock}, o)
		if err != nil {
			return Table{}, err
		}
		row := make([]float64, len(iqs))
		for j := range iqs {
			row[j] = speedupRow(ipc[1][j], ipc[0][j])
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%d threads", threads))
		t.Values = append(t.Values, row)
	}
	return t, nil
}

// aloneKey identifies one single-thread baseline cell: everything that
// determines its IPC.
type aloneKey struct {
	bench          string
	iq             int
	budget, warmup uint64
	seed           uint64
}

var (
	aloneMu    sync.Mutex
	aloneCache = map[aloneKey]float64{}
)

// AloneIPCs runs every benchmark of the mixes single-threaded on the
// traditional machine at each IQ size — the reference IPCs of the
// fairness metric. The returned map is keyed by benchmark then IQ size.
//
// Results are memoized for the life of the process: the fairness figures
// for 2-, 3-, and 4-threaded workloads (F4, F6, F8) share most of their
// baselines, and single-thread runs are deterministic in (benchmark, IQ,
// budget, warmup, seed), so cmd/smtreport pays for each baseline once.
func AloneIPCs(threads int, o Options) (map[string]map[int]float64, error) {
	mixes, err := workload.MixesFor(threads)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var names []string
	for _, m := range mixes {
		for _, b := range m.Benchmarks {
			if !seen[b] {
				seen[b] = true
				names = append(names, b)
			}
		}
	}
	iqs := o.iqSizes()
	budget, warmup := o.budget(), o.warmup()
	out := make(map[string]map[int]float64, len(names))
	var cells []cell
	var misses []aloneKey
	aloneMu.Lock()
	for _, b := range names {
		out[b] = make(map[int]float64, len(iqs))
		for _, q := range iqs {
			key := aloneKey{bench: b, iq: q, budget: budget, warmup: warmup, seed: o.Seed}
			if v, ok := aloneCache[key]; ok {
				out[b][q] = v
				continue
			}
			misses = append(misses, key)
			cells = append(cells, cell{
				mix:   workload.Mix{Name: "alone", Benchmarks: []string{b}},
				sched: smtsim.Traditional,
				iq:    q,
			})
		}
	}
	aloneMu.Unlock()
	if len(cells) == 0 {
		return out, nil
	}
	flat, err := runCells(cells, o)
	if err != nil {
		return nil, err
	}
	aloneMu.Lock()
	for i, key := range misses {
		aloneCache[key] = flat[i].IPC
		out[key.bench][key.iq] = flat[i].IPC
	}
	aloneMu.Unlock()
	return out, nil
}

// FigureFairness reproduces Figures 4, 6, and 8: the improvement in the
// harmonic-mean-of-weighted-IPCs fairness metric of each scheduler over
// the traditional scheduler of the same capacity. Weighted IPCs use
// single-threaded runs on the traditional machine of the same IQ size as
// the common reference (see EXPERIMENTS.md for the rationale).
func FigureFairness(threads int, o Options) (Table, error) {
	scheds := []smtsim.Scheduler{smtsim.Traditional, smtsim.TwoOpBlock, smtsim.TwoOpOOOD}
	_, res, err := mixIPCGrid(threads, scheds, o)
	if err != nil {
		return Table{}, err
	}
	alone, err := AloneIPCs(threads, o)
	if err != nil {
		return Table{}, err
	}
	mixes, _ := workload.MixesFor(threads)
	iqs := o.iqSizes()

	// fair[i][j][m]: the fairness metric of scheduler i at IQ j on mix m.
	fair := make([][][]float64, len(scheds))
	for i := range scheds {
		fair[i] = make([][]float64, len(iqs))
		for j, q := range iqs {
			fair[i][j] = make([]float64, len(mixes))
			for m, mix := range mixes {
				ref := make([]float64, len(mix.Benchmarks))
				for b, name := range mix.Benchmarks {
					ref[b] = alone[name][q]
				}
				f, err := metrics.HarmonicWeightedIPC(res[i][j][m].PerThreadIPCs(), ref)
				if err != nil {
					return Table{}, err
				}
				fair[i][j][m] = f
			}
		}
	}

	t := Table{
		Title: fmt.Sprintf("Fairness (harmonic mean of weighted IPCs) improvement vs traditional, %d-threaded workloads", threads),
		Note:  "harmonic mean of per-mix ratios over the 12 paper mixes",
	}
	for _, q := range iqs {
		t.Cols = append(t.Cols, fmt.Sprintf("IQ=%d", q))
	}
	for i, s := range scheds {
		t.Rows = append(t.Rows, s.String())
		row := make([]float64, len(iqs))
		for j := range iqs {
			row[j] = speedupRow(fair[i][j], fair[0][j])
		}
		t.Values = append(t.Values, row)
	}
	return t, nil
}
