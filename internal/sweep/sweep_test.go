package sweep

import (
	"strings"
	"testing"

	"smtsim"
	"smtsim/internal/workload"
)

func mixOf(names ...string) workload.Mix {
	return workload.Mix{Name: "test", Benchmarks: names}
}

// fastOpts keeps harness tests quick: tiny budgets, a reduced IQ sweep.
func fastOpts() Options {
	return Options{Budget: 4_000, Seed: 1, IQSizes: []int{32, 64}}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	tab, err := Figure1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Cols) != 2 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	for i, row := range tab.Values {
		for j, v := range row {
			if v <= 0 || v > 3 {
				t.Errorf("implausible speedup [%d][%d] = %v", i, j, v)
			}
		}
	}
}

func TestFigureSpeedupBaselineRow(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	tab, err := FigureSpeedup(2, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range tab.Values[0] {
		if v != 1.0 {
			t.Errorf("traditional-vs-traditional speedup [%d] = %v, want 1", j, v)
		}
	}
}

func TestFigureFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	o := Options{Budget: 4_000, Seed: 1, IQSizes: []int{64}}
	tab, err := FigureFairness(2, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Cols) != 1 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	if tab.Values[0][0] != 1.0 {
		t.Errorf("baseline fairness ratio = %v", tab.Values[0][0])
	}
}

func TestAloneIPCsCoverMixBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	o := Options{Budget: 3_000, Seed: 1, IQSizes: []int{64}}
	alone, err := AloneIPCs(2, o)
	if err != nil {
		t.Fatal(err)
	}
	lists, _, _ := smtsim.Mixes(2)
	for _, l := range lists {
		for _, b := range l {
			if alone[b][64] <= 0 {
				t.Errorf("missing alone IPC for %s", b)
			}
		}
	}
}

func TestStallStatsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep harness test")
	}
	tab, err := StallStats(64, Options{Budget: 3_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Cols) != 4 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	for _, row := range tab.Values {
		for _, v := range row {
			if v < 0 || v > 100 {
				t.Errorf("stall percentage %v outside [0,100]", v)
			}
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Rows:   []string{"a", "b"},
		Cols:   []string{"x"},
		Values: [][]float64{{1.5}, {2.5}},
		Note:   "note",
	}
	s := tab.Render()
	for _, want := range []string{"demo", "a", "b", "x", "1.500", "2.500", "note"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestRunCellsPropagatesErrors(t *testing.T) {
	cells := []cell{{
		mix:   mixOf("bogus-benchmark"),
		sched: smtsim.Traditional,
		iq:    64,
	}}
	if _, err := runCells(cells, Options{Budget: 1000}); err == nil {
		t.Error("unknown benchmark did not fail the sweep")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.budget() != 200_000 {
		t.Errorf("default budget %d", o.budget())
	}
	if len(o.iqSizes()) != len(DefaultIQSizes) {
		t.Error("default IQ sizes not applied")
	}
	if o.workers() < 1 {
		t.Error("default workers < 1")
	}
}
