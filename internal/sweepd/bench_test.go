package sweepd

// Store hit-rate benchmarks: the cold path (every cell simulates and
// persists) against the warm path (every cell answered from the store).
// The gap between the two is the entire value proposition of
// sweep-as-a-service; bench.sh records both so it stays measured.

import (
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"smtsim/internal/cellstore"
)

// benchServer builds a server+listener pair. The caller owns teardown:
// a benchmark that leaks servers until the run ends would have every
// earlier iteration's polling workers perturbing later samples.
func benchServer(b *testing.B, store *cellstore.Store) (*Server, *httptest.Server, *Client) {
	b.Helper()
	srv, err := New(Config{
		Store:        store,
		Workers:      4,
		LeaseTTL:     time.Minute,
		PollInterval: time.Millisecond,
		Simulate:     fakeSimulate,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, ts, &Client{Base: ts.URL}
}

// BenchmarkSweepStoreCold measures a fully cold sweep: every cell is a
// store miss, gets queued, simulated (the deterministic test stand-in,
// so the number isolates service overhead), persisted, and streamed
// back. One op = one 24-cell sweep against a fresh store.
func BenchmarkSweepStoreCold(b *testing.B) {
	specs := testSpecs(24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		store, err := cellstore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		srv, ts, client := benchServer(b, store)
		b.StartTimer()
		if _, err := client.RunCells(specs); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		srv.Shutdown()
		ts.Close()
		// Discard the store and flush dirty pages in the untimed gap:
		// a thousand iterations of leftover shard files otherwise
		// trigger kernel writeback that bleeds into later samples.
		os.RemoveAll(dir)
		syscall.Sync()
		b.StartTimer()
	}
}

// BenchmarkSweepStoreWarm measures the same sweep against a store that
// already holds every cell: pure hit-rate traffic, zero simulations.
// Comparing ns/op here against Cold is the store's speedup.
func BenchmarkSweepStoreWarm(b *testing.B) {
	specs := testSpecs(24)
	store, err := cellstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	srv, ts, client := benchServer(b, store)
	defer ts.Close()
	defer srv.Shutdown()
	if _, err := client.RunCells(specs); err != nil { // populate
		b.Fatal(err)
	}
	before := srv.StatsSnapshot().Simulations
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.RunCells(specs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if after := srv.StatsSnapshot().Simulations; after != before {
		b.Fatalf("warm benchmark simulated %d cells", after-before)
	}
}
