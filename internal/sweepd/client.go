package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"smtsim"
	"smtsim/internal/cellstore"
)

// Client talks to a sweepd server. Its RunCells method satisfies
// sweep.CellRunner, which is all `smtsweep -server` and
// `smtreport -server` need: the figure code is unchanged, the cells
// just resolve remotely (and mostly from cache).
type Client struct {
	// Base is the server URL, e.g. "http://localhost:8344".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Progress, when non-nil, receives a line per landed cell.
	Progress func(string)
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// RunCells submits the cells as one sweep and streams outcomes until
// every cell has landed, returning results in spec order.
func (c *Client) RunCells(specs []cellstore.Spec) ([]smtsim.Result, error) {
	body, err := json.Marshal(submitRequest{Cells: specs})
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %w", err)
	}
	resp, err := c.client().Post(c.url("/v1/sweep"), "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %w", err)
	}
	var sub submitResponse
	if err := decodeJSON(resp, &sub); err != nil {
		return nil, err
	}

	stream, err := c.client().Get(c.url("/v1/sweeps/" + sub.ID + "/stream"))
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %w", err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sweepd client: stream: %s", stream.Status)
	}

	results := make([]smtsim.Result, len(specs))
	seen := make([]bool, len(specs))
	landed := 0
	done := false
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			cellLine
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("sweepd client: bad stream line %q: %w", sc.Text(), err)
		}
		if line.Done {
			done = true
			break
		}
		if line.Index < 0 || line.Index >= len(specs) {
			return nil, fmt.Errorf("sweepd client: stream index %d out of range", line.Index)
		}
		if line.Error != "" {
			return nil, fmt.Errorf("sweepd client: cell %d: %s", line.Index, line.Error)
		}
		if line.Result == nil {
			return nil, fmt.Errorf("sweepd client: cell %d landed without a result", line.Index)
		}
		if !seen[line.Index] {
			seen[line.Index] = true
			landed++
			results[line.Index] = *line.Result
			if c.Progress != nil {
				c.Progress(fmt.Sprintf("cell %d/%d (%.8s): IPC=%.3f", landed, len(specs), line.Hash, line.Result.IPC))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweepd client: reading stream: %w", err)
	}
	if !done || landed != len(specs) {
		return nil, fmt.Errorf("sweepd client: stream ended with %d/%d cells (done=%v)", landed, len(specs), done)
	}
	return results, nil
}

// Stats fetches the server's counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.client().Get(c.url("/v1/stats"))
	if err != nil {
		return Stats{}, fmt.Errorf("sweepd client: %w", err)
	}
	var st Stats
	if err := decodeJSON(resp, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// decodeJSON consumes a response, surfacing the server's error payload
// on non-2xx statuses.
func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error != "" {
			return fmt.Errorf("sweepd client: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("sweepd client: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("sweepd client: decoding response: %w", err)
	}
	return nil
}
