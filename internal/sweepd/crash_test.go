package sweepd

// Crash and resume tests: the failure modes the lease/shard protocol
// exists for. A worker process dying mid-cell must cost at most one
// re-simulation, never a wrong or missing result, and the recovered
// sweep must be byte-identical to an uninterrupted one.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"smtsim"
	"smtsim/internal/cellstore"
)

// aggregateJSON renders a result slice the way report code consumes it
// — marshaled JSON — so "byte-identical" below means what it says.
func aggregateJSON(t *testing.T, res []smtsim.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestOrphanedLeaseStolen simulates a worker that died holding a
// lease: the lease file is on disk, its owner will never release it.
// A server sharing the store must wait out the TTL, steal the cell,
// and produce the same aggregate an uninterrupted run would have.
func TestOrphanedLeaseStolen(t *testing.T) {
	specs := testSpecs(4)
	victim := specs[2]

	// The uninterrupted run, for the byte-identity check.
	var want []smtsim.Result
	for _, s := range specs {
		r, err := fakeSimulate(s)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}

	dir := t.TempDir()
	dead, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := dead.TryLease(victim.Key(), "dead-worker", 60*time.Millisecond)
	if err != nil || !ok {
		t.Fatalf("pre-leasing as dead worker: ok=%v err=%v", ok, err)
	}

	store, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:        store,
		Workers:      2,
		LeaseTTL:     time.Minute,
		PollInterval: 5 * time.Millisecond,
		Simulate:     fakeSimulate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	client := newClientFor(t, srv)

	got, err := client.RunCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := aggregateJSON(t, got), aggregateJSON(t, want); g != w {
		t.Errorf("recovered aggregate differs from uninterrupted run:\n got %s\nwant %s", g, w)
	}
	if st := store.StatsSnapshot(); st.LeasesStolen < 1 {
		t.Errorf("LeasesStolen = %d, want >= 1", st.LeasesStolen)
	}
	if owner, _, held := store.LeaseHolder(victim.Key()); held {
		t.Errorf("victim cell still leased by %s after completion", owner)
	}
}

// TestSIGKILLedWorkerRecovered re-executes the test binary as a helper
// process that opens the store, leases a cell, and then hangs — and
// kills it with SIGKILL, the signal that allows no cleanup. The lease
// file it leaves behind is indistinguishable from any crashed worker's;
// the server must steal it after expiry and finish the sweep.
func TestSIGKILLedWorkerRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	specs := testSpecs(3)
	victim := specs[1]
	dir := t.TempDir()

	// The helper must create the store layout before the parent opens
	// it, so run it from a fresh dir and wait for its LEASED marker.
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperLeaseAndHang")
	cmd.Env = append(os.Environ(),
		"SWEEPD_LEASE_HELPER=1",
		"SWEEPD_HELPER_STORE="+dir,
		"SWEEPD_HELPER_HASH="+victim.Key(),
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the helper to report its lease, then SIGKILL it.
	marker := make([]byte, 7)
	deadline := time.Now().Add(10 * time.Second)
	read := 0
	for read < len(marker) {
		if time.Now().After(deadline) {
			t.Fatal("helper never reported LEASED")
		}
		n, err := out.Read(marker[read:])
		read += n
		if err != nil {
			break
		}
	}
	if string(marker) != "LEASED\n" {
		t.Fatalf("helper said %q, want LEASED", marker)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no deferred cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	// The orphan lease is on disk. A server over the same store must
	// wait out the short TTL the helper used, steal, and complete.
	store, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if owner, _, held := store.LeaseHolder(victim.Key()); !held || owner != "doomed-helper" {
		t.Fatalf("expected doomed-helper's orphan lease, got owner=%q held=%v", owner, held)
	}
	srv, err := New(Config{
		Store:        store,
		Workers:      2,
		LeaseTTL:     time.Minute,
		PollInterval: 5 * time.Millisecond,
		Simulate:     fakeSimulate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	client := newClientFor(t, srv)

	got, err := client.RunCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	var want []smtsim.Result
	for _, s := range specs {
		r, _ := fakeSimulate(s)
		want = append(want, r)
	}
	if g, w := aggregateJSON(t, got), aggregateJSON(t, want); g != w {
		t.Errorf("post-SIGKILL aggregate differs:\n got %s\nwant %s", g, w)
	}
	if st := store.StatsSnapshot(); st.LeasesStolen < 1 {
		t.Errorf("LeasesStolen = %d, want >= 1", st.LeasesStolen)
	}
}

// TestHelperLeaseAndHang is not a test: it is the body of the victim
// process for TestSIGKILLedWorkerRecovered, gated on an env var so a
// normal `go test` run skips it.
func TestHelperLeaseAndHang(t *testing.T) {
	if os.Getenv("SWEEPD_LEASE_HELPER") == "" {
		t.Skip("helper body; only meaningful re-executed by TestSIGKILLedWorkerRecovered")
	}
	store, err := cellstore.Open(os.Getenv("SWEEPD_HELPER_STORE"))
	if err != nil {
		fmt.Println("OPEN-FAILED:", err)
		os.Exit(1)
	}
	// A short TTL keeps the parent's steal wait fast; the lease is
	// "orphaned" the instant the parent kills us.
	ok, err := store.TryLease(os.Getenv("SWEEPD_HELPER_HASH"), "doomed-helper", 50*time.Millisecond)
	if err != nil || !ok {
		fmt.Println("LEASE-FAILED:", ok, err)
		os.Exit(1)
	}
	fmt.Println("LEASED")
	time.Sleep(time.Minute) // SIGKILL arrives long before this returns
}

// TestTornShardResimulated crashes a writer mid-append (simulated by
// truncating a shard record and appending garbage), reopens the store,
// and asserts the damaged cell re-simulates while intact cells still
// hit cache.
func TestTornShardResimulated(t *testing.T) {
	specs := testSpecs(4)
	dir := t.TempDir()

	// Populate the store through a first server run.
	store1, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := New(Config{Store: store1, Workers: 2, PollInterval: 5 * time.Millisecond, Simulate: fakeSimulate})
	if err != nil {
		t.Fatal(err)
	}
	client1 := newClientFor(t, srv1)
	want, err := client1.RunCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail of the victim cell's shard: keep the valid prefix,
	// then half a record — what a SIGKILL mid-write leaves behind.
	victim := specs[len(specs)-1]
	shard := filepath.Join(dir, "shards", victim.Key()[:2]+".jsonl")
	b, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shard, append(b, []byte(`{"hash":"`+victim.Key()+`","spec":{"benchm`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	// Also tear the victim's own record off if it shares the shard with
	// nothing else; either way record how many cells survive on disk.
	store2, err := cellstore.Open(dir)
	if err != nil {
		t.Fatalf("reopening store with torn shard must not fail: %v", err)
	}
	if st := store2.StatsSnapshot(); st.TornTails != 1 {
		t.Errorf("TornTails = %d, want 1", st.TornTails)
	}
	missing := len(specs) - store2.Len()

	var sims atomic.Int64
	srv2, err := New(Config{Store: store2, Workers: 2, PollInterval: 5 * time.Millisecond,
		Simulate: func(s cellstore.Spec) (smtsim.Result, error) {
			sims.Add(1)
			return fakeSimulate(s)
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown()
	client2 := newClientFor(t, srv2)
	got, err := client2.RunCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := aggregateJSON(t, got), aggregateJSON(t, want); g != w {
		t.Errorf("post-recovery aggregate differs:\n got %s\nwant %s", g, w)
	}
	if int(sims.Load()) != missing {
		t.Errorf("re-simulated %d cells, want exactly the %d lost to the torn tail", sims.Load(), missing)
	}
	if store2.Len() != len(specs) {
		t.Errorf("store holds %d cells after recovery, want %d", store2.Len(), len(specs))
	}
}
