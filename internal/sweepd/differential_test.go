package sweepd

// Differential tests: a figure produced through `smtsweep -server`
// (spec marshaling, HTTP, the store's JSON round-trip) must be
// byte-identical to the same figure produced in-process. This holds by
// construction — both paths execute sweep.SimulateSpec on canonicalized
// specs, and Go's float64 JSON round-trip is exact — and these tests
// keep it true as the wire format evolves. They extend the repo's
// differential discipline (differential_test.go's event-vs-polling
// cross-check) up one layer, to the distribution machinery.

import (
	"testing"
	"time"

	"smtsim/internal/cellstore"
	"smtsim/internal/sweep"
)

// newRealServer is newTestServer with the actual simulator behind it.
func newRealServer(t *testing.T) (*Server, *Client, *cellstore.Store) {
	t.Helper()
	return newTestServer(t, func(c *Config) {
		c.Simulate = nil // New substitutes sweep.SimulateSpec
		c.LeaseTTL = time.Minute
	})
}

// diffOptions keeps the differential sweeps fast: a reduced IQ set and
// small budgets still cover every scheduler and mix.
func diffOptions(seed uint64) sweep.Options {
	return sweep.Options{Budget: 2000, Warmup: 500, Seed: seed, IQSizes: []int{16, 32}}
}

func TestFigureSpeedupServerDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential cross-check is not short")
	}
	o := diffOptions(5)
	local, err := sweep.FigureSpeedup(2, o)
	if err != nil {
		t.Fatal(err)
	}

	srv, client, _ := newRealServer(t)
	o.Runner = client.RunCells
	remote, err := sweep.FigureSpeedup(2, o)
	if err != nil {
		t.Fatal(err)
	}
	if lr, rr := local.Render(), remote.Render(); lr != rr {
		t.Errorf("server-backed figure differs from in-process:\n--- local ---\n%s\n--- remote ---\n%s", lr, rr)
	}
	if st := srv.StatsSnapshot(); st.Simulations == 0 {
		t.Error("remote run did not reach the server (0 simulations)")
	}
}

func TestFigureFairnessServerDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential cross-check is not short")
	}
	// A seed no other test uses: the alone-IPC memo is process-global
	// and keyed by seed, so this keeps the local run genuinely local.
	o := diffOptions(17)
	local, err := sweep.FigureFairness(2, o)
	if err != nil {
		t.Fatal(err)
	}

	_, client, _ := newRealServer(t)
	o.Runner = client.RunCells
	remote, err := sweep.FigureFairness(2, o)
	if err != nil {
		t.Fatal(err)
	}
	if lr, rr := local.Render(), remote.Render(); lr != rr {
		t.Errorf("server-backed fairness figure differs from in-process:\n--- local ---\n%s\n--- remote ---\n%s", lr, rr)
	}
}

// TestTable1WarmRerunIsFree is the tentpole's acceptance proof, scaled
// to test budgets: run the paper's full Table-1 cell grid against a
// sweepd server twice, with the real simulator. The second run must
// perform ZERO simulations — every cell a cache hit — and return
// byte-identical results.
func TestTable1WarmRerunIsFree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real simulator over the Table-1 grid")
	}
	specs, err := sweep.Table1Specs(sweep.Options{Budget: 1500, Warmup: 500, Seed: 3, IQSizes: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	srv, client, _ := newRealServer(t)

	cold, err := client.RunCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	afterCold := srv.StatsSnapshot()
	if afterCold.Simulations != int64(len(specs)) {
		t.Fatalf("cold run simulated %d of %d cells", afterCold.Simulations, len(specs))
	}

	warm, err := client.RunCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	afterWarm, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if afterWarm.Simulations != afterCold.Simulations {
		t.Errorf("warm rerun simulated %d cells, want 0", afterWarm.Simulations-afterCold.Simulations)
	}
	if hits := afterWarm.CacheHits - afterCold.CacheHits; hits != int64(len(specs)) {
		t.Errorf("warm rerun: %d/%d cells served from cache", hits, len(specs))
	}
	if c, w := aggregateJSON(t, cold), aggregateJSON(t, warm); c != w {
		t.Error("warm rerun results are not byte-identical to the cold run")
	}
}
