package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smtsim"
	"smtsim/internal/cellstore"
)

// TestStatusDuringSubmitNoRace targets the sweep-publication hazard
// the guardedby annotation pass surfaced: handleSubmit used to
// register the run in Server.sweeps and only then fill run.hashes, so
// status and stream handlers on other goroutines read a slice the
// submitter was still writing. No lock ordered those writes with the
// readers — the old code was safe only through the incidental
// happens-before chain of each cell's own enqueue, an invariant one
// refactor away from a real race. handleSubmit now hashes every cell
// before the run is published and never writes it after; this test
// hammers GET /v1/sweeps/{id} for the id the POST is about to create
// for the whole duration of the submit, so any future post-publication
// write shows up under -race.
func TestStatusDuringSubmitNoRace(t *testing.T) {
	_, client, _ := newTestServer(t, func(cfg *Config) {
		cfg.Workers = 2
	})

	specs := testSpecs(64)
	body, err := json.Marshal(submitRequest{Cells: specs})
	if err != nil {
		t.Fatal(err)
	}

	var submitted atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(client.url("/v1/sweep"), "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		submitted.Store(true)
	}()

	// The first sweep this server sees is deterministically "s1". Poll
	// its status (404 until the run is published, then partial states)
	// for as long as the submit is in flight.
	for !submitted.Load() {
		resp, err := http.Get(client.url("/v1/sweeps/s1"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var st sweepStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			if st.Total != len(specs) {
				t.Fatalf("status total = %d, want %d", st.Total, len(specs))
			}
		}
		resp.Body.Close()
	}
	wg.Wait()

	// Drain the sweep so shutdown is clean and the stream path (which
	// reads hashes too) runs at least once end to end.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(client.url("/v1/sweeps/s1"))
		if err != nil {
			t.Fatal(err)
		}
		var st sweepStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Complete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep not complete: %d/%d", st.Done, st.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDuplicateSubmitChurnNoRace drives the flight state machine hard
// under -race: duplicate sweeps attach waiters to in-flight cells
// while a transiently failing simulator forces finish to delete and
// resubmission to recreate flights — the done/waiters/out handoffs the
// //smt:guarded-by(Server.mu) annotations now police. The worker's
// process() used to read flight state outside the lock (guardedby
// flags exactly that line if the fix regresses); this churn keeps the
// runtime detector pointed at the same handoffs.
func TestDuplicateSubmitChurnNoRace(t *testing.T) {
	var calls atomic.Int64
	_, client, _ := newTestServer(t, func(cfg *Config) {
		cfg.Workers = 4
		cfg.PollInterval = time.Millisecond
		sim := cfg.Simulate
		cfg.Simulate = func(s cellstore.Spec) (smtsim.Result, error) {
			// Every third simulation fails, so flights churn through the
			// delete-and-retry path while duplicates are attaching.
			if calls.Add(1)%3 == 0 {
				return smtsim.Result{}, fmt.Errorf("transient")
			}
			return sim(s)
		}
	})

	specs := testSpecs(8)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Retry until every cell lands: transient failures surface as
			// RunCells errors and the next submission re-enqueues.
			for attempt := 0; attempt < 50; attempt++ {
				if _, err := client.RunCells(specs); err == nil {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			t.Error("cells never all landed despite retries")
		}()
	}
	wg.Wait()
}
