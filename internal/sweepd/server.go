// Package sweepd is the sweep service: an HTTP front end over the
// content-addressed cell store (internal/cellstore) with a work queue
// of simulator workers behind it. Repeated figure and report requests
// are cache hits; only novel cells simulate, exactly once each, no
// matter how many clients ask for them concurrently (singleflight) or
// how many worker processes share the store (leases with expiry, so a
// killed worker's cells are re-claimed).
//
// API:
//
//	POST /v1/sweep              submit a cell set, returns a sweep id
//	GET  /v1/sweeps/{id}        sweep status + results so far
//	GET  /v1/sweeps/{id}/stream NDJSON: one line per cell as it lands
//	GET  /v1/cells/{hash}       one cell's cached result
//	GET  /v1/stats              hit/miss/inflight/simulation counters
package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"smtsim"
	"smtsim/internal/cellstore"
	"smtsim/internal/sweep"
)

// Config configures a Server.
type Config struct {
	// Store is the shared cell store (required).
	Store *cellstore.Store
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// LeaseTTL is how long a worker's claim on a cell lasts before
	// other workers may steal it. It must comfortably exceed one cell's
	// simulation time; a stolen-but-alive cell is only wasted work, not
	// wrong results (puts are idempotent). 0 = 1 minute.
	LeaseTTL time.Duration
	// Owner identifies this process in lease files. "" derives one from
	// the pid.
	Owner string
	// PollInterval is the wait between checks while another process
	// holds a cell's lease. 0 = 50ms.
	PollInterval time.Duration
	// Simulate runs one cell. nil = sweep.SimulateSpec (the in-process
	// simulator). Tests inject counting or blocking hooks here.
	Simulate func(cellstore.Spec) (smtsim.Result, error)
	// Logf, when non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return time.Minute
}

func (c Config) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 50 * time.Millisecond
}

// outcome is one finished cell: a result or an error string.
type outcome struct {
	Result smtsim.Result
	Err    string
}

// flight is the singleflight entry for one cell hash that is queued or
// simulating. All sweeps that want the cell attach waiters; the first
// submission enqueues it. Flights live in Server.flights and share the
// Server's lock; spec is immutable after the constructing enqueue.
type flight struct {
	spec cellstore.Spec
	//smt:guarded-by(Server.mu)
	waiters []waiter
	//smt:guarded-by(Server.mu)
	done bool
	//smt:guarded-by(Server.mu)
	out outcome
}

type waiter struct {
	run *sweepRun
	idx int
}

// sweepRun tracks one submitted cell set. id, hashes and specs are
// immutable once the run is published in Server.sweeps; the mutable
// completion state below mu is its own lock domain (workers complete
// cells while handlers snapshot progress, without touching Server.mu).
type sweepRun struct {
	id     string
	hashes []string
	specs  []cellstore.Spec

	mu sync.Mutex
	// outcomes is index-aligned with hashes, nil until the cell lands.
	//smt:guarded-by(mu)
	outcomes []*outcome
	// landed holds indices in completion order (the stream order).
	//smt:guarded-by(mu)
	landed []int
	//smt:guarded-by(mu)
	remaining int
}

// complete records one cell's outcome; idx may land only once.
func (r *sweepRun) complete(idx int, out outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.outcomes[idx] != nil {
		return
	}
	o := out
	r.outcomes[idx] = &o
	r.landed = append(r.landed, idx)
	r.remaining--
}

// Stats is the /v1/stats payload.
type Stats struct {
	// CacheHits counts submitted cells answered straight from the
	// store; Misses counts cells that had to be queued.
	CacheHits int64 `json:"cache_hits"`
	Misses    int64 `json:"misses"`
	// Simulations counts cells this process actually simulated — the
	// end-to-end proof that a warm rerun is free is this staying flat.
	Simulations int64 `json:"simulations"`
	// Dedupped counts submitted cells that attached to an already
	// queued or in-flight identical cell (singleflight).
	Dedupped int64 `json:"dedupped"`
	// Inflight is the number of cells simulating right now; QueueDepth
	// is the number waiting for a worker.
	Inflight   int64 `json:"inflight"`
	QueueDepth int64 `json:"queue_depth"`
	// Sweeps counts POST /v1/sweep submissions.
	Sweeps int64 `json:"sweeps"`
	// Store mirrors the cell store's own counters (torn tails recovered,
	// leases stolen from dead workers, raw get/put traffic).
	Store cellstore.Stats `json:"store"`
}

// Server is the sweep service. Create with New, serve via Handler,
// stop with Shutdown (which checkpoints the queue so a restart resumes
// where it left off).
type Server struct {
	cfg   Config
	store *cellstore.Store
	mux   *http.ServeMux

	mu sync.Mutex
	// queue is the FIFO of cell hashes awaiting a worker.
	//smt:guarded-by(mu)
	queue []string
	//smt:guarded-by(mu)
	flights map[string]*flight
	//smt:guarded-by(mu)
	sweeps map[string]*sweepRun
	//smt:guarded-by(mu)
	nextSweep int
	//smt:guarded-by(mu)
	stats Stats

	wake chan struct{}
	//smt:close-owner(Server.Shutdown)
	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds a Server, restores any queue checkpoint a previous
// process left in the store directory, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("sweepd: Config.Store is required")
	}
	if cfg.Owner == "" {
		cfg.Owner = fmt.Sprintf("sweepd-%d", os.Getpid())
	}
	if cfg.Simulate == nil {
		cfg.Simulate = sweep.SimulateSpec
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:     cfg,
		store:   cfg.Store,
		mux:     http.NewServeMux(),
		flights: make(map[string]*flight),
		sweeps:  make(map[string]*sweepRun),
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/sweep", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/cells/{hash}", s.handleCell)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	if err := s.restoreCheckpoint(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops the worker pool at the next cell boundary and
// checkpoints still-pending cells to the store directory, so the next
// New over the same store re-enqueues them. The HTTP handler keeps
// answering reads; pending sweeps simply stop progressing.
func (s *Server) Shutdown() error {
	close(s.quit)
	s.wg.Wait()
	return s.checkpoint()
}

func (s *Server) checkpointPath() string {
	return filepath.Join(s.store.Dir(), "queue.json")
}

// checkpoint persists every queued-or-unfinished cell spec.
func (s *Server) checkpoint() error {
	s.mu.Lock()
	var pending []cellstore.Spec
	for _, f := range s.flights {
		if !f.done {
			pending = append(pending, f.spec)
		}
	}
	s.mu.Unlock()
	if len(pending) == 0 {
		err := os.Remove(s.checkpointPath())
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("sweepd: %w", err)
		}
		return nil
	}
	b, err := json.Marshal(struct {
		Pending []cellstore.Spec `json:"pending"`
	}{pending})
	if err != nil {
		return fmt.Errorf("sweepd: %w", err)
	}
	if err := cellstore.AtomicWrite(s.checkpointPath(), append(b, '\n')); err != nil {
		return fmt.Errorf("sweepd: %w", err)
	}
	s.cfg.Logf("sweepd: checkpointed %d pending cells", len(pending))
	return nil
}

// restoreCheckpoint re-enqueues cells a previous process shut down
// with. Cells that landed in the store since (another worker finished
// them) resolve instantly through the normal worker path.
func (s *Server) restoreCheckpoint() error {
	b, err := os.ReadFile(s.checkpointPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sweepd: %w", err)
	}
	var doc struct {
		Pending []cellstore.Spec `json:"pending"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("sweepd: corrupt queue checkpoint %s: %w", s.checkpointPath(), err)
	}
	for _, spec := range doc.Pending {
		if spec.Validate() != nil {
			continue
		}
		s.enqueue(spec, nil)
	}
	if err := os.Remove(s.checkpointPath()); err != nil {
		return fmt.Errorf("sweepd: %w", err)
	}
	s.cfg.Logf("sweepd: restored %d checkpointed cells", len(doc.Pending))
	return nil
}

// enqueue registers a cell for simulation, deduplicating against
// queued and in-flight identical cells, and attaches w (if non-nil) to
// its completion. Returns the cell's hash.
func (s *Server) enqueue(spec cellstore.Spec, w *waiter) string {
	hash := spec.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.flights[hash]
	if !ok {
		f = &flight{spec: spec}
		s.flights[hash] = f
		s.queue = append(s.queue, hash)
		s.stats.QueueDepth++
	} else if !f.done {
		s.stats.Dedupped++
	}
	if w != nil {
		if f.done {
			w.run.complete(w.idx, f.out)
		} else {
			f.waiters = append(f.waiters, *w)
		}
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return hash
}

// finish marks a flight done and fans its outcome out to every waiter.
// A successful flight entry stays (done) so late duplicate submissions
// resolve without touching the store; memory is bounded by unique
// cells. A failed flight is deleted so a future submission retries
// instead of replaying a possibly transient error forever.
func (s *Server) finish(hash string, out outcome) {
	s.mu.Lock()
	f := s.flights[hash]
	if f == nil || f.done {
		s.mu.Unlock()
		return
	}
	f.done = true
	f.out = out
	waiters := f.waiters
	f.waiters = nil
	if out.Err != "" {
		delete(s.flights, hash)
	}
	s.mu.Unlock()
	for _, w := range waiters {
		w.run.complete(w.idx, out)
	}
}

// --- HTTP handlers ----------------------------------------------------

type submitRequest struct {
	Cells []cellstore.Spec `json:"cells"`
}

type submitResponse struct {
	ID     string   `json:"id"`
	Total  int      `json:"total"`
	Cached int      `json:"cached"`
	Hashes []string `json:"hashes"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req submitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Cells) == 0 {
		httpError(w, http.StatusBadRequest, "empty cell set")
		return
	}
	for i := range req.Cells {
		req.Cells[i] = req.Cells[i].Canonical()
		if err := req.Cells[i].Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "cell %d: %v", i, err)
			return
		}
	}

	// Hash every cell before the run is published: once it is in
	// s.sweeps, handlers on other goroutines read run.hashes, so the
	// slice must be immutable by then.
	hashes := make([]string, len(req.Cells))
	for i, spec := range req.Cells {
		hashes[i] = spec.Key()
	}
	run := &sweepRun{
		specs:     req.Cells,
		hashes:    hashes,
		outcomes:  make([]*outcome, len(req.Cells)),
		remaining: len(req.Cells),
	}

	s.mu.Lock()
	s.nextSweep++
	run.id = fmt.Sprintf("s%d", s.nextSweep)
	s.sweeps[run.id] = run
	s.stats.Sweeps++
	s.mu.Unlock()

	cached := 0
	for i, spec := range req.Cells {
		hash := hashes[i]
		if res, ok, err := s.store.Get(hash); err == nil && ok {
			run.complete(i, outcome{Result: res})
			cached++
			s.mu.Lock()
			s.stats.CacheHits++
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		s.enqueue(spec, &waiter{run: run, idx: i})
	}
	s.cfg.Logf("sweepd: sweep %s: %d cells, %d cached", run.id, len(req.Cells), cached)
	writeJSON(w, http.StatusOK, submitResponse{
		ID: run.id, Total: len(req.Cells), Cached: cached, Hashes: run.hashes,
	})
}

// cellLine is one streamed or collected cell outcome.
type cellLine struct {
	Index  int            `json:"index"`
	Hash   string         `json:"hash"`
	Result *smtsim.Result `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

func lineFor(idx int, hash string, o *outcome) cellLine {
	l := cellLine{Index: idx, Hash: hash}
	if o.Err != "" {
		l.Error = o.Err
	} else {
		res := o.Result
		l.Result = &res
	}
	return l
}

type sweepStatus struct {
	ID       string     `json:"id"`
	Total    int        `json:"total"`
	Done     int        `json:"done"`
	Complete bool       `json:"complete"`
	Cells    []cellLine `json:"cells"`
}

func (s *Server) lookupSweep(id string) *sweepRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	run := s.lookupSweep(r.PathValue("id"))
	if run == nil {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	run.mu.Lock()
	st := sweepStatus{
		ID:       run.id,
		Total:    len(run.hashes),
		Done:     len(run.landed),
		Complete: run.remaining == 0,
	}
	for i, o := range run.outcomes {
		if o != nil {
			st.Cells = append(st.Cells, lineFor(i, run.hashes[i], o))
		}
	}
	run.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleStream writes NDJSON: one line per cell in completion order as
// cells land, then a terminal {"done":true} line. Partial aggregation
// is the point — a figure renderer can draw cells as they arrive.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	run := s.lookupSweep(r.PathValue("id"))
	if run == nil {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		run.mu.Lock()
		newly := run.landed[sent:]
		lines := make([]cellLine, len(newly))
		for i, idx := range newly {
			lines[i] = lineFor(idx, run.hashes[idx], run.outcomes[idx])
		}
		complete := run.remaining == 0
		run.mu.Unlock()
		sent += len(lines)
		for _, l := range lines {
			if err := enc.Encode(l); err != nil {
				return
			}
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if complete && sent == len(run.hashes) {
			enc.Encode(struct {
				Done  bool `json:"done"`
				Total int  `json:"total"`
			}{true, len(run.hashes)})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	res, ok, err := s.store.Get(hash)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if ok {
		writeJSON(w, http.StatusOK, cellLine{Hash: hash, Result: &res})
		return
	}
	s.mu.Lock()
	f, inflight := s.flights[hash]
	pending := inflight && !f.done
	s.mu.Unlock()
	if pending {
		writeJSON(w, http.StatusAccepted, map[string]string{"hash": hash, "status": "inflight"})
		return
	}
	httpError(w, http.StatusNotFound, "unknown cell %s", hash)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// StatsSnapshot returns the live counters (also the /v1/stats payload).
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.Store = s.store.StatsSnapshot()
	return st
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
