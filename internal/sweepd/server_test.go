package sweepd

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"smtsim"
	"smtsim/internal/cellstore"
)

// fakeSimulate is a deterministic stand-in simulator: the result is a
// pure function of the spec (derived from its content hash), so any
// two executions of one cell agree — exactly the property the real
// simulator has, at none of the cost.
func fakeSimulate(s cellstore.Spec) (smtsim.Result, error) {
	raw, _ := hex.DecodeString(s.Key()[:16])
	v := binary.BigEndian.Uint64(raw)
	return smtsim.Result{
		Cycles:    int64(v % 1_000_000),
		Committed: s.Budget,
		IPC:       1 + float64(v%1000)/1000,
		Threads: []smtsim.ThreadResult{
			{Benchmark: s.Benchmarks[0], Committed: s.Budget, IPC: 1},
		},
	}, nil
}

func testSpecs(n int) []cellstore.Spec {
	names := []string{"equake", "twolf", "gcc", "gzip", "mcf", "vpr"}
	specs := make([]cellstore.Spec, n)
	for i := range specs {
		specs[i] = cellstore.Spec{
			Benchmarks: []string{names[i%len(names)], names[(i+1)%len(names)]},
			Scheduler:  smtsim.TwoOpOOOD.String(),
			IQSize:     32 + 16*(i/len(names)),
			Budget:     2000,
			Warmup:     1000,
			Seed:       2,
		}.Canonical()
	}
	return specs
}

// newTestServer spins up a server over a fresh store and an httptest
// front end. mutate tweaks the config before start.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *Client, *cellstore.Store) {
	t.Helper()
	store, err := cellstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Store:        store,
		Workers:      4,
		LeaseTTL:     time.Minute,
		PollInterval: 5 * time.Millisecond,
		Simulate:     fakeSimulate,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Shutdown() })
	return srv, &Client{Base: ts.URL}, store
}

// newClientFor fronts an existing server with an httptest listener.
func newClientFor(t *testing.T, srv *Server) *Client {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL}
}

func TestSweepEndToEnd(t *testing.T) {
	_, client, _ := newTestServer(t, nil)
	specs := testSpecs(10)
	got, err := client.RunCells(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("%d results for %d specs", len(got), len(specs))
	}
	for i, s := range specs {
		want, _ := fakeSimulate(s)
		if got[i].Cycles != want.Cycles || got[i].IPC != want.IPC {
			t.Errorf("cell %d: got %+v want %+v", i, got[i], want)
		}
	}

	// A direct cell fetch serves from the store.
	resp, err := http.Get(client.url("/v1/cells/" + specs[0].Key()))
	if err != nil {
		t.Fatal(err)
	}
	var line cellLine
	if err := decodeJSON(resp, &line); err != nil {
		t.Fatal(err)
	}
	if line.Result == nil || line.Result.Cycles != got[0].Cycles {
		t.Errorf("GET /v1/cells: %+v", line)
	}

	// An unknown cell is a 404.
	resp, err = http.Get(client.url("/v1/cells/" + "0000000000000000000000000000000000000000000000000000000000000000"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown cell status = %v", resp.Status)
	}
}

// TestStreamMatchesFinal asserts the streaming NDJSON aggregation and
// the final sweep GET describe exactly the same outcomes — partial
// rendering can never drift from the completed figure.
func TestStreamMatchesFinal(t *testing.T) {
	_, client, _ := newTestServer(t, func(c *Config) {
		c.Simulate = func(s cellstore.Spec) (smtsim.Result, error) {
			time.Sleep(time.Duration(1+s.Budget%3) * time.Millisecond)
			return fakeSimulate(s)
		}
	})
	specs := testSpecs(12)
	body, _ := json.Marshal(submitRequest{Cells: specs})
	resp, err := http.Post(client.url("/v1/sweep"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := decodeJSON(resp, &sub); err != nil {
		t.Fatal(err)
	}

	// Stream until done, collecting per-index lines.
	streamed := make(map[int]cellLine)
	stream, err := http.Get(client.url("/v1/sweeps/" + sub.ID + "/stream"))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var line struct {
			cellLine
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if line.Done {
			break
		}
		if _, dup := streamed[line.Index]; dup {
			t.Errorf("index %d streamed twice", line.Index)
		}
		streamed[line.Index] = line.cellLine
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Final status must agree cell by cell.
	resp, err = http.Get(client.url("/v1/sweeps/" + sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	var st sweepStatus
	if err := decodeJSON(resp, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Complete || st.Done != len(specs) || len(st.Cells) != len(specs) {
		t.Fatalf("final status: %+v", st)
	}
	if len(streamed) != len(specs) {
		t.Fatalf("streamed %d cells, want %d", len(streamed), len(specs))
	}
	for _, c := range st.Cells {
		sLine, ok := streamed[c.Index]
		if !ok {
			t.Errorf("cell %d missing from stream", c.Index)
			continue
		}
		sj, _ := json.Marshal(sLine)
		fj, _ := json.Marshal(c)
		if string(sj) != string(fj) {
			t.Errorf("cell %d: stream %s != final %s", c.Index, sj, fj)
		}
	}
}

// TestSingleflight floods the server with overlapping sweeps from
// parallel clients and asserts every unique cell simulated exactly
// once. Run under -race, this is also the concurrency soundness check
// for the queue/flight/store plumbing.
func TestSingleflight(t *testing.T) {
	var mu sync.Mutex
	simCount := make(map[string]int)
	_, client, _ := newTestServer(t, func(c *Config) {
		inner := c.Simulate
		c.Simulate = func(s cellstore.Spec) (smtsim.Result, error) {
			mu.Lock()
			simCount[s.Key()]++
			mu.Unlock()
			time.Sleep(2 * time.Millisecond) // widen the race window
			return inner(s)
		}
	})

	specs := testSpecs(12)
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	outs := make([][]smtsim.Result, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each client submits the same cells in its own order.
			rng := rand.New(rand.NewSource(int64(g)))
			shuffled := append([]cellstore.Spec(nil), specs...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			outs[g], errs[g] = client.RunCells(shuffled)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", g, err)
		}
		if len(outs[g]) != len(specs) {
			t.Fatalf("client %d: %d results", g, len(outs[g]))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(simCount) != len(specs) {
		t.Errorf("%d unique cells simulated, want %d", len(simCount), len(specs))
	}
	for h, n := range simCount {
		if n != 1 {
			t.Errorf("cell %.8s simulated %d times", h, n)
		}
	}
}

// TestCheckpointRestore shuts a server down with cells still queued
// and asserts a fresh server over the same store picks them up.
func TestCheckpointRestore(t *testing.T) {
	store, err := cellstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	srv, err := New(Config{
		Store:        store,
		Workers:      1,
		PollInterval: 5 * time.Millisecond,
		Simulate: func(s cellstore.Spec) (smtsim.Result, error) {
			<-release
			return fakeSimulate(s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &Client{Base: ts.URL}

	specs := testSpecs(3)
	body, _ := json.Marshal(submitRequest{Cells: specs})
	resp, err := http.Post(client.url("/v1/sweep"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := decodeJSON(resp, &sub); err != nil {
		t.Fatal(err)
	}

	// Wait for the lone worker to enter cell 1, then shut down while
	// unblocking it: the worker finishes its cell (the boundary) and
	// cells 2-3 are checkpointed.
	waitFor(t, time.Second, func() bool { return srv.StatsSnapshot().Inflight == 1 })
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown() }()
	<-srv.quit // quit is closed before the release, so the worker must stop
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("%d cells in store after shutdown, want 1", store.Len())
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), "queue.json")); err != nil {
		t.Fatalf("no queue checkpoint: %v", err)
	}

	// A fresh server restores the checkpoint and drains it unprompted.
	srv2, err := New(Config{Store: store, Workers: 2, PollInterval: 5 * time.Millisecond, Simulate: fakeSimulate})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown()
	waitFor(t, 5*time.Second, func() bool { return store.Len() == len(specs) })
	for i, s := range specs {
		got, ok, err := store.Get(s.Key())
		if err != nil || !ok {
			t.Fatalf("cell %d missing after restore: ok=%v err=%v", i, ok, err)
		}
		want, _ := fakeSimulate(s)
		if got.Cycles != want.Cycles {
			t.Errorf("cell %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), "queue.json")); !os.IsNotExist(err) {
		t.Errorf("queue checkpoint not consumed: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, client, _ := newTestServer(t, nil)
	for name, body := range map[string]string{
		"empty":         `{"cells":[]}`,
		"not-json":      `{`,
		"bad-scheduler": `{"cells":[{"benchmarks":["equake"],"scheduler":"quantum","iq_size":64,"budget":1000}]}`,
		"zero-budget":   `{"cells":[{"benchmarks":["equake"],"scheduler":"traditional","iq_size":64}]}`,
	} {
		resp, err := http.Post(client.url("/v1/sweep"), "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %v, want 400", name, resp.Status)
		}
	}
	if resp, err := http.Get(client.url("/v1/sweeps/nope")); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown sweep: status %v", resp.Status)
		}
	}
}

// TestStatsCounters asserts the hit/miss/simulation accounting a warm
// rerun depends on: a repeated sweep is all cache hits, zero new
// simulations, zero new misses.
func TestStatsCounters(t *testing.T) {
	srv, client, _ := newTestServer(t, nil)
	specs := testSpecs(6)
	if _, err := client.RunCells(specs); err != nil {
		t.Fatal(err)
	}
	cold := srv.StatsSnapshot()
	if cold.Simulations != int64(len(specs)) {
		t.Errorf("cold simulations = %d, want %d", cold.Simulations, len(specs))
	}
	if cold.Misses != int64(len(specs)) || cold.CacheHits != 0 {
		t.Errorf("cold hits/misses = %d/%d", cold.CacheHits, cold.Misses)
	}
	if _, err := client.RunCells(specs); err != nil {
		t.Fatal(err)
	}
	warm, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulations != cold.Simulations {
		t.Errorf("warm rerun simulated: %d -> %d", cold.Simulations, warm.Simulations)
	}
	if warm.CacheHits != int64(len(specs)) {
		t.Errorf("warm cache hits = %d, want %d", warm.CacheHits, len(specs))
	}
	if warm.Misses != cold.Misses {
		t.Errorf("warm rerun missed: %d -> %d", cold.Misses, warm.Misses)
	}
	if warm.QueueDepth != 0 || warm.Inflight != 0 {
		t.Errorf("idle server reports queue=%d inflight=%d", warm.QueueDepth, warm.Inflight)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
