package sweepd

import (
	"fmt"
	"time"
)

// worker drains the cell queue until Shutdown. Each iteration claims
// one cell end to end — check store, lease, simulate, persist,
// release — so Shutdown's wg.Wait() is the cell boundary: a worker
// never abandons a half-simulated lease it still holds.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			// Stop even with a non-empty queue: Shutdown checkpoints
			// whatever is left.
			return
		default:
		}
		hash, ok := s.pop()
		if !ok {
			select {
			case <-s.quit:
				return
			case <-s.wake:
			case <-time.After(s.cfg.pollInterval()):
			}
			continue
		}
		s.process(hash)
	}
}

// pop removes the oldest queued hash.
func (s *Server) pop() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return "", false
	}
	hash := s.queue[0]
	s.queue = s.queue[1:]
	s.stats.QueueDepth--
	return hash, true
}

// requeue puts a hash back at the queue tail (used when shutdown
// interrupts a cell the worker was waiting on).
func (s *Server) requeue(hash string) {
	s.mu.Lock()
	s.queue = append(s.queue, hash)
	s.stats.QueueDepth++
	s.mu.Unlock()
}

// process resolves one queued cell. The store is the source of truth
// at every step: another worker process sharing the directory may have
// finished the cell already (serve it), may be simulating it right now
// (wait; steal the lease if it expires — the owner died), or this
// process simulates it and persists the result.
func (s *Server) process(hash string) {
	s.mu.Lock()
	f := s.flights[hash]
	if f == nil || f.done {
		s.mu.Unlock()
		return
	}
	spec := f.spec
	s.mu.Unlock()

	for {
		if res, ok, err := s.store.Get(hash); err == nil && ok {
			s.finish(hash, outcome{Result: res})
			return
		} else if err != nil {
			s.finish(hash, outcome{Err: err.Error()})
			return
		}
		acquired, err := s.store.TryLease(hash, s.cfg.Owner, s.cfg.leaseTTL())
		if err != nil {
			s.finish(hash, outcome{Err: err.Error()})
			return
		}
		if acquired {
			break
		}
		// A live foreign lease: some other worker process is on it.
		// Wait for either its result to land or its lease to expire
		// (then the loop steals the cell).
		owner, _, _ := s.store.LeaseHolder(hash)
		s.cfg.Logf("sweepd: cell %.8s leased by %s, waiting", hash, owner)
		select {
		case <-s.quit:
			s.requeue(hash)
			return
		case <-time.After(s.cfg.pollInterval()):
		}
	}

	s.mu.Lock()
	s.stats.Inflight++
	s.mu.Unlock()
	res, err := s.cfg.Simulate(spec)
	s.mu.Lock()
	s.stats.Inflight--
	s.stats.Simulations++
	s.mu.Unlock()

	if err != nil {
		s.store.Release(hash, s.cfg.Owner)
		s.finish(hash, outcome{Err: fmt.Sprintf("simulating %.8s: %v", hash, err)})
		return
	}
	if _, err := s.store.Put(spec, res); err != nil {
		s.store.Release(hash, s.cfg.Owner)
		s.finish(hash, outcome{Err: err.Error()})
		return
	}
	s.store.Release(hash, s.cfg.Owner)
	s.finish(hash, outcome{Result: res})
}
