package synth

import "testing"

// BenchmarkStreamNext measures trace generation, which runs once per
// fetched instruction and must stay far cheaper than the pipeline model
// itself.
func BenchmarkStreamNext(b *testing.B) {
	for _, mk := range []struct {
		name string
		p    Profile
	}{
		{"low", LowILPProfile("low")},
		{"med", MedILPProfile("med")},
		{"high", HighILPProfile("high")},
	} {
		b.Run(mk.name, func(b *testing.B) {
			s := MustCompile(mk.p, 1).NewStream(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Next()
			}
		})
	}
}

// BenchmarkCompile measures static program elaboration (once per
// benchmark per process; cheap, but worth keeping visible).
func BenchmarkCompile(b *testing.B) {
	p := MedILPProfile("gcc")
	for i := 0; i < b.N; i++ {
		if _, err := Compile(p, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
