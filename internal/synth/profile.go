// Package synth generates deterministic synthetic instruction streams that
// stand in for the SPEC CPU2000 benchmarks used by the paper.
//
// The paper's effects depend on a handful of per-thread workload properties:
// the distribution of non-ready source-operand counts at dispatch time
// (driven by dependence distance and producer latency), memory-boundness
// (cache footprint and pointer chasing), and branch predictability. A
// Profile captures those properties; Compile turns a Profile into a static
// loop-structured program whose dynamic expansion (Stream) is an infinite,
// reproducible instruction trace with stable PCs, so branch predictors and
// instruction caches see realistic repetition.
package synth

import "fmt"

// ILPClass is the paper's three-way benchmark classification: low-ILP
// benchmarks are memory bound, high-ILP benchmarks are execution bound
// (Section 2).
type ILPClass uint8

const (
	// LowILP marks memory-bound benchmarks (frequent long-latency misses,
	// short dependence chains, pointer chasing).
	LowILP ILPClass = iota
	// MedILP marks benchmarks between the two extremes.
	MedILP
	// HighILP marks execution-bound benchmarks (cache-resident data,
	// long dependence distances, predictable branches).
	HighILP
)

// String returns "low", "med", or "high".
func (c ILPClass) String() string {
	switch c {
	case LowILP:
		return "low"
	case MedILP:
		return "med"
	case HighILP:
		return "high"
	}
	return fmt.Sprintf("ilp(%d)", uint8(c))
}

// TypeMix holds relative weights (not necessarily normalized) for the
// non-branch, non-nop operation classes emitted inside basic blocks.
// Branches are placed structurally at block boundaries.
type TypeMix struct {
	IntAlu  float64
	IntMult float64
	IntDiv  float64
	Load    float64
	Store   float64
	FpAdd   float64
	FpMult  float64
	FpDiv   float64
	FpSqrt  float64
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	// Name is the benchmark name (e.g. "equake").
	Name string

	// ILP is the paper's classification of the benchmark.
	ILP ILPClass

	// Mix weights the operation classes.
	Mix TypeMix

	// DepP is the success probability of the geometric distribution of
	// register dependence distance: a source operand reads the value
	// produced (statically) about 1/DepP instructions earlier. Larger
	// DepP means shorter chains and lower ILP.
	DepP float64

	// FarSrcFrac is the probability that an instruction's second source
	// is a long-lived register (loop invariant, base pointer, constant)
	// rather than a recently produced value. Real code reads mostly one
	// fresh operand plus one stable operand — the property that makes
	// instructions with two non-ready sources a minority, which the
	// 2OP_BLOCK design depends on.
	FarSrcFrac float64

	// WorkingSet is the data footprint in bytes; addresses of
	// non-chasing memory operations fall inside it. Small sets stay L1
	// resident, medium sets live in L2, large sets miss to memory.
	WorkingSet uint64

	// StridedFrac is the fraction of non-chasing memory templates that
	// walk the working set with a fixed stride (spatial locality); the
	// rest address it uniformly at random.
	StridedFrac float64

	// ChaseFrac is the fraction of load templates that pointer-chase:
	// each such load's address register is the destination of the
	// previous chase load, forming a loop-carried serial chain of
	// cache misses — the signature of memory-bound code.
	ChaseFrac float64

	// BranchBias is the mean probability that a conditional (non
	// back-edge) branch is taken; per-branch biases are drawn around it.
	// Biased branches are learnable by gshare.
	BranchBias float64

	// BranchNoise is the fraction of conditional branches whose outcome
	// is an unpredictable coin flip.
	BranchNoise float64

	// Blocks and BlockLen define the static loop body: Blocks basic
	// blocks of BlockLen instructions each (the last instruction of a
	// block is its branch).
	Blocks   int
	BlockLen int
}

// Validate reports a descriptive error if the profile is malformed.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("synth: profile has empty name")
	case p.DepP <= 0 || p.DepP > 1:
		return fmt.Errorf("synth: profile %q: DepP %v outside (0,1]", p.Name, p.DepP)
	case p.WorkingSet < 64:
		return fmt.Errorf("synth: profile %q: working set %d too small", p.Name, p.WorkingSet)
	case p.Blocks < 1 || p.BlockLen < 2:
		return fmt.Errorf("synth: profile %q: degenerate shape %dx%d", p.Name, p.Blocks, p.BlockLen)
	case p.FarSrcFrac < 0 || p.FarSrcFrac > 1:
		return fmt.Errorf("synth: profile %q: FarSrcFrac %v outside [0,1]", p.Name, p.FarSrcFrac)
	case p.StridedFrac < 0 || p.StridedFrac > 1:
		return fmt.Errorf("synth: profile %q: StridedFrac %v outside [0,1]", p.Name, p.StridedFrac)
	case p.ChaseFrac < 0 || p.ChaseFrac > 1:
		return fmt.Errorf("synth: profile %q: ChaseFrac %v outside [0,1]", p.Name, p.ChaseFrac)
	case p.BranchBias < 0 || p.BranchBias > 1:
		return fmt.Errorf("synth: profile %q: BranchBias %v outside [0,1]", p.Name, p.BranchBias)
	case p.BranchNoise < 0 || p.BranchNoise > 1:
		return fmt.Errorf("synth: profile %q: BranchNoise %v outside [0,1]", p.Name, p.BranchNoise)
	}
	if total := p.Mix.IntAlu + p.Mix.IntMult + p.Mix.IntDiv + p.Mix.Load + p.Mix.Store +
		p.Mix.FpAdd + p.Mix.FpMult + p.Mix.FpDiv + p.Mix.FpSqrt; total <= 0 {
		return fmt.Errorf("synth: profile %q: empty type mix", p.Name)
	}
	return nil
}

// LowILPProfile returns a memory-bound profile template with the given name.
// Callers may tweak fields before compiling.
func LowILPProfile(name string) Profile {
	return Profile{
		Name: name,
		ILP:  LowILP,
		Mix: TypeMix{
			IntAlu: 0.38, IntMult: 0.02, Load: 0.32, Store: 0.12,
			FpAdd: 0.10, FpMult: 0.06,
		},
		DepP: 0.18, // mean dependence distance ≈ 5.6: misses, not
		// serial ALU chains, are what makes these benchmarks slow, so the
		// window exposes memory-level parallelism around each miss.
		FarSrcFrac:  0.60,
		WorkingSet:  6 << 20,
		StridedFrac: 0.35,
		ChaseFrac:   0.16,
		BranchBias:  0.88,
		BranchNoise: 0.10,
		Blocks:      12,
		BlockLen:    10,
	}
}

// MedILPProfile returns a middle-of-the-road profile template.
func MedILPProfile(name string) Profile {
	return Profile{
		Name: name,
		ILP:  MedILP,
		Mix: TypeMix{
			IntAlu: 0.40, IntMult: 0.04, IntDiv: 0.004, Load: 0.30, Store: 0.10,
			FpAdd: 0.10, FpMult: 0.06,
		},
		DepP:        0.25, // mean dependence distance ≈ 4
		FarSrcFrac:  0.75,
		WorkingSet:  768 << 10,
		StridedFrac: 0.6,
		ChaseFrac:   0.12,
		BranchBias:  0.90,
		BranchNoise: 0.08,
		Blocks:      10,
		BlockLen:    12,
	}
}

// HighILPProfile returns an execution-bound profile template.
func HighILPProfile(name string) Profile {
	return Profile{
		Name: name,
		ILP:  HighILP,
		Mix: TypeMix{
			IntAlu: 0.42, IntMult: 0.06, Load: 0.27, Store: 0.09,
			FpAdd: 0.10, FpMult: 0.07, FpDiv: 0.01,
		},
		DepP:        0.24, // mean dependence distance ≈ 4.2
		FarSrcFrac:  0.88,
		WorkingSet:  256 << 10,
		StridedFrac: 0.9,
		ChaseFrac:   0.0,
		BranchBias:  0.95,
		BranchNoise: 0.04,
		Blocks:      8,
		BlockLen:    16,
	}
}
