package synth

import (
	"fmt"

	"smtsim/internal/isa"
)

// memMode says how a memory template computes its effective address.
type memMode uint8

const (
	memNone memMode = iota
	memStrided
	memRandom
	memChase
)

// template is one static instruction of the compiled program.
type template struct {
	class isa.OpClass
	dest  isa.Reg
	src   [isa.MaxSources]isa.Reg

	// Memory behaviour.
	mode   memMode
	region int    // index into the program's data regions
	stride uint64 // bytes, for memStrided

	// Branch behaviour; target is a static instruction index.
	target   int
	bias     float64 // probability taken
	noisy    bool    // unpredictable coin flip
	backEdge bool    // loop back-edge: always taken
}

// numRegions is the number of independent data regions the working set is
// split into; separate regions give strided streams distinct address bases.
const numRegions = 4

// Program is the compiled static form of a Profile: a loop body of
// templates plus the data-region layout. A Program is immutable and safe
// for concurrent NewStream calls.
type Program struct {
	profile   Profile
	templates []template
	// regionBase/regionSize describe the data layout; region i occupies
	// [regionBase[i], regionBase[i]+regionSize).
	regionBase [numRegions]uint64
	regionSize uint64
	codeBase   uint64
}

// Compile elaborates a profile into a static program, using seed for all
// structural random choices (register assignment, branch biases, strides).
// The same (profile, seed) pair always yields an identical program.
func Compile(p Profile, seed uint64) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := newRNG(splitMix(seed, 0xC0DE))
	pr := &Program{
		profile:    p,
		regionSize: p.WorkingSet / numRegions,
		codeBase:   0x120000000, // Alpha-like text segment base
	}
	if pr.regionSize < 64 {
		pr.regionSize = 64
	}
	for i := range pr.regionBase {
		// Regions are placed far apart so they never alias in the caches.
		pr.regionBase[i] = 0x200000000 + uint64(i)*(1<<30)
	}

	total := p.Blocks * p.BlockLen
	pr.templates = make([]template, 0, total)

	// cumulative weights for drawing op classes
	classes, weights := mixTable(p.Mix)

	// Destination register allocation: round-robin within each class over
	// registers [4, 32); low registers are reserved as always-available
	// "global" inputs so early instructions have somewhere to read from.
	nextDest := [isa.NumRegClasses]int{4, 4}
	allocDest := func(rc isa.RegClass) isa.Reg {
		i := nextDest[rc]
		nextDest[rc]++
		if nextDest[rc] >= isa.NumArchRegs {
			nextDest[rc] = 4
		}
		return isa.Reg{Class: rc, Index: int8(i)}
	}

	// chasePrev links pointer-chasing loads into a loop-carried chain.
	chasePrev := isa.NoReg

	// pickSrc selects a source register whose most recent static producer
	// is about dist instructions back; falls back to a global register.
	pickSrc := func(idx int, rc isa.RegClass) isa.Reg {
		dist := r.geometric(p.DepP)
		for back := dist; back < dist+total; back++ {
			j := idx - back
			if j < 0 {
				break
			}
			t := &pr.templates[j]
			if t.dest.Valid() && t.dest.Class == rc {
				return t.dest
			}
		}
		// Global input register r0..r3 / f0..f3.
		return isa.Reg{Class: rc, Index: int8(r.intn(4))}
	}

	// pickSrcMix models operand stability: with probability farProb the
	// operand is a never-rewritten global register (loop invariant, base
	// pointer, constant), otherwise a recent producer. Second operands
	// use the profile's FarSrcFrac; first operands are fresh more often
	// but still read stable values part of the time, which keeps the
	// two-non-ready-source case the minority it is in real code.
	pickSrcMix := func(idx int, rc isa.RegClass, farProb float64) isa.Reg {
		if r.float() < farProb {
			return isa.Reg{Class: rc, Index: int8(r.intn(4))}
		}
		return pickSrc(idx, rc)
	}
	pickSrcFar := func(idx int, rc isa.RegClass) isa.Reg {
		return pickSrcMix(idx, rc, p.FarSrcFrac)
	}
	// First operands are freshly produced values: the common case in
	// dependence chains, and the reason instructions usually enter the
	// queue with exactly one non-ready source.
	pickSrcFresh := func(idx int, rc isa.RegClass) isa.Reg {
		return pickSrcMix(idx, rc, 0.10)
	}

	for b := 0; b < p.Blocks; b++ {
		for k := 0; k < p.BlockLen; k++ {
			idx := len(pr.templates)
			last := k == p.BlockLen-1
			if last {
				// Block-terminating branch.
				t := template{
					class: isa.Branch,
					dest:  isa.NoReg,
					src:   [isa.MaxSources]isa.Reg{pickSrcFresh(idx, isa.IntReg), isa.NoReg},
				}
				if b == p.Blocks-1 {
					t.backEdge = true
					t.target = 0
					t.bias = 1
				} else {
					// Taken path skips the next block (when there is
					// one to skip); otherwise it goes to the next block.
					t.target = (b + 2) * p.BlockLen % total
					if t.target == 0 {
						t.target = (b + 1) * p.BlockLen
					}
					t.noisy = r.float() < p.BranchNoise
					// Per-branch bias around the profile mean; half the
					// branches are "mostly not taken" mirrors.
					bias := p.BranchBias + (r.float()-0.5)*0.08
					if r.float() < 0.5 {
						bias = 1 - bias
					}
					t.bias = clamp01(bias)
				}
				pr.templates = append(pr.templates, t)
				continue
			}

			class := drawClass(r, classes, weights)
			t := template{class: class, dest: isa.NoReg}
			t.src[0], t.src[1] = isa.NoReg, isa.NoReg

			switch class {
			case isa.Load:
				rc := isa.IntReg
				if p.Mix.FpAdd+p.Mix.FpMult > 0 && r.float() < 0.4 {
					rc = isa.FpReg
				}
				if r.float() < p.ChaseFrac {
					// Pointer chase: integer destination feeding the
					// next chase load's address.
					t.mode = memChase
					t.dest = allocDest(isa.IntReg)
					if chasePrev.Valid() {
						t.src[0] = chasePrev
					} else {
						t.src[0] = t.dest // loop-carried self chain
					}
					chasePrev = t.dest
				} else {
					t.dest = allocDest(rc)
					t.src[0] = pickSrcFar(idx, isa.IntReg)
					t.region = r.intn(numRegions)
					if r.float() < p.StridedFrac {
						t.mode = memStrided
						t.stride = uint64(8 << r.intn(5)) // 8..128 bytes
					} else {
						t.mode = memRandom
					}
				}
			case isa.Store:
				rc := isa.IntReg
				if p.Mix.FpAdd+p.Mix.FpMult > 0 && r.float() < 0.4 {
					rc = isa.FpReg
				}
				t.src[0] = pickSrcFresh(idx, rc)       // data
				t.src[1] = pickSrcFar(idx, isa.IntReg) // address
				t.region = r.intn(numRegions)
				if r.float() < p.StridedFrac {
					t.mode = memStrided
					t.stride = uint64(8 << r.intn(5))
				} else {
					t.mode = memRandom
				}
			default:
				rc := isa.IntReg
				if class.IsFloat() {
					rc = isa.FpReg
				}
				t.dest = allocDest(rc)
				t.src[0] = pickSrcFresh(idx, rc)
				// Most ALU ops are two-source; some (moves, immediates)
				// have a single register source. The second source is
				// usually a stable operand.
				if r.float() < 0.8 {
					t.src[1] = pickSrcFar(idx, rc)
				}
			}
			pr.templates = append(pr.templates, t)
		}
	}
	if len(pr.templates) != total {
		return nil, fmt.Errorf("synth: internal error: compiled %d of %d templates", len(pr.templates), total)
	}
	return pr, nil
}

// MustCompile is Compile that panics on error, for profiles known valid at
// build time (the workload tables).
func MustCompile(p Profile, seed uint64) *Program {
	pr, err := Compile(p, seed)
	if err != nil {
		panic(err)
	}
	return pr
}

// Profile returns the profile the program was compiled from.
func (pr *Program) Profile() Profile { return pr.profile }

// StaticSize returns the number of static instructions in the loop body.
func (pr *Program) StaticSize() int { return len(pr.templates) }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// mixTable flattens a TypeMix into parallel class/weight slices with
// cumulative weights for O(log n)-free linear draws (the table is tiny).
func mixTable(m TypeMix) ([]isa.OpClass, []float64) {
	classes := []isa.OpClass{
		isa.IntAlu, isa.IntMult, isa.IntDiv, isa.Load, isa.Store,
		isa.FpAdd, isa.FpMult, isa.FpDiv, isa.FpSqrt,
	}
	raw := []float64{
		m.IntAlu, m.IntMult, m.IntDiv, m.Load, m.Store,
		m.FpAdd, m.FpMult, m.FpDiv, m.FpSqrt,
	}
	var cum []float64
	var kept []isa.OpClass
	sum := 0.0
	for i, w := range raw {
		if w <= 0 {
			continue
		}
		sum += w
		cum = append(cum, sum)
		kept = append(kept, classes[i])
	}
	for i := range cum {
		cum[i] /= sum
	}
	return kept, cum
}

func drawClass(r *rng, classes []isa.OpClass, cum []float64) isa.OpClass {
	x := r.float()
	for i, c := range cum {
		if x < c {
			return classes[i]
		}
	}
	return classes[len(classes)-1]
}
