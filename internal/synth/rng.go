package synth

// rng is a small, fast, deterministic xorshift64* generator. The simulator
// must be reproducible across runs and platforms, and must not depend on
// math/rand global state, so every stochastic component owns one of these
// seeded explicitly.
type rng struct{ state uint64 }

// newRNG returns a generator seeded from seed; a zero seed is remapped to a
// fixed non-zero constant because xorshift has a zero fixed point.
func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{state: seed}
}

// next returns the next 64-bit pseudo-random value.
func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// intn returns a value uniform in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float returns a value uniform in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// geometric returns a value >= 1 distributed geometrically with success
// probability p (mean 1/p). p must be in (0, 1].
func (r *rng) geometric(p float64) int {
	n := 1
	for r.float() >= p && n < 64 {
		n++
	}
	return n
}

// splitMix derives an independent stream seed from a base seed and a salt,
// so per-thread and per-structure generators do not correlate.
func splitMix(seed, salt uint64) uint64 {
	z := seed + salt*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
