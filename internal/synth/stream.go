package synth

import "smtsim/internal/isa"

// Stream is the dynamic expansion of a Program: an infinite, deterministic
// instruction trace. A Stream is single-goroutine; create one per thread.
type Stream struct {
	prog *Program
	r    *rng

	pc  int // static index of the next instruction
	seq uint64

	// addrOffset relocates the stream's data regions so that distinct
	// threads — even two copies of the same benchmark — live in disjoint
	// address spaces, as separate processes do. Without it, co-scheduled
	// threads would warm each other's lines in the shared caches.
	addrOffset uint64

	// Per-template strided-access counters.
	strideCount []uint64
	// Pointer-chase cursor: the current position of the chase walk,
	// expressed as a byte offset into region 0's chase arena.
	chaseOff uint64
}

// NewStream returns a fresh trace over the program. Streams with different
// seeds differ in data addresses and branch outcomes but share the static
// code, like different inputs to the same binary.
func (pr *Program) NewStream(seed uint64) *Stream {
	return &Stream{
		prog: pr,
		r:    newRNG(splitMix(seed, 0x57EA)),
		// 4KB-aligned offset within a 16TB window: regions stay far from
		// each other and from other streams'.
		addrOffset:  splitMix(seed, 0xADD5) & ((1 << 44) - 1) &^ 0xFFF,
		strideCount: make([]uint64, len(pr.templates)),
	}
}

// align8 keeps data addresses 8-byte aligned, as the pipeline assumes
// naturally aligned doubleword accesses.
func align8(x uint64) uint64 { return x &^ 7 }

// Next produces the next dynamic instruction. It never fails; traces are
// infinite and the harness bounds runs by instruction budget.
func (s *Stream) Next() isa.Inst {
	pr := s.prog
	t := &pr.templates[s.pc]
	in := isa.Inst{
		PC:    pr.codeBase + uint64(s.pc)*4,
		Class: t.class,
		Src:   t.src,
		Dest:  t.dest,
		Seq:   s.seq,
	}
	s.seq++

	switch t.mode {
	case memStrided:
		off := (s.strideCount[s.pc] * t.stride) % pr.regionSize
		s.strideCount[s.pc]++
		in.Addr = align8(s.addrOffset + pr.regionBase[t.region] + off)
	case memRandom:
		in.Addr = align8(s.addrOffset + pr.regionBase[t.region] + s.r.next()%pr.regionSize)
	case memChase:
		// The chase walk covers the full working set: a deterministic
		// pseudo-random permutation step derived from the current
		// offset, emulating a linked-list traversal whose next pointer
		// is loaded by this instruction.
		in.Addr = align8(s.addrOffset + pr.regionBase[0] + s.chaseOff%pr.regionSize)
		s.chaseOff = splitMix(s.chaseOff, 0xC4A5E)
	}

	next := s.pc + 1
	if t.class == isa.Branch {
		taken := false
		switch {
		case t.backEdge:
			taken = true
		case t.noisy:
			taken = s.r.float() < 0.5
		default:
			taken = s.r.float() < t.bias
		}
		in.Taken = taken
		in.Target = pr.codeBase + uint64(t.target)*4
		if taken {
			next = t.target
		}
	}
	if next >= len(pr.templates) {
		next = 0
	}
	s.pc = next
	return in
}
