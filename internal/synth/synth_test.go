package synth

import (
	"testing"
	"testing/quick"

	"smtsim/internal/isa"
)

func TestProfileValidation(t *testing.T) {
	good := LowILPProfile("x")
	if err := good.Validate(); err != nil {
		t.Fatalf("template profile invalid: %v", err)
	}
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.DepP = 0 },
		func(p *Profile) { p.DepP = 1.5 },
		func(p *Profile) { p.WorkingSet = 8 },
		func(p *Profile) { p.Blocks = 0 },
		func(p *Profile) { p.BlockLen = 1 },
		func(p *Profile) { p.FarSrcFrac = -0.1 },
		func(p *Profile) { p.StridedFrac = 2 },
		func(p *Profile) { p.ChaseFrac = -1 },
		func(p *Profile) { p.BranchBias = 1.2 },
		func(p *Profile) { p.BranchNoise = -0.5 },
		func(p *Profile) { p.Mix = TypeMix{} },
	}
	for i, mut := range cases {
		p := LowILPProfile("x")
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCompileShape(t *testing.T) {
	p := MedILPProfile("gcc")
	prog, err := Compile(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if prog.StaticSize() != p.Blocks*p.BlockLen {
		t.Errorf("static size %d, want %d", prog.StaticSize(), p.Blocks*p.BlockLen)
	}
	// Every block ends in a branch; no other instruction is a branch.
	for i, tmpl := range prog.templates {
		isLast := (i+1)%p.BlockLen == 0
		if isLast != (tmpl.class == isa.Branch) {
			t.Fatalf("template %d: branch placement wrong (class %v)", i, tmpl.class)
		}
	}
	// The final branch is the loop back-edge to instruction 0.
	last := prog.templates[len(prog.templates)-1]
	if !last.backEdge || last.target != 0 {
		t.Error("loop back-edge missing")
	}
}

func TestCompileDeterministic(t *testing.T) {
	p := HighILPProfile("gzip")
	a := MustCompile(p, 7)
	b := MustCompile(p, 7)
	sa := a.NewStream(3)
	sb := b.NewStream(3)
	for i := 0; i < 10_000; i++ {
		x, y := sa.Next(), sb.Next()
		if x != y {
			t.Fatalf("streams diverged at %d: %v vs %v", i, &x, &y)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	p := LowILPProfile("art")
	prog := MustCompile(p, 7)
	a, b := prog.NewStream(1), prog.NewStream(2)
	same := 0
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x.Addr == y.Addr && x.Taken == y.Taken {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical dynamics")
	}
}

func TestStreamRespectsOperandArity(t *testing.T) {
	for _, p := range []Profile{LowILPProfile("a"), MedILPProfile("b"), HighILPProfile("c")} {
		prog := MustCompile(p, 11)
		s := prog.NewStream(1)
		for i := 0; i < 5000; i++ {
			in := s.Next()
			switch in.Class {
			case isa.Load:
				if !in.Dest.Valid() || !in.Src[0].Valid() {
					t.Fatalf("load missing dest or address source: %v", &in)
				}
				if in.Addr == 0 {
					t.Fatalf("load with zero address")
				}
			case isa.Store:
				if in.Dest.Valid() {
					t.Fatalf("store with a destination: %v", &in)
				}
				if !in.Src[0].Valid() || !in.Src[1].Valid() {
					t.Fatalf("store missing data or address source: %v", &in)
				}
			case isa.Branch:
				if in.Dest.Valid() {
					t.Fatalf("branch with a destination")
				}
				if in.Target == 0 {
					t.Fatalf("branch with zero target")
				}
			default:
				if !in.Dest.Valid() {
					t.Fatalf("%v without destination", in.Class)
				}
			}
			for _, src := range in.Src {
				if src.Valid() && (src.Index < 0 || src.Index >= isa.NumArchRegs) {
					t.Fatalf("source register out of range: %v", src)
				}
			}
		}
	}
}

func TestStreamControlFlowConsistent(t *testing.T) {
	prog := MustCompile(MedILPProfile("vpr"), 5)
	s := prog.NewStream(9)
	prev := s.Next()
	for i := 0; i < 20_000; i++ {
		cur := s.Next()
		if prev.Class == isa.Branch && prev.Taken {
			if cur.PC != prev.Target {
				t.Fatalf("taken branch at %#x targeted %#x but next PC %#x", prev.PC, prev.Target, cur.PC)
			}
		} else if cur.PC != prev.PC+4 && prev.PC != prog.codeBase+uint64(prog.StaticSize()-1)*4 {
			t.Fatalf("fall-through broken: %#x -> %#x", prev.PC, cur.PC)
		}
		prev = cur
	}
}

func TestStreamSequenceNumbers(t *testing.T) {
	prog := MustCompile(HighILPProfile("mesa"), 3)
	s := prog.NewStream(1)
	for i := uint64(0); i < 1000; i++ {
		if in := s.Next(); in.Seq != i {
			t.Fatalf("seq %d at position %d", in.Seq, i)
		}
	}
}

func TestAddressesWithinWorkingSet(t *testing.T) {
	p := MedILPProfile("applu")
	prog := MustCompile(p, 13)
	s := prog.NewStream(1)
	for i := 0; i < 20_000; i++ {
		in := s.Next()
		if !in.Class.IsMem() {
			continue
		}
		ok := false
		for r := 0; r < numRegions; r++ {
			base := s.addrOffset + prog.regionBase[r]
			if in.Addr >= base && in.Addr < base+prog.regionSize {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("address %#x outside all regions", in.Addr)
		}
		if in.Addr%8 != 0 {
			t.Fatalf("misaligned address %#x", in.Addr)
		}
	}
}

// TestStreamsHaveDisjointAddressSpaces: two streams of the same program
// must not touch the same data blocks (separate processes), so threads
// cannot warm each other's lines in the shared caches.
func TestStreamsHaveDisjointAddressSpaces(t *testing.T) {
	prog := MustCompile(MedILPProfile("applu"), 13)
	a, b := prog.NewStream(1), prog.NewStream(2)
	seen := map[uint64]bool{}
	for i := 0; i < 20_000; i++ {
		if in := a.Next(); in.Class.IsMem() {
			seen[in.Addr>>12] = true
		}
	}
	overlap := 0
	for i := 0; i < 20_000; i++ {
		if in := b.Next(); in.Class.IsMem() && seen[in.Addr>>12] {
			overlap++
		}
	}
	if overlap > 0 {
		t.Errorf("%d page-granule address collisions between streams", overlap)
	}
}

func TestChaseLoadsFormChain(t *testing.T) {
	p := LowILPProfile("twolf")
	p.ChaseFrac = 1.0 // every load chases
	prog := MustCompile(p, 17)
	found := false
	for _, tmpl := range prog.templates {
		if tmpl.mode == memChase {
			found = true
			if !tmpl.src[0].Valid() || tmpl.src[0].Class != isa.IntReg {
				t.Error("chase load address source malformed")
			}
		}
	}
	if !found {
		t.Error("no chase loads generated at ChaseFrac=1")
	}
}

func TestRNGProperties(t *testing.T) {
	r := newRNG(0) // zero seed remapped
	if r.state == 0 {
		t.Fatal("zero seed not remapped")
	}
	// intn stays in range; float in [0,1); geometric >= 1.
	f := func(n uint16, p uint8) bool {
		if n == 0 {
			n = 1
		}
		v := r.intn(int(n))
		if v < 0 || v >= int(n) {
			return false
		}
		x := r.float()
		if x < 0 || x >= 1 {
			return false
		}
		g := r.geometric(float64(p%99+1) / 100)
		return g >= 1 && g <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGeometricMeanRoughlyMatches(t *testing.T) {
	r := newRNG(99)
	const p = 0.25
	sum := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		sum += r.geometric(p)
	}
	mean := float64(sum) / n
	if mean < 3.5 || mean > 4.5 {
		t.Errorf("geometric(0.25) mean = %.2f, want ~4", mean)
	}
}

func TestSplitMixIndependence(t *testing.T) {
	a := splitMix(1, 1)
	b := splitMix(1, 2)
	c := splitMix(2, 1)
	if a == b || a == c || b == c {
		t.Error("splitMix collisions on trivial inputs")
	}
}

func TestILPClassString(t *testing.T) {
	if LowILP.String() != "low" || MedILP.String() != "med" || HighILP.String() != "high" {
		t.Error("class names wrong")
	}
	if ILPClass(9).String() == "" {
		t.Error("unknown class empty")
	}
}
