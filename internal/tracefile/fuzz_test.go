package tracefile

import (
	"bytes"
	"testing"

	"smtsim/internal/isa"
)

// encodeSeed builds a valid trace file from instructions, for seeding the
// fuzzer with inputs that reach past the header checks.
func encodeSeed(f *testing.F, insts ...isa.Inst) []byte {
	f.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	for _, in := range insts {
		if err := w.Write(in); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceFile feeds arbitrary bytes to the trace decoder. The
// contract under test: Decode never panics on untrusted input — it
// either returns a trace or a descriptive error — and any trace it does
// accept survives a re-encode/re-decode round trip unchanged (the
// delta and zigzag coding is lossless for every accepted input).
func FuzzTraceFile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SMTTRC\x00\x01"))                 // header only
	f.Add([]byte("NOTATRACE"))                      // bad magic
	f.Add([]byte("SMTTRC\x00\x01\x00"))             // truncated record
	f.Add([]byte("SMTTRC\x00\x01\x7f\x00\x00\x00")) // bad op class
	f.Add([]byte("SMTTRC\x00\x01\x00\xff\x00\x00")) // bad register code
	f.Add(encodeSeed(f, isa.Inst{
		PC: 0x1000, Class: isa.IntAlu,
		Dest: isa.Int(3), Src: [isa.MaxSources]isa.Reg{isa.Int(1), isa.Int(2)},
	}))
	f.Add(encodeSeed(f,
		isa.Inst{PC: 0x1000, Class: isa.Load, Addr: 0x8000,
			Dest: isa.Int(4), Src: [isa.MaxSources]isa.Reg{isa.Int(29), isa.NoReg}},
		isa.Inst{PC: 0x1004, Class: isa.Store, Addr: 0x8040,
			Src: [isa.MaxSources]isa.Reg{isa.Int(4), isa.Int(29)}},
		isa.Inst{PC: 0x1008, Class: isa.Branch, Target: 0x1000, Taken: true},
		isa.Inst{PC: 0x1000, Class: isa.FpMult,
			Dest: isa.Fp(2), Src: [isa.MaxSources]isa.Reg{isa.Fp(0), isa.Fp(1)}},
	))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; only a panic is a bug
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range tr.Insts {
			if err := w.Write(in); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		tr2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of accepted trace: %v", err)
		}
		if len(tr2.Insts) != len(tr.Insts) {
			t.Fatalf("round trip changed length: %d -> %d", len(tr.Insts), len(tr2.Insts))
		}
		for i := range tr.Insts {
			if tr.Insts[i] != tr2.Insts[i] {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, tr.Insts[i], tr2.Insts[i])
			}
		}
	})
}
