// Package tracefile provides a compact binary format for recording and
// replaying dynamic instruction traces. The paper's methodology runs
// SPEC binaries under an execution-driven simulator; this package is the
// bring-your-own-trace escape hatch: any trace converted to this format
// (from a real pipeline tracer, another simulator, or this repository's
// synthetic generator) drives the same machine model.
//
// Format: a 8-byte header ("SMTTRC" + 2-byte version), then one varint-
// encoded record per instruction. PCs and data addresses are
// delta-encoded against the previous record, which compresses the loopy
// traces real programs produce to a few bytes per instruction.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"smtsim/internal/isa"
)

var magic = [8]byte{'S', 'M', 'T', 'T', 'R', 'C', 0, 1}

// ErrBadHeader reports a file that is not a version-1 trace.
var ErrBadHeader = errors.New("tracefile: bad header")

// Writer streams instructions into a trace file.
type Writer struct {
	w      *bufio.Writer
	closer io.Closer
	n      uint64

	lastPC   uint64
	lastAddr uint64
	buf      []byte
}

// Create opens path for writing and emits the header.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{w: bufio.NewWriter(f), closer: f, buf: make([]byte, 0, 64)}
	if _, err := w.w.Write(magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// NewWriter writes a trace to an arbitrary stream (no Close of the
// underlying writer).
func NewWriter(dst io.Writer) (*Writer, error) {
	w := &Writer{w: bufio.NewWriter(dst), buf: make([]byte, 0, 64)}
	if _, err := w.w.Write(magic[:]); err != nil {
		return nil, err
	}
	return w, nil
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// regCode packs a register operand into one byte: 0 = absent,
// 1..64 = (class, index)+1.
func regCode(r isa.Reg) byte {
	if !r.Valid() {
		return 0
	}
	return byte(int(r.Class)*isa.NumArchRegs+int(r.Index)) + 1
}

func regDecode(b byte) (isa.Reg, error) {
	if b == 0 {
		return isa.NoReg, nil
	}
	v := int(b) - 1
	if v >= isa.NumRegClasses*isa.NumArchRegs {
		return isa.NoReg, fmt.Errorf("tracefile: register code %d out of range", b)
	}
	return isa.Reg{Class: isa.RegClass(v / isa.NumArchRegs), Index: int8(v % isa.NumArchRegs)}, nil
}

// Write appends one instruction to the trace. Seq fields are not stored;
// position in the file defines them.
func (w *Writer) Write(in isa.Inst) error {
	b := w.buf[:0]
	flags := byte(in.Class)
	if in.Taken {
		flags |= 0x80
	}
	b = append(b, flags, regCode(in.Src[0]), regCode(in.Src[1]), regCode(in.Dest))
	b = binary.AppendUvarint(b, zigzag(int64(in.PC-w.lastPC)))
	w.lastPC = in.PC
	if in.Class.IsMem() {
		b = binary.AppendUvarint(b, zigzag(int64(in.Addr-w.lastAddr)))
		w.lastAddr = in.Addr
	}
	if in.Class == isa.Branch {
		b = binary.AppendUvarint(b, zigzag(int64(in.Target-in.PC)))
	}
	w.buf = b
	w.n++
	_, err := w.w.Write(b)
	return err
}

// Count returns the number of instructions written so far.
func (w *Writer) Count() uint64 { return w.n }

// Close flushes buffers and closes the underlying file, if any.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.closer != nil {
		return w.closer.Close()
	}
	return nil
}

// Trace is a fully decoded in-memory trace.
type Trace struct {
	Insts []isa.Inst
}

// Load reads and decodes a trace file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Decode reads a full trace from a stream.
func Decode(src io.Reader) (*Trace, error) {
	r := bufio.NewReader(src)
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if hdr != magic {
		return nil, ErrBadHeader
	}
	t := &Trace{}
	var lastPC, lastAddr uint64
	var seq uint64
	for {
		flags, err := r.ReadByte()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		var in isa.Inst
		in.Class = isa.OpClass(flags & 0x7F)
		if in.Class >= isa.NumOpClasses {
			return nil, fmt.Errorf("tracefile: record %d: bad op class %d", seq, in.Class)
		}
		in.Taken = flags&0x80 != 0
		var regs [3]byte
		if _, err := io.ReadFull(r, regs[:]); err != nil {
			return nil, fmt.Errorf("tracefile: record %d truncated: %v", seq, err)
		}
		if in.Src[0], err = regDecode(regs[0]); err != nil {
			return nil, err
		}
		if in.Src[1], err = regDecode(regs[1]); err != nil {
			return nil, err
		}
		if in.Dest, err = regDecode(regs[2]); err != nil {
			return nil, err
		}
		d, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("tracefile: record %d truncated PC: %v", seq, err)
		}
		in.PC = lastPC + uint64(unzigzag(d))
		lastPC = in.PC
		if in.Class.IsMem() {
			d, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("tracefile: record %d truncated addr: %v", seq, err)
			}
			in.Addr = lastAddr + uint64(unzigzag(d))
			lastAddr = in.Addr
		}
		if in.Class == isa.Branch {
			d, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("tracefile: record %d truncated target: %v", seq, err)
			}
			in.Target = in.PC + uint64(unzigzag(d))
		}
		in.Seq = seq
		seq++
		t.Insts = append(t.Insts, in)
	}
}

// Len returns the number of instructions in the trace.
func (t *Trace) Len() int { return len(t.Insts) }

// Stream returns a replay cursor over the trace. When loop is true the
// cursor wraps around forever (sequence numbers keep increasing), which
// is what the pipeline's infinite-trace contract expects; a non-looping
// cursor panics when exhausted, so size the run budget accordingly.
func (t *Trace) Stream(loop bool) *Cursor {
	if t.Len() == 0 {
		panic("tracefile: empty trace")
	}
	return &Cursor{t: t, loop: loop}
}

// Cursor replays a Trace, implementing the pipeline's TraceReader.
type Cursor struct {
	t    *Trace
	pos  int
	seq  uint64
	loop bool
}

// Next returns the next instruction.
func (c *Cursor) Next() isa.Inst {
	if c.pos >= len(c.t.Insts) {
		if !c.loop {
			panic("tracefile: trace exhausted (use a looping cursor or a larger trace)")
		}
		c.pos = 0
	}
	in := c.t.Insts[c.pos]
	c.pos++
	in.Seq = c.seq
	c.seq++
	return in
}

// Source is anything that yields instructions (the pipeline's
// TraceReader without the import cycle).
type Source interface {
	Next() isa.Inst
}

// Record drains n instructions from src into a new trace file at path.
func Record(src Source, n uint64, path string) error {
	w, err := Create(path)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if err := w.Write(src.Next()); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// Stats summarizes a trace for inspection tools.
type Stats struct {
	Count     uint64
	ClassMix  [isa.NumOpClasses]uint64
	Branches  uint64
	Taken     uint64
	UniquePCs int
	Footprint uint64 // distinct 64-byte data blocks touched
}

// Analyze computes summary statistics.
func (t *Trace) Analyze() Stats {
	s := Stats{Count: uint64(t.Len())}
	pcs := map[uint64]struct{}{}
	blocks := map[uint64]struct{}{}
	for _, in := range t.Insts {
		s.ClassMix[in.Class]++
		pcs[in.PC] = struct{}{}
		if in.Class == isa.Branch {
			s.Branches++
			if in.Taken {
				s.Taken++
			}
		}
		if in.Class.IsMem() {
			blocks[in.Addr>>6] = struct{}{}
		}
	}
	s.UniquePCs = len(pcs)
	s.Footprint = uint64(len(blocks)) * 64
	return s
}
