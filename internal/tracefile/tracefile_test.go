package tracefile

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"

	"smtsim/internal/isa"
	"smtsim/internal/workload"
)

func sampleTrace(t *testing.T, n int) []isa.Inst {
	t.Helper()
	prog, err := workload.CompileBenchmark("gcc")
	if err != nil {
		t.Fatal(err)
	}
	s := prog.NewStream(1)
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	insts := sampleTrace(t, 5000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(insts) {
		t.Fatalf("decoded %d, want %d", tr.Len(), len(insts))
	}
	for i, got := range tr.Insts {
		if got != insts[i] {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got, insts[i])
		}
	}
}

func TestCompression(t *testing.T) {
	insts := sampleTrace(t, 10_000)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, in := range insts {
		w.Write(in)
	}
	w.Close()
	perInst := float64(buf.Len()) / float64(len(insts))
	if perInst > 12 {
		t.Errorf("%.1f bytes/instruction; delta encoding ineffective", perInst)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.smttrc")
	prog, err := workload.CompileBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if err := Record(prog.NewStream(2), 1000, path); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Fatalf("loaded %d records", tr.Len())
	}
}

func TestBadHeaderRejected(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOTATRACE"))); !errors.Is(err, ErrBadHeader) {
		t.Errorf("bad header error = %v", err)
	}
	if _, err := Decode(bytes.NewReader(nil)); !errors.Is(err, ErrBadHeader) {
		t.Errorf("empty stream error = %v", err)
	}
}

func TestTruncatedRecordRejected(t *testing.T) {
	insts := sampleTrace(t, 100)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, in := range insts {
		w.Write(in)
	}
	w.Close()
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := Decode(bytes.NewReader(cut)); err == nil {
		t.Error("truncated trace decoded without error")
	}
}

func TestCursorLoopsWithMonotonicSeq(t *testing.T) {
	tr := &Trace{Insts: sampleTrace(t, 10)}
	c := tr.Stream(true)
	var last uint64
	for i := 0; i < 35; i++ {
		in := c.Next()
		if i > 0 && in.Seq != last+1 {
			t.Fatalf("seq %d after %d", in.Seq, last)
		}
		last = in.Seq
	}
}

func TestCursorExhaustionPanics(t *testing.T) {
	tr := &Trace{Insts: sampleTrace(t, 3)}
	c := tr.Stream(false)
	c.Next()
	c.Next()
	c.Next()
	defer func() {
		if recover() == nil {
			t.Error("exhausted cursor did not panic")
		}
	}()
	c.Next()
}

func TestAnalyze(t *testing.T) {
	tr := &Trace{Insts: sampleTrace(t, 20_000)}
	s := tr.Analyze()
	if s.Count != 20_000 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Branches == 0 || s.Taken == 0 || s.Taken > s.Branches {
		t.Errorf("branch stats implausible: %d/%d", s.Taken, s.Branches)
	}
	if s.UniquePCs == 0 || s.Footprint == 0 {
		t.Error("pc/footprint stats empty")
	}
	var mem uint64
	for _, c := range []isa.OpClass{isa.Load, isa.Store} {
		mem += s.ClassMix[c]
	}
	if mem == 0 {
		t.Error("no memory operations in gcc trace")
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegCodeRoundTrip(t *testing.T) {
	for class := 0; class < isa.NumRegClasses; class++ {
		for i := 0; i < isa.NumArchRegs; i++ {
			r := isa.Reg{Class: isa.RegClass(class), Index: int8(i)}
			got, err := regDecode(regCode(r))
			if err != nil || got != r {
				t.Fatalf("round trip of %v failed: %v, %v", r, got, err)
			}
		}
	}
	if got, err := regDecode(regCode(isa.NoReg)); err != nil || got.Valid() {
		t.Error("NoReg round trip failed")
	}
	if _, err := regDecode(255); err == nil {
		t.Error("out-of-range code accepted")
	}
}
