package uop

import "testing"

// TestBankHotOpsZeroAllocs guards the structure-of-arrays discipline at
// runtime: slot lookup, readiness-counter updates, and slot recycling
// are the per-uop operations every pipeline stage performs, and none of
// them may touch the heap. The bank is one contiguous slab allocated at
// construction; Reset in particular must compile to a memory clear, not
// a copy of a heap-built temporary.
func TestBankHotOpsZeroAllocs(t *testing.T) {
	b := NewBank(128)
	if avg := testing.AllocsPerRun(10_000, func() {
		for id := ID(0); id < 128; id += 16 {
			u := b.Get(id)
			b.NotReady[id] = 2
			b.NotReady[id]--
			u.Completed = true
			u.Reset()
		}
	}); avg != 0 {
		t.Errorf("bank get/count/reset cycle allocates %.1f times per run, want 0", avg)
	}
}
