// Package uop defines the in-flight micro-operation record shared by the
// rename, dispatch, issue-queue, ROB, and LSQ models. A UOp wraps one
// dynamic instruction from the trace with its renamed operands and the
// timestamps the metrics package aggregates.
package uop

import (
	"smtsim/internal/isa"
	"smtsim/internal/regfile"
)

// NoCycle marks a timestamp that has not happened yet.
const NoCycle int64 = -1

// Waker is notified the moment a UOp's last outstanding source operand
// becomes ready (NotReady reaches zero). The issue queue installs itself
// here so wakeup moves instructions onto its ready list instead of the
// queue re-scanning every entry each cycle.
type Waker interface {
	UOpReady(u *UOp)
}

// UOp is one in-flight instruction. The pipeline owns UOps via pointers;
// a UOp lives from rename until commit (or squash) and is then recycled.
type UOp struct {
	// Inst is the immutable trace record.
	Inst isa.Inst

	// Thread is the hardware thread context id.
	Thread int

	// GSeq is a global, monotonically increasing rename order across all
	// threads, used for age-based (oldest-first) selection.
	GSeq uint64

	// Renamed operands. Srcs[i] corresponds to Inst.Src[i]; absent
	// operands are regfile.NoPhys.
	Srcs [isa.MaxSources]regfile.PhysRef
	// Dest is the allocated destination register, or NoPhys.
	Dest regfile.PhysRef
	// PrevDest is the destination architectural register's previous
	// mapping, reclaimed when this UOp commits.
	PrevDest regfile.PhysRef

	// Timestamps (cycle numbers), NoCycle until the event occurs.
	RenamedAt    int64
	DispatchedAt int64
	IssuedAt     int64
	CompletedAt  int64

	// InIQ reports the UOp currently occupies an issue-queue entry;
	// IQClass records the comparator class of that entry (0, 1, or 2),
	// so the queue can release the right pool.
	InIQ    bool
	IQClass int8
	// IQSlot is the UOp's index in the queue's entry array — a back-index
	// making removal O(1). Maintained by the queue; meaningless otherwise.
	IQSlot int32
	// InReady tracks membership in the queue's incremental ready list
	// (event-driven wakeup mode).
	InReady bool

	// NotReady counts source operands whose values have not yet been
	// produced. It is maintained event-driven: the pipeline initializes
	// it at rename and registers the UOp on each pending source's
	// consumer list (regfile.Watch); every tag broadcast (SetReady)
	// decrements it through OperandReady. Only meaningful in
	// event-wakeup mode; the legacy polling mode ignores it and
	// re-derives the count from the register file.
	NotReady int8
	// Waker, when non-nil, is notified when NotReady drops to zero.
	Waker Waker
	// InDAB reports the UOp sits in the deadlock-avoidance buffer.
	InDAB bool
	// Issued reports the UOp has left the scheduler.
	Issued bool
	// Completed reports the result has been produced (dest ready).
	Completed bool
	// Squashed reports the UOp was annulled by a watchdog or fetch-gate
	// flush; pending completion events for it must be ignored.
	Squashed bool

	// L1DMiss and MemMiss record, for issued loads, how deep in the
	// hierarchy the access went (set at issue, consumed by the
	// fetch-gating policies and their statistics).
	L1DMiss bool
	MemMiss bool

	// Branch prediction state (Class == Branch).
	PredTaken  bool
	PredTarget uint64
	Mispred    bool

	// NonReadyAtDispatch records how many source operands were not ready
	// when the UOp entered the scheduler (or DAB) — the quantity the
	// 2OP_BLOCK policy keys on.
	NonReadyAtDispatch int

	// WasNDI reports the UOp spent at least one cycle blocked as a
	// non-dispatchable instruction (two non-ready sources under a
	// one-comparator scheduler).
	WasNDI bool
	// WasHDI reports the UOp was dispatched out of program order, ahead
	// of an older NDI from its thread (a hidden dispatchable instruction).
	WasHDI bool
	// DepOnNDI reports the UOp directly or transitively depends on an
	// older instruction that was an NDI at the time this UOp dispatched
	// (used by the idealized-filter ablation and the HDI statistics).
	DepOnNDI bool
}

// Reset clears the UOp for reuse from a pool. GSeq resets to zero, which
// never matches a live rename sequence number (the pipeline numbers from
// one), so stale references to a recycled UOp — pending completion
// events, register consumer-list entries — identify themselves by token
// mismatch.
func (u *UOp) Reset() {
	*u = UOp{
		RenamedAt:    NoCycle,
		DispatchedAt: NoCycle,
		IssuedAt:     NoCycle,
		CompletedAt:  NoCycle,
		Srcs:         [isa.MaxSources]regfile.PhysRef{regfile.NoPhys, regfile.NoPhys},
		Dest:         regfile.NoPhys,
		PrevDest:     regfile.NoPhys,
	}
}

// OperandReady implements regfile.Consumer: one watched source operand
// was just produced. Notifications for a squashed UOp, or ones whose
// token predates a recycle (token != GSeq), are stale and ignored.
func (u *UOp) OperandReady(_ regfile.PhysRef, token uint64) {
	if u.Squashed || token != u.GSeq || u.NotReady == 0 {
		return
	}
	u.NotReady--
	if u.NotReady == 0 && u.Waker != nil {
		u.Waker.UOpReady(u)
	}
}

// NumSrcNotReady counts source operands whose physical registers are not
// ready in rf.
func (u *UOp) NumSrcNotReady(rf *regfile.File) int {
	n := 0
	for _, s := range u.Srcs {
		if s.Valid() && !rf.Ready(s) {
			n++
		}
	}
	return n
}

// SrcsReady reports whether every source operand is ready.
func (u *UOp) SrcsReady(rf *regfile.File) bool {
	return u.NumSrcNotReady(rf) == 0
}

// IsBranch reports whether the UOp is a control transfer.
func (u *UOp) IsBranch() bool { return u.Inst.Class == isa.Branch }

// IsLoad reports whether the UOp reads data memory.
func (u *UOp) IsLoad() bool { return u.Inst.Class == isa.Load }

// IsStore reports whether the UOp writes data memory.
func (u *UOp) IsStore() bool { return u.Inst.Class == isa.Store }

// Older reports whether u precedes v in global rename order. Within a
// thread, rename order equals program order, so Older is also the
// program-order test the dispatch policies use.
func (u *UOp) Older(v *UOp) bool { return u.GSeq < v.GSeq }
