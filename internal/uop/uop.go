// Package uop defines the in-flight micro-operation record shared by the
// rename, dispatch, issue-queue, ROB, and LSQ models, and the Bank — the
// structure-of-arrays slab that owns every record. A UOp wraps one
// dynamic instruction from the trace with its renamed operands and the
// timestamps the metrics package aggregates.
package uop

import (
	"smtsim/internal/isa"
	"smtsim/internal/regfile"
)

// NoCycle marks a timestamp that has not happened yet.
const NoCycle int64 = -1

// ID is a dense in-flight micro-operation identity: the UOp's slot in
// its core's Bank. The pipeline derives it from the ROB slot (thread
// base + reorder-buffer ring index), so an ID is stable from rename to
// commit and is recycled the moment the slot drains — exactly the
// lifetime discipline a hardware ROB entry has. Structures on the cycle
// path (IQ, LSQ, DAB, dispatch buffers, register-file wakeup bitmaps)
// store IDs instead of pointers: 4 bytes, no GC write barriers, and a
// natural index into the Bank's arrays.
type ID = int32

// NoID is the absent-identity sentinel.
const NoID ID = -1

// Bank owns every in-flight micro-operation record of one core as a
// single contiguous slab, indexed by ID. Hot per-uop state the wakeup
// broadcast touches is split structure-of-arrays style (NotReady) so the
// register file can update it without chasing the full record; the rest
// of the fields live in the slab struct, which is still one cache-
// friendly array rather than a pool of scattered heap objects.
type Bank struct {
	// NotReady counts, per ID, the source operands whose values have not
	// yet been produced. It is maintained event-driven: the pipeline
	// initializes it at rename and registers the ID in each pending
	// source's consumer bitmap (regfile.Watch); every tag broadcast
	// (SetReady) decrements it directly. Only meaningful in event-wakeup
	// mode; the legacy polling mode ignores it and re-derives the count
	// from the register file.
	NotReady []int8

	slab []UOp
}

// NewBank builds a bank of n records, all reset, with IDs 0..n-1.
func NewBank(n int) *Bank {
	if n <= 0 {
		panic("uop: bank size must be positive")
	}
	b := &Bank{
		NotReady: make([]int8, n),
		slab:     make([]UOp, n),
	}
	for i := range b.slab {
		b.slab[i].ID = ID(i)
		b.slab[i].Reset()
	}
	return b
}

// Cap returns the number of slots.
func (b *Bank) Cap() int { return len(b.slab) }

// Get returns the record at id. The pointer is stable for the bank's
// lifetime (records never move); identity is only meaningful while the
// owning ROB slot is live.
//
//smt:hotpath
func (b *Bank) Get(id ID) *UOp { return &b.slab[id] }

// Waker is notified the moment a UOp's last outstanding source operand
// becomes ready (its bank NotReady counter reaches zero). The issue
// queue installs itself here so wakeup moves instructions onto its ready
// list instead of the queue re-scanning every entry each cycle.
type Waker interface {
	UOpReady(u *UOp)
}

// UOp is one in-flight instruction. The Bank owns the record; the
// pipeline refers to it by ID (or by the stable *UOp into the slab). A
// UOp lives from rename until commit (or squash); its slot is then
// recycled by the ROB ring.
type UOp struct {
	// Inst is the immutable trace record.
	Inst isa.Inst

	// ID is the record's bank slot (ROB slot identity). Set once at bank
	// construction; Reset preserves it.
	ID ID

	// Thread is the hardware thread context id.
	Thread int

	// GSeq is a global, monotonically increasing rename order across all
	// threads, used for age-based (oldest-first) selection.
	GSeq uint64

	// Renamed operands. Srcs[i] corresponds to Inst.Src[i]; absent
	// operands are regfile.NoPhys.
	Srcs [isa.MaxSources]regfile.PhysRef
	// Dest is the allocated destination register, or NoPhys.
	Dest regfile.PhysRef
	// PrevDest is the destination architectural register's previous
	// mapping, reclaimed when this UOp commits.
	PrevDest regfile.PhysRef

	// Timestamps (cycle numbers), NoCycle until the event occurs.
	RenamedAt    int64
	DispatchedAt int64
	IssuedAt     int64
	CompletedAt  int64

	// InIQ reports the UOp currently occupies an issue-queue entry;
	// IQClass records the comparator class of that entry (0, 1, or 2),
	// so the queue can release the right pool.
	InIQ    bool
	IQClass int8
	// IQSlot is the UOp's index in the queue's entry array — a back-index
	// making removal O(1). Maintained by the queue; meaningless otherwise.
	IQSlot int32
	// InReady tracks membership in the queue's incremental ready list
	// (event-driven wakeup mode).
	InReady bool
	// LSQSlot is the UOp's ring slot in its thread's load/store queue
	// (memory operations only). Maintained by the LSQ; it lets the
	// disambiguation check scan only the strictly older entries.
	LSQSlot int32

	// InDAB reports the UOp sits in the deadlock-avoidance buffer.
	InDAB bool
	// Issued reports the UOp has left the scheduler.
	Issued bool
	// Completed reports the result has been produced (dest ready).
	Completed bool
	// Squashed reports the UOp was annulled by a watchdog or fetch-gate
	// flush; pending completion events for it must be ignored.
	Squashed bool

	// L1DMiss and MemMiss record, for issued loads, how deep in the
	// hierarchy the access went (set at issue, consumed by the
	// fetch-gating policies and their statistics).
	L1DMiss bool
	MemMiss bool

	// Branch prediction state (Class == Branch).
	PredTaken  bool
	PredTarget uint64
	Mispred    bool

	// NonReadyAtDispatch records how many source operands were not ready
	// when the UOp entered the scheduler (or DAB) — the quantity the
	// 2OP_BLOCK policy keys on.
	NonReadyAtDispatch int

	// WasNDI reports the UOp spent at least one cycle blocked as a
	// non-dispatchable instruction (two non-ready sources under a
	// one-comparator scheduler).
	WasNDI bool
	// WasHDI reports the UOp was dispatched out of program order, ahead
	// of an older NDI from its thread (a hidden dispatchable instruction).
	WasHDI bool
	// DepOnNDI reports the UOp directly or transitively depends on an
	// older instruction that was an NDI at the time this UOp dispatched
	// (used by the idealized-filter ablation and the HDI statistics).
	DepOnNDI bool
}

// Reset clears the UOp for reuse of its slot, preserving the identity.
// GSeq resets to zero, which never matches a live rename sequence number
// (the pipeline numbers from one), so stale references to a recycled
// slot — pending completion events — identify themselves by sequence
// mismatch.
//
//smt:hotpath
func (u *UOp) Reset() {
	id := u.ID
	// Zero the record wholesale, then restore the identity and the
	// non-zero sentinels. The pointer-free struct makes the first
	// assignment a plain memory clear, which the compiler emits far
	// tighter code for than copying a mostly-zero temporary.
	*u = UOp{}
	u.ID = id
	u.RenamedAt = NoCycle
	u.DispatchedAt = NoCycle
	u.IssuedAt = NoCycle
	u.CompletedAt = NoCycle
	u.Srcs = [isa.MaxSources]regfile.PhysRef{regfile.NoPhys, regfile.NoPhys}
	u.Dest = regfile.NoPhys
	u.PrevDest = regfile.NoPhys
	u.LSQSlot = -1
}

// NumSrcNotReady counts source operands whose physical registers are not
// ready in rf.
func (u *UOp) NumSrcNotReady(rf *regfile.File) int {
	n := 0
	for _, s := range u.Srcs {
		if s.Valid() && !rf.Ready(s) {
			n++
		}
	}
	return n
}

// SrcsReady reports whether every source operand is ready.
func (u *UOp) SrcsReady(rf *regfile.File) bool {
	return u.NumSrcNotReady(rf) == 0
}

// IsBranch reports whether the UOp is a control transfer.
func (u *UOp) IsBranch() bool { return u.Inst.Class == isa.Branch }

// IsLoad reports whether the UOp reads data memory.
func (u *UOp) IsLoad() bool { return u.Inst.Class == isa.Load }

// IsStore reports whether the UOp writes data memory.
func (u *UOp) IsStore() bool { return u.Inst.Class == isa.Store }

// Older reports whether u precedes v in global rename order. Within a
// thread, rename order equals program order, so Older is also the
// program-order test the dispatch policies use.
func (u *UOp) Older(v *UOp) bool { return u.GSeq < v.GSeq }
