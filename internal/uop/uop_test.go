package uop

import (
	"testing"

	"smtsim/internal/isa"
	"smtsim/internal/regfile"
)

func TestResetRestoresSentinels(t *testing.T) {
	u := &UOp{Thread: 3, GSeq: 99, InIQ: true, Completed: true}
	u.Reset()
	if u.Thread != 0 || u.GSeq != 0 || u.InIQ || u.Completed {
		t.Error("Reset left state behind")
	}
	for _, ts := range []int64{u.RenamedAt, u.DispatchedAt, u.IssuedAt, u.CompletedAt} {
		if ts != NoCycle {
			t.Error("timestamps not reset to NoCycle")
		}
	}
}

func TestReadinessCounting(t *testing.T) {
	rf := regfile.New(8, 8)
	a := rf.Alloc(isa.IntReg)
	b := rf.Alloc(isa.IntReg)
	rf.SetReady(b)
	u := &UOp{Srcs: [isa.MaxSources]regfile.PhysRef{a, b}}
	if got := u.NumSrcNotReady(rf); got != 1 {
		t.Errorf("NumSrcNotReady = %d, want 1", got)
	}
	if u.SrcsReady(rf) {
		t.Error("SrcsReady true with a pending source")
	}
	rf.SetReady(a)
	if !u.SrcsReady(rf) {
		t.Error("SrcsReady false with all sources ready")
	}
	// Absent operands are trivially ready.
	v := &UOp{Srcs: [isa.MaxSources]regfile.PhysRef{regfile.NoPhys, regfile.NoPhys}}
	if v.NumSrcNotReady(rf) != 0 {
		t.Error("absent operands counted as non-ready")
	}
}

func TestClassPredicates(t *testing.T) {
	br := &UOp{Inst: isa.Inst{Class: isa.Branch}}
	ld := &UOp{Inst: isa.Inst{Class: isa.Load}}
	st := &UOp{Inst: isa.Inst{Class: isa.Store}}
	if !br.IsBranch() || br.IsLoad() || br.IsStore() {
		t.Error("branch predicates wrong")
	}
	if !ld.IsLoad() || ld.IsBranch() {
		t.Error("load predicates wrong")
	}
	if !st.IsStore() || st.IsLoad() {
		t.Error("store predicates wrong")
	}
}

func TestOlder(t *testing.T) {
	a := &UOp{GSeq: 1}
	b := &UOp{GSeq: 2}
	if !a.Older(b) || b.Older(a) || a.Older(a) {
		t.Error("Older comparison wrong")
	}
}
