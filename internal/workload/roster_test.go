package workload

import (
	"testing"

	"smtsim/internal/isa"
	"smtsim/internal/synth"
)

// TestEveryBenchmarkCompilesAndStreams is a table-driven sweep over the
// full roster: each benchmark's program must compile, stream cleanly,
// and exhibit the structural properties its ILP class promises.
func TestEveryBenchmarkCompilesAndStreams(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			prog, err := CompileBenchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			class, _ := Class(name)
			profile := prog.Profile()

			s := prog.NewStream(1)
			var loads, stores, branches, fp, taken uint64
			const n = 30_000
			for i := 0; i < n; i++ {
				in := s.Next()
				switch in.Class {
				case isa.Load:
					loads++
				case isa.Store:
					stores++
				case isa.Branch:
					branches++
					if in.Taken {
						taken++
					}
				}
				if in.Class.IsFloat() {
					fp++
				}
			}

			if loads == 0 || stores == 0 || branches == 0 {
				t.Fatalf("degenerate mix: loads=%d stores=%d branches=%d", loads, stores, branches)
			}
			if taken == 0 || taken == branches {
				t.Errorf("branch outcomes degenerate: %d/%d taken", taken, branches)
			}
			loadFrac := float64(loads) / n
			if loadFrac < 0.05 || loadFrac > 0.6 {
				t.Errorf("load fraction %.2f implausible", loadFrac)
			}

			// Class-specific structural promises.
			switch class {
			case synth.LowILP:
				if profile.WorkingSet < 1<<20 {
					t.Errorf("low-ILP working set %d below 1MB", profile.WorkingSet)
				}
				if profile.ChaseFrac == 0 {
					t.Error("low-ILP benchmark without pointer chasing")
				}
			case synth.HighILP:
				if profile.WorkingSet > 1<<20 {
					t.Errorf("high-ILP working set %d above 1MB", profile.WorkingSet)
				}
				if profile.ChaseFrac != 0 {
					t.Error("high-ILP benchmark with pointer chasing")
				}
			}

			// FP benchmarks must execute FP work; integer ones must not.
			if fpBenchmarks[name] && fp == 0 {
				t.Error("FP benchmark executed no FP operations")
			}
			if !fpBenchmarks[name] && fp != 0 {
				t.Errorf("integer benchmark executed %d FP operations", fp)
			}
		})
	}
}
