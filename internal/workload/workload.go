// Package workload encodes the paper's benchmark roster and multithreaded
// workload mixes.
//
// The paper simulates SPEC CPU2000 benchmarks classified as low, medium,
// or high ILP from single-threaded baseline runs (Section 2), then builds
// 12 mixes each of 2, 3, and 4 threads (Tables 2-4). We cannot run the
// Alpha binaries, so each benchmark name is bound to a synthetic profile
// (package synth) of the matching ILP class; per-benchmark parameter
// perturbations (derived deterministically from the name) keep the
// benchmarks within a class from being identical clones.
package workload

import (
	"fmt"
	"sort"

	"smtsim/internal/synth"
)

// class lists the paper-aligned ILP classification of every SPEC CPU2000
// benchmark we model. Benchmarks appearing in the mix tables follow the
// grouping of Tables 2-4; the remaining SPEC benchmarks (mcf, sixtrack)
// are classified from their well-known behaviour.
var class = map[string]synth.ILPClass{
	// memory-bound
	"art": synth.LowILP, "equake": synth.LowILP, "lucas": synth.LowILP,
	"swim": synth.LowILP, "twolf": synth.LowILP, "vpr": synth.LowILP,
	"parser": synth.LowILP, "mcf": synth.LowILP,
	// in between
	"applu": synth.MedILP, "ammp": synth.MedILP, "galgel": synth.MedILP,
	"gcc": synth.MedILP, "bzip2": synth.MedILP, "apsi": synth.MedILP,
	"fma3d": synth.MedILP, "mgrid": synth.MedILP, "sixtrack": synth.MedILP,
	// execution-bound
	"eon": synth.HighILP, "facerec": synth.HighILP, "crafty": synth.HighILP,
	"perlbmk": synth.HighILP, "gap": synth.HighILP, "wupwise": synth.HighILP,
	"gzip": synth.HighILP, "vortex": synth.HighILP, "mesa": synth.HighILP,
}

// fpBenchmarks marks the SPEC floating-point benchmarks; their profiles
// shift the type mix toward floating-point operation classes.
var fpBenchmarks = map[string]bool{
	"wupwise": true, "swim": true, "mgrid": true, "applu": true,
	"mesa": true, "galgel": true, "art": true, "equake": true,
	"facerec": true, "ammp": true, "lucas": true, "fma3d": true,
	"sixtrack": true, "apsi": true,
}

// Names returns all modeled benchmark names in sorted order.
func Names() []string {
	names := make([]string, 0, len(class))
	for n := range class {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Class returns the ILP classification of a benchmark.
func Class(name string) (synth.ILPClass, error) {
	c, ok := class[name]
	if !ok {
		return 0, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return c, nil
}

// nameHash gives each benchmark a stable 64-bit identity used to seed its
// structural randomness and perturb its profile within the class template.
func nameHash(name string) uint64 {
	var h uint64 = 0xcbf29ce484222325 // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}

// ProfileFor builds the synthetic profile standing in for a benchmark.
func ProfileFor(name string) (synth.Profile, error) {
	c, ok := class[name]
	if !ok {
		return synth.Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	var p synth.Profile
	switch c {
	case synth.LowILP:
		p = synth.LowILPProfile(name)
	case synth.MedILP:
		p = synth.MedILPProfile(name)
	default:
		p = synth.HighILPProfile(name)
	}

	// Deterministic within-class variation so the twelve mixes are not
	// twelve copies of the same three kernels.
	h := nameHash(name)
	jitter := func(salt uint64, span float64) float64 {
		// in [-span, +span]
		v := float64((h^salt*0x9E3779B97F4A7C15)%1024)/1024.0*2 - 1
		return v * span
	}
	p.DepP = clampRange(p.DepP*(1+jitter(1, 0.25)), 0.05, 0.9)
	p.FarSrcFrac = clampRange(p.FarSrcFrac+jitter(7, 0.08), 0, 0.95)
	p.BranchBias = clampRange(p.BranchBias+jitter(2, 0.03), 0.5, 0.99)
	p.BranchNoise = clampRange(p.BranchNoise*(1+jitter(3, 0.5)), 0, 0.5)
	p.StridedFrac = clampRange(p.StridedFrac+jitter(4, 0.15), 0, 1)
	if p.ChaseFrac > 0 {
		p.ChaseFrac = clampRange(p.ChaseFrac*(1+jitter(5, 0.3)), 0, 1)
	}
	// Working sets vary by up to 2x either way within the class.
	scale := 1.0 + jitter(6, 0.5)
	p.WorkingSet = uint64(float64(p.WorkingSet) * (scale + 1.0) / 1.5)
	if p.WorkingSet < 4096 {
		p.WorkingSet = 4096
	}
	// Code-shape variation changes I-cache and predictor pressure.
	p.Blocks += int(h % 5)
	p.BlockLen += int((h >> 8) % 5)

	if fpBenchmarks[name] {
		p.Mix.FpAdd *= 2.2
		p.Mix.FpMult *= 2.2
		p.Mix.IntAlu *= 0.7
	} else {
		p.Mix.FpAdd = 0
		p.Mix.FpMult = 0
		p.Mix.FpDiv = 0
		p.Mix.FpSqrt = 0
		p.Mix.IntAlu *= 1.2
	}
	return p, nil
}

// CompileBenchmark compiles the named benchmark's synthetic program. The
// structural seed is derived from the name, so every simulator run sees
// the same "binary".
func CompileBenchmark(name string) (*synth.Program, error) {
	p, err := ProfileFor(name)
	if err != nil {
		return nil, err
	}
	return synth.Compile(p, nameHash(name))
}

func clampRange(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Mix is one multithreaded workload: a named list of benchmarks, one per
// hardware thread context.
type Mix struct {
	Name       string
	Benchmarks []string
}

// Threads returns the number of threads in the mix.
func (m Mix) Threads() int { return len(m.Benchmarks) }

// String renders "Mix 3(gcc,bzip2,eon)".
func (m Mix) String() string {
	s := m.Name + "("
	for i, b := range m.Benchmarks {
		if i > 0 {
			s += ","
		}
		s += b
	}
	return s + ")"
}

// Mixes4 reproduces Table 2: the twelve simulated 4-threaded workloads.
var Mixes4 = []Mix{
	{"Mix 1", []string{"mgrid", "equake", "art", "lucas"}},
	{"Mix 2", []string{"twolf", "vpr", "swim", "parser"}},
	{"Mix 3", []string{"applu", "ammp", "mgrid", "galgel"}},
	{"Mix 4", []string{"gcc", "bzip2", "eon", "apsi"}},
	{"Mix 5", []string{"facerec", "crafty", "perlbmk", "gap"}},
	{"Mix 6", []string{"wupwise", "gzip", "vortex", "mesa"}},
	{"Mix 7", []string{"parser", "equake", "mesa", "vortex"}},
	{"Mix 8", []string{"parser", "swim", "crafty", "perlbmk"}},
	{"Mix 9", []string{"art", "lucas", "galgel", "gcc"}},
	{"Mix 10", []string{"parser", "swim", "gcc", "bzip2"}},
	{"Mix 11", []string{"gzip", "wupwise", "fma3d", "apsi"}},
	{"Mix 12", []string{"vortex", "mesa", "mgrid", "eon"}},
}

// Mixes3 reproduces Table 4: the twelve simulated 3-threaded workloads.
var Mixes3 = []Mix{
	{"Mix 1", []string{"mgrid", "equake", "art"}},
	{"Mix 2", []string{"twolf", "vpr", "swim"}},
	{"Mix 3", []string{"applu", "ammp", "mgrid"}},
	{"Mix 4", []string{"gcc", "bzip2", "eon"}},
	{"Mix 5", []string{"facerec", "crafty", "perlbmk"}},
	{"Mix 6", []string{"wupwise", "gzip", "vortex"}},
	{"Mix 7", []string{"parser", "equake", "mesa"}},
	{"Mix 8", []string{"perlbmk", "parser", "crafty"}},
	{"Mix 9", []string{"art", "lucas", "galgel"}},
	{"Mix 10", []string{"parser", "bzip2", "gcc"}},
	{"Mix 11", []string{"gzip", "wupwise", "fma3d"}},
	{"Mix 12", []string{"vortex", "eon", "mgrid"}},
}

// Mixes2 reproduces Table 3: the twelve simulated 2-threaded workloads.
var Mixes2 = []Mix{
	{"Mix 1", []string{"equake", "lucas"}},
	{"Mix 2", []string{"twolf", "vpr"}},
	{"Mix 3", []string{"gcc", "bzip2"}},
	{"Mix 4", []string{"mgrid", "galgel"}},
	{"Mix 5", []string{"facerec", "wupwise"}},
	{"Mix 6", []string{"crafty", "gzip"}},
	{"Mix 7", []string{"parser", "vortex"}},
	{"Mix 8", []string{"swim", "gap"}},
	{"Mix 9", []string{"twolf", "bzip2"}},
	{"Mix 10", []string{"equake", "gcc"}},
	{"Mix 11", []string{"applu", "mesa"}},
	{"Mix 12", []string{"ammp", "gzip"}},
}

// MixesFor returns the paper's mix table for the given thread count
// (2, 3, or 4).
func MixesFor(threads int) ([]Mix, error) {
	switch threads {
	case 2:
		return Mixes2, nil
	case 3:
		return Mixes3, nil
	case 4:
		return Mixes4, nil
	}
	return nil, fmt.Errorf("workload: no mix table for %d threads", threads)
}
