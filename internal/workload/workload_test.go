package workload

import (
	"testing"

	"smtsim/internal/synth"
)

// TestMixTables verifies the exact mix definitions of Tables 2-4.
func TestMixTables(t *testing.T) {
	if len(Mixes4) != 12 || len(Mixes3) != 12 || len(Mixes2) != 12 {
		t.Fatalf("mix table sizes: %d/%d/%d, want 12 each", len(Mixes4), len(Mixes3), len(Mixes2))
	}
	for _, m := range Mixes4 {
		if m.Threads() != 4 {
			t.Errorf("%s has %d threads, want 4", m.Name, m.Threads())
		}
	}
	for _, m := range Mixes3 {
		if m.Threads() != 3 {
			t.Errorf("%s has %d threads, want 3", m.Name, m.Threads())
		}
	}
	for _, m := range Mixes2 {
		if m.Threads() != 2 {
			t.Errorf("%s has %d threads, want 2", m.Name, m.Threads())
		}
	}
	// Spot-check rows against the paper's tables.
	spot := []struct {
		got  Mix
		want []string
	}{
		{Mixes4[0], []string{"mgrid", "equake", "art", "lucas"}},
		{Mixes4[6], []string{"parser", "equake", "mesa", "vortex"}},
		{Mixes4[11], []string{"vortex", "mesa", "mgrid", "eon"}},
		{Mixes3[7], []string{"perlbmk", "parser", "crafty"}},
		{Mixes2[4], []string{"facerec", "wupwise"}},
		{Mixes2[11], []string{"ammp", "gzip"}},
	}
	for _, s := range spot {
		if len(s.got.Benchmarks) != len(s.want) {
			t.Fatalf("%s has %d entries", s.got.Name, len(s.got.Benchmarks))
		}
		for i := range s.want {
			if s.got.Benchmarks[i] != s.want[i] {
				t.Errorf("%s[%d] = %s, want %s", s.got.Name, i, s.got.Benchmarks[i], s.want[i])
			}
		}
	}
}

// TestAllMixBenchmarksModeled: every benchmark named by any mix must have
// a profile.
func TestAllMixBenchmarksModeled(t *testing.T) {
	for _, table := range [][]Mix{Mixes2, Mixes3, Mixes4} {
		for _, m := range table {
			for _, b := range m.Benchmarks {
				if _, err := ProfileFor(b); err != nil {
					t.Errorf("%s in %s: %v", b, m.Name, err)
				}
			}
		}
	}
}

func TestClassLookup(t *testing.T) {
	cases := map[string]synth.ILPClass{
		"equake": synth.LowILP, "art": synth.LowILP,
		"gcc": synth.MedILP, "mgrid": synth.MedILP,
		"gzip": synth.HighILP, "vortex": synth.HighILP,
	}
	for name, want := range cases {
		got, err := Class(name)
		if err != nil || got != want {
			t.Errorf("Class(%s) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := Class("doom3"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestProfilesValidAndDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range Names() {
		p, err := ProfileFor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s profile invalid: %v", name, err)
		}
		key := profileKey(p)
		if seen[key] {
			t.Errorf("%s profile identical to another benchmark's", name)
		}
		seen[key] = true
	}
}

func profileKey(p synth.Profile) string {
	q := p
	q.Name = ""
	return fmtProfile(q)
}

func fmtProfile(p synth.Profile) string {
	return string(rune(p.Blocks)) + string(rune(p.BlockLen)) +
		fmtF(p.DepP) + fmtF(p.FarSrcFrac) + fmtF(p.BranchBias) +
		fmtF(p.ChaseFrac) + fmtF(float64(p.WorkingSet))
}

func fmtF(f float64) string { return string(rune(int(f * 1e6 / 1e3))) }

func TestProfileDeterministic(t *testing.T) {
	a, _ := ProfileFor("equake")
	b, _ := ProfileFor("equake")
	if a != b {
		t.Error("ProfileFor not deterministic")
	}
}

func TestCompileBenchmark(t *testing.T) {
	prog, err := CompileBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if prog.StaticSize() == 0 {
		t.Error("empty program")
	}
	if _, err := CompileBenchmark("nonexistent"); err == nil {
		t.Error("unknown benchmark compiled")
	}
}

func TestMixesFor(t *testing.T) {
	for threads, want := range map[int][]Mix{2: Mixes2, 3: Mixes3, 4: Mixes4} {
		got, err := MixesFor(threads)
		if err != nil || len(got) != len(want) {
			t.Errorf("MixesFor(%d): %v, %d mixes", threads, err, len(got))
		}
	}
	if _, err := MixesFor(5); err == nil {
		t.Error("MixesFor(5) accepted")
	}
}

func TestMixString(t *testing.T) {
	m := Mix{Name: "Mix 1", Benchmarks: []string{"a", "b"}}
	if m.String() != "Mix 1(a,b)" {
		t.Errorf("Mix.String() = %q", m.String())
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 26 {
		t.Errorf("modeled %d benchmarks, want all 26 of SPEC CPU2000", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names not sorted")
		}
	}
}

func TestClassBalanceAcrossRoster(t *testing.T) {
	counts := map[synth.ILPClass]int{}
	for _, n := range Names() {
		c, _ := Class(n)
		counts[c]++
	}
	for class, n := range counts {
		if n < 4 {
			t.Errorf("only %d benchmarks in class %v", n, class)
		}
	}
}
