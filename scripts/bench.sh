#!/usr/bin/env bash
# bench.sh — record the hot-path benchmarks to a JSON artifact.
#
# Runs the end-to-end machine benchmark plus the issue-queue
# microbenchmarks with allocation reporting, 5 samples each, and stores
# both the raw `go test -bench` output and machine context so before/after
# comparisons stay honest.
#
# Usage: scripts/bench.sh [output.json]
#   output.json   artifact path (default: $BENCH_OUT, then BENCH.json)
#   COUNT=N       samples per benchmark (default 5)
#   SKIP_LINT=1   skip the lint gate (throwaway local measurements only)
#
# Numbers are only worth recording from a tree that passes the
# repository's own analyzer suite — a hot-path regression smtlint would
# have flagged makes the artifact unrepresentative — so the script
# refuses to record unless `make lint` is clean.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-${BENCH_OUT:-BENCH.json}}"
COUNT="${COUNT:-5}"

if [[ "${SKIP_LINT:-0}" != 1 ]]; then
    if ! make lint >/dev/null 2>&1; then
        echo "bench.sh: refusing to record benchmarks: 'make lint' fails." >&2
        echo "bench.sh: fix the lint findings, or rerun with SKIP_LINT=1 for a throwaway measurement." >&2
        exit 1
    fi
fi

RAW="$(go test -run xxx -bench 'Table1Machine|IQ|SweepStore' -benchmem -count "$COUNT" ./... 2>&1 | grep -E '^(Benchmark|ok|PASS|goos|goarch|pkg|cpu)' || true)"

# Assemble a small JSON document: context + raw benchmark lines.
RAW="$RAW" OUT="$OUT" COUNT="$COUNT" python3 - <<'EOF'
import json, os, subprocess, sys

raw = os.environ["RAW"].rstrip("\n")
go_version = subprocess.run(["go", "version"], capture_output=True, text=True).stdout.strip()
doc = {
    "benchmarks": "Table1Machine|IQ|SweepStore",
    "count": int(os.environ["COUNT"]),
    "go": go_version,
    # Seed-commit polling implementation, measured on the same machine
    # (Xeon @ 2.10GHz) before the event-driven wakeup landed — the
    # reference for the >=2x acceptance criterion.
    "seed_baseline": {
        "commit": "53b1c2d",
        "BenchmarkTable1Machine": {
            "cycles_per_s": 368174,
            "instrs_per_s": 353888,
            "B_per_op": 6354201,
            "allocs_per_op": 153554,
        },
        "BenchmarkStep_ns_per_op": {"traditional": 1789, "2op-block": 2046, "2op-ooo-dispatch": 2305},
        "BenchmarkStep_allocs_per_op": 6,
    },
    "lines": raw.split("\n"),
}
with open(os.environ["OUT"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT']}")

# Delta table: compare the end-to-end machine benchmark against the
# most recent prior BENCH_PR*.json artifact (same-host history), so a
# recording immediately shows what the change bought or cost.
import glob, re, statistics

def table1_medians(lines):
    """Median ns/op, cycles/s, B/op, allocs/op of BenchmarkTable1Machine lines."""
    cols = {"ns/op": [], "cycles/s": [], "B/op": [], "allocs/op": []}
    for ln in lines:
        if not ln.startswith("BenchmarkTable1Machine"):
            continue
        for val, unit in re.findall(r"([\d.]+)\s+(ns/op|cycles/s|B/op|allocs/op)", ln):
            cols[unit].append(float(val))
    return {u: statistics.median(v) for u, v in cols.items() if v}

def pr_number(path):
    m = re.search(r"BENCH_PR(\d+)\.json$", path)
    return int(m.group(1)) if m else -1

out = os.path.abspath(os.environ["OUT"])
priors = [p for p in sorted(glob.glob("BENCH_PR*.json"), key=pr_number)
          if pr_number(p) >= 0 and os.path.abspath(p) != out]
if priors:
    prior = priors[-1]
    with open(prior) as f:
        prev = table1_medians(json.load(f).get("lines", []))
    cur = table1_medians(raw.split("\n"))
    both = [u for u in ("cycles/s", "ns/op", "B/op", "allocs/op") if u in prev and u in cur]
    if both:
        print(f"\nBenchmarkTable1Machine medians vs {prior}:")
        print(f"  {'metric':<10} {'prior':>12} {'now':>12} {'delta':>8}")
        for u in both:
            d = (cur[u] - prev[u]) / prev[u] * 100 if prev[u] else float("nan")
            print(f"  {u:<10} {prev[u]:>12.0f} {cur[u]:>12.0f} {d:>+7.1f}%")
    else:
        print(f"\nno comparable BenchmarkTable1Machine lines in {prior}")
EOF
