#!/usr/bin/env bash
# bench.sh — record the hot-path benchmarks to BENCH_PR1.json.
#
# Runs the end-to-end machine benchmark plus the issue-queue
# microbenchmarks with allocation reporting, 5 samples each, and stores
# both the raw `go test -bench` output and machine context so before/after
# comparisons stay honest.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR1.json}"
COUNT="${COUNT:-5}"

RAW="$(go test -run xxx -bench 'Table1Machine|IQ' -benchmem -count "$COUNT" ./... 2>&1 | grep -E '^(Benchmark|ok|PASS|goos|goarch|pkg|cpu)' || true)"

# Assemble a small JSON document: context + raw benchmark lines.
RAW="$RAW" OUT="$OUT" COUNT="$COUNT" python3 - <<'EOF'
import json, os, subprocess, sys

raw = os.environ["RAW"].rstrip("\n")
go_version = subprocess.run(["go", "version"], capture_output=True, text=True).stdout.strip()
doc = {
    "benchmarks": "Table1Machine|IQ",
    "count": int(os.environ["COUNT"]),
    "go": go_version,
    # Seed-commit polling implementation, measured on the same machine
    # (Xeon @ 2.10GHz) before the event-driven wakeup landed — the
    # reference for the >=2x acceptance criterion.
    "seed_baseline": {
        "commit": "53b1c2d",
        "BenchmarkTable1Machine": {
            "cycles_per_s": 368174,
            "instrs_per_s": 353888,
            "B_per_op": 6354201,
            "allocs_per_op": 153554,
        },
        "BenchmarkStep_ns_per_op": {"traditional": 1789, "2op-block": 2046, "2op-ooo-dispatch": 2305},
        "BenchmarkStep_allocs_per_op": 6,
    },
    "lines": raw.split("\n"),
}
with open(os.environ["OUT"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT']}")
EOF
