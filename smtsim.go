// Package smtsim is a simultaneous-multithreading (SMT) processor
// simulator reproducing Sharkey & Ponomarev, "Balancing ILP and TLP in
// SMT Architectures through Out-of-Order Instruction Dispatch" (ICPP
// 2006).
//
// The simulator models an 8-wide SMT machine (the paper's Table 1
// configuration): shared issue queue, physical register files, functional
// units and caches; per-thread rename tables, reorder buffers, load/store
// queues and branch predictors. Three scheduler designs are provided:
//
//   - Traditional: two tag comparators per issue-queue entry, in-order
//     dispatch within each thread.
//   - TwoOpBlock: one comparator per entry; an instruction with two
//     non-ready sources blocks its thread at dispatch (HPCA'06 design).
//   - TwoOpOOOD: TwoOpBlock plus the paper's contribution — out-of-order
//     dispatch within each thread, with a deadlock-avoidance buffer.
//
// Workloads are deterministic synthetic kernels standing in for the SPEC
// CPU2000 benchmarks of the paper's mix tables; see DESIGN.md for the
// substitution rationale.
//
// A minimal run:
//
//	res, err := smtsim.Run(smtsim.Config{
//		Benchmarks:      []string{"equake", "gzip"},
//		IQSize:          64,
//		Scheduler:       smtsim.TwoOpOOOD,
//		MaxInstructions: 200_000,
//	})
package smtsim

import (
	"fmt"

	"smtsim/internal/cache"
	"smtsim/internal/core"
	"smtsim/internal/fetch"
	"smtsim/internal/iq"
	"smtsim/internal/metrics"
	"smtsim/internal/pipeline"
	"smtsim/internal/tracefile"
	"smtsim/internal/workload"
)

// Scheduler selects one of the studied scheduler/dispatch designs.
type Scheduler uint8

const (
	// Traditional is the baseline SMT scheduler: two tag comparators per
	// IQ entry, in-order dispatch per thread.
	Traditional Scheduler = iota
	// TwoOpBlock blocks dispatch of instructions with two non-ready
	// source operands (one comparator per IQ entry).
	TwoOpBlock
	// TwoOpOOOD augments TwoOpBlock with out-of-order dispatch within
	// each thread — the paper's proposal.
	TwoOpOOOD
	// TwoOpOOODFiltered is the idealized ablation that additionally
	// withholds NDI-dependent instructions at zero modeled cost.
	TwoOpOOODFiltered
	// TagElimination is a statically partitioned mixed-comparator queue
	// (Ernst & Austin style) with in-order dispatch — a related-work
	// reference point.
	TagElimination
	// TagEliminationOOOD applies the paper's out-of-order dispatch to
	// the tag-elimination queue.
	TagEliminationOOOD
)

// String names the scheduler as in the harness output.
func (s Scheduler) String() string { return s.policy().String() }

func (s Scheduler) policy() core.Policy {
	switch s {
	case TwoOpBlock:
		return core.TwoOpBlock
	case TwoOpOOOD:
		return core.TwoOpOOOD
	case TwoOpOOODFiltered:
		return core.TwoOpOOODFiltered
	case TagElimination:
		return core.TagElim
	case TagEliminationOOOD:
		return core.TagElimOOOD
	default:
		return core.InOrder
	}
}

// ParseScheduler converts a scheduler name (as printed by String) back
// to a Scheduler value.
func ParseScheduler(name string) (Scheduler, error) {
	for _, s := range []Scheduler{Traditional, TwoOpBlock, TwoOpOOOD, TwoOpOOODFiltered, TagElimination, TagEliminationOOOD} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("smtsim: unknown scheduler %q", name)
}

// Schedulers lists the three designs the paper compares, in presentation
// order.
var Schedulers = []Scheduler{Traditional, TwoOpBlock, TwoOpOOOD}

// DeadlockMechanism selects the out-of-order-dispatch deadlock guard.
type DeadlockMechanism uint8

const (
	// DeadlockDAB uses the deadlock-avoidance buffer (the paper's
	// evaluated mechanism, the default).
	DeadlockDAB DeadlockMechanism = iota
	// DeadlockWatchdog uses the watchdog-timer flush alternative.
	DeadlockWatchdog
	// DeadlockNone disables both; deadlocks are then reported as errors.
	DeadlockNone
)

// Config describes one simulation run.
type Config struct {
	// Benchmarks names the workload of each hardware thread; see
	// BenchmarkNames for the roster. One entry per thread.
	Benchmarks []string

	// TraceFiles, when non-empty, replaces Benchmarks: each file (in
	// the tracefile format, see cmd/smttrace) drives one hardware
	// thread, replayed in a loop. Thread names are the file paths.
	TraceFiles []string

	// IQSize is the shared issue-queue capacity (the paper sweeps 32,
	// 48, 64, 96, 128). Defaults to 64.
	IQSize int

	// Scheduler selects the design under study.
	Scheduler Scheduler

	// MaxInstructions stops the run once any thread commits this many
	// instructions (the paper's stopping rule). Defaults to 200_000.
	MaxInstructions uint64

	// Seed perturbs the workloads' data addresses and branch outcomes;
	// the same (Config, Seed) pair always produces identical results.
	Seed uint64

	// WarmupInstructions, when non-zero, runs the machine until any
	// thread commits this many instructions and then resets all
	// statistics, so measurement starts from warm caches and predictors
	// (the paper skips initialization with SimPoints). The measured run
	// of MaxInstructions follows.
	WarmupInstructions uint64

	// Deadlock selects the OOOD deadlock mechanism (default DAB).
	Deadlock DeadlockMechanism

	// DispatchBufferCap overrides the per-thread renamed-instruction
	// buffer capacity (default 16) — the window out-of-order dispatch
	// scans for hidden dispatchable instructions.
	DispatchBufferCap int

	// IQPartition optionally sets a mixed-comparator queue: entries
	// with zero, one, and two tag comparators respectively. Overrides
	// IQSize when non-zero (capacity = sum of the classes).
	IQPartition [3]int

	// RoundRobinFetch replaces the default ICOUNT fetch policy.
	RoundRobinFetch bool

	// ThreadRotateSelect replaces oldest-first issue selection with a
	// per-cycle thread-rotating arbiter (a cheap position-style select).
	ThreadRotateSelect bool

	// PerThreadIQCap statically partitions the issue queue among threads
	// (0 = fully shared, the paper's configuration).
	PerThreadIQCap int

	// FetchGate layers a miss-driven fetch-gating policy (Section 6
	// related work) over the thread selector: "" or "none" (baseline),
	// "stall", "flush", or "data-gate".
	FetchGate string

	// ROBPerThread and LSQPerThread override the Table 1 window sizes
	// when non-zero (96 and 48).
	ROBPerThread int
	LSQPerThread int

	// WatchdogLimit overrides the watchdog countdown (cycles) when
	// Deadlock == DeadlockWatchdog.
	WatchdogLimit int64

	// MSHRs bounds outstanding L1 data-cache misses per core (0 =
	// unlimited, the default trace-driven simplification).
	MSHRs int

	// MemoryLatency overrides the main-memory access latency in cycles
	// (0 = Table 1's 150). The cache geometries stay fixed.
	MemoryLatency int

	// PollingWakeup selects the legacy per-cycle polling scheduler
	// wakeup instead of the event-driven tag broadcast. The two are
	// bit-identical in simulated behavior (the differential tests prove
	// it); polling exists only as the cross-check reference and is
	// substantially slower.
	PollingWakeup bool

	// Sanitize enables the cycle-granular invariant sanitizer (package
	// internal/simsan): every structural contract of the machine is
	// re-validated each simulated cycle and the first violation is
	// returned as an error. Read-only — a clean sanitized run is
	// bit-identical to an unsanitized one — but roughly an order of
	// magnitude slower; meant for tests, fuzzing, and debugging.
	Sanitize bool
}

// ThreadResult reports one thread's outcome.
type ThreadResult struct {
	Benchmark      string
	Committed      uint64
	IPC            float64
	MispredictRate float64
}

// Result reports a simulation run. The statistics mirror those the paper
// discusses; see the field comments in internal/metrics for definitions.
type Result struct {
	Cycles    int64
	Committed uint64
	IPC       float64
	Threads   []ThreadResult

	// DispatchStallAllNDI is the fraction of cycles (among cycles with
	// dispatchable work) in which every thread was blocked by the
	// two-non-ready-operand condition (Section 3's statistic).
	DispatchStallAllNDI float64
	// DispatchStallNDIWeak is the looser variant that ignores threads
	// starved upstream of dispatch.
	DispatchStallNDIWeak float64
	// DispatchStallAllAny is the fraction of work cycles with zero
	// dispatches for any reason.
	DispatchStallAllAny float64

	// IQResidency is the mean dispatch-to-issue latency in cycles.
	IQResidency float64
	// IQOccupancy is the mean number of occupied IQ entries.
	IQOccupancy float64

	// HDIPiledFrac is the fraction of instructions behind a blocking NDI
	// that were themselves dispatchable (paper: ~90%).
	HDIPiledFrac float64
	// HDIDepOnNDIFrac is the fraction of out-of-order dispatches that
	// depended on a blocked NDI (paper: ~10%).
	HDIDepOnNDIFrac float64
	// HDIDispatched counts out-of-order dispatches.
	HDIDispatched uint64

	// DABInserts counts deadlock-avoidance-buffer captures;
	// WatchdogFlushes counts watchdog pipeline flushes; GateFlushes
	// counts FLUSH fetch-gate partial squashes.
	DABInserts      uint64
	WatchdogFlushes uint64
	GateFlushes     uint64
	// MSHRStallEvents counts load issues rejected for want of a free
	// miss-status register (only with finite MSHRs configured).
	MSHRStallEvents uint64

	// SchedulerEnergyPerInst, SchedulerEDP, and Comparators quantify
	// the scheduling-logic cost (package internal/power): relative
	// energy per instruction, energy-delay product, and the queue's
	// total tag comparators.
	SchedulerEnergyPerInst float64
	SchedulerEDP           float64
	Comparators            int

	// Cache behaviour.
	L1DMissRate float64
	L2MissRate  float64
	L1IMissRate float64
}

// fromMetrics converts the internal result record.
func fromMetrics(m metrics.Results) Result {
	r := Result{
		Cycles:                 m.Cycles,
		Committed:              m.Committed,
		IPC:                    m.IPC,
		DispatchStallAllNDI:    m.DispatchStallAllNDI,
		DispatchStallNDIWeak:   m.DispatchStallNDIWeak,
		DispatchStallAllAny:    m.DispatchStallAllAny,
		IQResidency:            m.IQResidency,
		IQOccupancy:            m.IQOccupancy,
		HDIPiledFrac:           m.HDIPiledFrac,
		HDIDepOnNDIFrac:        m.HDIDepOnNDIFrac,
		HDIDispatched:          m.HDIDispatched,
		DABInserts:             m.DABInserts,
		WatchdogFlushes:        m.WatchdogFlushes,
		GateFlushes:            m.GateFlushes,
		MSHRStallEvents:        m.MSHRStallEvents,
		SchedulerEnergyPerInst: m.SchedulerEnergyPerInst,
		SchedulerEDP:           m.SchedulerEDP,
		Comparators:            m.Comparators,
		L1DMissRate:            m.L1DMissRate,
		L2MissRate:             m.L2MissRate,
		L1IMissRate:            m.L1IMissRate,
	}
	for _, t := range m.Threads {
		r.Threads = append(r.Threads, ThreadResult{
			Benchmark:      t.Benchmark,
			Committed:      t.Committed,
			IPC:            t.IPC,
			MispredictRate: t.MispredictRate,
		})
	}
	return r
}

// PerThreadIPCs returns the per-thread IPC vector.
func (r Result) PerThreadIPCs() []float64 {
	out := make([]float64, len(r.Threads))
	for i, t := range r.Threads {
		out[i] = t.IPC
	}
	return out
}

// newCore builds the pipeline for cfg.
func newCore(cfg Config) (*pipeline.Core, error) {
	if len(cfg.Benchmarks) == 0 && len(cfg.TraceFiles) == 0 {
		return nil, fmt.Errorf("smtsim: no benchmarks or trace files configured")
	}
	if len(cfg.Benchmarks) > 0 && len(cfg.TraceFiles) > 0 {
		return nil, fmt.Errorf("smtsim: Benchmarks and TraceFiles are mutually exclusive")
	}
	// Reject negative knobs here with a descriptive error; deeper layers
	// treat their inputs as already-validated and panic on nonsense.
	switch {
	case cfg.IQSize < 0:
		return nil, fmt.Errorf("smtsim: negative IQ size %d", cfg.IQSize)
	case cfg.IQPartition[0] < 0 || cfg.IQPartition[1] < 0 || cfg.IQPartition[2] < 0:
		return nil, fmt.Errorf("smtsim: negative IQ partition class in %v", cfg.IQPartition)
	case cfg.DispatchBufferCap < 0:
		return nil, fmt.Errorf("smtsim: negative dispatch buffer capacity %d", cfg.DispatchBufferCap)
	case cfg.PerThreadIQCap < 0:
		return nil, fmt.Errorf("smtsim: negative per-thread IQ cap %d", cfg.PerThreadIQCap)
	case cfg.ROBPerThread < 0 || cfg.LSQPerThread < 0:
		return nil, fmt.Errorf("smtsim: negative ROB/LSQ capacity %d/%d", cfg.ROBPerThread, cfg.LSQPerThread)
	case cfg.WatchdogLimit < 0:
		return nil, fmt.Errorf("smtsim: negative watchdog limit %d", cfg.WatchdogLimit)
	case cfg.MSHRs < 0:
		return nil, fmt.Errorf("smtsim: negative MSHR count %d", cfg.MSHRs)
	case cfg.MemoryLatency < 0:
		return nil, fmt.Errorf("smtsim: negative memory latency %d", cfg.MemoryLatency)
	}
	pcfg := pipeline.DefaultConfig()
	if cfg.IQSize > 0 {
		pcfg.IQSize = cfg.IQSize
	}
	pcfg.Policy = cfg.Scheduler.policy()
	switch cfg.Deadlock {
	case DeadlockWatchdog:
		pcfg.Deadlock = pipeline.DeadlockWatchdog
	case DeadlockNone:
		pcfg.Deadlock = pipeline.DeadlockNone
	}
	if cfg.DispatchBufferCap > 0 {
		pcfg.DispatchBufCap = cfg.DispatchBufferCap
	}
	if p := (iq.Partition{cfg.IQPartition[0], cfg.IQPartition[1], cfg.IQPartition[2]}); p.Total() > 0 {
		pcfg.IQPartition = p
		pcfg.IQSize = p.Total()
	}
	if cfg.RoundRobinFetch {
		pcfg.FetchPolicy = fetch.RoundRobin
	}
	if cfg.ThreadRotateSelect {
		pcfg.Select = iq.ThreadRotate
	}
	if cfg.PerThreadIQCap > 0 {
		pcfg.PerThreadIQCap = cfg.PerThreadIQCap
	}
	if cfg.FetchGate != "" {
		g, err := pipeline.ParseFetchGate(cfg.FetchGate)
		if err != nil {
			return nil, err
		}
		pcfg.FetchGate = g
	}
	if cfg.ROBPerThread > 0 {
		pcfg.ROBPerThread = cfg.ROBPerThread
	}
	if cfg.LSQPerThread > 0 {
		pcfg.LSQPerThread = cfg.LSQPerThread
	}
	if cfg.WatchdogLimit > 0 {
		pcfg.WatchdogLimit = cfg.WatchdogLimit
	}
	if cfg.MSHRs > 0 {
		pcfg.MSHRs = cfg.MSHRs
	}
	pcfg.PollingWakeup = cfg.PollingWakeup
	pcfg.Sanitize = cfg.Sanitize
	if cfg.MemoryLatency > 0 {
		h := cache.DefaultHierarchy()
		h.MemCycles = cfg.MemoryLatency
		pcfg.Hierarchy = h
	}

	var specs []pipeline.ThreadSpec
	for t, name := range cfg.Benchmarks {
		prog, err := workload.CompileBenchmark(name)
		if err != nil {
			return nil, err
		}
		// Distinct per-thread seeds: two copies of the same benchmark in
		// one mix see different data and branch outcomes.
		specs = append(specs, pipeline.ThreadSpec{
			Name:   name,
			Reader: prog.NewStream(cfg.Seed ^ (uint64(t+1) * 0x9E3779B97F4A7C15)),
		})
	}
	for _, path := range cfg.TraceFiles {
		tr, err := tracefile.Load(path)
		if err != nil {
			return nil, err
		}
		specs = append(specs, pipeline.ThreadSpec{Name: path, Reader: tr.Stream(true)})
	}
	return pipeline.New(pcfg, specs)
}

// Run executes one simulation and returns its results.
func Run(cfg Config) (Result, error) {
	c, err := newCore(cfg)
	if err != nil {
		return Result{}, err
	}
	budget := cfg.MaxInstructions
	if budget == 0 {
		budget = 200_000
	}
	if err := c.Warmup(cfg.WarmupInstructions); err != nil {
		return Result{}, err
	}
	m, err := c.Run(budget)
	return fromMetrics(m), err
}

// BenchmarkNames lists the modeled SPEC CPU2000 benchmark names.
func BenchmarkNames() []string { return workload.Names() }

// BenchmarkClass returns "low", "med", or "high" — the paper's ILP
// classification of the benchmark.
func BenchmarkClass(name string) (string, error) {
	c, err := workload.Class(name)
	if err != nil {
		return "", err
	}
	return c.String(), nil
}

// Mixes returns the paper's workload mixes (Tables 2-4) for the given
// thread count (2, 3, or 4): twelve named benchmark lists.
func Mixes(threads int) ([][]string, []string, error) {
	ms, err := workload.MixesFor(threads)
	if err != nil {
		return nil, nil, err
	}
	var lists [][]string
	var names []string
	for _, m := range ms {
		lists = append(lists, append([]string(nil), m.Benchmarks...))
		names = append(names, m.Name)
	}
	return lists, names, nil
}

// HarmonicMean exposes the aggregation used for the paper's cross-mix
// summaries.
func HarmonicMean(xs []float64) float64 { return metrics.HarmonicMean(xs) }

// FairnessMetric computes the harmonic mean of weighted IPCs (Luo et
// al.): each thread's SMT IPC divided by its single-threaded IPC on the
// same machine, harmonically averaged.
func FairnessMetric(smtIPCs, aloneIPCs []float64) (float64, error) {
	return metrics.HarmonicWeightedIPC(smtIPCs, aloneIPCs)
}
