package smtsim_test

import (
	"math"
	"testing"

	"smtsim"
)

func run(t *testing.T, cfg smtsim.Config) smtsim.Result {
	t.Helper()
	res, err := smtsim.Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	return res
}

func TestQuickstartRun(t *testing.T) {
	res := run(t, smtsim.Config{
		Benchmarks:      []string{"equake", "gzip"},
		IQSize:          64,
		Scheduler:       smtsim.TwoOpOOOD,
		MaxInstructions: 20_000,
	})
	if res.IPC <= 0 || res.Cycles <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if len(res.Threads) != 2 {
		t.Fatalf("threads = %d", len(res.Threads))
	}
	if res.Threads[0].Benchmark != "equake" || res.Threads[1].Benchmark != "gzip" {
		t.Error("benchmark binding wrong")
	}
}

func TestDefaultsApplied(t *testing.T) {
	res := run(t, smtsim.Config{Benchmarks: []string{"gzip"}, MaxInstructions: 5_000})
	if res.Committed < 5_000 {
		t.Error("default budget/IQ size run failed")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := smtsim.Run(smtsim.Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := smtsim.Run(smtsim.Config{Benchmarks: []string{"doom3"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSchedulerRoundTrip(t *testing.T) {
	for _, s := range []smtsim.Scheduler{
		smtsim.Traditional, smtsim.TwoOpBlock, smtsim.TwoOpOOOD, smtsim.TwoOpOOODFiltered,
	} {
		back, err := smtsim.ParseScheduler(s.String())
		if err != nil || back != s {
			t.Errorf("round trip of %v failed", s)
		}
	}
	if _, err := smtsim.ParseScheduler("bogus"); err == nil {
		t.Error("garbage scheduler accepted")
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	cfg := smtsim.Config{
		Benchmarks:      []string{"twolf", "gcc"},
		IQSize:          48,
		Scheduler:       smtsim.TwoOpBlock,
		MaxInstructions: 10_000,
		Seed:            7,
	}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.IPC != b.IPC {
		t.Errorf("same config diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	base := smtsim.Config{
		Benchmarks:      []string{"twolf", "gcc"},
		MaxInstructions: 10_000,
	}
	a := run(t, base)
	base.Seed = 99
	b := run(t, base)
	if a.Cycles == b.Cycles && a.Committed == b.Committed {
		t.Log("warning: different seeds produced identical cycle counts (possible but unlikely)")
	}
}

func TestMixesExposed(t *testing.T) {
	for _, threads := range []int{2, 3, 4} {
		lists, names, err := smtsim.Mixes(threads)
		if err != nil || len(lists) != 12 || len(names) != 12 {
			t.Fatalf("Mixes(%d): %v, %d lists", threads, err, len(lists))
		}
		for i, l := range lists {
			if len(l) != threads {
				t.Errorf("%s has %d benchmarks, want %d", names[i], len(l), threads)
			}
		}
	}
	if _, _, err := smtsim.Mixes(7); err == nil {
		t.Error("Mixes(7) accepted")
	}
}

func TestBenchmarkRoster(t *testing.T) {
	names := smtsim.BenchmarkNames()
	if len(names) == 0 {
		t.Fatal("empty roster")
	}
	for _, n := range names {
		class, err := smtsim.BenchmarkClass(n)
		if err != nil {
			t.Fatal(err)
		}
		if class != "low" && class != "med" && class != "high" {
			t.Errorf("%s class %q", n, class)
		}
	}
	if _, err := smtsim.BenchmarkClass("quake3"); err == nil {
		t.Error("unknown benchmark class accepted")
	}
}

func TestFairnessMetric(t *testing.T) {
	f, err := smtsim.FairnessMetric([]float64{1, 1}, []float64{2, 2})
	if err != nil || math.Abs(f-0.5) > 1e-9 {
		t.Errorf("fairness = %v, %v", f, err)
	}
	if _, err := smtsim.FairnessMetric([]float64{1}, []float64{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if hm := smtsim.HarmonicMean([]float64{2, 2}); math.Abs(hm-2) > 1e-9 {
		t.Errorf("harmonic mean = %v", hm)
	}
}

func TestSchedulerEffectOnTwoThreads(t *testing.T) {
	// The paper's core qualitative claim at 2 threads and 64 entries:
	// 2OP_BLOCK loses significantly to the traditional scheduler, and
	// out-of-order dispatch recovers most of the loss.
	base := smtsim.Config{
		Benchmarks:      []string{"equake", "gzip"},
		IQSize:          64,
		MaxInstructions: 40_000,
	}
	ipc := map[smtsim.Scheduler]float64{}
	for _, s := range smtsim.Schedulers {
		cfg := base
		cfg.Scheduler = s
		ipc[s] = run(t, cfg).IPC
	}
	if !(ipc[smtsim.TwoOpBlock] < ipc[smtsim.Traditional]) {
		t.Errorf("2OP_BLOCK (%.3f) did not lose to traditional (%.3f) at 2 threads",
			ipc[smtsim.TwoOpBlock], ipc[smtsim.Traditional])
	}
	if !(ipc[smtsim.TwoOpOOOD] > ipc[smtsim.TwoOpBlock]) {
		t.Errorf("OOO dispatch (%.3f) did not improve on 2OP_BLOCK (%.3f)",
			ipc[smtsim.TwoOpOOOD], ipc[smtsim.TwoOpBlock])
	}
}

func TestWatchdogConfigRuns(t *testing.T) {
	res := run(t, smtsim.Config{
		Benchmarks:      []string{"equake", "gzip"},
		Scheduler:       smtsim.TwoOpOOOD,
		Deadlock:        smtsim.DeadlockWatchdog,
		WatchdogLimit:   400,
		MaxInstructions: 10_000,
	})
	if res.Committed == 0 {
		t.Error("watchdog config produced no work")
	}
}

func TestDispatchBufferCapOverride(t *testing.T) {
	small := run(t, smtsim.Config{
		Benchmarks:        []string{"equake", "gzip"},
		Scheduler:         smtsim.TwoOpOOOD,
		DispatchBufferCap: 2,
		MaxInstructions:   20_000,
	})
	large := run(t, smtsim.Config{
		Benchmarks:        []string{"equake", "gzip"},
		Scheduler:         smtsim.TwoOpOOOD,
		DispatchBufferCap: 32,
		MaxInstructions:   20_000,
	})
	// A 2-entry buffer can expose almost no hidden ILP; 32 entries must
	// dispatch at least as many HDIs.
	if small.HDIDispatched > large.HDIDispatched {
		t.Errorf("HDI count did not grow with buffer: %d vs %d",
			small.HDIDispatched, large.HDIDispatched)
	}
}

func TestFilteredSchedulerRuns(t *testing.T) {
	res := run(t, smtsim.Config{
		Benchmarks:      []string{"equake", "gzip"},
		Scheduler:       smtsim.TwoOpOOODFiltered,
		MaxInstructions: 10_000,
	})
	if res.Committed == 0 {
		t.Error("filtered scheduler produced no work")
	}
}

func TestRoundRobinFetchOption(t *testing.T) {
	res := run(t, smtsim.Config{
		Benchmarks:      []string{"gcc", "gzip"},
		RoundRobinFetch: true,
		MaxInstructions: 10_000,
	})
	if res.Committed == 0 {
		t.Error("round-robin fetch produced no work")
	}
}
