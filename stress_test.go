package smtsim_test

import (
	"testing"

	"smtsim"
)

// TestRandomConfigStress sweeps a grid of adversarial configurations —
// every scheduler, tiny and skewed queue shapes, minimal buffers, all
// deadlock mechanisms and fetch gates — over assorted mixes. Every
// combination must run to completion (or report a detected deadlock for
// the explicitly unprotected OOOD case) without panicking: the
// simulator's internal invariants (queue accounting, register
// conservation, LSQ ordering) are enforced by panics, so merely
// completing is a meaningful property.
func TestRandomConfigStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	schedulers := []smtsim.Scheduler{
		smtsim.Traditional, smtsim.TwoOpBlock, smtsim.TwoOpOOOD,
		smtsim.TwoOpOOODFiltered, smtsim.TagElimination, smtsim.TagEliminationOOOD,
	}
	mixes := [][]string{
		{"gzip"},
		{"equake", "gzip"},
		{"twolf", "twolf"}, // same benchmark twice: distinct address spaces
		{"art", "lucas", "galgel"},
		{"equake", "twolf", "gcc", "gzip"},
	}
	gates := []string{"", "stall", "flush", "data-gate"}
	type shape struct {
		iq   int
		part [3]int
		buf  int
	}
	shapes := []shape{
		{iq: 16},
		{iq: 64},
		{part: [3]int{2, 4, 2}},
		{part: [3]int{0, 15, 1}},
		{iq: 32, buf: 1},
	}

	n := 0
	for si, sched := range schedulers {
		for mi, mix := range mixes {
			// Rotate through gates and shapes rather than exploding the
			// full cross product; coverage still touches every value.
			gate := gates[(si+mi)%len(gates)]
			sh := shapes[(si*2+mi)%len(shapes)]
			cfg := smtsim.Config{
				Benchmarks:        mix,
				IQSize:            sh.iq,
				IQPartition:       sh.part,
				Scheduler:         sched,
				FetchGate:         gate,
				DispatchBufferCap: sh.buf,
				MaxInstructions:   2_000,
				Seed:              uint64(si*100 + mi),
			}
			if _, err := smtsim.Run(cfg); err != nil {
				t.Errorf("sched=%v mix=%v gate=%q shape=%+v: %v", sched, mix, gate, sh, err)
			}
			n++
		}
	}
	if n < 25 {
		t.Fatalf("stress grid too small: %d combinations", n)
	}
}

// TestWatchdogUnderStress runs the watchdog mechanism on skewed shapes
// where flushes actually fire, checking recovery end to end.
func TestWatchdogUnderStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for seed := uint64(1); seed <= 4; seed++ {
		res, err := smtsim.Run(smtsim.Config{
			Benchmarks:      []string{"equake", "twolf", "art", "swim"},
			IQSize:          16,
			Scheduler:       smtsim.TwoOpOOOD,
			Deadlock:        smtsim.DeadlockWatchdog,
			WatchdogLimit:   150,
			MaxInstructions: 5_000,
			Seed:            seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Committed == 0 {
			t.Errorf("seed %d: nothing committed", seed)
		}
	}
}

// TestSameBenchmarkTwiceIsIndependent checks that two hardware threads
// running the same benchmark behave like separate processes: both make
// progress and their combined throughput exceeds one copy alone.
func TestSameBenchmarkTwiceIsIndependent(t *testing.T) {
	alone, err := smtsim.Run(smtsim.Config{
		Benchmarks:      []string{"gcc"},
		MaxInstructions: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := smtsim.Run(smtsim.Config{
		Benchmarks:      []string{"gcc", "gcc"},
		MaxInstructions: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pair.Threads[0].Committed == 0 || pair.Threads[1].Committed == 0 {
		t.Error("one copy starved completely")
	}
	if pair.IPC <= alone.IPC {
		t.Errorf("SMT pair IPC %.3f not above single-copy %.3f", pair.IPC, alone.IPC)
	}
}
